"""Constructors for :class:`~repro.graph.csr.CSRGraph`.

All builders normalise their input to the invariants ``CSRGraph.validate``
checks: simple (no self-loops, no parallel edges), symmetric, strictly
positive weights, sorted adjacency.  Duplicate undirected edges are resolved
by keeping the maximum weight — the convention SuiteSparse loaders use for
pattern-symmetrised matrices.
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

from repro.graph.csr import CSRGraph, GraphFormatError

__all__ = [
    "from_edges",
    "from_coo",
    "from_scipy_sparse",
    "from_networkx",
    "to_networkx",
    "compact_vertices",
]


def from_edges(
    edges: Iterable[tuple[int, int, float]],
    num_vertices: int | None = None,
    name: str = "graph",
) -> CSRGraph:
    """Build from an iterable of ``(u, v, w)`` triples.

    Either orientation may be given (or both); self-loops are dropped and
    duplicates keep the heaviest weight.
    """
    triples = list(edges)
    if not triples:
        return CSRGraph.empty(num_vertices or 0, name)
    arr = np.asarray(triples, dtype=np.float64)
    u = arr[:, 0].astype(np.int64)
    v = arr[:, 1].astype(np.int64)
    w = arr[:, 2]
    return from_coo(u, v, w, num_vertices=num_vertices, name=name)


def from_coo(
    u: np.ndarray,
    v: np.ndarray,
    w: np.ndarray,
    num_vertices: int | None = None,
    name: str = "graph",
) -> CSRGraph:
    """Build from parallel COO arrays (one or both orientations)."""
    u = np.asarray(u, dtype=np.int64)
    v = np.asarray(v, dtype=np.int64)
    w = np.asarray(w, dtype=np.float64)
    if not (len(u) == len(v) == len(w)):
        raise GraphFormatError("COO arrays must have equal length")
    if len(u) and (u.min() < 0 or v.min() < 0):
        raise GraphFormatError("negative vertex id")
    if len(w) and not np.all(w > 0):
        raise GraphFormatError("edge weights must be strictly positive")

    n = int(max(u.max(initial=-1), v.max(initial=-1)) + 1) if len(u) else 0
    if num_vertices is not None:
        if num_vertices < n:
            raise GraphFormatError(
                f"num_vertices={num_vertices} smaller than max id + 1 ({n})"
            )
        n = num_vertices
    if len(u) == 0:
        return CSRGraph.empty(n, name)

    # Canonicalise (lo, hi), drop self-loops, dedupe keeping max weight.
    keep = u != v
    lo = np.minimum(u[keep], v[keep])
    hi = np.maximum(u[keep], v[keep])
    w = w[keep]
    if len(lo) == 0:
        return CSRGraph.empty(n, name)
    key = lo * np.int64(n) + hi
    order = np.lexsort((-w, key))
    key, lo, hi, w = key[order], lo[order], hi[order], w[order]
    first = np.ones(len(key), dtype=bool)
    first[1:] = key[1:] != key[:-1]
    lo, hi, w = lo[first], hi[first], w[first]

    # Symmetrise and bucket into CSR.
    src = np.concatenate([lo, hi])
    dst = np.concatenate([hi, lo])
    ww = np.concatenate([w, w])
    order = np.lexsort((dst, src))
    src, dst, ww = src[order], dst[order], ww[order]
    indptr = np.zeros(n + 1, dtype=np.int64)
    np.add.at(indptr, src + 1, 1)
    np.cumsum(indptr, out=indptr)
    return CSRGraph(indptr, dst, ww, name)


def from_scipy_sparse(mat, name: str = "graph") -> CSRGraph:
    """Build from any scipy sparse matrix (pattern is symmetrised).

    Zero / negative entries are treated as "no natural weight" only if the
    whole matrix lacks positive weights; otherwise they are dropped, which
    matches how the paper ingests SuiteSparse matrices.
    """
    coo = mat.tocoo()
    if coo.shape[0] != coo.shape[1]:
        raise GraphFormatError("adjacency matrix must be square")
    data = np.asarray(coo.data, dtype=np.float64)
    pos = data > 0
    if not pos.any() and len(data):
        # Pattern-only matrix: assign unit weights, caller can reweight.
        data = np.ones_like(data)
        pos = data > 0
    return from_coo(
        coo.row[pos].astype(np.int64),
        coo.col[pos].astype(np.int64),
        data[pos],
        num_vertices=coo.shape[0],
        name=name,
    )


def from_networkx(nxg, weight: str = "weight", name: str | None = None) -> CSRGraph:
    """Build from a networkx graph; missing weights default to 1.0."""
    nodes = list(nxg.nodes())
    index = {node: i for i, node in enumerate(nodes)}
    u, v, w = [], [], []
    for a, b, data in nxg.edges(data=True):
        u.append(index[a])
        v.append(index[b])
        w.append(float(data.get(weight, 1.0)))
    return from_coo(
        np.asarray(u, dtype=np.int64),
        np.asarray(v, dtype=np.int64),
        np.asarray(w, dtype=np.float64),
        num_vertices=len(nodes),
        name=name or getattr(nxg, "name", "") or "graph",
    )


def to_networkx(graph: CSRGraph):
    """Export to a weighted ``networkx.Graph`` (test / interop helper)."""
    import networkx as nx

    nxg = nx.Graph(name=graph.name)
    nxg.add_nodes_from(range(graph.num_vertices))
    u, v, w = graph.edge_array()
    nxg.add_weighted_edges_from(zip(u.tolist(), v.tolist(), w.tolist()))
    return nxg


def compact_vertices(graph: CSRGraph) -> tuple[CSRGraph, np.ndarray]:
    """Drop isolated vertices, relabelling the rest contiguously.

    Returns the compacted graph and the old-id array indexed by new id.
    """
    alive = np.nonzero(graph.degrees > 0)[0]
    remap = np.full(graph.num_vertices, -1, dtype=np.int64)
    remap[alive] = np.arange(len(alive), dtype=np.int64)
    u, v, w = graph.edge_array()
    out = from_coo(remap[u], remap[v], w, num_vertices=len(alive),
                   name=graph.name)
    return out, alive
