"""Copying-model web crawl generator — uk-2007-05 / webbase-2001 analogs.

LAW web crawls pair extreme degree skew (a 2.1M-degree hub in webbase-2001)
with strong *lexicographic locality*: URLs sorted by host give adjacency
that is mostly near-diagonal.  That locality is what makes the paper's
contiguous vertex partitions viable on web graphs, while the hubs stress a
single device's warp balance.

The copying / preferential-attachment model reproduces both: each new
vertex copies a fraction of a random earlier vertex's links (preferential
attachment in disguise → power-law in-degree) and otherwise links to recent
vertices (locality).
"""

from __future__ import annotations

import numpy as np

from repro.graph.builders import from_coo
from repro.graph.csr import CSRGraph
from repro.graph.generators.weights import assign_uniform_weights

__all__ = ["webcrawl_graph"]


def webcrawl_graph(
    num_vertices: int,
    out_degree: int = 16,
    copy_prob: float = 0.5,
    window: int = 1024,
    seed: int = 0,
    name: str = "webcrawl",
    weighted: bool = True,
) -> CSRGraph:
    """Copying-model crawl.

    Vertices arrive in order; vertex ``t`` emits ``out_degree`` links.
    Each link, with probability ``copy_prob``, copies the target of a
    uniformly random existing link (rich-get-richer, giving the power-law
    hub tail); otherwise it targets a uniform vertex within the trailing
    ``window`` (host locality).
    """
    if num_vertices < 4:
        raise ValueError("need at least 4 vertices")
    rng = np.random.default_rng(seed)
    n = num_vertices
    d = out_degree

    # Vectorised batched construction: process arrivals in blocks so the
    # copy step can sample from the already-built prefix cheaply.
    src_blocks: list[np.ndarray] = []
    dst_blocks: list[np.ndarray] = []
    all_targets = np.array([0, 1, 2, 1, 2, 0], dtype=np.int64)  # seed triangle
    src_blocks.append(np.array([0, 1, 2], dtype=np.int64))
    dst_blocks.append(np.array([1, 2, 0], dtype=np.int64))

    block_size = max(256, n // 64)
    t = 3
    while t < n:
        hi = min(n, t + block_size)
        count = hi - t
        src = np.repeat(np.arange(t, hi, dtype=np.int64), d)
        copy = rng.random(count * d) < copy_prob
        # Copy step: sample an existing link target (preferential).
        pick = rng.integers(0, len(all_targets), size=count * d)
        copied = all_targets[pick]
        # Local step: uniform in the trailing window before each source.
        lo = np.maximum(src - window, 0)
        local = lo + (rng.random(count * d) * (src - lo)).astype(np.int64)
        dst = np.where(copy, copied, local)
        # No self-links (from_coo drops them anyway; cheap fix keeps count).
        dst = np.where(dst == src, (src + 1) % np.int64(t), dst)
        src_blocks.append(src)
        dst_blocks.append(dst)
        all_targets = np.concatenate([all_targets, dst])
        t = hi

    src = np.concatenate(src_blocks)
    dst = np.concatenate(dst_blocks)
    g = from_coo(src, dst, np.ones(len(src)), num_vertices=n, name=name)
    if weighted:
        g = assign_uniform_weights(g, seed=seed + 1)
    return g
