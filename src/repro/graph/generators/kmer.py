"""k-mer / de-Bruijn-like generator — kmer_U1a / kmer_V2a analogs.

The GenBank k-mer graphs have average degree 2–4 and enormous diameter:
they are unions of long, sparsely branching chains.  That structure is what
makes them *batching-friendly* in the paper (Fig. 6: scalability appears only
once ≥3 batches spread the per-iteration frontier) and gives LD-GPU many
cheap iterations.

We synthesise the same class directly: ``num_chains`` vertex-disjoint paths
whose lengths follow a geometric mix, plus a controlled number of random
short-range "branch" edges that lift the average degree from 2 toward the
target.
"""

from __future__ import annotations

import numpy as np

from repro.graph.builders import from_coo
from repro.graph.csr import CSRGraph
from repro.graph.generators.weights import assign_uniform_weights

__all__ = ["kmer_graph"]


def kmer_graph(
    num_vertices: int,
    avg_degree: float = 3.0,
    num_chains: int | None = None,
    branch_span: int = 64,
    seed: int = 0,
    name: str = "kmer",
    weighted: bool = True,
) -> CSRGraph:
    """Union of long paths with local branch edges.

    Parameters
    ----------
    avg_degree:
        Target average degree in [2, 8]; 2 gives pure paths (kmer_V2a's
        regime), ~4 matches kmer_U1a.
    num_chains:
        Number of disjoint chains; defaults to ``max(1, n // 4096)`` —
        k-mer graphs have many connected components.
    branch_span:
        Branch edges connect vertices at most this far apart along the
        chain-id order, preserving the locality a contiguous partition of a
        k-mer graph has.
    """
    if num_vertices < 2:
        raise ValueError("need at least 2 vertices")
    if avg_degree < 1.0:
        raise ValueError("avg_degree must be >= 1")
    rng = np.random.default_rng(seed)
    n = num_vertices
    chains = num_chains if num_chains is not None else max(1, n // 4096)
    chains = min(chains, n // 2)

    # Chain boundaries: split [0, n) into `chains` contiguous runs of
    # random (Dirichlet-ish) lengths, each run becoming a path.
    cuts = np.sort(rng.choice(np.arange(1, n), size=chains - 1,
                              replace=False)) if chains > 1 else np.array(
        [], dtype=np.int64)
    starts = np.concatenate([[0], cuts])
    ends = np.concatenate([cuts, [n]])

    ids = np.arange(n, dtype=np.int64)
    path_src = ids[:-1]
    path_dst = ids[1:]
    # Remove the edge crossing each chain boundary.
    keep = np.ones(n - 1, dtype=bool)
    keep[cuts - 1] = False
    path_src, path_dst = path_src[keep], path_dst[keep]

    # Branch edges: directed pairs (i, i + delta) with small local span.
    extra = max(0, int(n * (avg_degree - 2.0) / 2.0))
    if extra > 0:
        bi = rng.integers(0, n, size=extra, dtype=np.int64)
        delta = rng.integers(2, branch_span + 1, size=extra, dtype=np.int64)
        bj = np.minimum(bi + delta, n - 1)
        src = np.concatenate([path_src, bi])
        dst = np.concatenate([path_dst, bj])
    else:
        src, dst = path_src, path_dst

    g = from_coo(src, dst, np.ones(len(src)), num_vertices=n, name=name)
    if weighted:
        g = assign_uniform_weights(g, seed=seed + 1)
    # Bookkeeping for tests: expose chain structure.
    g.chain_bounds = np.stack([starts, ends], axis=1)  # type: ignore[attr-defined]
    return g
