"""Bipartite graph generators — assignment-problem workloads.

The paper's introduction motivates matching through the linear assignment
problem ("assigning or mapping one set of entities to another"); these
generators build the bipartite affinity graphs those applications start
from.  Vertices ``[0, left)`` form one side, ``[left, left+right)`` the
other.
"""

from __future__ import annotations

import numpy as np

from repro.graph.builders import from_coo
from repro.graph.csr import CSRGraph

__all__ = ["bipartite_random_graph", "bipartite_geometric_graph",
           "bipartite_sides"]


def bipartite_random_graph(
    left: int,
    right: int,
    avg_degree: float = 8.0,
    seed: int = 0,
    name: str = "bipartite",
) -> CSRGraph:
    """Uniform random bipartite graph with uniform (0, 1] weights."""
    if left < 1 or right < 1:
        raise ValueError("both sides need at least one vertex")
    rng = np.random.default_rng(seed)
    m = int(left * avg_degree)
    u = rng.integers(0, left, size=m, dtype=np.int64)
    v = rng.integers(0, right, size=m, dtype=np.int64) + left
    w = np.round(rng.random(m) * 0.999 + 0.001, 3)
    return from_coo(u, v, w, num_vertices=left + right, name=name)


def bipartite_geometric_graph(
    left: int,
    right: int,
    avg_degree: float = 8.0,
    dim: int = 2,
    seed: int = 0,
    name: str = "bipartite-geo",
) -> CSRGraph:
    """Bipartite graph with distance-derived weights.

    Both sides get latent positions; each left vertex connects to its
    nearest right vertices with weight ``1 / (1 + distance)`` — the
    structure of facility-location / resident-hospital style instances.
    """
    if left < 1 or right < 1:
        raise ValueError("both sides need at least one vertex")
    rng = np.random.default_rng(seed)
    lp = rng.random((left, dim))
    rp = rng.random((right, dim))
    k = max(1, min(right, int(round(avg_degree))))

    us, vs, ws = [], [], []
    # block the distance computation to bound memory
    block = max(1, 2_000_000 // max(right, 1))
    for lo in range(0, left, block):
        hi = min(left, lo + block)
        diff = lp[lo:hi, None, :] - rp[None, :, :]
        dist = np.sqrt(np.einsum("ijk,ijk->ij", diff, diff))
        nearest = np.argpartition(dist, k - 1, axis=1)[:, :k]
        rows = np.repeat(np.arange(lo, hi, dtype=np.int64), k)
        cols = nearest.reshape(-1).astype(np.int64)
        d = dist[np.arange(hi - lo)[:, None], nearest].reshape(-1)
        us.append(rows)
        vs.append(cols + left)
        ws.append(1.0 / (1.0 + d))
    return from_coo(np.concatenate(us), np.concatenate(vs),
                    np.concatenate(ws), num_vertices=left + right,
                    name=name)


def bipartite_sides(graph: CSRGraph, left: int) -> tuple[np.ndarray,
                                                         np.ndarray]:
    """Vertex id arrays of the two sides, validating bipartiteness."""
    n = graph.num_vertices
    if not 0 <= left <= n:
        raise ValueError("left size out of range")
    u, v, _ = graph.edge_array()
    crosses = ((u < left) & (v >= left)) | ((v < left) & (u >= left))
    if not bool(np.all(crosses)):
        raise ValueError("graph is not bipartite with the given split")
    return (np.arange(left, dtype=np.int64),
            np.arange(left, n, dtype=np.int64))
