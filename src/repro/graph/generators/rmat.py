"""Recursive MATrix (R-MAT / Kronecker) generator.

GAP-kron in the paper is a scale-27 Kronecker graph (Graph500 parameters
a=0.57, b=c=0.19, d=0.05); AGATHA-2015 and MOLIERE_2016 are skewed
literature-mining graphs that we approximate with milder skew.  The
generator is fully vectorised: each of the ``m`` samples picks one quadrant
per recursion level from a single ``(m, scale)`` uniform draw.
"""

from __future__ import annotations

import numpy as np

from repro.graph.builders import from_coo
from repro.graph.csr import CSRGraph
from repro.graph.generators.weights import assign_uniform_weights

__all__ = ["rmat_graph"]

GRAPH500 = (0.57, 0.19, 0.19, 0.05)


def rmat_graph(
    scale: int,
    edge_factor: int = 16,
    probs: tuple[float, float, float, float] = GRAPH500,
    seed: int = 0,
    noise: float = 0.1,
    name: str = "rmat",
    weighted: bool = True,
) -> CSRGraph:
    """Generate an R-MAT graph with ``2**scale`` vertices.

    Parameters
    ----------
    scale:
        ``n = 2**scale`` vertices.
    edge_factor:
        ``m = edge_factor * n`` directed samples before deduplication (the
        Graph500 convention), so the simple graph has somewhat fewer edges.
    probs:
        Quadrant probabilities ``(a, b, c, d)``; must sum to 1.
    noise:
        Per-level multiplicative jitter on ``a`` (SuiteSparse ssget's
        "smoothing" that avoids exact self-similarity artifacts).
    weighted:
        Assign uniform (0, 1] weights (the paper's scheme); otherwise unit.
    """
    a, b, c, d = probs
    if not np.isclose(a + b + c + d, 1.0):
        raise ValueError(f"R-MAT probabilities must sum to 1, got {probs}")
    n = 1 << scale
    m = edge_factor * n
    rng = np.random.default_rng(seed)

    src = np.zeros(m, dtype=np.int64)
    dst = np.zeros(m, dtype=np.int64)
    for level in range(scale):
        # Jitter keeps degree distribution heavy-tailed but non-degenerate.
        jitter = 1.0 + noise * (2.0 * rng.random() - 1.0)
        aa, bb, cc, dd = a * jitter, b, c, d
        s = aa + bb + cc + dd
        aa, bb, cc, dd = aa / s, bb / s, cc / s, dd / s
        # Quadrant layout: [0,a)->a (0,0), [a,a+b)->b (0,1),
        # [a+b,a+b+c)->c (1,0), rest->d (1,1).
        r = rng.random(m)
        right = ((r >= aa) & (r < aa + bb)) | (r >= aa + bb + cc)
        lower = r >= aa + bb
        bit = np.int64(1) << np.int64(scale - 1 - level)
        src += bit * lower
        dst += bit * right

    # Permute vertex ids so high-degree vertices are not clustered at 0 —
    # matches the Graph500 post-permutation GAP-kron ships with.
    perm = rng.permutation(n).astype(np.int64)
    src, dst = perm[src], perm[dst]
    w = np.ones(m, dtype=np.float64)
    g = from_coo(src, dst, w, num_vertices=n, name=name)
    if weighted:
        g = assign_uniform_weights(g, seed=seed + 1)
    return g
