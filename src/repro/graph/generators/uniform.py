"""Uniform random (Erdős–Rényi style) generator — GAP-urand analog.

GAP-urand is a uniform-random graph whose flat degree distribution makes it
the *best* case for LD-GPU in the paper (45× over SR-OMP): every warp gets
near-identical work and the matching converges in few rounds.  We sample
``m`` endpoint pairs uniformly; deduplication leaves ``|E|`` slightly below
``m``, exactly like the GAP suite's generator.
"""

from __future__ import annotations

import numpy as np

from repro.graph.builders import from_coo
from repro.graph.csr import CSRGraph
from repro.graph.generators.weights import assign_uniform_weights

__all__ = ["uniform_random_graph"]


def uniform_random_graph(
    num_vertices: int,
    num_edges: int,
    seed: int = 0,
    name: str = "urand",
    weighted: bool = True,
) -> CSRGraph:
    """G(n, m): ``num_edges`` endpoint pairs drawn uniformly at random.

    Self-loops and duplicates are removed downstream, so the realised edge
    count is slightly below ``num_edges`` for dense regimes.
    """
    if num_vertices < 2 and num_edges > 0:
        raise ValueError("need at least 2 vertices to place an edge")
    rng = np.random.default_rng(seed)
    src = rng.integers(0, num_vertices, size=num_edges, dtype=np.int64)
    dst = rng.integers(0, num_vertices, size=num_edges, dtype=np.int64)
    w = np.ones(num_edges, dtype=np.float64)
    g = from_coo(src, dst, w, num_vertices=num_vertices, name=name)
    if weighted:
        g = assign_uniform_weights(g, seed=seed + 1)
    return g
