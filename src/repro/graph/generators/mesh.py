"""Structured mesh generators — Queen_4147 / HV15R analogs.

Queen_4147 and HV15R are 3D finite-element / CFD matrices: near-regular
degree (79 and 140 on average), tiny degree variance, strong locality.
That regularity is why SR-GPU's fixed vertices-per-warp trick beats LD-GPU
on them in Table IV.  We reproduce the class with lattice graphs whose
stencil radius controls the degree.
"""

from __future__ import annotations

import numpy as np

from repro.graph.builders import from_coo
from repro.graph.csr import CSRGraph
from repro.graph.generators.weights import assign_uniform_weights

__all__ = ["queen_mesh", "fem_mesh_3d"]


def _lattice_edges(
    dims: tuple[int, ...], radius: int
) -> tuple[np.ndarray, np.ndarray]:
    """Edges of a d-dimensional lattice with Chebyshev-ball stencil."""
    coords = np.indices(dims).reshape(len(dims), -1).T  # (n, d)
    n = coords.shape[0]
    strides = np.ones(len(dims), dtype=np.int64)
    for k in range(len(dims) - 2, -1, -1):
        strides[k] = strides[k + 1] * dims[k + 1]
    ids = coords @ strides

    offsets = np.indices((2 * radius + 1,) * len(dims)).reshape(
        len(dims), -1).T - radius
    # Keep only "positive" half of the stencil so each edge appears once.
    key = offsets @ (np.array([(2 * radius + 1) ** k for k in
                               range(len(dims) - 1, -1, -1)], dtype=np.int64))
    offsets = offsets[key > 0]

    srcs, dsts = [], []
    for off in offsets:
        nbr = coords + off
        ok = np.all((nbr >= 0) & (nbr < np.array(dims)), axis=1)
        srcs.append(ids[ok])
        dsts.append((nbr[ok] @ strides))
    return np.concatenate(srcs), np.concatenate(dsts)


def queen_mesh(
    side: int,
    radius: int = 4,
    seed: int = 0,
    name: str = "queen",
    weighted: bool = True,
) -> CSRGraph:
    """2D ``side × side`` lattice with Chebyshev radius ``radius``.

    Interior degree is ``(2r+1)^2 - 1`` (= 80 for r=4, close to
    Queen_4147's d_avg of 79).
    """
    src, dst = _lattice_edges((side, side), radius)
    g = from_coo(src, dst, np.ones(len(src)), num_vertices=side * side,
                 name=name)
    if weighted:
        g = assign_uniform_weights(g, seed=seed)
    return g


def fem_mesh_3d(
    side: int,
    radius: int = 2,
    seed: int = 0,
    name: str = "fem3d",
    weighted: bool = True,
) -> CSRGraph:
    """3D ``side³`` lattice with Chebyshev radius ``radius``.

    Interior degree ``(2r+1)^3 - 1`` (= 124 for r=2, HV15R's regime).
    """
    src, dst = _lattice_edges((side, side, side), radius)
    g = from_coo(src, dst, np.ones(len(src)),
                 num_vertices=side ** 3, name=name)
    if weighted:
        g = assign_uniform_weights(g, seed=seed)
    return g
