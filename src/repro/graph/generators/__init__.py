"""Synthetic graph generators.

Each generator targets one structural class from the paper's Table I so the
benchmark harness can build scaled-down analogs of the fourteen evaluation
graphs (see DESIGN.md §2 for the mapping):

=================  ==========================================
module             paper graphs covered
=================  ==========================================
``rmat``           GAP-kron, AGATHA-2015, MOLIERE_2016
``uniform``        GAP-urand
``mycielski``      mycielskian18
``kmer``           kmer_U1a, kmer_V2a
``mesh``           Queen_4147, HV15R
``powerlaw``       com-Orkut, com-Friendster
``webgraph``       uk-2007-05, webbase-2001
``geometric``      mouse_gene
=================  ==========================================
"""

from repro.graph.generators.rmat import rmat_graph
from repro.graph.generators.uniform import uniform_random_graph
from repro.graph.generators.mycielski import mycielskian_graph
from repro.graph.generators.kmer import kmer_graph
from repro.graph.generators.mesh import queen_mesh, fem_mesh_3d
from repro.graph.generators.powerlaw import powerlaw_cluster_graph
from repro.graph.generators.webgraph import webcrawl_graph
from repro.graph.generators.geometric import similarity_graph
from repro.graph.generators.bipartite import (
    bipartite_random_graph,
    bipartite_geometric_graph,
    bipartite_sides,
)
from repro.graph.generators.weights import (
    assign_uniform_weights,
    has_natural_weights,
)

__all__ = [
    "rmat_graph",
    "uniform_random_graph",
    "mycielskian_graph",
    "kmer_graph",
    "queen_mesh",
    "fem_mesh_3d",
    "powerlaw_cluster_graph",
    "webcrawl_graph",
    "similarity_graph",
    "bipartite_random_graph",
    "bipartite_geometric_graph",
    "bipartite_sides",
    "assign_uniform_weights",
    "has_natural_weights",
]
