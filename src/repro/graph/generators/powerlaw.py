"""Power-law / community generator — com-Orkut and com-Friendster analogs.

Social networks combine a heavy-tailed degree distribution (d_max in the
tens of thousands) with community locality.  Both properties matter for the
paper: the tail drives warp-level load imbalance in the pointing kernel
(Fig. 8's high-variance bars) and the long low-weight fringe drives the
~2,000-iteration tail the paper reports for com-Friendster on V100
(Fig. 10 discussion).

We use a Chung–Lu model: each vertex gets an expected degree from a
discretised power law and edges are sampled proportional to weight
products, then shifted toward community-local endpoints with probability
``locality``.
"""

from __future__ import annotations

import numpy as np

from repro.graph.builders import from_coo
from repro.graph.csr import CSRGraph
from repro.graph.generators.weights import assign_uniform_weights

__all__ = ["powerlaw_cluster_graph"]


def powerlaw_cluster_graph(
    num_vertices: int,
    avg_degree: float = 20.0,
    exponent: float = 2.3,
    locality: float = 0.5,
    community_size: int = 256,
    seed: int = 0,
    name: str = "powerlaw",
    weighted: bool = True,
) -> CSRGraph:
    """Chung–Lu power-law graph with community rewiring.

    Parameters
    ----------
    exponent:
        Degree power-law exponent (>2 so the mean exists); 2.3 is typical
        of social graphs.
    locality:
        Fraction of sampled edges whose second endpoint is redrawn from the
        first endpoint's community block, producing clustering and the
        contiguous-partition locality real social graphs exhibit after
        community-aware vertex orderings.
    """
    if exponent <= 2.0:
        raise ValueError("exponent must exceed 2 for a finite mean")
    rng = np.random.default_rng(seed)
    n = num_vertices
    m = int(n * avg_degree / 2)

    # Discretised Pareto expected degrees, rescaled to the target mean.
    raw = (1.0 - rng.random(n)) ** (-1.0 / (exponent - 1.0))
    weights_cl = raw / raw.sum()

    src = rng.choice(n, size=m, p=weights_cl).astype(np.int64)
    dst = rng.choice(n, size=m, p=weights_cl).astype(np.int64)

    # Community rewiring: with prob `locality`, pull dst into src's block.
    local = rng.random(m) < locality
    block = src[local] // community_size
    offset = rng.integers(0, community_size, size=int(local.sum()),
                          dtype=np.int64)
    dst[local] = np.minimum(block * community_size + offset, n - 1)

    g = from_coo(src, dst, np.ones(m), num_vertices=n, name=name)
    if weighted:
        g = assign_uniform_weights(g, seed=seed + 1)
    return g
