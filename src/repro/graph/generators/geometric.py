"""Dense similarity graph generator — mouse_gene analog.

mouse_gene is a gene-coexpression network: small vertex count (45K), very
dense (d_avg ≈ 642), with *natural* real-valued similarity weights.  It is
the paper's smallest input and its second occupancy outlier in Fig. 11.

We generate points in a low-dimensional latent space and connect each point
to its neighbours within a radius chosen to hit the target average degree,
weighting edges by a Gaussian similarity of the distance — a faithful
miniature of a coexpression network (natural weights, no uniform
resampling needed).
"""

from __future__ import annotations

import numpy as np

from repro.graph.builders import from_coo
from repro.graph.csr import CSRGraph

__all__ = ["similarity_graph"]


def similarity_graph(
    num_vertices: int,
    avg_degree: float = 60.0,
    dim: int = 3,
    seed: int = 0,
    name: str = "similarity",
) -> CSRGraph:
    """Random geometric graph with Gaussian similarity weights.

    The connection radius is derived from the target average degree via the
    expected number of points in a d-ball; a cell-grid neighbour search
    keeps construction near-linear.
    """
    if num_vertices < 2:
        raise ValueError("need at least 2 vertices")
    rng = np.random.default_rng(seed)
    n = num_vertices
    pts = rng.random((n, dim))

    # radius such that expected neighbours ≈ avg_degree:
    # n * V_d * r^d = avg_degree, with V_d the unit d-ball volume.
    from math import gamma, pi

    v_d = pi ** (dim / 2) / gamma(dim / 2 + 1)
    r = (avg_degree / (n * v_d)) ** (1.0 / dim)
    r = min(r, 0.5)

    # Cell grid of side r: only compare points in adjacent cells.
    cells = np.floor(pts / r).astype(np.int64)
    ncell = int(np.ceil(1.0 / r))
    strides = ncell ** np.arange(dim - 1, -1, -1, dtype=np.int64)
    cell_id = cells @ strides
    order = np.argsort(cell_id, kind="stable")
    sorted_ids = cell_id[order]

    # Offsets of the 3^dim neighbouring cells (self included).
    offsets = (np.indices((3,) * dim).reshape(dim, -1).T - 1) @ strides

    srcs, dsts, wts = [], [], []
    # Bucket boundaries for binary search.
    uniq, starts = np.unique(sorted_ids, return_index=True)
    ends = np.concatenate([starts[1:], [n]])
    bucket_of = {int(c): k for k, c in enumerate(uniq)}

    for k, c in enumerate(uniq):
        a = order[starts[k]:ends[k]]
        for off in offsets:
            j = bucket_of.get(int(c + off))
            if j is None or j < k:
                continue  # each cell pair handled once
            b = order[starts[j]:ends[j]]
            diff = pts[a][:, None, :] - pts[b][None, :, :]
            dist2 = np.einsum("ijk,ijk->ij", diff, diff)
            ii, jj = np.nonzero(dist2 <= r * r)
            ui, vj = a[ii], b[jj]
            if j == k:
                keep = ui < vj
                ui, vj, d2 = ui[keep], vj[keep], dist2[ii, jj][keep]
            else:
                d2 = dist2[ii, jj]
            srcs.append(ui)
            dsts.append(vj)
            wts.append(d2)

    if not srcs:
        return CSRGraph.empty(n, name)
    u = np.concatenate(srcs)
    v = np.concatenate(dsts)
    d2 = np.concatenate(wts)
    # Gaussian similarity in (0, 1]; strictly positive by construction.
    w = np.exp(-d2 / (2.0 * (r / 2.0) ** 2))
    w = np.maximum(w, 1e-9)
    return from_coo(u, v, w, num_vertices=n, name=name)
