"""Edge weight assignment.

The paper (§IV, Datasets): *"In cases where natural edge weights were absent
from the datasets, we sample weights from a uniform distribution range of
three decimal points from [0, 1]"*.  We reproduce exactly that — uniform
samples over ``{0.001, 0.002, ..., 1.000}`` (strictly positive, three decimal
places), assigned per *undirected* edge so both CSR directions agree.
"""

from __future__ import annotations

import numpy as np

from repro.graph.csr import CSRGraph

__all__ = ["assign_uniform_weights", "has_natural_weights"]


def assign_uniform_weights(
    graph: CSRGraph, seed: int = 0, decimals: int = 3
) -> CSRGraph:
    """Return ``graph`` with fresh uniform (0, 1] weights.

    Weights are drawn once per undirected edge keyed on the canonical edge
    id, so the result is independent of adjacency ordering and symmetric by
    construction.
    """
    if graph.num_directed_edges == 0:
        return graph
    eids = graph.canonical_edge_ids()
    uniq, inverse = np.unique(eids, return_inverse=True)
    rng = np.random.default_rng(seed)
    levels = 10**decimals
    per_edge = rng.integers(1, levels + 1, size=len(uniq)).astype(np.float64)
    per_edge /= levels
    return graph.reweighted(per_edge[inverse])


def has_natural_weights(graph: CSRGraph, tol: float = 1e-12) -> bool:
    """Heuristic the paper applies: a dataset has "natural" weights unless
    every weight is missing or exactly 1."""
    if graph.num_directed_edges == 0:
        return False
    return not np.allclose(graph.weights, 1.0, atol=tol)
