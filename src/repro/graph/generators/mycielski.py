"""Iterated Mycielskian construction — mycielskian18 analog.

SuiteSparse's ``mycielskian<k>`` graphs apply the Mycielski transform k-2
times starting from a single edge (K2).  The transform triples the edge
count and roughly doubles the vertex count, producing triangle-rich,
high-degree-variance graphs — the paper's occupancy outlier (Fig. 11), where
SM occupancy collapses to ~30% in the late iterations.

Given a graph ``G(V, E)``, the Mycielskian ``M(G)`` has vertices
``V ∪ V' ∪ {z}``; it keeps ``E``, adds ``{u', v}`` and ``{u, v'}`` for every
``{u, v} ∈ E``, and connects ``z`` to every shadow vertex ``v'``.
"""

from __future__ import annotations

import numpy as np

from repro.graph.builders import from_coo
from repro.graph.csr import CSRGraph
from repro.graph.generators.weights import assign_uniform_weights

__all__ = ["mycielskian_graph", "mycielskian_step"]


def mycielskian_step(
    u: np.ndarray, v: np.ndarray, n: int
) -> tuple[np.ndarray, np.ndarray, int]:
    """One Mycielski transform on an edge list; returns the new list."""
    shadow_u = u + n  # u'
    shadow_v = v + n  # v'
    z = 2 * n
    new_u = np.concatenate([
        u,              # original edges {u, v}
        shadow_u,       # {u', v}
        u,              # {u, v'}
        np.full(n, z, dtype=np.int64),  # {z, v'}
    ])
    new_v = np.concatenate([
        v,
        v,
        shadow_v,
        np.arange(n, 2 * n, dtype=np.int64),
    ])
    return new_u, new_v, 2 * n + 1


def mycielskian_graph(
    order: int,
    seed: int = 0,
    name: str | None = None,
    weighted: bool = True,
) -> CSRGraph:
    """``mycielskian<order>``: K2 with the transform applied ``order - 2``
    times (order 2 is K2 itself, matching SuiteSparse's naming)."""
    if order < 2:
        raise ValueError("order must be >= 2")
    u = np.array([0], dtype=np.int64)
    v = np.array([1], dtype=np.int64)
    n = 2
    for _ in range(order - 2):
        u, v, n = mycielskian_step(u, v, n)
    g = from_coo(u, v, np.ones(len(u)), num_vertices=n,
                 name=name or f"mycielskian{order}")
    if weighted:
        g = assign_uniform_weights(g, seed=seed)
    return g
