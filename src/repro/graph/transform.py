"""Graph transforms: induced subgraphs, component extraction, pruning.

Real pipelines rarely match a raw graph: SuiteSparse inputs carry
isolated vertices, multiple components and degree-0 padding.  These
helpers mirror the preprocessing the paper's tooling performs before
matching.
"""

from __future__ import annotations

import numpy as np

from repro.graph.builders import from_coo
from repro.graph.csr import CSRGraph
from repro.graph.stats import connected_components

__all__ = [
    "induced_subgraph",
    "largest_component",
    "drop_light_edges",
    "relabel_by_degree",
]


def induced_subgraph(
    graph: CSRGraph, vertices: np.ndarray
) -> tuple[CSRGraph, np.ndarray]:
    """Subgraph induced by ``vertices`` (relabelled contiguously).

    Returns ``(subgraph, old_ids)`` where ``old_ids[new] = old``.
    """
    vertices = np.unique(np.asarray(vertices, dtype=np.int64))
    if len(vertices) and (
        vertices[0] < 0 or vertices[-1] >= graph.num_vertices
    ):
        raise ValueError("vertex id out of range")
    remap = np.full(graph.num_vertices, -1, dtype=np.int64)
    remap[vertices] = np.arange(len(vertices), dtype=np.int64)
    u, v, w = graph.edge_array()
    keep = (remap[u] >= 0) & (remap[v] >= 0)
    sub = from_coo(remap[u[keep]], remap[v[keep]], w[keep],
                   num_vertices=len(vertices),
                   name=f"{graph.name}-induced")
    return sub, vertices


def largest_component(graph: CSRGraph) -> tuple[CSRGraph, np.ndarray]:
    """The largest connected component as a relabelled subgraph."""
    labels = connected_components(graph)
    if len(labels) == 0:
        return graph, np.empty(0, dtype=np.int64)
    uniq, counts = np.unique(labels, return_counts=True)
    big = uniq[int(np.argmax(counts))]
    return induced_subgraph(graph, np.nonzero(labels == big)[0])


def drop_light_edges(graph: CSRGraph, threshold: float) -> CSRGraph:
    """Remove edges with weight below ``threshold``.

    A standard sparsification step before matching-based coarsening
    (only strong couplings should aggregate).
    """
    u, v, w = graph.edge_array()
    keep = w >= threshold
    return from_coo(u[keep], v[keep], w[keep],
                    num_vertices=graph.num_vertices,
                    name=f"{graph.name}-pruned")


def relabel_by_degree(graph: CSRGraph,
                      descending: bool = True) -> tuple[CSRGraph, np.ndarray]:
    """Renumber vertices by degree.

    Contiguous partitions split hub-heavy prefixes badly; degree ordering
    is the classic preconditioner for partition balance studies.  Returns
    ``(graph, old_ids)``.
    """
    order = np.argsort(-graph.degrees if descending else graph.degrees,
                       kind="stable").astype(np.int64)
    remap = np.empty(graph.num_vertices, dtype=np.int64)
    remap[order] = np.arange(graph.num_vertices, dtype=np.int64)
    u, v, w = graph.edge_array()
    out = from_coo(remap[u], remap[v], w,
                   num_vertices=graph.num_vertices,
                   name=f"{graph.name}-bydeg")
    return out, order
