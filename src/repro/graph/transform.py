"""Graph transforms: induced subgraphs, component extraction, pruning.

Real pipelines rarely match a raw graph: SuiteSparse inputs carry
isolated vertices, multiple components and degree-0 padding.  These
helpers mirror the preprocessing the paper's tooling performs before
matching.
"""

from __future__ import annotations

import numpy as np

from repro.graph.builders import from_coo
from repro.graph.csr import CSRGraph
from repro.graph.stats import connected_components

__all__ = [
    "induced_subgraph",
    "edge_subgraph",
    "largest_component",
    "drop_light_edges",
    "relabel_by_degree",
]


def edge_subgraph(
    graph: CSRGraph, edge_mask: np.ndarray, name: str | None = None
) -> tuple[CSRGraph, np.ndarray]:
    """Subgraph keeping exactly the masked undirected edges.

    ``edge_mask`` is boolean over the graph's undirected edge list in
    :meth:`~repro.graph.csr.CSRGraph.edge_array` order (length
    ``num_edges``).  The vertex set is preserved — ids stay global, so
    matchings computed on the subgraph are directly comparable (and
    mergeable) across subgraphs of the same parent.  This is the one
    extraction path shared by coreset shard staging
    (:mod:`repro.matching.coreset`), dynamic-matcher snapshots and
    weight-threshold pruning.

    Returns ``(sub, eids)`` where ``eids[k]`` is the position *in the
    parent's* ``edge_array`` order of the subgraph's ``k``-th edge (also
    ``edge_array`` order) — the original-eid mapping that lets callers
    carry per-edge metadata across the extraction.
    """
    mask = np.asarray(edge_mask)
    if mask.dtype != np.bool_:
        raise ValueError("edge_mask must be a boolean array")
    u, v, w = graph.edge_array()
    if len(mask) != len(u):
        raise ValueError(
            f"edge_mask has {len(mask)} entries for a graph with "
            f"{len(u)} undirected edges"
        )
    n = graph.num_vertices
    sub_name = name if name is not None else f"{graph.name}-edgesub"
    eids = np.nonzero(mask)[0]
    lo, hi, ww = u[eids], v[eids], w[eids]
    # Parent edges are simple and already canonical (u < v), so the CSR
    # can be bucketed directly — no dedup pass, unlike from_coo.
    order = np.lexsort((hi, lo))
    lo, hi, ww, eids = lo[order], hi[order], ww[order], eids[order]
    src = np.concatenate([lo, hi])
    dst = np.concatenate([hi, lo])
    sw = np.concatenate([ww, ww])
    adj = np.lexsort((dst, src))
    indptr = np.zeros(n + 1, dtype=np.int64)
    np.add.at(indptr, src + 1, 1)
    np.cumsum(indptr, out=indptr)
    sub = CSRGraph(indptr, dst[adj], sw[adj], sub_name)
    return sub, eids


def induced_subgraph(
    graph: CSRGraph, vertices: np.ndarray
) -> tuple[CSRGraph, np.ndarray]:
    """Subgraph induced by ``vertices`` (relabelled contiguously).

    Returns ``(subgraph, old_ids)`` where ``old_ids[new] = old``.
    """
    vertices = np.unique(np.asarray(vertices, dtype=np.int64))
    if len(vertices) and (
        vertices[0] < 0 or vertices[-1] >= graph.num_vertices
    ):
        raise ValueError("vertex id out of range")
    remap = np.full(graph.num_vertices, -1, dtype=np.int64)
    remap[vertices] = np.arange(len(vertices), dtype=np.int64)
    u, v, w = graph.edge_array()
    keep = (remap[u] >= 0) & (remap[v] >= 0)
    sub = from_coo(remap[u[keep]], remap[v[keep]], w[keep],
                   num_vertices=len(vertices),
                   name=f"{graph.name}-induced")
    return sub, vertices


def largest_component(graph: CSRGraph) -> tuple[CSRGraph, np.ndarray]:
    """The largest connected component as a relabelled subgraph."""
    labels = connected_components(graph)
    if len(labels) == 0:
        return graph, np.empty(0, dtype=np.int64)
    uniq, counts = np.unique(labels, return_counts=True)
    big = uniq[int(np.argmax(counts))]
    return induced_subgraph(graph, np.nonzero(labels == big)[0])


def drop_light_edges(graph: CSRGraph, threshold: float) -> CSRGraph:
    """Remove edges with weight below ``threshold``.

    A standard sparsification step before matching-based coarsening
    (only strong couplings should aggregate).
    """
    _, _, w = graph.edge_array()
    sub, _ = edge_subgraph(graph, w >= threshold,
                           name=f"{graph.name}-pruned")
    return sub


def relabel_by_degree(graph: CSRGraph,
                      descending: bool = True) -> tuple[CSRGraph, np.ndarray]:
    """Renumber vertices by degree.

    Contiguous partitions split hub-heavy prefixes badly; degree ordering
    is the classic preconditioner for partition balance studies.  Returns
    ``(graph, old_ids)``.
    """
    order = np.argsort(-graph.degrees if descending else graph.degrees,
                       kind="stable").astype(np.int64)
    remap = np.empty(graph.num_vertices, dtype=np.int64)
    remap[order] = np.arange(graph.num_vertices, dtype=np.int64)
    u, v, w = graph.edge_array()
    out = from_coo(remap[u], remap[v], w,
                   num_vertices=graph.num_vertices,
                   name=f"{graph.name}-bydeg")
    return out, order
