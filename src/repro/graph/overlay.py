"""Base + overlay view of an edge-mutable graph.

The streaming plane (:mod:`repro.streaming`) and the greedy
:class:`~repro.matching.dynamic.DynamicMatcher` both need the same
thing: a graph that starts from an immutable :class:`CSRGraph` and
absorbs edge inserts/deletes/reweights in O(1) each, while staying able
to (a) hand back an exact CSR snapshot vectorised — never a per-edge
Python loop — and (b) reconstruct any *single* vertex's current
adjacency in O(deg) so an incremental matcher can rebuild just the rows
a batch touched.

State is three small structures over the untouched base CSR:

* a liveness mask over the base's undirected edge list (deletes and
  reweights of base edges flip one bit);
* an ``extra`` dict of overlay edges — inserted edges plus the current
  weight of re-weighted base edges (an overlay key is never live in the
  base, so snapshots are a concatenation, not a merge);
* per-vertex ``row edits`` (neighbour -> weight-or-deleted) recording
  how a vertex's adjacency differs from its base CSR row, so
  :meth:`row_arrays` pays O(deg(v)) for exactly the vertices that
  changed and O(1) (a base slice view) for everyone else.

The vertex set is fixed at construction: canonical edge ids
(``lo * n + hi``) must mean the same thing in every snapshot for the
locally dominant tie-break to be stable across a stream of updates.
"""

from __future__ import annotations

import numpy as np

from repro.graph.builders import from_coo
from repro.graph.csr import CSRGraph

__all__ = ["OverlayGraph"]


class OverlayGraph:
    """An edge-mutable graph over an immutable CSR base."""

    def __init__(self, base: CSRGraph, name: str | None = None):
        self._base = base
        self._n = base.num_vertices
        self.name = name if name is not None else f"{base.name}+overlay"
        bu, bv, bw = base.edge_array()
        self._base_uvw = (bu, bv, bw)
        self._base_live = np.ones(len(bu), dtype=bool)
        self._base_index = {
            (int(a), int(b)): k
            for k, (a, b) in enumerate(zip(bu.tolist(), bv.tolist()))
        }
        self._extra: dict[tuple[int, int], float] = {}
        self._row_edits: dict[int, dict[int, float | None]] = {}

    # -------------------------------------------------------------- #
    # read surface
    # -------------------------------------------------------------- #
    @property
    def num_vertices(self) -> int:
        return self._n

    @property
    def num_edges(self) -> int:
        return int(self._base_live.sum()) + len(self._extra)

    def _key(self, u: int, v: int) -> tuple[int, int]:
        if u == v:
            raise ValueError("self-loops are not allowed")
        if not (0 <= u < self._n and 0 <= v < self._n):
            raise ValueError(
                f"vertex out of range for fixed vertex set of {self._n}")
        return (u, v) if u < v else (v, u)

    def has_edge(self, u: int, v: int) -> bool:
        key = self._key(u, v)
        if key in self._extra:
            return True
        k = self._base_index.get(key)
        return k is not None and bool(self._base_live[k])

    def edge_weight(self, u: int, v: int) -> float:
        key = self._key(u, v)
        w = self._extra.get(key)
        if w is not None:
            return w
        k = self._base_index.get(key)
        if k is None or not self._base_live[k]:
            raise KeyError(f"edge ({u}, {v}) not present")
        return float(self._base_uvw[2][k])

    def edges(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Current undirected edge list ``(u, v, w)``, ``u < v``,
        sorted lexicographically by ``(u, v)``."""
        bu, bv, bw = self._base_uvw
        live = self._base_live
        if self._extra:
            keys = np.array(sorted(self._extra), dtype=np.int64)
            eu, ev = keys[:, 0], keys[:, 1]
            ew = np.array([self._extra[(int(a), int(b))] for a, b in keys],
                          dtype=np.float64)
        else:
            eu = ev = np.empty(0, dtype=np.int64)
            ew = np.empty(0, dtype=np.float64)
        u = np.concatenate([bu[live], eu])
        v = np.concatenate([bv[live], ev])
        w = np.concatenate([bw[live], ew])
        order = np.lexsort((v, u))
        return u[order], v[order], w[order]

    def row_arrays(self, v: int) -> tuple[np.ndarray, np.ndarray]:
        """``(neighbours, weights)`` of ``v``'s *current* adjacency.

        Vertices without pending edits return base CSR slice views
        (zero copy); edited vertices pay O(deg(v)) to apply their edit
        dict to the base row.
        """
        base = self._base
        s, e = int(base.indptr[v]), int(base.indptr[v + 1])
        nbrs = base.indices[s:e]
        ws = base.weights[s:e]
        edits = self._row_edits.get(v)
        if not edits:
            return nbrs, ws
        edited = np.fromiter(edits.keys(), dtype=np.int64,
                             count=len(edits))
        keep = ~np.isin(nbrs, edited)
        add = [(n, w) for n, w in edits.items() if w is not None]
        add_n = np.array([n for n, _ in add], dtype=np.int64)
        add_w = np.array([w for _, w in add], dtype=np.float64)
        return (np.concatenate([nbrs[keep], add_n]),
                np.concatenate([ws[keep], add_w]))

    def to_csr(self, name: str | None = None) -> CSRGraph:
        """Exact CSR snapshot (vertex set preserved)."""
        u, v, w = self.edges()
        return from_coo(u, v, w, num_vertices=self._n,
                        name=name or self.name)

    # -------------------------------------------------------------- #
    # mutation
    # -------------------------------------------------------------- #
    def _edit(self, u: int, v: int, w: float | None) -> None:
        self._row_edits.setdefault(u, {})[v] = w
        self._row_edits.setdefault(v, {})[u] = w

    def insert(self, u: int, v: int, w: float) -> None:
        """Insert a *new* edge; a present edge is a usage error (use
        :meth:`reweight`)."""
        key = self._key(u, v)
        if w <= 0:
            raise ValueError("weights must be positive")
        if self.has_edge(u, v):
            raise ValueError(f"edge ({u}, {v}) already present; "
                             "use reweight")
        self._extra[key] = w
        self._edit(u, v, w)

    def reweight(self, u: int, v: int, w: float) -> None:
        """Change the weight of a present edge."""
        key = self._key(u, v)
        if w <= 0:
            raise ValueError("weights must be positive")
        if key not in self._extra:
            k = self._base_index.get(key)
            if k is None or not self._base_live[k]:
                raise KeyError(f"edge ({u}, {v}) not present")
            self._base_live[k] = False
        self._extra[key] = w
        self._edit(u, v, w)

    def delete(self, u: int, v: int) -> None:
        """Delete a present edge."""
        key = self._key(u, v)
        if key in self._extra:
            del self._extra[key]
        else:
            k = self._base_index.get(key)
            if k is None or not self._base_live[k]:
                raise KeyError(f"edge ({u}, {v}) not present")
            self._base_live[k] = False
        self._edit(u, v, None)
