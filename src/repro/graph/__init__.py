"""Graph substrate: CSR storage, builders, generators, and I/O.

The paper stores graphs in Compressed Sparse Row (CSR) format with 64-bit
edge indices and separate vertex / edge / value arrays (§III-A).  This
subpackage provides that representation (:class:`~repro.graph.csr.CSRGraph`),
constructors from common formats, Matrix Market I/O, and synthetic generators
standing in for the paper's fourteen SuiteSparse / LAW datasets.
"""

from repro.graph.csr import CSRGraph
from repro.graph.builders import (
    from_edges,
    from_coo,
    from_scipy_sparse,
    from_networkx,
    to_networkx,
)
from repro.graph.io import read_matrix_market, write_matrix_market
from repro.graph.stats import (
    GraphStats,
    graph_stats,
    connected_components,
    degree_histogram,
)
from repro.graph.coarsen import (
    CoarseLevel,
    coarsen_hierarchy,
    contract_matching,
)
from repro.graph.transform import (
    induced_subgraph,
    largest_component,
    drop_light_edges,
    relabel_by_degree,
)

__all__ = [
    "CSRGraph",
    "from_edges",
    "from_coo",
    "from_scipy_sparse",
    "from_networkx",
    "to_networkx",
    "read_matrix_market",
    "write_matrix_market",
    "GraphStats",
    "graph_stats",
    "connected_components",
    "degree_histogram",
    "induced_subgraph",
    "largest_component",
    "drop_light_edges",
    "relabel_by_degree",
    "CoarseLevel",
    "coarsen_hierarchy",
    "contract_matching",
]
