"""Graph structure analytics.

Used by the harness to characterise dataset analogs against the paper's
Table I properties (degree skew, component structure, weight profile) and
by users to sanity-check their own inputs before matching.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.graph.csr import CSRGraph

__all__ = [
    "GraphStats",
    "graph_stats",
    "connected_components",
    "degree_histogram",
]


@dataclass(frozen=True)
class GraphStats:
    """Summary statistics of a weighted graph."""

    num_vertices: int
    num_edges: int
    max_degree: int
    avg_degree: float
    degree_skew: float  #: d_max / d_avg — warp-imbalance proxy
    isolated_vertices: int
    num_components: int
    largest_component: int
    min_weight: float
    max_weight: float
    total_weight: float

    def render(self) -> str:
        """Multi-line human-readable summary."""
        return "\n".join([
            f"|V| = {self.num_vertices}, |E| = {self.num_edges}",
            f"degrees: max {self.max_degree}, avg {self.avg_degree:.2f}, "
            f"skew {self.degree_skew:.1f}",
            f"components: {self.num_components} "
            f"(largest {self.largest_component}, "
            f"{self.isolated_vertices} isolated vertices)",
            f"weights: [{self.min_weight:.4g}, {self.max_weight:.4g}], "
            f"total {self.total_weight:.4g}",
        ])


def graph_stats(graph: CSRGraph) -> GraphStats:
    """Compute a :class:`GraphStats` summary."""
    degrees = graph.degrees
    labels = connected_components(graph)
    if len(labels):
        _, sizes = np.unique(labels, return_counts=True)
        ncomp = len(sizes)
        largest = int(sizes.max())
    else:
        ncomp, largest = 0, 0
    w = graph.weights
    return GraphStats(
        num_vertices=graph.num_vertices,
        num_edges=graph.num_edges,
        max_degree=graph.max_degree,
        avg_degree=graph.avg_degree,
        degree_skew=(graph.max_degree / graph.avg_degree)
        if graph.avg_degree else 0.0,
        isolated_vertices=int(np.count_nonzero(degrees == 0)),
        num_components=ncomp,
        largest_component=largest,
        min_weight=float(w.min()) if len(w) else 0.0,
        max_weight=float(w.max()) if len(w) else 0.0,
        total_weight=graph.total_weight,
    )


def connected_components(graph: CSRGraph) -> np.ndarray:
    """Component label per vertex (labels are component-minimum ids).

    Union-find with path halving, processing each undirected edge once —
    near-linear and allocation-light, suitable for the multi-million-edge
    analogs.
    """
    n = graph.num_vertices
    parent = np.arange(n, dtype=np.int64)

    def find(x: int) -> int:
        while parent[x] != x:
            parent[x] = parent[parent[x]]  # path halving
            x = int(parent[x])
        return x

    u, v, _ = graph.edge_array()
    for a, b in zip(u.tolist(), v.tolist()):
        ra, rb = find(a), find(b)
        if ra != rb:
            if ra < rb:
                parent[rb] = ra
            else:
                parent[ra] = rb

    # Flatten to final roots.
    labels = np.empty(n, dtype=np.int64)
    for x in range(n):
        labels[x] = find(x)
    return labels


def degree_histogram(graph: CSRGraph,
                     log_bins: bool = True) -> tuple[np.ndarray, np.ndarray]:
    """(bin_edges, counts) of the degree distribution.

    ``log_bins`` uses powers of two — the natural view for the heavy-
    tailed inputs (GAP-kron, web crawls) the paper stresses.
    """
    degrees = graph.degrees
    if len(degrees) == 0:
        return np.array([0]), np.array([], dtype=np.int64)
    dmax = int(degrees.max())
    if log_bins:
        top = max(1, int(np.ceil(np.log2(dmax + 1))))
        edges = np.concatenate([[0], 2 ** np.arange(top + 1)])
    else:
        edges = np.arange(dmax + 2)
    counts, _ = np.histogram(degrees, bins=edges)
    return edges, counts.astype(np.int64)
