"""Matching-based graph coarsening — the paper's headline application.

Weighted matching's flagship consumer is multilevel graph processing:
AMG preconditioners (the paper's ref. [11]) and multilevel partitioners
contract heavy matched pairs to build each coarser level.  This module
provides the contraction (Galerkin-style weight accumulation) and a
driver that builds a whole hierarchy with any matching algorithm as the
aggregation engine.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.graph.builders import from_coo
from repro.graph.csr import CSRGraph
from repro.matching.ld_seq import ld_seq
from repro.matching.types import UNMATCHED, MatchResult

__all__ = ["contract_matching", "coarsen_hierarchy", "CoarseLevel"]


def contract_matching(
    graph: CSRGraph, mate: np.ndarray
) -> tuple[CSRGraph, np.ndarray]:
    """Contract matched pairs into coarse vertices.

    Unmatched vertices survive as singletons.  Parallel coarse edges are
    merged by summing weights (the Galerkin aggregation rule);
    intra-aggregate edges vanish.  Returns ``(coarse_graph, coarse_of)``
    with ``coarse_of[fine_vertex] = coarse_vertex``.
    """
    n = graph.num_vertices
    if len(mate) != n:
        raise ValueError("mate array length mismatch")
    coarse = np.full(n, -1, dtype=np.int64)
    next_id = 0
    for v in range(n):
        if coarse[v] != -1:
            continue
        coarse[v] = next_id
        m = int(mate[v])
        if m != UNMATCHED:
            coarse[m] = next_id
        next_id += 1

    u, v, w = graph.edge_array()
    cu, cv = coarse[u], coarse[v]
    keep = cu != cv
    if not keep.any():
        return CSRGraph.empty(next_id, f"{graph.name}-coarse"), coarse

    lo = np.minimum(cu[keep], cv[keep])
    hi = np.maximum(cu[keep], cv[keep])
    ww = w[keep]
    key = lo * np.int64(next_id) + hi
    order = np.argsort(key, kind="stable")
    key, lo, hi, ww = key[order], lo[order], hi[order], ww[order]
    first = np.ones(len(key), dtype=bool)
    first[1:] = key[1:] != key[:-1]
    group = np.cumsum(first) - 1
    sums = np.zeros(int(group[-1]) + 1)
    np.add.at(sums, group, ww)
    out = from_coo(lo[first], hi[first], sums, num_vertices=next_id,
                   name=f"{graph.name}-coarse")
    return out, coarse


@dataclass
class CoarseLevel:
    """One level of a coarsening hierarchy."""

    graph: CSRGraph
    matching: MatchResult | None  #: None for the coarsest level
    coarse_of: np.ndarray | None  #: fine→coarse map to the next level


def coarsen_hierarchy(
    graph: CSRGraph,
    matcher: Callable[[CSRGraph], MatchResult] | None = None,
    min_vertices: int = 64,
    max_levels: int = 20,
    min_shrink: float = 0.05,
) -> list[CoarseLevel]:
    """Build a multilevel hierarchy by repeated match-and-contract.

    Parameters
    ----------
    matcher:
        Aggregation engine (default :func:`ld_seq`); any function
        returning a :class:`MatchResult` works — the AMG example uses
        :func:`ld_gpu`.
    min_vertices / max_levels:
        Stop when the level is small enough or deep enough.
    min_shrink:
        Stop when a level shrinks by less than this fraction (matching
        starved — e.g. a star graph contracts by one vertex per level).

    Returns the levels from finest to coarsest; every level but the last
    carries its matching and fine→coarse map.
    """
    if matcher is None:
        def matcher(g):
            return ld_seq(g, collect_stats=False)
    levels: list[CoarseLevel] = []
    g = graph
    for _ in range(max_levels):
        if g.num_vertices <= min_vertices or g.num_edges == 0:
            break
        m = matcher(g)
        coarse, coarse_of = contract_matching(g, m.mate)
        levels.append(CoarseLevel(g, m, coarse_of))
        if coarse.num_vertices > (1.0 - min_shrink) * g.num_vertices:
            g = coarse
            break
        g = coarse
    levels.append(CoarseLevel(g, None, None))
    return levels
