"""Vectorised segment (per-CSR-row) primitives.

These are the NumPy analogues of the warp-level reductions in the paper's
pointing kernel (Algorithm 3): each CSR row is a "segment", and the pointing
phase is a masked lexicographic arg-max per segment.  Everything here is
allocation-lean and loop-free; the matching algorithms and the GPU simulator
both build on these.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "row_ids",
    "segment_max",
    "segment_sum",
    "segment_count",
    "segment_argmax",
    "segment_argmax_lex",
    "gather_rows",
]

_NEG_INF = -np.inf


def row_ids(indptr: np.ndarray) -> np.ndarray:
    """Row id for each adjacency slot: ``[0,0,1,2,2,2,...]``."""
    n = len(indptr) - 1
    return np.repeat(np.arange(n, dtype=np.int64), np.diff(indptr))


def _nonempty(indptr: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Rows with at least one element and their start offsets."""
    lengths = np.diff(indptr)
    rows = np.nonzero(lengths > 0)[0]
    return rows, indptr[:-1][rows]


def segment_sum(values: np.ndarray, indptr: np.ndarray) -> np.ndarray:
    """Per-row sum; empty rows get 0."""
    n = len(indptr) - 1
    out = np.zeros(n, dtype=np.result_type(values.dtype, np.float64)
                   if values.dtype.kind == "f" else values.dtype)
    rows, starts = _nonempty(indptr)
    if len(rows):
        out[rows] = np.add.reduceat(values, starts)
    return out


def segment_count(mask: np.ndarray, indptr: np.ndarray) -> np.ndarray:
    """Per-row count of ``True`` entries."""
    return segment_sum(mask.astype(np.int64), indptr)


def segment_max(
    values: np.ndarray, indptr: np.ndarray, fill: float | None = None
) -> np.ndarray:
    """Per-row max; empty rows get ``fill`` (``-inf`` for floats, the most
    negative representable value for integers, unless given)."""
    n = len(indptr) - 1
    if values.dtype.kind == "f":
        out = np.full(n, _NEG_INF if fill is None else fill,
                      dtype=values.dtype)
    else:
        default = np.iinfo(values.dtype).min
        out = np.full(n, default if fill is None else int(fill),
                      dtype=values.dtype)
    rows, starts = _nonempty(indptr)
    if len(rows):
        out[rows] = np.maximum.reduceat(values, starts)
    return out


def segment_argmax(values: np.ndarray, indptr: np.ndarray) -> np.ndarray:
    """Global position of each row's first maximal element; -1 when the row
    is empty or its max is ``-inf`` (fully masked)."""
    n = len(indptr) - 1
    m = len(values)
    out = np.full(n, -1, dtype=np.int64)
    rows, starts = _nonempty(indptr)
    if not len(rows):
        return out
    seg = np.maximum.reduceat(values, starts)
    rmax = np.full(n, _NEG_INF)
    rmax[rows] = seg
    rid = row_ids(indptr)
    at_max = values == rmax[rid]
    pos = np.where(at_max, np.arange(m, dtype=np.int64), np.int64(m))
    first = np.minimum.reduceat(pos, starts)
    valid = seg > _NEG_INF
    out[rows[valid]] = first[valid]
    return out


def segment_argmax_lex(
    primary: np.ndarray,
    secondary: np.ndarray,
    indptr: np.ndarray,
) -> np.ndarray:
    """Per-row arg-max under the lexicographic key ``(primary, secondary)``.

    ``primary`` is a float array where masked-out entries are ``-inf``;
    ``secondary`` is an integer tie-break key (e.g. canonical edge ids).
    Returns the *global position* of the winner per row, or -1 for rows
    whose every entry is masked.

    This implements the deterministic total order that makes the pointing
    phase livelock-free: the globally maximal available edge under
    ``(w, eid)`` is chosen by both of its endpoints in the same round.
    """
    n = len(indptr) - 1
    m = len(primary)
    out = np.full(n, -1, dtype=np.int64)
    rows, starts = _nonempty(indptr)
    if not len(rows):
        return out

    seg_p = np.maximum.reduceat(primary, starts)
    rmax = np.full(n, _NEG_INF)
    rmax[rows] = seg_p
    rid = row_ids(indptr)
    at_pmax = primary == rmax[rid]

    sec_masked = np.where(at_pmax, secondary, np.int64(-1))
    seg_s = np.maximum.reduceat(sec_masked, starts)
    smax = np.full(n, -1, dtype=np.int64)
    smax[rows] = seg_s

    winner = at_pmax & (secondary == smax[rid])
    pos = np.where(winner, np.arange(m, dtype=np.int64), np.int64(m))
    first = np.minimum.reduceat(pos, starts)
    valid = seg_p > _NEG_INF
    out[rows[valid]] = first[valid]
    return out


def gather_rows(
    indptr: np.ndarray, rows: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Positions of all adjacency slots belonging to ``rows``.

    Returns ``(sub_indptr, positions)`` where ``positions`` indexes the
    parent ``indices`` / ``weights`` arrays and ``sub_indptr`` delimits each
    requested row inside ``positions``.  This is the frontier-gather used by
    the optimised pointing kernel: only vertices whose pointer died are
    re-scanned, so per-iteration work matches the warp-edge traffic the
    paper measures in Fig. 8.
    """
    rows = np.asarray(rows, dtype=np.int64)
    k = len(rows)
    if k and rows[-1] - rows[0] == k - 1 and \
            (k == 1 or bool((np.diff(rows) == 1).all())):
        # Contiguous ascending range (e.g. the iteration-0 frontier
        # ``arange(n)``): the positions are one contiguous slice, so the
        # repeat-based O(m) construction below collapses to an arange.
        r0 = int(rows[0])
        sub_indptr = indptr[r0 : r0 + k + 1] - indptr[r0]
        positions = np.arange(int(indptr[r0]), int(indptr[r0 + k]),
                              dtype=np.int64)
        return sub_indptr, positions
    lengths = indptr[rows + 1] - indptr[rows]
    sub_indptr = np.zeros(len(rows) + 1, dtype=np.int64)
    np.cumsum(lengths, out=sub_indptr[1:])
    total = int(sub_indptr[-1])
    if total == 0:
        return sub_indptr, np.empty(0, dtype=np.int64)
    positions = np.arange(total, dtype=np.int64)
    positions += np.repeat(indptr[rows] - sub_indptr[:-1], lengths)
    return sub_indptr, positions
