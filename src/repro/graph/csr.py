"""Compressed Sparse Row graph storage.

This mirrors the representation used by LD-GPU (§III-A of the paper): a
simple undirected graph held as three flat arrays — a vertex offset array
(``indptr``), a 64-bit edge endpoint array (``indices``) and an edge weight
array (``weights``).  Both directions of every undirected edge are stored, so
``indices`` has ``2·|E|`` entries for a graph with ``|E|`` undirected edges.

The class is deliberately a thin, immutable-by-convention container: all
algorithmic work in :mod:`repro.matching` operates directly on the arrays
(views, never copies) so that per-device sub-graphs in the multi-GPU
simulation can alias the host arrays the way ``cudaMemcpyAsync`` sources do.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

import numpy as np

__all__ = ["CSRGraph", "GraphFormatError"]


class GraphFormatError(ValueError):
    """Raised when arrays handed to :class:`CSRGraph` are inconsistent."""


@dataclass
class CSRGraph:
    """An undirected, positively weighted graph in CSR form.

    Parameters
    ----------
    indptr:
        ``int64`` array of length ``n + 1``; row ``v``'s adjacency occupies
        ``indices[indptr[v]:indptr[v + 1]]``.
    indices:
        ``int64`` array of neighbour ids (each undirected edge appears twice).
    weights:
        ``float64`` array aligned with ``indices``; weights are strictly
        positive, matching the paper's ``w : E -> R_{>0}``.
    name:
        Optional label used by the benchmark harness and reports.

    Notes
    -----
    ``validate()`` is *not* run by the constructor: builders that already
    guarantee well-formedness (generators, partition slicing) skip the O(m)
    checks.  Use :meth:`CSRGraph.checked` when ingesting untrusted arrays.
    """

    indptr: np.ndarray
    indices: np.ndarray
    weights: np.ndarray
    name: str = field(default="graph")
    # Derived-array memos (degrees / canonical edge ids are recomputed by
    # nearly every algorithm; suitor alone used to derive the edge ids
    # twice per run).  Both are exposed read-only so a cached array can
    # never be silently corrupted by a caller.
    _degrees: np.ndarray | None = field(
        default=None, init=False, repr=False, compare=False
    )
    _canonical_eids: np.ndarray | None = field(
        default=None, init=False, repr=False, compare=False
    )

    # ------------------------------------------------------------------ #
    # construction helpers
    # ------------------------------------------------------------------ #

    def __post_init__(self) -> None:
        self.indptr = np.ascontiguousarray(self.indptr, dtype=np.int64)
        self.indices = np.ascontiguousarray(self.indices, dtype=np.int64)
        self.weights = np.ascontiguousarray(self.weights, dtype=np.float64)

    @classmethod
    def checked(
        cls,
        indptr: np.ndarray,
        indices: np.ndarray,
        weights: np.ndarray,
        name: str = "graph",
    ) -> "CSRGraph":
        """Build a graph and run the full validity check."""
        g = cls(indptr, indices, weights, name)
        g.validate()
        return g

    @classmethod
    def empty(cls, num_vertices: int = 0, name: str = "empty") -> "CSRGraph":
        """An edgeless graph on ``num_vertices`` vertices."""
        return cls(
            np.zeros(num_vertices + 1, dtype=np.int64),
            np.empty(0, dtype=np.int64),
            np.empty(0, dtype=np.float64),
            name,
        )

    @classmethod
    def from_buffers(
        cls,
        indptr: np.ndarray,
        indices: np.ndarray,
        weights: np.ndarray,
        name: str = "graph",
    ) -> "CSRGraph":
        """Zero-copy graph over externally owned storage.

        Intended for arrays mapped out of a shared-memory segment
        (:mod:`repro.harness.shm`): the inputs are wrapped in *read-only
        views* — no bytes are copied as long as each array is already
        contiguous with the canonical dtype — so mutating the graph
        through this object is impossible and mutating the underlying
        buffer is the caller's contract to avoid.  The memoised
        :attr:`degrees` / :meth:`canonical_edge_ids` derivations work
        unchanged (they allocate fresh arrays; nothing is written back
        into the buffers).  The caller keeps the buffers alive for the
        graph's lifetime; numpy views hold a reference to the exporting
        object, which pins ``SharedMemory`` mappings automatically.
        """
        views = []
        for arr, dtype in (
            (indptr, np.int64), (indices, np.int64), (weights, np.float64),
        ):
            v = np.ascontiguousarray(arr, dtype=dtype)
            if v is arr:  # don't flip writability on the caller's array
                v = v.view()
            v.setflags(write=False)
            views.append(v)
        return cls(*views, name)

    def export_buffers(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Read-only views of ``(indptr, indices, weights)``.

        The publish half of the shared-memory plane: callers copy these
        into a segment (or hand them to :meth:`from_buffers` for an
        in-process alias) without being able to corrupt the source.
        """
        out = []
        for arr in (self.indptr, self.indices, self.weights):
            v = arr.view()
            v.setflags(write=False)
            out.append(v)
        return tuple(out)

    # ------------------------------------------------------------------ #
    # basic properties
    # ------------------------------------------------------------------ #

    @property
    def num_vertices(self) -> int:
        """``|V|``."""
        return len(self.indptr) - 1

    @property
    def num_directed_edges(self) -> int:
        """Number of stored (directed) adjacency entries, ``2·|E|``."""
        return len(self.indices)

    @property
    def num_edges(self) -> int:
        """``|E|`` — undirected edge count."""
        return len(self.indices) // 2

    @property
    def degrees(self) -> np.ndarray:
        """Per-vertex degree array (``int64``; cached, read-only)."""
        if self._degrees is None:
            d = np.diff(self.indptr)
            d.setflags(write=False)
            self._degrees = d
        return self._degrees

    @property
    def max_degree(self) -> int:
        """``d_max`` as reported in the paper's Table I."""
        d = self.degrees
        return int(d.max()) if len(d) else 0

    @property
    def avg_degree(self) -> float:
        """``d_avg`` as reported in the paper's Table I."""
        n = self.num_vertices
        return (self.num_directed_edges / n) if n else 0.0

    @property
    def total_weight(self) -> float:
        """Sum of undirected edge weights (each edge counted once)."""
        return float(self.weights.sum()) / 2.0

    def memory_bytes(self, index_bytes: int = 8, weight_bytes: int = 8) -> int:
        """Bytes needed to hold the CSR arrays at the given widths.

        LD-GPU uses 64-bit indices (``index_bytes=8``) while SR-GPU uses a
        32-bit representation (``index_bytes=4``, ``weight_bytes=4``) — the
        reason SR-GPU addresses less memory but also overflows on LARGE
        inputs in the paper's Table I.
        """
        return (
            len(self.indptr) * index_bytes
            + len(self.indices) * index_bytes
            + len(self.weights) * weight_bytes
        )

    # ------------------------------------------------------------------ #
    # access
    # ------------------------------------------------------------------ #

    def neighbors(self, v: int) -> np.ndarray:
        """View of ``v``'s neighbour ids."""
        return self.indices[self.indptr[v] : self.indptr[v + 1]]

    def neighbor_weights(self, v: int) -> np.ndarray:
        """View of the weights aligned with :meth:`neighbors`."""
        return self.weights[self.indptr[v] : self.indptr[v + 1]]

    def edge_weight(self, u: int, v: int) -> float:
        """Weight of edge ``{u, v}``; raises ``KeyError`` if absent."""
        nbrs = self.neighbors(u)
        hits = np.nonzero(nbrs == v)[0]
        if len(hits) == 0:
            raise KeyError(f"edge ({u}, {v}) not in graph")
        return float(self.neighbor_weights(u)[hits[0]])

    def has_edge(self, u: int, v: int) -> bool:
        """Whether ``{u, v}`` is present."""
        return bool(np.any(self.neighbors(u) == v))

    def iter_edges(self) -> Iterator[tuple[int, int, float]]:
        """Yield each undirected edge once as ``(u, v, w)`` with ``u < v``."""
        for u in range(self.num_vertices):
            lo, hi = self.indptr[u], self.indptr[u + 1]
            for k in range(lo, hi):
                v = int(self.indices[k])
                if u < v:
                    yield u, v, float(self.weights[k])

    def edge_array(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Vectorised undirected edge list ``(u, v, w)`` with ``u < v``."""
        rows = np.repeat(
            np.arange(self.num_vertices, dtype=np.int64), self.degrees
        )
        keep = rows < self.indices
        return rows[keep], self.indices[keep], self.weights[keep]

    def canonical_edge_ids(self) -> np.ndarray:
        """Per adjacency entry, a total-order id for its undirected edge.

        ``eid({u, v}) = min(u, v) * n + max(u, v)`` — identical from both
        endpoints, so it serves as the deterministic tie-breaking key the
        locally dominant algorithms need to guarantee progress on weight
        ties (DESIGN.md §5).  Exact for ``n^2 < 2^63``.  Cached on first
        access (read-only): the O(m) derivation used to be repeated per
        algorithm call.
        """
        if self._canonical_eids is None:
            n = self.num_vertices
            rows = np.repeat(np.arange(n, dtype=np.int64), self.degrees)
            lo = np.minimum(rows, self.indices)
            hi = np.maximum(rows, self.indices)
            eids = lo * np.int64(n) + hi
            eids.setflags(write=False)
            self._canonical_eids = eids
        return self._canonical_eids

    # ------------------------------------------------------------------ #
    # validation / transforms
    # ------------------------------------------------------------------ #

    def validate(self) -> None:
        """Raise :class:`GraphFormatError` unless the CSR arrays encode a
        simple undirected graph with positive weights."""
        if len(self.indptr) < 1:
            raise GraphFormatError("indptr must have length >= 1")
        if self.indptr[0] != 0:
            raise GraphFormatError("indptr[0] must be 0")
        if np.any(np.diff(self.indptr) < 0):
            raise GraphFormatError("indptr must be non-decreasing")
        if self.indptr[-1] != len(self.indices):
            raise GraphFormatError(
                f"indptr[-1] ({self.indptr[-1]}) != len(indices) "
                f"({len(self.indices)})"
            )
        if len(self.indices) != len(self.weights):
            raise GraphFormatError("indices and weights length mismatch")
        n = self.num_vertices
        if len(self.indices) and (
            self.indices.min() < 0 or self.indices.max() >= n
        ):
            raise GraphFormatError("neighbour id out of range")
        if len(self.weights) and not np.all(self.weights > 0):
            raise GraphFormatError("edge weights must be strictly positive")
        rows = np.repeat(np.arange(n, dtype=np.int64), self.degrees)
        if np.any(rows == self.indices):
            raise GraphFormatError("self-loops are not allowed")
        # Symmetry + simplicity: the multiset of (min, max) pairs must
        # contain every pair an even number of times with matching weights.
        lo = np.minimum(rows, self.indices)
        hi = np.maximum(rows, self.indices)
        order = np.lexsort((hi, lo))
        lo, hi, w = lo[order], hi[order], self.weights[order]
        if len(lo) % 2:
            raise GraphFormatError("odd number of directed entries")
        if not (
            np.array_equal(lo[0::2], lo[1::2])
            and np.array_equal(hi[0::2], hi[1::2])
        ):
            raise GraphFormatError("adjacency is not symmetric")
        plo, phi = lo[0::2], hi[0::2]
        if np.any((plo[1:] == plo[:-1]) & (phi[1:] == phi[:-1])):
            raise GraphFormatError("parallel edges are not allowed")
        if not np.allclose(w[0::2], w[1::2]):
            raise GraphFormatError("edge weights are not symmetric")

    def sort_adjacency(self) -> "CSRGraph":
        """Return a copy with each row's neighbours sorted ascending."""
        indices = self.indices.copy()
        weights = self.weights.copy()
        for v in range(self.num_vertices):
            lo, hi = self.indptr[v], self.indptr[v + 1]
            order = np.argsort(indices[lo:hi], kind="stable")
            indices[lo:hi] = indices[lo:hi][order]
            weights[lo:hi] = weights[lo:hi][order]
        return CSRGraph(self.indptr.copy(), indices, weights, self.name)

    def reweighted(self, weights: np.ndarray) -> "CSRGraph":
        """Same structure with a new aligned weight array."""
        if len(weights) != len(self.indices):
            raise GraphFormatError("weight array length mismatch")
        return CSRGraph(self.indptr, self.indices, weights, self.name)

    def row_slice(self, start: int, stop: int) -> "CSRGraph":
        """Sub-CSR for the contiguous vertex range ``[start, stop)``.

        Neighbour ids stay *global* (they may point outside the range) —
        exactly how a device partition stores cut edges in §III-A.  The
        ``indices`` / ``weights`` arrays are views into the parent.
        """
        base = self.indptr[start]
        indptr = self.indptr[start : stop + 1] - base
        lo, hi = self.indptr[start], self.indptr[stop]
        return CSRGraph(
            indptr,
            self.indices[lo:hi],
            self.weights[lo:hi],
            f"{self.name}[{start}:{stop}]",
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"CSRGraph(name={self.name!r}, |V|={self.num_vertices}, "
            f"|E|={self.num_edges}, d_max={self.max_degree}, "
            f"d_avg={self.avg_degree:.1f})"
        )
