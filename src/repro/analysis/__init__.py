"""Analysis & reporting plane: read the run store, tell the story.

Everything upstream of this package *produces* runs — the engine
executes cells, the store persists them, the bench harness gates them.
This package is the read side: :mod:`~repro.analysis.queries` slices
the store with typed filters and lazy aggregation,
:mod:`~repro.analysis.stats_tests` decides which differences are real
(scipy-optional), :mod:`~repro.analysis.trajectory` tracks the gated
bench metrics across commits, and :mod:`~repro.analysis.report`
renders all of it as a dependency-free static HTML/markdown/JSON
report (``repro report``).
"""

from repro.analysis.queries import (  # noqa: F401
    Aggregate,
    ResultSet,
    RunQuery,
)
from repro.analysis.report import (  # noqa: F401
    build_report_data,
    write_report,
)
from repro.analysis.stats_tests import (  # noqa: F401
    bootstrap_median_ci,
    wilcoxon_signed_rank,
)
from repro.analysis.trajectory import (  # noqa: F401
    flag_regressions,
    suite_trajectories,
)

__all__ = [
    "Aggregate",
    "ResultSet",
    "RunQuery",
    "build_report_data",
    "write_report",
    "bootstrap_median_ci",
    "wilcoxon_signed_rank",
    "flag_regressions",
    "suite_trajectories",
]
