"""Report templates: stdlib ``string.Template`` documents.

Kept as package data (plain ``.tmpl`` files next to this module) so
the HTML skeleton is reviewable as markup rather than as a Python
string literal — the FuzzBench report generator's layout, minus the
Jinja dependency.
"""

from __future__ import annotations

from pathlib import Path
from string import Template

__all__ = ["load"]

_HERE = Path(__file__).parent


def load(name: str) -> Template:
    """The named template (e.g. ``"report.html.tmpl"``)."""
    return Template((_HERE / name).read_text(encoding="utf-8"))
