"""Significance tests and interval estimates for run comparisons.

The paper reports paired algorithm timings across a fixed graph set;
the right test for "is A faster than B?" on that shape is the Wilcoxon
signed-rank test (FuzzBench's choice for paired benchmark comparisons,
and the one its ``stat_tests.py`` wraps).  This module provides it with
a twist required by the reproduction environment: scipy is optional.

When scipy is importable, :func:`wilcoxon_signed_rank` delegates to
``scipy.stats.wilcoxon(zero_method="wilcox", correction=False,
method="asymptotic")``.  When it is not, a pure-python implementation
of *exactly that variant* — drop zero differences, average ranks over
ties, normal approximation with tie correction, no continuity
correction — computes the same statistic and p-value to float
precision, so a report generated on a bare-stdlib box is numerically
identical to one generated on a scipy box.  ``force_fallback=True``
exercises the pure path even when scipy exists (how the agreement test
works).

Interval estimates use a deterministic seeded bootstrap
(:func:`bootstrap_median_ci`) — no numpy required, same CI on every
run.  :func:`rank_table` builds FuzzBench-style average-rank summaries
across subjects (graphs), and :func:`holm_adjust` corrects a family of
p-values for multiple comparisons.
"""

from __future__ import annotations

import math
import random
import statistics
from dataclasses import dataclass
from typing import Any, Iterable, Mapping, Sequence

__all__ = [
    "HAVE_SCIPY",
    "WilcoxonResult",
    "wilcoxon_signed_rank",
    "bootstrap_median_ci",
    "rank_table",
    "holm_adjust",
    "rankdata",
]

try:  # pragma: no cover - depends on environment
    import scipy.stats as _scipy_stats

    HAVE_SCIPY = True
except Exception:  # pragma: no cover - depends on environment
    _scipy_stats = None
    HAVE_SCIPY = False


def rankdata(values: Sequence[float]) -> list[float]:
    """Ascending ranks (1-based), ties sharing their average rank —
    ``scipy.stats.rankdata(method="average")`` in pure python."""
    order = sorted(range(len(values)), key=lambda i: values[i])
    ranks = [0.0] * len(values)
    i = 0
    while i < len(order):
        j = i
        while (j + 1 < len(order)
               and values[order[j + 1]] == values[order[i]]):
            j += 1
        avg = (i + j) / 2 + 1  # average of 1-based positions i..j
        for k in range(i, j + 1):
            ranks[order[k]] = avg
        i = j + 1
    return ranks


@dataclass(frozen=True)
class WilcoxonResult:
    """Outcome of one paired Wilcoxon signed-rank test.

    ``n`` counts the pairs that survived zero-difference removal;
    ``method`` records which implementation produced the numbers
    (``"scipy"`` or ``"fallback"`` — they agree, the field is for the
    provenance appendix).  A degenerate input (no non-zero pairs)
    yields ``statistic=0, p_value=1, n=0`` rather than an error.
    """

    statistic: float
    p_value: float
    n: int
    method: str

    def to_dict(self) -> dict[str, Any]:
        return {"statistic": self.statistic, "p_value": self.p_value,
                "n": self.n, "method": self.method}


def _wilcoxon_fallback(diffs: Sequence[float]) -> tuple[float, float]:
    """The asymptotic two-sided signed-rank test on non-zero diffs."""
    n = len(diffs)
    ranks = rankdata([abs(d) for d in diffs])
    r_plus = sum(r for r, d in zip(ranks, diffs) if d > 0)
    r_minus = sum(r for r, d in zip(ranks, diffs) if d < 0)
    statistic = min(r_plus, r_minus)
    mean = n * (n + 1) / 4.0
    var = n * (n + 1) * (2 * n + 1) / 24.0
    # tie correction: sum(t^3 - t)/48 over tie groups of |d|
    counts: dict[float, int] = {}
    for d in diffs:
        counts[abs(d)] = counts.get(abs(d), 0) + 1
    var -= sum(t ** 3 - t for t in counts.values()) / 48.0
    if var <= 0:
        return statistic, 1.0
    z = (statistic - mean) / math.sqrt(var)
    p = 2.0 * (0.5 * math.erfc(abs(z) / math.sqrt(2.0)))
    return statistic, min(p, 1.0)


def wilcoxon_signed_rank(x: Sequence[float], y: Sequence[float],
                         force_fallback: bool = False
                         ) -> WilcoxonResult:
    """Two-sided paired Wilcoxon signed-rank test of ``x`` vs ``y``.

    Zero differences are dropped (``zero_method="wilcox"``), the normal
    approximation is used without continuity correction, and the
    statistic is ``min(R+, R-)`` — the scipy and fallback paths are the
    same test and agree to float precision.
    """
    if len(x) != len(y):
        raise ValueError(f"paired samples differ in length: "
                         f"{len(x)} vs {len(y)}")
    diffs = [float(a) - float(b) for a, b in zip(x, y) if a != b]
    if not diffs:
        method = "scipy" if (HAVE_SCIPY and not force_fallback) \
            else "fallback"
        return WilcoxonResult(0.0, 1.0, 0, method)
    if HAVE_SCIPY and not force_fallback:
        res = _scipy_stats.wilcoxon(
            [float(a) for a, b in zip(x, y) if a != b],
            [float(b) for a, b in zip(x, y) if a != b],
            zero_method="wilcox", correction=False,
            method="asymptotic")
        return WilcoxonResult(float(res.statistic), float(res.pvalue),
                              len(diffs), "scipy")
    statistic, p = _wilcoxon_fallback(diffs)
    return WilcoxonResult(float(statistic), float(p), len(diffs),
                          "fallback")


def bootstrap_median_ci(values: Sequence[float], n_boot: int = 1999,
                        alpha: float = 0.05, seed: int = 17
                        ) -> tuple[float, float]:
    """Percentile bootstrap CI on the median, deterministic by seed.

    Pure stdlib (``random.Random(seed)``), so the same values produce
    the same interval on every machine — report regeneration is
    reproducible.  Degenerate inputs collapse: fewer than two values
    yield a zero-width interval at the value (or ``(nan, nan)`` for an
    empty input).
    """
    vals = [float(v) for v in values]
    if not vals:
        return (math.nan, math.nan)
    if len(vals) == 1:
        return (vals[0], vals[0])
    rng = random.Random(seed)
    n = len(vals)
    medians = sorted(
        statistics.median(rng.choice(vals) for _ in range(n))
        for _ in range(n_boot)
    )
    lo_i = int(math.floor((alpha / 2) * (n_boot - 1)))
    hi_i = int(math.ceil((1 - alpha / 2) * (n_boot - 1)))
    return (medians[lo_i], medians[hi_i])


def rank_table(scores: Mapping[Any, Mapping[Any, float]],
               lower_is_better: bool = True
               ) -> list[tuple[Any, float, int]]:
    """FuzzBench-style average ranks: per subject, rank the groups;
    then average each group's rank across the subjects it appears in.

    ``scores`` maps subject (e.g. graph) → {group (e.g. algorithm):
    score}.  Returns ``(group, average_rank, n_subjects)`` sorted best
    (lowest average rank) first.  Rank 1 is the best score under the
    chosen direction; ties share average ranks.
    """
    totals: dict[Any, float] = {}
    counts: dict[Any, int] = {}
    for per_group in scores.values():
        groups = list(per_group)
        if not groups:
            continue
        vals = [per_group[g] if lower_is_better else -per_group[g]
                for g in groups]
        for g, r in zip(groups, rankdata(vals)):
            totals[g] = totals.get(g, 0.0) + r
            counts[g] = counts.get(g, 0) + 1
    table = [(g, totals[g] / counts[g], counts[g]) for g in totals]
    table.sort(key=lambda t: (t[1], str(t[0])))
    return table


def holm_adjust(p_values: Iterable[float]) -> list[float]:
    """Holm–Bonferroni step-down adjustment, order-preserving.

    Returns adjusted p-values aligned with the input order; monotone
    and clipped to 1.  Controls the family-wise error rate across the
    pairwise comparisons of a significance table.
    """
    ps = [float(p) for p in p_values]
    m = len(ps)
    order = sorted(range(m), key=lambda i: ps[i])
    adjusted = [0.0] * m
    running = 0.0
    for rank, i in enumerate(order):
        running = max(running, (m - rank) * ps[i])
        adjusted[i] = min(1.0, running)
    return adjusted
