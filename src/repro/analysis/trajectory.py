"""Bench trajectories: metric time-series across commits and runs.

A single ``BENCH_<suite>.json`` answers "is this commit fast?"; this
module answers "when did it get slow?".  It stitches together every
measurement of a bench workload it can find —

* the committed baseline documents (``benchmarks/baseline_<suite>.
  json``), one point per suite stamped with the git describe of the
  commit that produced it, and
* the run store, where :func:`~repro.harness.bench.run_bench` appends
  every (workload, replicate) record under a suite-qualified cell
  label (``"<suite>:<name>"``) whenever it runs with ``store=``,

— into one ordered series per (suite, workload): replicates collapse
to medians, points group by the git sha in the record's provenance
manifest, and ordering follows real time (``started_at``, a schema-v4
field; rows predating it fall back to the store row's ``created_at``;
the committed baseline sorts first as the series anchor).

:func:`flag_regressions` then applies the bench gate's rule along the
series: the latest point is compared against its predecessor on the
deterministic gated metrics (``median_sim_time_s``,
``host_entries_scanned``) with the same relative tolerance the CI gate
uses, so the report's trend lines carry the same verdict CI would.
"""

from __future__ import annotations

import json
import statistics
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.store.db import RunStore

__all__ = [
    "GATED_METRICS",
    "TrajectoryPoint",
    "RegressionFlag",
    "load_baselines",
    "store_trajectories",
    "suite_trajectories",
    "flag_regressions",
]

#: The metrics the bench gate holds against tolerance — deterministic
#: by construction (modeled seconds; counted host work), so a drift is
#: a code change, not machine noise.  Trajectories track these plus the
#: informational wall-clock median.
GATED_METRICS = ("median_sim_time_s", "host_entries_scanned")

_METRICS = GATED_METRICS + ("median_wall_time_s",)

#: Default location of the committed baseline documents.
DEFAULT_BENCH_DIR = "benchmarks"


@dataclass(frozen=True)
class TrajectoryPoint:
    """One measurement of one workload: replicate medians at a commit.

    ``source`` is ``"baseline"`` for a committed
    ``benchmarks/baseline_*.json`` point and ``"store"`` for a point
    aggregated from run-store records; ``n`` counts the replicates that
    produced the medians.  ``started_at`` is ``None`` on baseline
    points (they anchor the series and sort first).
    """

    git: str | None
    source: str
    n: int
    started_at: float | None = None
    metrics: dict[str, float | None] = field(default_factory=dict)

    def to_dict(self) -> dict[str, Any]:
        return {"git": self.git, "source": self.source, "n": self.n,
                "started_at": self.started_at,
                "metrics": dict(self.metrics)}


@dataclass(frozen=True)
class RegressionFlag:
    """The gate's verdict on the latest point of one series.

    ``flagged`` is True when ``latest > reference * (1 + tolerance)``
    — the exact rule :func:`repro.harness.bench.compare_reports`
    applies, evaluated along the trajectory instead of against a
    single file.  ``ratio`` is ``latest / reference`` (1.0 = flat).
    """

    suite: str
    entry: str
    metric: str
    latest: float
    reference: float
    reference_source: str
    ratio: float
    flagged: bool

    def to_dict(self) -> dict[str, Any]:
        return {"suite": self.suite, "entry": self.entry,
                "metric": self.metric, "latest": self.latest,
                "reference": self.reference,
                "reference_source": self.reference_source,
                "ratio": self.ratio, "flagged": self.flagged}


def _median(values: list[Any]) -> float | None:
    vals = [float(v) for v in values if v is not None]
    return statistics.median(vals) if vals else None


def load_baselines(bench_dir: "Path | str | None" = None
                   ) -> dict[str, dict[str, Any]]:
    """The committed ``baseline_<suite>.json`` documents by suite.

    Unparseable files are skipped (a half-written baseline must not
    take the whole report down); a missing directory is simply empty.
    """
    root = Path(bench_dir if bench_dir is not None else DEFAULT_BENCH_DIR)
    out: dict[str, dict[str, Any]] = {}
    if not root.is_dir():
        return out
    for path in sorted(root.glob("baseline_*.json")):
        suite = path.stem[len("baseline_"):]
        try:
            with open(path) as fh:
                doc = json.load(fh)
        except (OSError, json.JSONDecodeError):
            continue
        if isinstance(doc, dict) and doc.get("workloads"):
            out[suite] = doc
    return out


def _baseline_points(doc: dict[str, Any]
                     ) -> dict[str, TrajectoryPoint]:
    git = (doc.get("provenance") or {}).get("git")
    repeats = int(doc.get("repeats") or 1)
    points = {}
    for w in doc["workloads"]:
        if w.get("status") != "ok":
            continue
        points[w["name"]] = TrajectoryPoint(
            git=git, source="baseline", n=repeats,
            metrics={m: w.get(m) for m in _METRICS})
    return points


def store_trajectories(store: "RunStore",
                       ) -> dict[str, dict[str, list[TrajectoryPoint]]]:
    """Per-(suite, workload) points recovered from the run store.

    Scans the ``done`` rows whose cell label is suite-qualified
    (``"<suite>:<name>"`` — only bench runs write those), groups each
    workload's replicates by the git sha in the record's provenance,
    and emits one median point per (workload, sha), ordered by real
    start time.
    """
    groups: dict[tuple[str, str, str | None], list] = {}
    for row in store.select(status="done"):
        label = row.config.get("label") or ""
        suite, sep, entry = label.partition(":")
        if not sep or not suite or not entry:
            continue
        rec = row.record()
        if rec is None or not rec.ok:
            continue
        git = (rec.provenance or {}).get("git")
        key = (suite, entry, git)
        groups.setdefault(key, []).append(
            (rec, rec.started_at if rec.started_at is not None
             else row.created_at))

    out: dict[str, dict[str, list[TrajectoryPoint]]] = {}
    for (suite, entry, git), members in groups.items():
        recs = [m[0] for m in members]
        point = TrajectoryPoint(
            git=git, source="store", n=len(recs),
            started_at=min(m[1] for m in members),
            metrics={
                "median_sim_time_s": _median(
                    [r.sim_time for r in recs]),
                "host_entries_scanned": _median(
                    [(r.extra or {}).get("host_entries_scanned")
                     for r in recs]),
                "median_wall_time_s": _median(
                    [r.wall_time_s for r in recs]),
            })
        out.setdefault(suite, {}).setdefault(entry, []).append(point)
    for entries in out.values():
        for points in entries.values():
            points.sort(key=lambda p: (p.started_at or 0.0,
                                       p.git or ""))
    return out


def suite_trajectories(store: "RunStore | None" = None,
                       bench_dir: "Path | str | None" = None,
                       suites: "list[str] | None" = None,
                       ) -> dict[str, dict[str, list[TrajectoryPoint]]]:
    """The merged series: committed baseline anchor + store history.

    ``suites`` restricts the result (default: everything found in
    either source).  Per workload, the baseline point (when one
    exists) leads and store points follow in start-time order.
    """
    merged: dict[str, dict[str, list[TrajectoryPoint]]] = {}
    for suite, doc in load_baselines(bench_dir).items():
        for entry, point in _baseline_points(doc).items():
            merged.setdefault(suite, {})[entry] = [point]
    if store is not None:
        for suite, entries in store_trajectories(store).items():
            for entry, points in entries.items():
                merged.setdefault(suite, {}).setdefault(
                    entry, []).extend(points)
    if suites is not None:
        wanted = set(suites)
        merged = {s: e for s, e in merged.items() if s in wanted}
    return merged


def flag_regressions(
    trajectories: dict[str, dict[str, list[TrajectoryPoint]]],
    tolerance: float = 0.05,
) -> list[RegressionFlag]:
    """The bench gate's rule applied to the tail of every series.

    For every (suite, workload) series with at least two points, each
    gated metric's latest value is compared against the previous
    point's; the comparison is emitted whether or not it trips, with
    ``flagged`` saying whether it did — the report renders flat series
    green and tripped ones with the critical marker.  Metrics missing
    on either side (e.g. ``host_entries_scanned`` under
    ``collect_stats=False``) are skipped, matching the file gate.
    """
    flags: list[RegressionFlag] = []
    for suite in sorted(trajectories):
        for entry in sorted(trajectories[suite]):
            points = trajectories[suite][entry]
            if len(points) < 2:
                continue
            latest, reference = points[-1], points[-2]
            for metric in GATED_METRICS:
                cur = latest.metrics.get(metric)
                ref = reference.metrics.get(metric)
                if cur is None or ref is None or ref <= 0:
                    continue
                ratio = cur / ref
                flags.append(RegressionFlag(
                    suite=suite, entry=entry, metric=metric,
                    latest=cur, reference=ref,
                    reference_source=reference.source,
                    ratio=ratio,
                    flagged=cur > ref * (1.0 + tolerance)))
    return flags
