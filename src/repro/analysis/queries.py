"""Typed queries over the run store — the analysis read path.

The store (:mod:`repro.store`) holds every :class:`~repro.engine.record.
RunRecord` ever produced; this module is how anything *reads* it
analytically.  A :class:`RunQuery` names the slice (algorithm, dataset,
platform, devices, batches, pointing engine, status, git sha, label
prefix, time window); a :class:`ResultSet` binds a query to a store and
computes everything else lazily, FuzzBench-style — rows are fetched
once, records parsed once, aggregates memoised per metric — so a
template that only renders two sections only pays for two sections.

Filter split: the indexed columns (``algorithm``/``dataset``/
``status``/``created_at``) narrow in SQLite via
:meth:`~repro.store.db.RunStore.select`; everything that lives inside
the normalised cell config or the stored record (platform name,
devices, batches, pointing engine, label, git sha) refines in Python.

Replicates: bench repeats (and any deliberately re-measured cell)
differ only in their ``replicate`` index and derived seed.
:meth:`ResultSet.replicate_key` strips exactly those fields, so
"aggregate replicates" means "group by what the cell computes".
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass, fields as _dc_fields
from functools import cached_property
from typing import Any, Callable, Iterable, Iterator, TYPE_CHECKING

from repro.store.fingerprint import config_digest

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.engine.record import RunRecord
    from repro.store.db import RunStore, StoredRun

__all__ = [
    "METRICS",
    "RunQuery",
    "ResultSet",
    "Aggregate",
    "metric_value",
    "record_key",
]

#: Metrics the analysis plane knows how to read off a record.  Maps the
#: public metric name to an accessor; ``None``-valued metrics are
#: skipped by aggregation (e.g. ``sim_time`` of a non-simulator run).
METRICS: dict[str, Callable[["RunRecord"], float | None]] = {
    "sim_time": lambda r: r.sim_time,
    "wall_time_s": lambda r: r.wall_time_s,
    "duration_s": lambda r: r.duration_s,
    "weight": lambda r: r.weight,
    "matched_edges": lambda r: float(r.matched_edges),
    "iterations": lambda r: float(r.iterations),
    "host_entries_scanned":
        lambda r: (r.extra or {}).get("host_entries_scanned"),
}

#: Grouping keys resolvable on a record (``record_key``).
_KEYS: dict[str, Callable[["RunRecord"], Any]] = {
    "algorithm": lambda r: r.algorithm,
    "graph": lambda r: r.graph,
    "dataset": lambda r: r.dataset or r.graph,
    "platform": lambda r: r.platform,
    "num_devices": lambda r: r.num_devices,
    "num_batches": lambda r: r.num_batches,
    "pointing_engine": lambda r: (r.extra or {}).get("pointing_engine"),
    "seed": lambda r: r.seed,
    "status": lambda r: r.status,
    "git": lambda r: (r.provenance or {}).get("git"),
    "label": lambda r: (r.extra or {}).get("label"),
}


def metric_value(record: "RunRecord", metric: str) -> float | None:
    """``metric`` read off ``record`` (see :data:`METRICS`)."""
    try:
        fn = METRICS[metric]
    except KeyError:
        raise KeyError(f"unknown metric {metric!r}; "
                       f"have {sorted(METRICS)}") from None
    v = fn(record)
    return float(v) if v is not None else None


def record_key(record: "RunRecord", key: str) -> Any:
    """Grouping key ``key`` read off ``record`` (see ``RunQuery``)."""
    try:
        fn = _KEYS[key]
    except KeyError:
        raise KeyError(f"unknown group key {key!r}; "
                       f"have {sorted(_KEYS)}") from None
    return fn(record)


def _as_tuple(v: Any) -> tuple | None:
    if v is None:
        return None
    if isinstance(v, (str, int)):
        return (v,)
    return tuple(v)


@dataclass(frozen=True)
class RunQuery:
    """One declarative slice of the run store.

    Every field is optional; ``None`` means "any".  Multi-valued
    filters (``algorithm``, ``dataset``, ``status``, ``num_devices``)
    accept a single value or an iterable.  ``git`` matches a prefix of
    the record's provenance ``git describe`` (so a short sha works);
    ``label_prefix`` matches the start of the cell label (bench cells
    carry ``"<suite>:<entry>"`` labels); ``since``/``until`` bound the
    row's ``created_at`` in epoch seconds.
    """

    algorithm: tuple[str, ...] | None = None
    dataset: tuple[str, ...] | None = None
    status: tuple[str, ...] | None = None
    platform: str | None = None
    num_devices: tuple[int, ...] | None = None
    num_batches: int | None = None
    pointing_engine: str | None = None
    git: str | None = None
    label_prefix: str | None = None
    since: float | None = None
    until: float | None = None

    def __post_init__(self) -> None:
        for name in ("algorithm", "dataset", "status", "num_devices"):
            object.__setattr__(self, name,
                               _as_tuple(getattr(self, name)))

    def describe(self) -> str:
        """Human-readable one-liner of the active filters."""
        bits = []
        for f in _dc_fields(self):
            v = getattr(self, f.name)
            if v is not None:
                if isinstance(v, tuple):
                    v = ",".join(str(x) for x in v)
                bits.append(f"{f.name}={v}")
        return " ".join(bits) or "(all runs)"

    # ------------------------------------------------------------ #
    # the Python-side refinement (post-SQL)
    # ------------------------------------------------------------ #

    def matches_row(self, row: "StoredRun") -> bool:
        """Config-level refinement of one SQL-selected row."""
        cfg = row.config
        if self.platform is not None:
            name = (cfg.get("platform") or {}).get("name")
            if name != self.platform:
                return False
        if self.num_devices is not None \
                and cfg.get("num_devices") not in self.num_devices:
            return False
        if self.num_batches is not None \
                and cfg.get("num_batches") != self.num_batches:
            return False
        if self.pointing_engine is not None \
                and cfg.get("pointing_engine") != self.pointing_engine:
            return False
        if self.label_prefix is not None:
            label = cfg.get("label") or ""
            if not label.startswith(self.label_prefix):
                return False
        return True

    def matches_record(self, record: "RunRecord") -> bool:
        """Record-level refinement (provenance git)."""
        if self.git is not None:
            git = (record.provenance or {}).get("git") or ""
            if not git.startswith(self.git):
                return False
        return True


@dataclass(frozen=True)
class Aggregate:
    """Replicate aggregation of one metric: location + spread.

    ``ci_lo``/``ci_hi`` are the deterministic bootstrap CI bounds on
    the median (:func:`repro.analysis.stats_tests.bootstrap_median_ci`);
    for ``n < 2`` they collapse onto the value itself.
    """

    n: int
    mean: float
    median: float
    stdev: float
    min: float
    max: float
    ci_lo: float
    ci_hi: float

    @classmethod
    def of(cls, values: Iterable[float]) -> "Aggregate | None":
        vals = [float(v) for v in values if v is not None]
        if not vals:
            return None
        from repro.analysis.stats_tests import bootstrap_median_ci

        lo, hi = bootstrap_median_ci(vals)
        return cls(
            n=len(vals),
            mean=statistics.fmean(vals),
            median=statistics.median(vals),
            stdev=statistics.stdev(vals) if len(vals) > 1 else 0.0,
            min=min(vals),
            max=max(vals),
            ci_lo=lo,
            ci_hi=hi,
        )

    def to_dict(self) -> dict[str, float]:
        return {k: getattr(self, k)
                for k in ("n", "mean", "median", "stdev", "min", "max",
                          "ci_lo", "ci_hi")}


class ResultSet:
    """A query bound to a store, with lazily-computed derived views.

    Expensive steps — the SQL fetch, record parsing, per-metric
    aggregation — run once on first access and are memoised on the
    instance (``cached_property``), so using a ``ResultSet`` as a
    report-template context only computes what the template touches.
    """

    def __init__(self, store: "RunStore",
                 query: RunQuery | None = None) -> None:
        self.store = store
        self.query = query or RunQuery()
        self._aggregates: dict[tuple, Any] = {}

    # ------------------------------------------------------------ #
    # the lazy pipeline: rows -> records -> groups/aggregates
    # ------------------------------------------------------------ #

    @cached_property
    def rows(self) -> list["StoredRun"]:
        """Matching store rows (SQL narrow + config refinement)."""
        q = self.query
        rows = self.store.select(
            algorithm=q.algorithm, dataset=q.dataset, status=q.status,
            created_after=q.since, created_before=q.until,
        )
        return [r for r in rows if q.matches_row(r)]

    @cached_property
    def records(self) -> list["RunRecord"]:
        """Parsed records of every matching ``done``/``error`` row, in
        row order (rows without a record are skipped)."""
        out = []
        for row in self.rows:
            rec = row.record()
            if rec is not None and self.query.matches_record(rec):
                out.append(rec)
        return out

    @cached_property
    def ok_records(self) -> list["RunRecord"]:
        return [r for r in self.records if r.ok]

    def __len__(self) -> int:
        return len(self.rows)

    def __iter__(self) -> Iterator["RunRecord"]:
        return iter(self.records)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"ResultSet({self.query.describe()}: "
                f"{len(self.rows)} rows)")

    # ------------------------------------------------------------ #
    # grouping
    # ------------------------------------------------------------ #

    @staticmethod
    def replicate_key(row: "StoredRun") -> str:
        """Config digest with the replicate-only fields stripped.

        Two rows share a replicate key exactly when they measure the
        same configuration: ``replicate`` (the repeat index) and
        ``seed`` (derived per cell index, so it tracks the repeat) are
        dropped; everything else — algorithm, graph source, platform,
        devices, batches, engine, overrides, label — must agree.
        """
        cfg = {k: v for k, v in row.config.items()
               if k not in ("replicate", "seed")}
        return config_digest(cfg)

    @cached_property
    def replicate_groups(self) -> dict[str, list["StoredRun"]]:
        """Rows grouped by :meth:`replicate_key` (insertion-ordered)."""
        groups: dict[str, list] = {}
        for row in self.rows:
            groups.setdefault(self.replicate_key(row), []).append(row)
        return groups

    def group_records(self, *keys: str
                      ) -> dict[tuple, list["RunRecord"]]:
        """Records grouped by the named keys (:func:`record_key`)."""
        groups: dict[tuple, list] = {}
        for rec in self.ok_records:
            k = tuple(record_key(rec, key) for key in keys)
            groups.setdefault(k, []).append(rec)
        return groups

    # ------------------------------------------------------------ #
    # aggregation
    # ------------------------------------------------------------ #

    def aggregate(self, metric: str, by: tuple[str, ...] =
                  ("algorithm", "dataset")) -> dict[tuple, Aggregate]:
        """``Aggregate`` of ``metric`` per ``by``-group (memoised).

        Groups whose every record lacks the metric (e.g. ``sim_time``
        of a pure-CPU solver) are dropped rather than reported as
        zeros.
        """
        memo_key = (metric, by)
        cached = self._aggregates.get(memo_key)
        if cached is not None:
            return cached
        out: dict[tuple, Aggregate] = {}
        for k, recs in self.group_records(*by).items():
            agg = Aggregate.of(metric_value(r, metric) for r in recs)
            if agg is not None:
                out[k] = agg
        self._aggregates[memo_key] = out
        return out

    def pivot(self, metric: str, row_key: str = "dataset",
              col_key: str = "algorithm", stat: str = "median",
              ) -> tuple[list[str], list[list[Any]]]:
        """``(headers, rows)`` pivot of an aggregated metric.

        The paper-table shape: one row per ``row_key`` value, one
        column per ``col_key`` value, cells the chosen ``stat`` of the
        per-group aggregate (``None`` renders as the paper's '-').
        """
        aggs = self.aggregate(metric, by=(row_key, col_key))
        row_vals = sorted({k[0] for k in aggs}, key=str)
        col_vals = sorted({k[1] for k in aggs}, key=str)
        headers = [row_key] + [str(c) for c in col_vals]
        table = []
        for rv in row_vals:
            line: list[Any] = [str(rv)]
            for cv in col_vals:
                agg = aggs.get((rv, cv))
                line.append(getattr(agg, stat) if agg else None)
            table.append(line)
        return headers, table

    # ------------------------------------------------------------ #
    # tabular summaries (CLI `analysis query` / `store ls`)
    # ------------------------------------------------------------ #

    def summary_rows(self) -> list[list[Any]]:
        """One row per store row: the ``store ls`` listing shape.

        ``state`` is the job-facing view (cancelled rows show as
        ``cancelled``, not their underlying ``pending``/``error``)."""
        return [[r.fingerprint[:17], r.algorithm, r.dataset or "-",
                 r.state, r.attempts, r.worker or "-"]
                for r in self.rows]

    def to_documents(self) -> list[dict[str, Any]]:
        """JSON-safe per-row documents (fingerprint + labels + status)."""
        return [{"fingerprint": r.fingerprint,
                 "algorithm": r.algorithm,
                 "dataset": r.dataset,
                 "status": r.status,
                 "state": r.state,
                 "attempts": r.attempts,
                 "seed": r.seed,
                 "worker": r.worker,
                 "priority": r.priority,
                 "client": r.client,
                 "label": r.config.get("label"),
                 "replicate": r.config.get("replicate"),
                 "created_at": r.created_at}
                for r in self.rows]
