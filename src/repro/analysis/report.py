"""One-command report: the paper's story, recomputed from the store.

``repro report --store runs.db --out report/`` turns a run store into
a standalone document: the paper's tables recomputed from whatever
runs the store actually holds, significance tests over the paired
per-graph timings, bench trend lines with the CI gate's verdict, a
timeline-reconciliation check, and a provenance appendix saying
exactly which code/environment produced every number.

The HTML output is dependency-free by construction — stdlib
``string.Template`` over :mod:`repro.analysis.templates`, inline SVG
charts, CSS custom properties for light/dark, **no JavaScript and no
network fetches** — so the artifact a CI job uploads renders anywhere,
forever.  Every chart sits next to the table of the same numbers
(identity is never carried by color alone, and a text-mode reader
loses nothing).  ``--format md|json`` render the same data dict
through :mod:`repro.harness.report` / ``json.dumps`` for terminals
and machines.
"""

from __future__ import annotations

import html
import json
import time
from pathlib import Path
from typing import Any, TYPE_CHECKING

from repro.analysis.queries import ResultSet, RunQuery, metric_value
from repro.analysis.stats_tests import (
    holm_adjust,
    rank_table,
    wilcoxon_signed_rank,
)
from repro.analysis.trajectory import (
    flag_regressions,
    suite_trajectories,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.store.db import RunStore

__all__ = [
    "REPORT_SCHEMA_VERSION",
    "build_report_data",
    "render_html",
    "render_markdown",
    "render_json",
    "write_report",
    "resolve_since",
]

REPORT_SCHEMA_VERSION = 1

#: ``|sim_time - sum(timeline_totals)|`` beyond this (relative to the
#: larger of the two, floored at 1e-12 absolute) counts as a
#: reconciliation mismatch.
RECONCILE_RTOL = 1e-9


def resolve_since(value: str | None) -> dict[str, Any]:
    """Parse a ``--since`` argument: ISO date(/time) → a ``created_at``
    lower bound; anything else → a git-describe prefix filter."""
    if not value:
        return {}
    for fmt in ("%Y-%m-%d", "%Y-%m-%dT%H:%M:%S", "%Y-%m-%d %H:%M:%S"):
        try:
            return {"since": time.mktime(time.strptime(value, fmt))}
        except ValueError:
            continue
    return {"git": value}


# ------------------------------------------------------------------ #
# data assembly
# ------------------------------------------------------------------ #


def _per_graph_medians(rs: ResultSet, metric: str
                       ) -> dict[str, dict[str, float]]:
    """graph → {algorithm: median metric} over ok records."""
    out: dict[str, dict[str, float]] = {}
    for (graph, algo), agg in rs.aggregate(
            metric, by=("graph", "algorithm")).items():
        out.setdefault(str(graph), {})[str(algo)] = agg.median
    return out


def _significance(per_graph: dict[str, dict[str, float]]
                  ) -> dict[str, Any]:
    """Pairwise Wilcoxon over paired per-graph medians + rank table."""
    algos = sorted({a for d in per_graph.values() for a in d})
    pairs = []
    for i, a in enumerate(algos):
        for b in algos[i + 1:]:
            common = [g for g, d in per_graph.items()
                      if a in d and b in d]
            if len(common) < 2:
                continue
            xs = [per_graph[g][a] for g in common]
            ys = [per_graph[g][b] for g in common]
            res = wilcoxon_signed_rank(xs, ys)
            faster = None
            wins_a = sum(1 for x, y in zip(xs, ys) if x < y)
            wins_b = sum(1 for x, y in zip(xs, ys) if y < x)
            if wins_a != wins_b:
                faster = a if wins_a > wins_b else b
            pairs.append({"a": a, "b": b, "n_graphs": len(common),
                          "statistic": res.statistic,
                          "p_value": res.p_value,
                          "method": res.method, "faster": faster})
    for p, adj in zip(pairs, holm_adjust([p["p_value"]
                                          for p in pairs])):
        p["p_adjusted"] = adj
    ranks = [{"algorithm": str(g), "avg_rank": r, "n_graphs": n}
             for g, r, n in rank_table(per_graph)]
    return {"pairs": pairs, "ranks": ranks}


def _quality(rs: ResultSet) -> dict[str, Any]:
    """Matched weight per (graph, algorithm), as a ratio against the
    exact reference — ``blossom`` where it ran, else the best weight
    seen on that graph (the paper's Table-5 shape)."""
    per_graph = _per_graph_medians(rs, "weight")
    if not per_graph:
        return {"headers": [], "rows": [], "reference": None}
    algos = sorted({a for d in per_graph.values() for a in d})
    have_blossom = any("blossom" in d for d in per_graph.values())
    rows = []
    for graph in sorted(per_graph):
        d = per_graph[graph]
        ref = d.get("blossom") if have_blossom else None
        if ref is None:
            ref = max(d.values())
        row: list[Any] = [graph]
        for a in algos:
            w = d.get(a)
            row.append(None if w is None or not ref else w / ref)
        rows.append(row)
    return {"headers": ["graph"] + algos, "rows": rows,
            "reference": "blossom" if have_blossom else "best"}


def _reconciliation(rs: ResultSet) -> dict[str, Any]:
    """Cross-check: modeled ``sim_time`` vs the sum of the per-
    component ``timeline_totals`` the simulator accounted it into."""
    checked = ok = 0
    max_diff = 0.0
    worst = None
    for rec in rs.ok_records:
        totals = rec.timeline_totals
        if not totals or rec.sim_time is None:
            continue
        checked += 1
        total = sum(totals.values())
        diff = abs(rec.sim_time - total)
        bound = max(abs(rec.sim_time), abs(total)) * RECONCILE_RTOL \
            + 1e-12
        if diff <= bound:
            ok += 1
        if diff > max_diff:
            max_diff = diff
            worst = {"algorithm": rec.algorithm, "graph": rec.graph,
                     "sim_time": rec.sim_time,
                     "timeline_sum": total, "diff": diff}
    return {"n_checked": checked, "n_ok": ok,
            "n_mismatched": checked - ok,
            "max_abs_diff": max_diff, "worst": worst,
            "rtol": RECONCILE_RTOL}


def _provenance(rs: ResultSet, store: "RunStore") -> dict[str, Any]:
    """Distinct producing environments, with run counts."""
    envs: dict[tuple, int] = {}
    schemas: dict[int, int] = {}
    for row in rs.rows:
        schemas[row.record_schema] = schemas.get(row.record_schema,
                                                 0) + 1
    for rec in rs.records:
        p = rec.provenance or {}
        key = (p.get("git"), p.get("python"), p.get("numpy"),
               p.get("host_platform"))
        envs[key] = envs.get(key, 0) + 1
    environments = [
        {"git": k[0], "python": k[1], "numpy": k[2],
         "host_platform": k[3], "n_records": n}
        for k, n in sorted(envs.items(),
                           key=lambda kv: (-kv[1], str(kv[0])))
    ]
    return {"environments": environments,
            "record_schemas": {str(k): v
                               for k, v in sorted(schemas.items())},
            "store_path": str(store.path)}


def build_report_data(
    store: "RunStore",
    *,
    since: float | None = None,
    git: str | None = None,
    suites: "list[str] | None" = None,
    tolerance: float = 0.05,
    bench_dir: "Path | str | None" = None,
) -> dict[str, Any]:
    """Everything the renderers need, as one JSON-safe dict.

    Computed entirely from the store (plus the committed baseline
    files for trajectory anchors): paper tables over the ``done``
    records matching the filters, pairwise significance, bench
    trajectories with gate flags, reconciliation, and provenance.
    """
    query = RunQuery(status="done", since=since, git=git)
    rs = ResultSet(store, query)

    counts = store.counts()
    created = [row.created_at for row in rs.rows]
    per_graph_sim = _per_graph_medians(rs, "sim_time")

    headers, rows = rs.pivot("sim_time", row_key="graph",
                             col_key="algorithm", stat="median")
    ns = rs.aggregate("sim_time", by=("graph", "algorithm"))

    trajectories = suite_trajectories(store, bench_dir=bench_dir,
                                      suites=suites)
    flags = flag_regressions(trajectories, tolerance=tolerance)

    data: dict[str, Any] = {
        "schema": REPORT_SCHEMA_VERSION,
        "title": "Weighted graph matching — reproduction report",
        "generated_at": time.time(),
        "filters": query.describe(),
        "tolerance": tolerance,
        "overview": {
            "counts": counts,
            "n_rows": len(rs.rows),
            "n_records": len(rs.ok_records),
            "algorithms": sorted({r.algorithm for r in rs.ok_records}),
            "graphs": sorted({r.graph for r in rs.ok_records}),
            "first_created_at": min(created) if created else None,
            "last_created_at": max(created) if created else None,
        },
        "exec_table": {
            "metric": "sim_time", "stat": "median",
            "headers": headers, "rows": rows,
            "replicates": {f"{g}/{a}": agg.n
                           for (g, a), agg in ns.items()},
        },
        "quality": _quality(rs),
        "significance": _significance(per_graph_sim),
        "trajectories": {
            suite: {entry: [p.to_dict() for p in points]
                    for entry, points in entries.items()}
            for suite, entries in trajectories.items()
        },
        "regressions": [f.to_dict() for f in flags],
        "regressions_flagged": sum(1 for f in flags if f.flagged),
        "reconciliation": _reconciliation(rs),
        "provenance": _provenance(rs, store),
    }
    return data


# ------------------------------------------------------------------ #
# SVG charts (inline, static, token-colored)
# ------------------------------------------------------------------ #
#
# Mark specs: 2px lines with round joins/caps, >=8px markers wearing a
# 2px surface ring, bars <=24px thick with the rounding only on the
# data end, hairline gridlines in the grid token, all text in text
# tokens (never the series color).  Colors are CSS custom properties,
# so the same SVG follows the page's light/dark palette.


def _esc(v: Any) -> str:
    return html.escape(str(v), quote=True)


def _fmt(v: Any, spec: str = ".4g") -> str:
    if v is None:
        return "-"
    if isinstance(v, float):
        if v != v:  # NaN
            return "-"
        return format(v, spec)
    return str(v)


def svg_trend(values: "list[float | None]", *,
              flagged: bool = False, width: int = 280,
              height: int = 72, aria: str = "") -> str:
    """A single-series trend line (one metric over time).

    ``None`` gaps are skipped; the last marker turns critical-red when
    ``flagged``.  Single series → no legend (the figure caption names
    it)."""
    pts = [(i, float(v)) for i, v in enumerate(values)
           if v is not None]
    if not pts:
        return ""
    pad = 10
    lo = min(v for _, v in pts)
    hi = max(v for _, v in pts)
    span = (hi - lo) or (abs(hi) or 1.0)
    nx = max(len(values) - 1, 1)

    def x(i: float) -> float:
        return pad + (width - 2 * pad) * (i / nx)

    def y(v: float) -> float:
        return height - pad - (height - 2 * pad) * ((v - lo) / span)

    grid = "".join(
        f'<line x1="{pad}" y1="{gy:.1f}" x2="{width - pad}" '
        f'y2="{gy:.1f}" stroke="var(--grid)" stroke-width="1"/>'
        for gy in (y(lo), y(lo + span / 2), y(hi)))
    line = " ".join(f"{x(i):.1f},{y(v):.1f}" for i, v in pts)
    poly = (f'<polyline points="{line}" fill="none" '
            f'stroke="var(--series-1)" stroke-width="2" '
            f'stroke-linejoin="round" stroke-linecap="round"/>') \
        if len(pts) > 1 else ""
    marks = []
    for j, (i, v) in enumerate(pts):
        last = j == len(pts) - 1
        fill = "var(--critical)" if (flagged and last) \
            else "var(--series-1)"
        marks.append(
            f'<circle cx="{x(i):.1f}" cy="{y(v):.1f}" r="4" '
            f'fill="{fill}" stroke="var(--surface)" '
            f'stroke-width="2"/>')
    return (
        f'<svg width="{width}" height="{height}" '
        f'viewBox="0 0 {width} {height}" role="img" '
        f'aria-label="{_esc(aria)}">{grid}{poly}{"".join(marks)}'
        f'</svg>')


def svg_bars(pairs: "list[tuple[str, float]]", *, width: int = 460,
             aria: str = "") -> str:
    """Horizontal magnitude bars, one hue (identity lives in the row
    labels), 18px thick, rounded only at the data end, value labels in
    secondary ink."""
    if not pairs:
        return ""
    label_w, bar_h, gap, pad = 150, 18, 8, 4
    vmax = max(v for _, v in pairs) or 1.0
    span = width - label_w - 70
    height = pad * 2 + len(pairs) * (bar_h + gap) - gap
    parts = [f'<line x1="{label_w}" y1="{pad}" x2="{label_w}" '
             f'y2="{height - pad}" stroke="var(--axis)" '
             f'stroke-width="1"/>']
    for k, (label, v) in enumerate(pairs):
        top = pad + k * (bar_h + gap)
        length = max(span * (v / vmax), 1.0)
        r = min(4.0, length, bar_h / 2)
        path = (f"M{label_w},{top} h{length - r:.1f} "
                f"a{r},{r} 0 0 1 {r},{r} v{bar_h - 2 * r:.1f} "
                f"a{r},{r} 0 0 1 -{r},{r} h-{length - r:.1f} z")
        parts.append(f'<path d="{path}" fill="var(--series-1)"/>')
        parts.append(
            f'<text x="{label_w - 6}" y="{top + bar_h - 5}" '
            f'text-anchor="end" fill="var(--text-2)">'
            f'{_esc(label)}</text>')
        parts.append(
            f'<text x="{label_w + length + 6:.1f}" '
            f'y="{top + bar_h - 5}" fill="var(--text-2)">'
            f'{_esc(_fmt(v))}</text>')
    return (f'<svg width="{width}" height="{height}" '
            f'viewBox="0 0 {width} {height}" role="img" '
            f'aria-label="{_esc(aria)}">{"".join(parts)}</svg>')


# ------------------------------------------------------------------ #
# HTML rendering
# ------------------------------------------------------------------ #


def _html_table(headers: "list[str]", rows: "list[list[Any]]",
                fmt: str = ".4g") -> str:
    head = "".join(f"<th>{_esc(h)}</th>" for h in headers)
    body = []
    for row in rows:
        cells = "".join(f"<td>{_esc(_fmt(c, fmt))}</td>" for c in row)
        body.append(f"<tr>{cells}</tr>")
    return (f"<table><thead><tr>{head}</tr></thead>"
            f"<tbody>{''.join(body)}</tbody></table>")


def _tile(value: Any, label: str) -> str:
    return (f'<div class="tile"><div class="v">{_esc(value)}</div>'
            f'<div class="k">{_esc(label)}</div></div>')


def _status(ok: bool, text: str) -> str:
    cls = "good" if ok else "critical"
    mark = "✓" if ok else "✗"
    return (f'<span class="status {cls}"><span class="dot"></span>'
            f'{mark} {_esc(text)}</span>')


def _section_overview(data: dict[str, Any]) -> str:
    ov = data["overview"]
    counts = ov["counts"]
    tiles = [
        _tile(ov["n_records"], "runs analysed"),
        _tile(counts.get("done", 0), "done in store"),
        _tile(counts.get("error", 0), "errors"),
        _tile(len(ov["algorithms"]), "algorithms"),
        _tile(len(ov["graphs"]), "graphs"),
    ]
    span = ""
    if ov["first_created_at"]:
        f = time.strftime("%Y-%m-%d %H:%M",
                          time.localtime(ov["first_created_at"]))
        t = time.strftime("%Y-%m-%d %H:%M",
                          time.localtime(ov["last_created_at"]))
        span = (f'<p class="muted">store rows span {_esc(f)} → '
                f'{_esc(t)}; filters: '
                f'{_esc(data["filters"])}</p>')
    return (f'<h2>Overview</h2><div class="tiles">{"".join(tiles)}'
            f'</div>{span}')


def _section_exec(data: dict[str, Any]) -> str:
    t = data["exec_table"]
    if not t["rows"]:
        return ("<h2>Execution times</h2>"
                '<p class="muted">No completed runs matched.</p>')
    charts = []
    for row in t["rows"]:
        graph = row[0]
        pairs = [(algo, v) for algo, v in zip(t["headers"][1:],
                                              row[1:])
                 if v is not None]
        if len(pairs) > 1:
            charts.append(
                f"<figure>{svg_bars(pairs, aria=f'median sim_time on {graph}')}"
                f"<figcaption>median modeled seconds on "
                f"{_esc(graph)} (lower is better)</figcaption>"
                f"</figure>")
    return (
        "<h2>Execution times</h2>"
        "<p>Median modeled seconds (<code>sim_time</code>) per "
        "(graph, algorithm), recomputed from the stored records — "
        "the paper's execution-time table over whatever this store "
        "actually ran.</p>"
        + _html_table(t["headers"], t["rows"])
        + f'<div class="chartrow">{"".join(charts)}</div>')


def _section_quality(data: dict[str, Any]) -> str:
    q = data["quality"]
    if not q["rows"]:
        return ""
    ref = ("the exact blossom optimum" if q["reference"] == "blossom"
           else "the best weight observed per graph")
    return (
        "<h2>Matching quality</h2>"
        f"<p>Matched weight as a fraction of {ref} "
        "(1.000 = reference).</p>"
        + _html_table(q["headers"], q["rows"], fmt=".4f"))


def _section_significance(data: dict[str, Any]) -> str:
    sig = data["significance"]
    if not sig["pairs"] and not sig["ranks"]:
        return ""
    out = ["<h2>Significance</h2>"]
    if sig["pairs"]:
        out.append(
            "<p>Two-sided Wilcoxon signed-rank over paired per-graph "
            "median <code>sim_time</code>; p-values Holm-adjusted "
            "across the family.</p>")
        rows = [[f'{p["a"]} vs {p["b"]}', p["n_graphs"],
                 p["statistic"], p["p_value"], p["p_adjusted"],
                 p["faster"] or "—", p["method"]]
                for p in sig["pairs"]]
        out.append(_html_table(
            ["pair", "graphs", "W", "p", "p (holm)", "faster",
             "engine"], rows))
    if sig["ranks"]:
        out.append("<h3>Average ranks (lower is better)</h3>")
        out.append(_html_table(
            ["algorithm", "avg rank", "graphs"],
            [[r["algorithm"], r["avg_rank"], r["n_graphs"]]
             for r in sig["ranks"]], fmt=".2f"))
    return "".join(out)


def _section_trajectories(data: dict[str, Any]) -> str:
    trajs = data["trajectories"]
    if not trajs:
        return ("<h2>Bench trajectories</h2>"
                '<p class="muted">No bench baselines or stored bench '
                "runs found.</p>")
    flagged = {(f["suite"], f["entry"], f["metric"])
               for f in data["regressions"] if f["flagged"]}
    out = ["<h2>Bench trajectories</h2>",
           "<p>Gated bench metrics across commits: the committed "
           "baseline anchors each series, store-recorded bench runs "
           "extend it.  A red end marker = the latest point exceeds "
           "its predecessor by the gate tolerance "
           f"({100 * data['tolerance']:.1f}%).</p>"]
    n_flag = data["regressions_flagged"]
    out.append("<p>" + _status(
        n_flag == 0,
        "no gated regressions" if n_flag == 0
        else f"{n_flag} gated regression(s)") + "</p>")
    for suite in sorted(trajs):
        out.append(f"<h3>suite: {_esc(suite)}</h3>")
        figures, rows = [], []
        for entry in sorted(trajs[suite]):
            points = trajs[suite][entry]
            series = [p["metrics"].get("median_sim_time_s")
                      for p in points]
            is_flagged = (suite, entry,
                          "median_sim_time_s") in flagged
            svg = svg_trend(
                series, flagged=is_flagged,
                aria=f"{entry} median sim time trend")
            if svg:
                figures.append(
                    f"<figure>{svg}<figcaption>{_esc(entry)} — "
                    f"median_sim_time_s, {len(points)} point(s)"
                    f"</figcaption></figure>")
            for p in points:
                rows.append([
                    entry, p["source"], p["git"] or "-", p["n"],
                    p["metrics"].get("median_sim_time_s"),
                    p["metrics"].get("host_entries_scanned"),
                    p["metrics"].get("median_wall_time_s")])
        out.append(f'<div class="chartrow">{"".join(figures)}</div>')
        out.append(_html_table(
            ["workload", "source", "git", "n", "median_sim_time_s",
             "host_entries_scanned", "median_wall_time_s"], rows))
    if data["regressions"]:
        out.append("<h3>Gate verdicts (latest vs previous)</h3>")
        rows = []
        for f in data["regressions"]:
            rows.append([f"{f['suite']}:{f['entry']}", f["metric"],
                         f["reference"], f["latest"],
                         f"{f['ratio']:.3f}x",
                         "REGRESSION" if f["flagged"] else "ok"])
        out.append(_html_table(
            ["series", "metric", "previous", "latest", "ratio",
             "verdict"], rows))
    return "".join(out)


def _section_reconciliation(data: dict[str, Any]) -> str:
    rec = data["reconciliation"]
    if not rec["n_checked"]:
        return ""
    ok = rec["n_mismatched"] == 0
    out = [
        "<h2>Reconciliation</h2>",
        "<p>Cross-check that each record's modeled "
        "<code>sim_time</code> equals the sum of its per-component "
        "<code>timeline_totals</code> — the simulator's books must "
        "balance.</p>",
        "<p>" + _status(
            ok,
            f"{rec['n_ok']}/{rec['n_checked']} records reconcile "
            f"(max |diff| {_fmt(rec['max_abs_diff'], '.3g')}s)")
        + "</p>"]
    if not ok and rec["worst"]:
        w = rec["worst"]
        out.append(
            f'<p class="muted">worst: {_esc(w["algorithm"])} on '
            f'{_esc(w["graph"])} — sim_time '
            f'{_fmt(w["sim_time"], ".6g")} vs timeline sum '
            f'{_fmt(w["timeline_sum"], ".6g")}</p>')
    return "".join(out)


def _section_provenance(data: dict[str, Any]) -> str:
    prov = data["provenance"]
    out = ["<h2>Provenance appendix</h2>",
           f'<p class="muted">store: '
           f'<code>{_esc(prov["store_path"])}</code>; record '
           f'schemas seen: '
           f'{_esc(", ".join(f"v{k} ({v} rows)" for k, v in prov["record_schemas"].items()))}'
           "</p>"]
    if prov["environments"]:
        rows = [[e["git"] or "-", e["python"] or "-",
                 e["numpy"] or "-", e["host_platform"] or "-",
                 e["n_records"]] for e in prov["environments"]]
        out.append(_html_table(
            ["git", "python", "numpy", "host platform", "records"],
            rows))
    return "".join(out)


def render_html(data: dict[str, Any]) -> str:
    from repro.analysis import templates

    body = "".join([
        _section_overview(data),
        _section_exec(data),
        _section_quality(data),
        _section_significance(data),
        _section_trajectories(data),
        _section_reconciliation(data),
        _section_provenance(data),
    ])
    generated = time.strftime("%Y-%m-%d %H:%M:%S",
                              time.localtime(data["generated_at"]))
    return templates.load("report.html.tmpl").safe_substitute(
        title=_esc(data["title"]),
        subtitle=(f"generated {generated} · report schema "
                  f"v{data['schema']} · no scripts, no network"),
        body=body,
        footer=("Generated by <code>repro report</code> from the run "
                "store alone; regenerate with the same store to "
                "reproduce every number."),
    )


# ------------------------------------------------------------------ #
# markdown / json rendering
# ------------------------------------------------------------------ #


def render_markdown(data: dict[str, Any]) -> str:
    from repro.harness.report import format_table, render_series

    lines: list[str] = [f"# {data['title']}", ""]
    ov = data["overview"]
    lines += [f"- runs analysed: {ov['n_records']}",
              f"- store counts: {ov['counts']}",
              f"- algorithms: {', '.join(ov['algorithms']) or '-'}",
              f"- graphs: {', '.join(ov['graphs']) or '-'}",
              f"- filters: {data['filters']}", ""]
    t = data["exec_table"]
    if t["rows"]:
        lines += ["## Execution times (median sim_time, s)", "",
                  "```",
                  format_table(t["headers"], t["rows"],
                               floatfmt=".4f"),
                  "```", ""]
    q = data["quality"]
    if q["rows"]:
        lines += [f"## Quality (weight / {q['reference']})", "",
                  "```",
                  format_table(q["headers"], q["rows"],
                               floatfmt=".4f"),
                  "```", ""]
    sig = data["significance"]
    if sig["pairs"]:
        rows = [[f"{p['a']} vs {p['b']}", p["n_graphs"],
                 p["p_value"], p["p_adjusted"], p["faster"] or "-"]
                for p in sig["pairs"]]
        lines += ["## Significance (Wilcoxon signed-rank)", "", "```",
                  format_table(["pair", "graphs", "p", "p_holm",
                                "faster"], rows, floatfmt=".4g"),
                  "```", ""]
    if data["trajectories"]:
        lines += ["## Bench trajectories", ""]
        for suite in sorted(data["trajectories"]):
            for entry, points in sorted(
                    data["trajectories"][suite].items()):
                series = [p["metrics"].get("median_sim_time_s")
                          for p in points]
                lines.append("    " + render_series(
                    f"{suite}:{entry}", series))
        lines.append("")
    n_flag = data["regressions_flagged"]
    lines.append(f"Gate: {'OK' if n_flag == 0 else 'REGRESSED'} "
                 f"({n_flag} flagged)")
    rec = data["reconciliation"]
    if rec["n_checked"]:
        lines.append(
            f"Reconciliation: {rec['n_ok']}/{rec['n_checked']} "
            f"records balance (max |diff| "
            f"{rec['max_abs_diff']:.3g}s)")
    lines.append("")
    return "\n".join(lines)


def render_json(data: dict[str, Any]) -> str:
    return json.dumps(data, indent=1, sort_keys=True,
                      default=repr) + "\n"


_RENDERERS = {"html": (render_html, "index.html"),
              "md": (render_markdown, "report.md"),
              "json": (render_json, "report.json")}


def write_report(store: "RunStore", out_dir: "Path | str" = "report",
                 fmt: str = "html", **kwargs: Any
                 ) -> tuple[Path, dict[str, Any]]:
    """Build and write the report; returns ``(path, data)``.

    ``kwargs`` pass through to :func:`build_report_data`.  The output
    directory is created; the file name is fixed per format
    (``index.html`` / ``report.md`` / ``report.json``) so CI artifact
    globs stay stable.
    """
    if fmt not in _RENDERERS:
        raise ValueError(f"unknown report format {fmt!r}; "
                         f"have {sorted(_RENDERERS)}")
    data = build_report_data(store, **kwargs)
    render, name = _RENDERERS[fmt]
    out = Path(out_dir)
    out.mkdir(parents=True, exist_ok=True)
    path = out / name
    path.write_text(render(data), encoding="utf-8")
    return path, data
