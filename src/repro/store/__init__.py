"""Persistent run store: content-addressed, lease-claimed grid cells.

``repro.store`` makes grid execution durable.  Every cell of a
``run_cells`` grid is addressed by a content fingerprint of *what it
computes* (:mod:`repro.store.fingerprint`); a SQLite-backed
:class:`RunStore` (:mod:`repro.store.db`) tracks each cell through
``pending → leased → done | error``, serves finished records back
bit-identically, and lets any number of worker processes claim cells
atomically with stale-lease recovery.  ``repro-matching store …``
exposes the store on the command line.
"""

from repro.store.db import (
    RUN_STORE_ENV,
    STORE_SCHEMA_VERSION,
    RunStore,
    StoredRun,
    resolve_store,
)
from repro.store.fingerprint import (
    cell_config,
    cell_fingerprint,
    cell_from_config,
    config_digest,
    fingerprint_for,
)

__all__ = [
    "RUN_STORE_ENV",
    "STORE_SCHEMA_VERSION",
    "RunStore",
    "StoredRun",
    "resolve_store",
    "cell_config",
    "cell_fingerprint",
    "cell_from_config",
    "config_digest",
    "fingerprint_for",
]
