"""The persistent run store: SQLite (WAL mode) + lease-based claims.

One ``runs`` table keyed by the content-addressed cell fingerprint
(:mod:`repro.store.fingerprint`) holds every grid cell ever registered,
with the lifecycle::

    pending ──claim──▶ leased ──complete──▶ done
       ▲                  │                  (terminal; served on lookup)
       │                  └────complete─────▶ error
       └── stale lease (no heartbeat before ──┘   (re-claimable, like
           ``lease_expires_at``) or ``release``    pending)

Claims are atomic — ``BEGIN IMMEDIATE`` plus a conditional ``UPDATE`` —
so any number of worker *processes* can race on the same row and exactly
one wins; the losers poll :meth:`RunStore.lookup` and get the winner's
stored record.  A worker that dies mid-cell simply stops heartbeating:
its lease expires and the row becomes claimable again (the FuzzBench
scheduler's job-record shape; py_experimenter's row-per-experiment
status tracking is the other parent of this design).

``done`` rows store the full :meth:`RunRecord.to_json` document and are
served back **bit-identically** via
:meth:`~repro.engine.record.RunRecord.from_json` — a resumed sweep's
records match the uninterrupted run's field for field (the served
record even carries the original run's wall time and provenance).

Since schema 2 every row also carries the *service* columns that turn
the store into a job queue for the ``repro serve`` daemon and the
``repro worker`` fleet (:mod:`repro.service`): ``priority`` (higher
drains first), ``client`` (who submitted, for per-client quotas) and
``cancel_requested`` (workers skip flagged rows between rounds; a
direct :meth:`RunStore.claim` of a named fingerprint still wins, so
``store resume`` can deliberately re-run a cancelled cell).  Schema-1
stores migrate in place on first open — old rows keep their
fingerprints and records and gain the new columns with service-neutral
defaults.

Telemetry: every lookup hit, claim, stale-lease reclaim and
cancellation counts into ``repro_store_hits_total`` /
``repro_store_claims_total`` / ``repro_store_stale_reclaims_total`` /
``repro_store_cancels_total`` through the active
:mod:`repro.telemetry` registry (no-op when none is active); the same
counts are mirrored on the instance (``hits``/``claims``/
``stale_reclaims``/``cancels``) for in-process consumers.

Environment: ``REPRO_RUN_STORE`` names the default store path for the
CLI's ``--store`` flag; ``REPRO_RUN_STORE_LEASE_S`` overrides the
default lease duration (300 s).
"""

from __future__ import annotations

import json
import os
import socket
import sqlite3
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Callable, Iterable, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.engine.record import RunRecord

__all__ = [
    "STORE_SCHEMA_VERSION",
    "RUN_STORE_ENV",
    "StoredRun",
    "RunStore",
    "resolve_store",
]

#: Bump when the ``runs`` table layout changes incompatibly.
STORE_SCHEMA_VERSION = 2

RUN_STORE_ENV = "REPRO_RUN_STORE"
_ENV_LEASE = "REPRO_RUN_STORE_LEASE_S"
_DEFAULT_LEASE_S = 300.0

#: Lifecycle states of a run row.
STATUSES = ("pending", "leased", "done", "error")

HITS_COUNTER = "repro_store_hits_total"
CLAIMS_COUNTER = "repro_store_claims_total"
STALE_COUNTER = "repro_store_stale_reclaims_total"
CANCELS_COUNTER = "repro_store_cancels_total"

_SCHEMA_SQL = """
CREATE TABLE IF NOT EXISTS store_meta (
    key   TEXT PRIMARY KEY,
    value TEXT NOT NULL
);
CREATE TABLE IF NOT EXISTS runs (
    fingerprint       TEXT PRIMARY KEY,
    algorithm         TEXT NOT NULL,
    dataset           TEXT,
    graph_fingerprint TEXT,
    config_json       TEXT NOT NULL,
    seed              INTEGER,
    record_schema     INTEGER NOT NULL,
    status            TEXT NOT NULL DEFAULT 'pending',
    worker            TEXT,
    lease_expires_at  REAL,
    heartbeat_at      REAL,
    attempts          INTEGER NOT NULL DEFAULT 0,
    record_json       TEXT,
    error_type        TEXT,
    error_message     TEXT,
    created_at        REAL NOT NULL,
    updated_at        REAL NOT NULL,
    priority          INTEGER NOT NULL DEFAULT 0,
    client            TEXT,
    cancel_requested  INTEGER NOT NULL DEFAULT 0
);
CREATE INDEX IF NOT EXISTS runs_status ON runs (status);
CREATE INDEX IF NOT EXISTS runs_algorithm ON runs (algorithm);
CREATE INDEX IF NOT EXISTS runs_dataset ON runs (dataset);
CREATE INDEX IF NOT EXISTS runs_created ON runs (created_at);
"""

#: Columns added by each schema migration step, in bump order.  A
#: schema-1 store gains exactly these on first open by a schema-2
#: reader; existing rows keep their fingerprints and records.
_MIGRATIONS: dict[int, tuple[str, ...]] = {
    2: (
        "ALTER TABLE runs ADD COLUMN priority "
        "INTEGER NOT NULL DEFAULT 0",
        "ALTER TABLE runs ADD COLUMN client TEXT",
        "ALTER TABLE runs ADD COLUMN cancel_requested "
        "INTEGER NOT NULL DEFAULT 0",
    ),
}

#: Created after migration (references schema-2 columns, so it cannot
#: live in ``_SCHEMA_SQL``, which an un-migrated v1 table also runs).
_CLAIM_INDEX_SQL = ("CREATE INDEX IF NOT EXISTS runs_claim "
                    "ON runs (status, priority DESC, created_at)")


def _count(name: str) -> None:
    """Bump a store counter in the active telemetry registry (no-op
    when none is active)."""
    from repro.telemetry.spans import emit_event

    emit_event(name, "Run-store lifecycle events.")


@dataclass(frozen=True)
class StoredRun:
    """One ``runs`` row, as Python data."""

    fingerprint: str
    algorithm: str
    dataset: str | None
    graph_fingerprint: str | None
    config: dict[str, Any]
    seed: int | None
    record_schema: int
    status: str
    worker: str | None
    lease_expires_at: float | None
    heartbeat_at: float | None
    attempts: int
    record_json: str | None
    error_type: str | None
    error_message: str | None
    created_at: float
    updated_at: float
    priority: int = 0
    client: str | None = None
    cancel_requested: bool = False

    def record(self) -> "RunRecord | None":
        """The stored :class:`RunRecord` (``done``/``error`` rows)."""
        if self.record_json is None:
            return None
        from repro.engine.record import RunRecord

        return RunRecord.from_json(self.record_json)

    @property
    def state(self) -> str:
        """The job-facing lifecycle state: the row status, except that
        a claimable row flagged ``cancel_requested`` reads
        ``cancelled`` — no worker will pick it up again."""
        if self.cancel_requested and self.status in ("pending", "error"):
            return "cancelled"
        return self.status

    @property
    def resumable(self) -> bool:
        """Whether :func:`~repro.store.fingerprint.cell_from_config`
        can rebuild this row's cell standalone."""
        return bool(self.config.get("dataset")
                    or self.config.get("builder"))


def _row_to_run(row: sqlite3.Row) -> StoredRun:
    return StoredRun(
        fingerprint=row["fingerprint"],
        algorithm=row["algorithm"],
        dataset=row["dataset"],
        graph_fingerprint=row["graph_fingerprint"],
        config=json.loads(row["config_json"]),
        seed=row["seed"],
        record_schema=row["record_schema"],
        status=row["status"],
        worker=row["worker"],
        lease_expires_at=row["lease_expires_at"],
        heartbeat_at=row["heartbeat_at"],
        attempts=row["attempts"],
        record_json=row["record_json"],
        error_type=row["error_type"],
        error_message=row["error_message"],
        created_at=row["created_at"],
        updated_at=row["updated_at"],
        priority=row["priority"],
        client=row["client"],
        cancel_requested=bool(row["cancel_requested"]),
    )


class RunStore:
    """SQLite-backed, multi-process-safe store of grid-cell runs.

    Instances pickle by path (the connection is dropped and lazily
    reopened), so a store passed to ``run_cells(parallel=N, store=...)``
    travels to every worker process, each of which opens its own
    WAL-mode connection.

    Parameters
    ----------
    path:
        The database file (created, with parents, on first use).
    lease_seconds:
        How long a claim stays valid without a heartbeat before other
        workers may reclaim the row (default ``REPRO_RUN_STORE_LEASE_S``
        or 300).
    clock:
        Time source, injectable for the stale-lease tests.
    worker_id:
        Identity recorded on claimed rows (default ``host:pid``).
    """

    def __init__(self, path: "Path | str",
                 lease_seconds: float | None = None,
                 clock: Callable[[], float] = time.time,
                 worker_id: str | None = None) -> None:
        self.path = Path(path)
        if lease_seconds is None:
            lease_seconds = float(os.environ.get(_ENV_LEASE,
                                                 _DEFAULT_LEASE_S))
        self.lease_seconds = float(lease_seconds)
        self.clock = clock
        self._worker_id = worker_id
        self._conn: sqlite3.Connection | None = None
        self.hits = 0
        self.claims = 0
        self.stale_reclaims = 0
        self.cancels = 0

    # -------------------------------------------------------------- #
    # connection plumbing
    # -------------------------------------------------------------- #

    @property
    def worker_id(self) -> str:
        if self._worker_id is None:
            self._worker_id = f"{socket.gethostname()}:{os.getpid()}"
        return self._worker_id

    def _connect(self) -> sqlite3.Connection:
        conn = self._conn
        if conn is not None:
            return conn
        self.path.parent.mkdir(parents=True, exist_ok=True)
        conn = sqlite3.connect(str(self.path), timeout=30.0,
                               isolation_level=None)
        conn.row_factory = sqlite3.Row
        conn.execute("PRAGMA journal_mode=WAL")
        conn.execute("PRAGMA synchronous=NORMAL")
        conn.execute("PRAGMA busy_timeout=30000")
        conn.executescript(_SCHEMA_SQL)
        conn.execute(
            "INSERT OR IGNORE INTO store_meta (key, value) VALUES "
            "('schema', ?)", (str(STORE_SCHEMA_VERSION),))
        stored = int(conn.execute(
            "SELECT value FROM store_meta WHERE key='schema'"
        ).fetchone()["value"])
        if stored > STORE_SCHEMA_VERSION:
            conn.close()
            raise ValueError(
                f"run store {self.path} has schema {stored}, newer than "
                f"supported ({STORE_SCHEMA_VERSION})")
        if stored < STORE_SCHEMA_VERSION:
            self._migrate(conn, stored)
        conn.execute(_CLAIM_INDEX_SQL)
        self._conn = conn
        return conn

    @staticmethod
    def _migrate(conn: sqlite3.Connection, stored: int) -> None:
        """Bring an older store up to :data:`STORE_SCHEMA_VERSION` in
        place (additive column migrations; rows are preserved)."""
        conn.execute("BEGIN IMMEDIATE")
        try:
            # Another writer may have migrated while we waited.
            stored = int(conn.execute(
                "SELECT value FROM store_meta WHERE key='schema'"
            ).fetchone()["value"])
            have = {r["name"] for r in conn.execute(
                "PRAGMA table_info(runs)")}
            for version in sorted(_MIGRATIONS):
                if version <= stored:
                    continue
                for stmt in _MIGRATIONS[version]:
                    column = stmt.split("ADD COLUMN", 1)[1].split()[0]
                    if column not in have:
                        conn.execute(stmt)
            conn.execute(
                "UPDATE store_meta SET value=? WHERE key='schema'",
                (str(STORE_SCHEMA_VERSION),))
        finally:
            conn.execute("COMMIT")

    def close(self) -> None:
        if self._conn is not None:
            self._conn.close()
            self._conn = None

    def __enter__(self) -> "RunStore":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()

    def __getstate__(self) -> dict[str, Any]:
        # Connections (and fork-inherited pids) do not cross process
        # boundaries: workers re-open by path and re-derive identity.
        state = self.__dict__.copy()
        state["_conn"] = None
        state["_worker_id"] = None
        return state

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"RunStore(path={str(self.path)!r}, "
                f"counts={self.counts()})")

    # -------------------------------------------------------------- #
    # registration and lookup
    # -------------------------------------------------------------- #

    def register(self, fingerprint: str, *, algorithm: str,
                 config: dict[str, Any], seed: int | None = None,
                 graph_fingerprint: str | None = None,
                 dataset: str | None = None,
                 record_schema: int | None = None,
                 priority: int = 0,
                 client: str | None = None) -> bool:
        """Ensure a row exists for ``fingerprint`` (``pending`` when
        new); returns True if this call created it.

        ``priority``/``client`` are the service-plane columns: workers
        drain higher priorities first (ties oldest-first) and ``client``
        attributes the job for quotas and queries.  Re-registering an
        existing row never changes them (the first submission wins).
        """
        if record_schema is None:
            from repro.engine.record import SCHEMA_VERSION

            record_schema = SCHEMA_VERSION
        now = self.clock()
        cur = self._connect().execute(
            "INSERT OR IGNORE INTO runs (fingerprint, algorithm, "
            "dataset, graph_fingerprint, config_json, seed, "
            "record_schema, status, created_at, updated_at, "
            "priority, client) "
            "VALUES (?, ?, ?, ?, ?, ?, ?, 'pending', ?, ?, ?, ?)",
            (fingerprint, algorithm,
             dataset if dataset is not None else config.get("dataset"),
             graph_fingerprint,
             json.dumps(config, sort_keys=True, default=repr),
             seed, record_schema, now, now, int(priority), client))
        return cur.rowcount > 0

    def get(self, fingerprint: str) -> StoredRun | None:
        """The row for ``fingerprint``, or None."""
        row = self._connect().execute(
            "SELECT * FROM runs WHERE fingerprint = ?",
            (fingerprint,)).fetchone()
        return _row_to_run(row) if row is not None else None

    def find(self, prefix: str) -> list[StoredRun]:
        """Rows whose fingerprint starts with ``prefix`` (CLI ``show``
        convenience; ``cell:`` may be omitted)."""
        if not prefix.startswith("cell:"):
            prefix = f"cell:{prefix}"
        rows = self._connect().execute(
            "SELECT * FROM runs WHERE fingerprint LIKE ? "
            "ORDER BY fingerprint",
            (prefix.replace("%", "") + "%",)).fetchall()
        return [_row_to_run(r) for r in rows]

    def lookup(self, fingerprint: str) -> "RunRecord | None":
        """The stored record of a ``done`` row, served bit-identically
        via :meth:`RunRecord.from_json`; None for any other state."""
        row = self._connect().execute(
            "SELECT record_json FROM runs WHERE fingerprint = ? AND "
            "status = 'done'", (fingerprint,)).fetchone()
        if row is None or row["record_json"] is None:
            return None
        self.hits += 1
        _count(HITS_COUNTER)
        from repro.engine.record import RunRecord

        return RunRecord.from_json(row["record_json"])

    # -------------------------------------------------------------- #
    # lease lifecycle
    # -------------------------------------------------------------- #

    def claim(self, fingerprint: str,
              lease_seconds: float | None = None) -> bool:
        """Atomically take the lease on a claimable row.

        Claimable: ``pending``, ``error`` (failed cells re-run), or
        ``leased`` with an expired lease (dead worker).  Exactly one of
        any number of concurrent claimants wins — the ``UPDATE`` runs
        under ``BEGIN IMMEDIATE`` and re-checks the state it read.
        """
        lease = self.lease_seconds if lease_seconds is None \
            else float(lease_seconds)
        conn = self._connect()
        now = self.clock()
        conn.execute("BEGIN IMMEDIATE")
        try:
            row = conn.execute(
                "SELECT status, lease_expires_at FROM runs WHERE "
                "fingerprint = ?", (fingerprint,)).fetchone()
            if row is None:
                return False
            status = row["status"]
            stale = (status == "leased"
                     and row["lease_expires_at"] is not None
                     and row["lease_expires_at"] < now)
            if status not in ("pending", "error") and not stale:
                return False
            conn.execute(
                "UPDATE runs SET status='leased', worker=?, "
                "lease_expires_at=?, heartbeat_at=?, "
                "attempts=attempts+1, updated_at=? WHERE fingerprint=?",
                (self.worker_id, now + lease, now, now, fingerprint))
        finally:
            conn.execute("COMMIT")
        self.claims += 1
        _count(CLAIMS_COUNTER)
        if stale:
            self.stale_reclaims += 1
            _count(STALE_COUNTER)
        return True

    def claim_next(self, lease_seconds: float | None = None, *,
                   algorithm: str | Iterable[str] | None = None,
                   include_errors: bool = False) -> StoredRun | None:
        """Atomically claim the next claimable row, priority-first.

        The worker-fleet entry point (:mod:`repro.service.worker`):
        picks the highest-``priority`` claimable row (ties: oldest
        ``created_at``, then fingerprint — deterministic), skipping
        rows whose ``cancel_requested`` flag is set.  Claimable means
        ``pending`` or a ``leased`` row whose lease expired (dead
        worker); ``error`` rows are excluded unless
        ``include_errors=True`` so a persistently crashing cell cannot
        trap the fleet in a retry loop (``store resume`` re-runs them
        deliberately).  Returns the claimed row (re-read after the
        lease was taken) or ``None`` when nothing is claimable.
        """
        lease = self.lease_seconds if lease_seconds is None \
            else float(lease_seconds)
        conn = self._connect()
        now = self.clock()
        statuses = ["pending", "error"] if include_errors \
            else ["pending"]
        marks = ",".join("?" for _ in statuses)
        params: list[Any] = [*statuses, now]
        algo_clause = ""
        if algorithm is not None:
            wanted = [algorithm] if isinstance(algorithm, str) \
                else list(algorithm)
            algo_clause = (" AND algorithm IN ("
                           + ",".join("?" for _ in wanted) + ")")
            params.extend(wanted)
        conn.execute("BEGIN IMMEDIATE")
        try:
            row = conn.execute(
                f"SELECT fingerprint, status, lease_expires_at "
                f"FROM runs WHERE cancel_requested=0 AND "
                f"(status IN ({marks}) OR (status='leased' AND "
                f"lease_expires_at IS NOT NULL AND "
                f"lease_expires_at < ?)){algo_clause} "
                f"ORDER BY priority DESC, created_at, fingerprint "
                f"LIMIT 1", params).fetchone()
            if row is None:
                return None
            fingerprint = row["fingerprint"]
            stale = row["status"] == "leased"
            conn.execute(
                "UPDATE runs SET status='leased', worker=?, "
                "lease_expires_at=?, heartbeat_at=?, "
                "attempts=attempts+1, updated_at=? WHERE fingerprint=?",
                (self.worker_id, now + lease, now, now, fingerprint))
        finally:
            conn.execute("COMMIT")
        self.claims += 1
        _count(CLAIMS_COUNTER)
        if stale:
            self.stale_reclaims += 1
            _count(STALE_COUNTER)
        return self.get(fingerprint)

    def request_cancel(self, fingerprint: str) -> bool:
        """Flag a job so the worker fleet never (re)starts it.

        Sets ``cancel_requested`` on any non-``done`` row; workers
        skip flagged rows between rounds (:meth:`claim_next`) and a
        worker that already holds the lease checks the flag before
        executing, releasing the row instead.  Rows that finished
        before the flag landed stay ``done`` — cancellation never
        un-publishes a result.  Returns True when a row was flagged.
        """
        cur = self._connect().execute(
            "UPDATE runs SET cancel_requested=1, updated_at=? "
            "WHERE fingerprint=? AND status != 'done'",
            (self.clock(), fingerprint))
        if cur.rowcount > 0:
            self.cancels += 1
            _count(CANCELS_COUNTER)
            return True
        return False

    def heartbeat(self, fingerprint: str,
                  lease_seconds: float | None = None) -> bool:
        """Refresh this worker's lease; False if the lease was lost."""
        lease = self.lease_seconds if lease_seconds is None \
            else float(lease_seconds)
        now = self.clock()
        cur = self._connect().execute(
            "UPDATE runs SET heartbeat_at=?, lease_expires_at=?, "
            "updated_at=? WHERE fingerprint=? AND worker=? AND "
            "status='leased'",
            (now, now + lease, now, fingerprint, self.worker_id))
        return cur.rowcount > 0

    def complete(self, fingerprint: str, record: "RunRecord") -> None:
        """Persist the outcome of a leased cell (``done`` or ``error``
        by ``record.status``) and drop the lease."""
        now = self.clock()
        error = record.error or {}
        self._connect().execute(
            "UPDATE runs SET status=?, record_json=?, error_type=?, "
            "error_message=?, worker=NULL, lease_expires_at=NULL, "
            "heartbeat_at=NULL, updated_at=? WHERE fingerprint=?",
            ("done" if record.ok else "error", record.to_json(),
             error.get("type"), error.get("message"), now, fingerprint))

    def release(self, fingerprint: str) -> bool:
        """Hand a leased row back to ``pending`` (interrupted worker on
        its way out); False if this worker no longer held it.

        Clears ``worker`` *and* ``heartbeat_at`` — a claimable row must
        never advertise a dead worker in ``store ls``.
        """
        cur = self._connect().execute(
            "UPDATE runs SET status='pending', worker=NULL, "
            "lease_expires_at=NULL, heartbeat_at=NULL, updated_at=? "
            "WHERE fingerprint=? AND worker=? AND status='leased'",
            (self.clock(), fingerprint, self.worker_id))
        return cur.rowcount > 0

    # -------------------------------------------------------------- #
    # shared metadata (worker-fleet side channel)
    # -------------------------------------------------------------- #

    def meta_get(self, key: str) -> str | None:
        """A value from the ``store_meta`` key/value table."""
        row = self._connect().execute(
            "SELECT value FROM store_meta WHERE key=?", (key,)
        ).fetchone()
        return row["value"] if row is not None else None

    def meta_set(self, key: str, value: str) -> None:
        """Upsert a ``store_meta`` value.  The ``schema`` key is the
        store's own and cannot be overwritten through this path.

        The worker fleet uses this as its tiny coordination channel:
        e.g. ``shm:<graph_fingerprint>`` carries the shared-memory
        segment descriptor a co-located worker published, so siblings
        attach the staged graph zero-copy instead of rebuilding it.
        """
        if key == "schema":
            raise ValueError("'schema' is reserved")
        self._connect().execute(
            "INSERT INTO store_meta (key, value) VALUES (?, ?) "
            "ON CONFLICT(key) DO UPDATE SET value=excluded.value",
            (key, value))

    def meta_delete(self, key: str) -> bool:
        """Drop a ``store_meta`` value; True if it existed."""
        if key == "schema":
            raise ValueError("'schema' is reserved")
        cur = self._connect().execute(
            "DELETE FROM store_meta WHERE key=?", (key,))
        return cur.rowcount > 0

    # -------------------------------------------------------------- #
    # introspection and maintenance
    # -------------------------------------------------------------- #

    def runs(self, status: str | Iterable[str] | None = None
             ) -> list[StoredRun]:
        """All rows, optionally filtered by status(es), oldest first."""
        conn = self._connect()
        if status is None:
            rows = conn.execute(
                "SELECT * FROM runs ORDER BY created_at, fingerprint"
            ).fetchall()
        else:
            wanted = [status] if isinstance(status, str) else list(status)
            marks = ",".join("?" for _ in wanted)
            rows = conn.execute(
                f"SELECT * FROM runs WHERE status IN ({marks}) "
                "ORDER BY created_at, fingerprint", wanted).fetchall()
        return [_row_to_run(r) for r in rows]

    def select(
        self,
        *,
        algorithm: str | Iterable[str] | None = None,
        dataset: str | Iterable[str] | None = None,
        status: str | Iterable[str] | None = None,
        client: str | Iterable[str] | None = None,
        created_after: float | None = None,
        created_before: float | None = None,
    ) -> list[StoredRun]:
        """SQL-side filtered rows, oldest first.

        The read path shared by ``store ls`` and the analysis plane
        (:mod:`repro.analysis.queries`): the indexed columns —
        ``algorithm``, ``dataset``, ``status``, ``created_at`` —
        narrow in SQLite; anything living inside ``config_json`` or
        ``record_json`` (platform, devices, labels, git sha) is the
        caller's Python-side refinement.  Every filter accepts one
        value or an iterable of values; ``None`` means "any".
        """
        clauses: list[str] = []
        params: list[Any] = []
        for column, value in (("algorithm", algorithm),
                              ("dataset", dataset),
                              ("status", status),
                              ("client", client)):
            if value is None:
                continue
            wanted = [value] if isinstance(value, str) else list(value)
            marks = ",".join("?" for _ in wanted)
            clauses.append(f"{column} IN ({marks})")
            params.extend(wanted)
        if created_after is not None:
            clauses.append("created_at >= ?")
            params.append(float(created_after))
        if created_before is not None:
            clauses.append("created_at <= ?")
            params.append(float(created_before))
        where = f" WHERE {' AND '.join(clauses)}" if clauses else ""
        rows = self._connect().execute(
            f"SELECT * FROM runs{where} "
            "ORDER BY created_at, fingerprint", params).fetchall()
        return [_row_to_run(r) for r in rows]

    def counts(self) -> dict[str, int]:
        """Row counts per lifecycle status (absent statuses → 0)."""
        out = {s: 0 for s in STATUSES}
        for row in self._connect().execute(
                "SELECT status, COUNT(*) AS n FROM runs GROUP BY status"):
            out[row["status"]] = row["n"]
        return out

    def reclaim_stale(self) -> int:
        """Move every expired lease back to ``pending``; returns the
        number of rows reclaimed.  The dead worker's identity and last
        heartbeat are cleared with the lease."""
        now = self.clock()
        cur = self._connect().execute(
            "UPDATE runs SET status='pending', worker=NULL, "
            "lease_expires_at=NULL, heartbeat_at=NULL, updated_at=? "
            "WHERE status='leased' "
            "AND lease_expires_at IS NOT NULL AND lease_expires_at < ?",
            (now, now))
        n = cur.rowcount
        for _ in range(n):
            _count(STALE_COUNTER)
        self.stale_reclaims += n
        return n

    def gc(self, prune_errors: bool = False) -> dict[str, int]:
        """Housekeeping: reclaim stale leases and (optionally) delete
        ``error`` rows so their cells re-register from scratch."""
        out = {"stale_reclaimed": self.reclaim_stale(),
               "errors_pruned": 0}
        if prune_errors:
            cur = self._connect().execute(
                "DELETE FROM runs WHERE status='error'")
            out["errors_pruned"] = cur.rowcount
        return out

    def export(self) -> dict[str, Any]:
        """The whole store as one JSON-safe document (schema, per-status
        counts, every row with its parsed record)."""
        runs = []
        for r in self.runs():
            doc: dict[str, Any] = {
                "fingerprint": r.fingerprint,
                "algorithm": r.algorithm,
                "dataset": r.dataset,
                "graph_fingerprint": r.graph_fingerprint,
                "seed": r.seed,
                "record_schema": r.record_schema,
                "status": r.status,
                "state": r.state,
                "attempts": r.attempts,
                "priority": r.priority,
                "client": r.client,
                "cancel_requested": r.cancel_requested,
                "config": r.config,
                "error_type": r.error_type,
                "error_message": r.error_message,
                "record": json.loads(r.record_json)
                if r.record_json is not None else None,
            }
            runs.append(doc)
        return {
            "schema": STORE_SCHEMA_VERSION,
            "path": str(self.path),
            "counts": self.counts(),
            "runs": runs,
        }


def resolve_store(store: "RunStore | Path | str | None",
                  use_env: bool = True) -> "RunStore | None":
    """Normalise a ``store=`` argument: pass instances through, wrap
    paths, and (for ``None``, when ``use_env``) fall back to the
    ``REPRO_RUN_STORE`` environment variable."""
    if isinstance(store, RunStore):
        return store
    if store is not None:
        return RunStore(store)
    if use_env:
        env = os.environ.get(RUN_STORE_ENV)
        if env:
            return RunStore(env)
    return None
