"""Content-addressed cell fingerprints and config (de)normalisation.

A grid cell's identity in the run store is *what it computes*, not where
it sat in some grid: the fingerprint hashes the algorithm name, the
fully normalised configuration (platform/CPU specs flattened to plain
dicts, overrides coerced to JSON), the effective per-cell seed, the
input graph's content fingerprint (:func:`~repro.telemetry.provenance.
graph_fingerprint` — the same hash the provenance manifest and the
graph cache use) and the :data:`~repro.engine.record.SCHEMA_VERSION` of
the records being stored.  Two cells with the same fingerprint produce
bit-identical :class:`~repro.engine.record.RunRecord`\\ s, so a stored
``done`` row can stand in for a re-run; any change to the inputs — a
different seed, a rescaled platform, a record-schema bump — changes the
fingerprint and forces a fresh run instead of serving stale results.

The normalised config is stored alongside the fingerprint and is
*reconstructible*: :func:`cell_from_config` turns it back into a
:class:`~repro.engine.cells.Cell` (with its exact
:class:`~repro.engine.context.RunContext`), which is what lets
``repro-matching store resume`` re-run precisely the pending/failed
cells of a crashed sweep.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from typing import TYPE_CHECKING, Any

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.engine.cells import Cell
    from repro.engine.context import RunContext
    from repro.graph.csr import CSRGraph

__all__ = [
    "cell_config",
    "cell_fingerprint",
    "cell_from_config",
    "config_digest",
    "fingerprint_for",
]


def _builder_ref(build: Any) -> str | None:
    """``module:qualname`` of a module-level builder callable."""
    if build is None:
        return None
    return f"{build.__module__}:{build.__qualname__}"


def _import_builder(ref: str) -> Any:
    import importlib

    module, _, qualname = ref.partition(":")
    obj: Any = importlib.import_module(module)
    for part in qualname.split("."):
        obj = getattr(obj, part)
    return obj


def cell_config(cell: "Cell", ctx: "RunContext") -> dict[str, Any]:
    """The full normalised configuration of one materialised cell.

    Everything that determines the produced record appears here in a
    JSON-stable shape: the platform and CPU *specs* are flattened via
    ``dataclasses.asdict`` (name alone would collapse the harness's
    bandwidth-scaled variants onto their base platforms), the builder
    callable becomes its ``module:qualname`` reference, and ``seed`` is
    the *effective* per-cell seed (post
    :func:`~repro.engine.cells.derive_cell_seed`).  ``ctx`` must be the
    materialised context, not the base one.
    """
    from repro.engine.record import _coerce

    return {
        "algorithm": cell.algorithm_name,
        "dataset": cell.dataset,
        "quality": bool(cell.quality),
        "builder": _builder_ref(cell.build),
        "ctx_dataset": ctx.dataset,
        "platform": dataclasses.asdict(ctx.resolved_platform()),
        "cpu": dataclasses.asdict(ctx.resolved_cpu()),
        "num_devices": ctx.num_devices,
        "num_batches": ctx.num_batches,
        "pointing_engine": ctx.pointing_engine,
        "seed": ctx.seed,
        "overrides": _coerce(dict(cell.overrides)),
        "label": cell.label,
        "replicate": cell.replicate,
    }


def config_digest(config: dict[str, Any]) -> str:
    """Canonical JSON of a config dict (sorted keys, tight separators).

    Non-JSON override values degrade to ``repr`` — still deterministic
    for fingerprinting, though such cells cannot be resumed faithfully.
    """
    return json.dumps(config, sort_keys=True, separators=(",", ":"),
                      default=repr)


def cell_fingerprint(
    config: dict[str, Any],
    graph_fingerprint: str,
    record_schema: int | None = None,
) -> str:
    """Content hash addressing one cell in the run store.

    Covers the normalised ``config`` (which embeds algorithm name and
    effective seed), the input graph's content ``graph_fingerprint``,
    and the :class:`~repro.engine.record.RunRecord` schema version —
    bumping the record schema invalidates stored rows rather than
    serving records a newer reader cannot trust.
    """
    if record_schema is None:
        from repro.engine.record import SCHEMA_VERSION

        record_schema = SCHEMA_VERSION
    payload = (f"schema={record_schema};graph={graph_fingerprint};"
               f"config={config_digest(config)}")
    digest = hashlib.sha256(payload.encode()).hexdigest()
    return f"cell:{digest[:40]}"


def fingerprint_for(cell: "Cell", ctx: "RunContext",
                    graph: "CSRGraph") -> tuple[str, dict[str, Any], str]:
    """``(fingerprint, config, graph_fingerprint)`` for one bound cell."""
    from repro.telemetry.provenance import graph_fingerprint

    config = cell_config(cell, ctx)
    gfp = graph_fingerprint(graph)
    return cell_fingerprint(config, gfp), config, gfp


def _platform_from(d: dict[str, Any]):
    from repro.comm.topology import Interconnect
    from repro.gpusim.spec import DeviceSpec, PlatformSpec

    return PlatformSpec(
        name=d["name"],
        device=DeviceSpec(**d["device"]),
        max_devices=d["max_devices"],
        gpu_link=Interconnect(**d["gpu_link"]),
        host_link=Interconnect(**d["host_link"]),
    )


def _cpu_from(d: dict[str, Any]):
    from repro.gpusim.spec import CpuSpec

    return CpuSpec(**d)


def cell_from_config(config: dict[str, Any]) -> "Cell":
    """Reconstruct the :class:`~repro.engine.cells.Cell` (with its exact
    context) that :func:`cell_config` described.

    The reconstruction is exact by design: platform/CPU specs rebuild
    from their flattened dicts, the effective seed is pinned as the
    cell's explicit seed, and re-fingerprinting the reconstructed cell
    yields the original fingerprint — which is how ``store resume``
    lands its records on the same rows.

    A cell may name no graph source of its own and still resume: when
    its *context* was derived for a dataset (``ctx_dataset``, e.g. a
    ``sweep -d NAME`` grid, which passes the loaded graph in-process),
    the caller is expected to reload that dataset and pass it as the
    shared ``graph`` to :func:`~repro.engine.cells.run_cells` — the
    rebuilt cell keeps ``dataset=None`` so its config digest (and thus
    its fingerprint) is unchanged.

    Raises
    ------
    ValueError
        For cells that cannot be reconstructed at all: no registry
        dataset, no importable builder reference, and no context
        dataset to reload the shared graph from.
    """
    from repro.engine.cells import Cell
    from repro.engine.context import RunContext

    build = None
    if config.get("builder"):
        try:
            build = _import_builder(config["builder"])
        except (ImportError, AttributeError) as exc:
            raise ValueError(
                f"cell builder {config['builder']!r} is not importable: "
                f"{exc}"
            ) from exc
    if config.get("dataset") is None and build is None \
            and config.get("ctx_dataset") is None:
        raise ValueError(
            "cell is not resumable: it names no registry dataset, no "
            "builder and no context dataset (its graph was passed "
            "in-process to run_cells)"
        )
    ctx = RunContext(
        platform=_platform_from(config["platform"]),
        cpu=_cpu_from(config["cpu"]),
        num_devices=config["num_devices"],
        num_batches=config["num_batches"],
        seed=config["seed"],
        pointing_engine=config["pointing_engine"],
        dataset=config["ctx_dataset"],
    )
    return Cell(
        config["algorithm"],
        dataset=config["dataset"],
        quality=config["quality"],
        build=build,
        ctx=ctx,
        overrides=dict(config["overrides"] or {}),
        seed=config["seed"],
        label=config["label"],
        replicate=config.get("replicate"),
    )
