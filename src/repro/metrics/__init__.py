"""Quality and performance metrics.

Implements the paper's evaluation quantities: matching-quality percentage
difference against the optimum (Table II), the MMEPS Figure-of-Merit
(Table VI), and the warp-edge-work / occupancy summaries behind Figs. 8
and 11.
"""

from repro.metrics.fom import mmeps
from repro.metrics.quality import percent_below_optimal, geometric_mean
from repro.metrics.workstats import (
    edges_accessed_fraction,
    iterations_below_fraction,
)

__all__ = [
    "mmeps",
    "percent_below_optimal",
    "geometric_mean",
    "edges_accessed_fraction",
    "iterations_below_fraction",
]
