"""Per-iteration work statistics (Fig. 8's headline numbers).

The paper summarises warp-edge work as: *"for 90% of the iterations, less
than 20% of the edges are accessed"*.  These helpers turn an LD run's
``stats['edges_scanned']`` series into that kind of statement.
"""

from __future__ import annotations

import numpy as np

__all__ = ["edges_accessed_fraction", "iterations_below_fraction"]


def edges_accessed_fraction(
    edges_scanned: np.ndarray, total_directed_edges: int
) -> np.ndarray:
    """Per-iteration fraction of the graph's adjacency entries scanned."""
    if total_directed_edges <= 0:
        raise ValueError("graph has no edges")
    return np.asarray(edges_scanned, dtype=np.float64) / total_directed_edges


def iterations_below_fraction(
    edges_scanned: np.ndarray,
    total_directed_edges: int,
    threshold: float = 0.2,
) -> float:
    """Fraction of iterations touching less than ``threshold`` of the
    edges — the paper's "90% of the iterations access <20%" metric."""
    frac = edges_accessed_fraction(edges_scanned, total_directed_edges)
    if len(frac) == 0:
        return 0.0
    return float(np.count_nonzero(frac < threshold)) / len(frac)
