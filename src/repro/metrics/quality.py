"""Matching quality relative to the optimum.

Table II reports, per graph, ``100 · (w(M*) − w(M)) / w(M*)`` — the
percentage by which an approximate matching's weight falls short of
LEMON's optimum — and summarises with the geometric mean (≈ 6.38 for both
LD-GPU and SR-OMP on the SMALL instances).
"""

from __future__ import annotations

import math
from typing import Iterable

__all__ = ["percent_below_optimal", "geometric_mean"]


def percent_below_optimal(weight: float, optimal_weight: float) -> float:
    """Percentage difference from the optimal weight (lower is better)."""
    if optimal_weight <= 0:
        raise ValueError("optimal weight must be positive")
    if weight > optimal_weight * (1 + 1e-9):
        raise ValueError(
            f"matching weight {weight} exceeds the optimum "
            f"{optimal_weight} — not a valid comparison"
        )
    return 100.0 * (optimal_weight - min(weight, optimal_weight)) \
        / optimal_weight


def geometric_mean(values: Iterable[float]) -> float:
    """Geometric mean; zeros are floored at a tiny epsilon (a perfect
    score would otherwise zero the whole summary)."""
    vals = [max(float(v), 1e-12) for v in values]
    if not vals:
        raise ValueError("geometric mean of an empty sequence")
    return math.exp(sum(math.log(v) for v in vals) / len(vals))
