"""Figure of Merit: Mega-Matching Edges per Second (MMEPS).

§IV-D: *"we correlate the rate at which edges are committed to the
matching"* — matched edges (in millions) divided by the execution time of
the pointing/matching phases.  Higher is better; it rewards both quality
(more matched edges) and speed, making heterogeneous implementations
comparable.
"""

from __future__ import annotations

from repro.matching.types import MatchResult

__all__ = ["mmeps"]


def mmeps(result: MatchResult, seconds: float | None = None) -> float:
    """MMEPS of a matching run.

    ``seconds`` defaults to the result's modeled ``sim_time``; pass a
    measured wall time to rate a real execution instead.
    """
    t = seconds if seconds is not None else result.sim_time
    if t is None:
        raise ValueError(
            "result carries no sim_time; pass an explicit seconds value"
        )
    if t <= 0:
        raise ValueError("time must be positive")
    return (result.num_matched_edges / 1e6) / t
