"""repro — multi-GPU locally dominant weighted graph matching.

A complete, simulator-backed reproduction of *"Efficient Weighted Graph
Matching on GPUs"* (Mandulak, Ghosh, Ferdous, Halappanavar, Slota —
SC 2024): the LD-GPU multi-GPU ½-approximate matching algorithm with
edge-balanced partitioning, batched dual-buffer streaming and NCCL-style
collectives, plus every baseline the paper evaluates against (Suitor
CPU/GPU, exact blossom, greedy, LocalMax, auction, cuGraph-style MG).

Quick start::

    from repro import rmat_graph, ld_gpu, ld_seq

    g = rmat_graph(scale=14, edge_factor=8, seed=1)
    result = ld_gpu(g, num_devices=4)      # simulated DGX-A100
    print(result.summary())
    assert result.weight == ld_seq(g).weight   # Lemma III.1 in action

**The supported programmatic surface is** :mod:`repro.api` — job verbs
(``submit``/``status``/``result``/``cancel``/``query``) that work
identically against a local run store and a ``repro serve`` daemon
URL, plus synchronous ``run``/``sweep`` and an inline worker
``process``::

    import repro.api as api

    fp = api.submit("ld_gpu", dataset="GAP-kron", devices=4,
                    store="runs.db")       # or store="http://host:8787"
    api.process(store="runs.db")           # or run `repro worker`
    record = api.result(fp, store="runs.db", wait=True)

Everything re-exported here (graph constructors/generators, the
simulator specs, the matching algorithms, the engine's
``execute``/``RunContext``/``RunRecord``) is likewise public and
documented in ``docs/api.md``; names under any other module path are
implementation detail and may move between releases.
"""

from repro.graph import (
    CSRGraph,
    from_coo,
    from_edges,
    from_networkx,
    from_scipy_sparse,
    read_matrix_market,
    to_networkx,
    write_matrix_market,
)
from repro.graph.generators import (
    assign_uniform_weights,
    fem_mesh_3d,
    kmer_graph,
    mycielskian_graph,
    powerlaw_cluster_graph,
    queen_mesh,
    rmat_graph,
    similarity_graph,
    uniform_random_graph,
    webcrawl_graph,
)
from repro.gpusim import (
    A100,
    DGX_2,
    DGX_A100,
    DGX_A100_PCIE,
    V100,
    DeviceOOMError,
    DeviceSpec,
    PlatformSpec,
    Timeline,
)
from repro.graph import (
    connected_components,
    graph_stats,
    largest_component,
)
from repro.matching import (
    MatchResult,
    b_suitor,
    greedy_b_matching,
    path_growing_matching,
    random_augmentation_matching,
    two_thirds_matching,
    auction_matching,
    blossom_mwm,
    cugraph_mg_sim,
    greedy_matching,
    is_maximal_matching,
    is_valid_matching,
    ld_gpu,
    ld_seq,
    local_max,
    matching_weight,
    maximum_weight_matching,
    suitor_gpu_sim,
    suitor_omp_sim,
    suitor_seq,
    verify_result,
)
from repro.metrics import mmeps, percent_below_optimal
from repro.engine import (
    AlgorithmSpec,
    RunContext,
    RunRecord,
    execute,
)
from repro import api

__version__ = "1.0.0"

__all__ = [
    # graph
    "CSRGraph",
    "from_edges",
    "from_coo",
    "from_scipy_sparse",
    "from_networkx",
    "to_networkx",
    "read_matrix_market",
    "write_matrix_market",
    # generators
    "rmat_graph",
    "uniform_random_graph",
    "mycielskian_graph",
    "kmer_graph",
    "queen_mesh",
    "fem_mesh_3d",
    "powerlaw_cluster_graph",
    "webcrawl_graph",
    "similarity_graph",
    "assign_uniform_weights",
    # simulator
    "DeviceSpec",
    "PlatformSpec",
    "Timeline",
    "DeviceOOMError",
    "A100",
    "V100",
    "DGX_A100",
    "DGX_A100_PCIE",
    "DGX_2",
    # matching
    "MatchResult",
    "ld_seq",
    "ld_gpu",
    "suitor_seq",
    "suitor_omp_sim",
    "suitor_gpu_sim",
    "greedy_matching",
    "local_max",
    "auction_matching",
    "blossom_mwm",
    "maximum_weight_matching",
    "cugraph_mg_sim",
    "is_valid_matching",
    "is_maximal_matching",
    "matching_weight",
    "verify_result",
    # extensions
    "path_growing_matching",
    "two_thirds_matching",
    "random_augmentation_matching",
    "b_suitor",
    "greedy_b_matching",
    "graph_stats",
    "connected_components",
    "largest_component",
    # metrics
    "mmeps",
    "percent_below_optimal",
    # engine
    "AlgorithmSpec",
    "RunContext",
    "RunRecord",
    "execute",
    # the stable programmatic surface (job verbs + run/sweep/process)
    "api",
    "__version__",
]
