"""Command-line interface.

Five subcommands::

    repro-matching run --algorithm ld_gpu --dataset GAP-kron --devices 4
    repro-matching sweep --dataset GAP-kron --devices 1 2 4 8
    repro-matching experiment table1 [--quick]
    repro-matching stats record.json
    repro-matching list [datasets|algorithms|experiments]

``run`` executes one algorithm on one dataset analog through the
:mod:`repro.engine` registry — any registered algorithm works with the
same flags, ``--json`` emits the machine-readable
:class:`~repro.engine.record.RunRecord`, and ``--metrics-out PATH``
exports the run's telemetry (Prometheus text for ``.prom``, a JSON
metrics document with provenance otherwise); ``sweep`` runs LD-GPU over
a configuration grid; ``experiment`` regenerates a paper table/figure;
``stats`` prints the paper-claim metrics (communication fraction,
edges-accessed fractions) of a stored RunRecord.
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable

from repro.engine import (
    MetricsSink,
    RunContext,
    TraceSink,
    algorithm_names,
    execute,
)
from repro.harness import experiments as exp
from repro.harness.datasets import (
    DATASETS,
    PLATFORMS,
    load_dataset,
    quality_instance,
)
from repro.harness.report import format_table

__all__ = ["main", "build_parser"]

EXPERIMENTS: dict[str, Callable[..., "exp.ExperimentResult"]] = {
    "table1": exp.table1_execution_times,
    "table2": exp.table2_quality,
    "table3": exp.table3_a100_vs_v100,
    "table4": exp.table4_single_gpu,
    "table5": exp.table5_cugraph,
    "table6": exp.table6_fom,
    "fig4": exp.fig4_strong_scaling,
    "fig5": exp.fig5_components,
    "fig6": exp.fig6_batch_scaling,
    "fig7": exp.fig7_kmer_components,
    "fig8": exp.fig8_warp_work,
    "fig9": exp.fig9_interconnect,
    "fig10": exp.fig10_platforms,
    "fig11": exp.fig11_occupancy,
}


def build_parser() -> argparse.ArgumentParser:
    """The argparse tree (exposed for tests)."""
    p = argparse.ArgumentParser(
        prog="repro-matching",
        description="Multi-GPU locally dominant weighted matching "
                    "(SC'24 reproduction)",
    )
    sub = p.add_subparsers(dest="command", required=True)

    runp = sub.add_parser("run", help="run one algorithm on one dataset")
    runp.add_argument("--algorithm", "-a", required=True,
                      choices=algorithm_names())
    runp.add_argument("--dataset", "-d", required=True,
                      choices=sorted(DATASETS))
    runp.add_argument("--devices", "-n", type=int, default=1,
                      help="simulated GPUs (multi-GPU algorithms)")
    runp.add_argument("--batches", "-b", type=int, default=None,
                      help="batches per device (ld_gpu; default auto)")
    runp.add_argument("--seed", type=int, default=None,
                      help="RNG seed forwarded to randomised algorithms")
    runp.add_argument("--quality", action="store_true",
                      help="run on the dataset's tiny blossom-tractable "
                           "quality instance instead of the full analog")
    runp.add_argument("--json", action="store_true",
                      help="print the structured RunRecord as JSON "
                           "instead of the human-readable summary")
    runp.add_argument("--profile", action="store_true",
                      help="print the per-iteration profiler table "
                           "(simulator-backed algorithms)")
    runp.add_argument("--trace", metavar="PATH", default=None,
                      help="write a chrome://tracing JSON of the run")
    runp.add_argument("--metrics-out", metavar="PATH", default=None,
                      help="export run telemetry; .prom writes "
                           "Prometheus text, anything else a JSON "
                           "metrics document with provenance")

    statp = sub.add_parser(
        "stats", help="print paper-claim metrics of a stored RunRecord"
    )
    statp.add_argument("record", metavar="RECORD_JSON",
                       help="path to a RunRecord written by run --json")
    statp.add_argument("--threshold", type=float, default=0.2,
                       help="edges-accessed threshold for the Fig. 8 "
                            "iteration fraction (default 0.2)")

    expp = sub.add_parser("experiment",
                          help="regenerate a paper table/figure")
    expp.add_argument("name", choices=sorted(EXPERIMENTS))
    expp.add_argument("--quick", action="store_true",
                      help="reduced sweep (seconds instead of minutes)")

    sweepp = sub.add_parser(
        "sweep", help="sweep LD-GPU over device/batch configurations"
    )
    sweepp.add_argument("--dataset", "-d", required=True,
                        choices=sorted(DATASETS))
    sweepp.add_argument("--devices", "-n", type=int, nargs="+",
                        default=[1, 2, 4, 8])
    sweepp.add_argument("--batches", "-b", type=int, nargs="+",
                        default=None,
                        help="batch counts (default: auto only)")
    sweepp.add_argument("--platform", choices=sorted(PLATFORMS),
                        default="DGX-A100")

    listp = sub.add_parser("list", help="list registered entities")
    listp.add_argument("what", choices=["datasets", "algorithms",
                                        "experiments"])
    return p


def _cmd_run(args: argparse.Namespace) -> int:
    g = quality_instance(args.dataset) if args.quality \
        else load_dataset(args.dataset)
    sinks: list = []
    trace_sink = metrics_sink = None
    if args.trace:
        trace_sink = TraceSink(path=args.trace)
        sinks.append(trace_sink)
    if args.metrics_out:
        metrics_sink = MetricsSink()
        sinks.append(metrics_sink)
    ctx = RunContext.for_dataset(
        args.dataset,
        graph=g,
        num_devices=args.devices,
        num_batches=args.batches,
        seed=args.seed,
        sinks=tuple(sinks),
    )
    record = execute(args.algorithm, g, ctx)
    if metrics_sink is not None:
        from repro.telemetry import write_metrics

        fmt = write_metrics(args.metrics_out,
                            metrics_sink.last_snapshot, record)
    if args.json:
        print(record.to_json(indent=1))
        return 0
    result = record.result
    print(f"{g!r}")
    print(result.summary())
    if result.timeline is not None:
        if args.profile:
            from repro.gpusim.report import profile_report

            print(profile_report(record))
        else:
            frac = result.timeline.fractions()
            rows = [[k, 100.0 * v] for k, v in frac.items() if v > 0]
            print(format_table(["component", "% time"], rows,
                               floatfmt=".1f"))
    if trace_sink is not None and trace_sink.saved_paths:
        print(f"trace written to {trace_sink.saved_paths[0]}")
    if metrics_sink is not None:
        print(f"metrics ({fmt}) written to {args.metrics_out}")
    return 0


def _cmd_stats(args: argparse.Namespace) -> int:
    """Paper-claim metrics of a stored RunRecord (``run --json`` output)."""
    from repro.engine import RunRecord
    from repro.gpusim.timeline import COMPONENTS
    from repro.metrics.workstats import (
        edges_accessed_fraction,
        iterations_below_fraction,
    )

    with open(args.record, "rt") as fh:
        record = RunRecord.from_json(fh.read())
    print(f"{record.algorithm} on {record.graph}"
          f" ({record.num_vertices} vertices, "
          f"{record.num_directed_edges} directed edges)")
    if record.provenance:
        prov = record.provenance
        bits = [f"{k}={prov[k]}" for k in
                ("git", "python", "numpy", "seed",
                 "dataset_fingerprint") if prov.get(k) is not None]
        print("provenance: " + ", ".join(bits))

    totals = record.timeline_totals
    if totals:
        t = sum(totals.values())
        comm = sum(totals.get(c, 0.0) for c in COMPONENTS
                   if c not in ("pointing", "matching"))
        rows = [[c, 1e3 * totals[c], 100.0 * totals[c] / t if t else 0.0]
                for c in COMPONENTS if c in totals]
        print(format_table(["component", "time (ms)", "% time"], rows,
                           floatfmt=".3f"))
        print(f"communication fraction: "
              f"{100.0 * comm / t if t else 0.0:.1f}% "
              f"(paper: ~90% for multi-GPU runs)")
    else:
        print("no timeline — not a simulator-backed run")

    scanned = record.extra.get("edges_scanned")
    if scanned and record.num_directed_edges:
        import numpy as np

        frac = edges_accessed_fraction(np.asarray(scanned),
                                       record.num_directed_edges)
        below = iterations_below_fraction(
            np.asarray(scanned), record.num_directed_edges,
            args.threshold)
        print(f"edges accessed per iteration: "
              f"min {100.0 * frac.min():.1f}%, "
              f"median {100.0 * float(np.median(frac)):.1f}%, "
              f"max {100.0 * frac.max():.1f}%")
        print(f"iterations touching <{100.0 * args.threshold:.0f}% of "
              f"edges: {100.0 * below:.1f}% "
              f"(paper: ~90% of iterations under 20%)")
    else:
        print("no edges_scanned series — run with collect_stats "
              "(the default) to record Fig. 8 statistics")
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    from repro.harness.sweep import sweep_ld_gpu

    ctx = RunContext.for_dataset(args.dataset,
                                 platform=PLATFORMS[args.platform])
    g = load_dataset(args.dataset)
    batches = tuple(args.batches) if args.batches else (None,)
    result = sweep_ld_gpu(g, platforms=(ctx.platform,),
                          device_counts=tuple(args.devices),
                          batch_counts=batches)
    print(result.render())
    best = result.best
    print(f"\nbest: {best.num_devices} GPUs x "
          f"{best.num_batches} batches -> {best.time_s:.4f}s")
    return 0


def _cmd_experiment(args: argparse.Namespace) -> int:
    result = EXPERIMENTS[args.name](quick=args.quick)
    print(result.render())
    return 0


def _cmd_list(args: argparse.Namespace) -> int:
    if args.what == "datasets":
        rows = [
            [s.name, s.group, s.paper_vertices, s.paper_edges, s.notes]
            for s in DATASETS.values()
        ]
        print(format_table(
            ["name", "group", "paper |V|", "paper |E|", "notes"], rows
        ))
    elif args.what == "algorithms":
        from repro.engine import algorithm_specs

        rows = [
            [s.name, ", ".join(s.capability_tags), s.summary]
            for s in algorithm_specs()
        ]
        print(format_table(["algorithm", "capabilities", "summary"],
                           rows))
    else:
        for name in sorted(EXPERIMENTS):
            print(name)
    return 0


def main(argv: list[str] | None = None) -> int:
    """Entry point for the ``repro-matching`` console script."""
    args = build_parser().parse_args(argv)
    if args.command == "run":
        return _cmd_run(args)
    if args.command == "sweep":
        return _cmd_sweep(args)
    if args.command == "experiment":
        return _cmd_experiment(args)
    if args.command == "stats":
        return _cmd_stats(args)
    if args.command == "list":
        return _cmd_list(args)
    return 1  # pragma: no cover - argparse enforces the choices


if __name__ == "__main__":
    sys.exit(main())
