"""Command-line interface.

Four subcommands::

    repro-matching run --algorithm ld_gpu --dataset GAP-kron --devices 4
    repro-matching sweep --dataset GAP-kron --devices 1 2 4 8
    repro-matching experiment table1 [--quick]
    repro-matching list [datasets|algorithms|experiments]

``run`` executes one algorithm on one dataset analog and prints the
result summary; ``sweep`` runs LD-GPU over a configuration grid;
``experiment`` regenerates a paper table/figure.
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable

from repro.harness import experiments as exp
from repro.harness.datasets import (
    DATASETS,
    load_dataset,
    scaled_cpu,
    scaled_platform,
)
from repro.harness.runners import ALGORITHMS, run_algorithm
from repro.harness.report import format_table

__all__ = ["main", "build_parser"]

EXPERIMENTS: dict[str, Callable[..., "exp.ExperimentResult"]] = {
    "table1": exp.table1_execution_times,
    "table2": exp.table2_quality,
    "table3": exp.table3_a100_vs_v100,
    "table4": exp.table4_single_gpu,
    "table5": exp.table5_cugraph,
    "table6": exp.table6_fom,
    "fig4": exp.fig4_strong_scaling,
    "fig5": exp.fig5_components,
    "fig6": exp.fig6_batch_scaling,
    "fig7": exp.fig7_kmer_components,
    "fig8": exp.fig8_warp_work,
    "fig9": exp.fig9_interconnect,
    "fig10": exp.fig10_platforms,
    "fig11": exp.fig11_occupancy,
}


def build_parser() -> argparse.ArgumentParser:
    """The argparse tree (exposed for tests)."""
    p = argparse.ArgumentParser(
        prog="repro-matching",
        description="Multi-GPU locally dominant weighted matching "
                    "(SC'24 reproduction)",
    )
    sub = p.add_subparsers(dest="command", required=True)

    runp = sub.add_parser("run", help="run one algorithm on one dataset")
    runp.add_argument("--algorithm", "-a", required=True,
                      choices=sorted(ALGORITHMS))
    runp.add_argument("--dataset", "-d", required=True,
                      choices=sorted(DATASETS))
    runp.add_argument("--devices", "-n", type=int, default=1,
                      help="simulated GPUs (ld_gpu / cugraph)")
    runp.add_argument("--batches", "-b", type=int, default=None,
                      help="batches per device (ld_gpu; default auto)")
    runp.add_argument("--profile", action="store_true",
                      help="print the per-iteration profiler table "
                           "(simulator-backed algorithms)")
    runp.add_argument("--trace", metavar="PATH", default=None,
                      help="write a chrome://tracing JSON of the run")

    expp = sub.add_parser("experiment",
                          help="regenerate a paper table/figure")
    expp.add_argument("name", choices=sorted(EXPERIMENTS))
    expp.add_argument("--quick", action="store_true",
                      help="reduced sweep (seconds instead of minutes)")

    sweepp = sub.add_parser(
        "sweep", help="sweep LD-GPU over device/batch configurations"
    )
    sweepp.add_argument("--dataset", "-d", required=True,
                        choices=sorted(DATASETS))
    sweepp.add_argument("--devices", "-n", type=int, nargs="+",
                        default=[1, 2, 4, 8])
    sweepp.add_argument("--batches", "-b", type=int, nargs="+",
                        default=None,
                        help="batch counts (default: auto only)")
    sweepp.add_argument("--platform", choices=["DGX-A100", "DGX-2",
                                               "DGX-A100-PCIe"],
                        default="DGX-A100")

    listp = sub.add_parser("list", help="list registered entities")
    listp.add_argument("what", choices=["datasets", "algorithms",
                                        "experiments"])
    return p


def _cmd_run(args: argparse.Namespace) -> int:
    g = load_dataset(args.dataset)
    kwargs: dict = {}
    if args.algorithm == "ld_gpu":
        kwargs = {
            "platform": scaled_platform(args.dataset),
            "num_devices": args.devices,
            "num_batches": args.batches,
        }
    elif args.algorithm == "cugraph":
        kwargs = {
            "platform": scaled_platform(args.dataset),
            "num_devices": args.devices,
        }
    elif args.algorithm == "sr_gpu":
        kwargs = {"spec": scaled_platform(args.dataset).device}
    elif args.algorithm == "sr_omp":
        kwargs = {"cpu": scaled_cpu(args.dataset)}
    result = run_algorithm(args.algorithm, g, **kwargs)
    print(f"{g!r}")
    print(result.summary())
    if result.timeline is not None:
        if args.profile:
            from repro.gpusim.report import profile_report

            print(profile_report(result))
        else:
            frac = result.timeline.fractions()
            rows = [[k, 100.0 * v] for k, v in frac.items() if v > 0]
            print(format_table(["component", "% time"], rows,
                               floatfmt=".1f"))
        if args.trace:
            from repro.gpusim.trace import Trace

            Trace.from_timeline(result.timeline).save(args.trace)
            print(f"trace written to {args.trace}")
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    from repro.gpusim.spec import DGX_2, DGX_A100, DGX_A100_PCIE
    from repro.harness.sweep import sweep_ld_gpu

    base = {"DGX-A100": DGX_A100, "DGX-2": DGX_2,
            "DGX-A100-PCIe": DGX_A100_PCIE}[args.platform]
    plat = scaled_platform(args.dataset, base)
    g = load_dataset(args.dataset)
    batches = tuple(args.batches) if args.batches else (None,)
    result = sweep_ld_gpu(g, platforms=(plat,),
                          device_counts=tuple(args.devices),
                          batch_counts=batches)
    print(result.render())
    best = result.best
    print(f"\nbest: {best.num_devices} GPUs x "
          f"{best.num_batches} batches -> {best.time_s:.4f}s")
    return 0


def _cmd_experiment(args: argparse.Namespace) -> int:
    result = EXPERIMENTS[args.name](quick=args.quick)
    print(result.render())
    return 0


def _cmd_list(args: argparse.Namespace) -> int:
    if args.what == "datasets":
        rows = [
            [s.name, s.group, s.paper_vertices, s.paper_edges, s.notes]
            for s in DATASETS.values()
        ]
        print(format_table(
            ["name", "group", "paper |V|", "paper |E|", "notes"], rows
        ))
    elif args.what == "algorithms":
        for name in sorted(ALGORITHMS):
            print(name)
    else:
        for name in sorted(EXPERIMENTS):
            print(name)
    return 0


def main(argv: list[str] | None = None) -> int:
    """Entry point for the ``repro-matching`` console script."""
    args = build_parser().parse_args(argv)
    if args.command == "run":
        return _cmd_run(args)
    if args.command == "sweep":
        return _cmd_sweep(args)
    if args.command == "experiment":
        return _cmd_experiment(args)
    if args.command == "list":
        return _cmd_list(args)
    return 1  # pragma: no cover - argparse enforces the choices


if __name__ == "__main__":
    sys.exit(main())
