"""Command-line interface.

Fifteen subcommands::

    repro-matching run --algorithm ld_gpu --dataset GAP-kron --devices 4
    repro-matching sweep --dataset GAP-kron --devices 1 2 4 8 --parallel 4
    repro-matching stream --dataset mouse_gene --engine incremental
    repro-matching bench --suite smoke --baseline benchmarks/baseline_smoke.json
    repro-matching experiment table1 [--quick] [--parallel N]
    repro-matching stats record.json
    repro-matching report --store runs.db --out report/ [--format html|md|json]
    repro-matching analysis query [filters...] [--metric M --group-by K...]
    repro-matching store ls|show FP|resume|export|gc [--store PATH]
    repro-matching serve --store runs.db [--port P] [--quota N]
    repro-matching worker --store runs.db [--max-cells N] [--idle-exit S]
    repro-matching submit -a ld_gpu -d GAP-kron [--priority N] [--wait]
    repro-matching job status|result|cancel FP [--store PATH|URL]
    repro-matching cache ls|clear|evict
    repro-matching list [datasets|algorithms|experiments]

``run``/``sweep``/``bench``/``stats``/``submit`` share one parent
parser, so the common flags — ``--platform``, ``--devices/-n``,
``--batches/-b``, ``--seed``, ``--json``, ``--metrics-out``,
``--store`` — spell and behave the same everywhere they apply (a flag
that cannot apply to a subcommand is a usage error, not silently
ignored).  Exit codes are uniform: **0** success, **1** runtime
failure or benchmark regression, **2** usage error (argparse's own
convention).

``run`` executes one algorithm on one dataset analog synchronously
(through :func:`repro.api.run`); ``sweep`` maps an LD-GPU
configuration grid through :func:`repro.api.sweep` (``--parallel N``
fans it out over worker processes, bit-identical to serial);
``stream`` drives the batch-dynamic plane (:mod:`repro.streaming`):
seeded or event-log-fed update batches through the incremental-repair
or from-scratch-recompute engine, verified against ``ld_seq`` on the
mutated graph unless ``--no-verify``;
``bench`` runs a fixed workload suite, writes ``BENCH_<suite>.json``
and gates against a committed baseline; ``experiment`` regenerates a
paper table/figure; ``stats`` prints the paper-claim metrics of a
stored RunRecord; ``report`` renders the analysis plane's one-command
story — recomputed paper tables, significance tests, bench
trajectories with the gate's verdict, provenance — as a standalone
no-JS HTML page (or markdown/JSON); ``analysis query`` is its
composable little sibling: typed filters over the store with optional
grouped aggregation; ``store`` inspects, resumes and maintains the
persistent run store (``--store PATH`` / ``REPRO_RUN_STORE`` on
``run``/``sweep``/``bench`` make those commands record into — and
serve finished cells from — the same store).

The service plane rides on the same store: ``serve`` runs the HTTP
daemon (:mod:`repro.service.daemon`), ``worker`` drains claimable
cells priority-first (any number of worker processes against one
store), ``submit`` registers a job without executing it, and ``job
status|result|cancel`` follow it through its lifecycle — their
``--store`` also accepts an ``http://`` daemon URL, making the CLI a
full remote client via :mod:`repro.api`.

``cache`` inspects the on-disk graph cache (``REPRO_GRAPH_CACHE*``);
``list algorithms`` includes each algorithm's capability tags
(``parallel-safe``/``serial-only`` among them).
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Callable

from repro.engine import MetricsSink, TraceSink, algorithm_names
from repro.harness import experiments as exp
from repro.harness.datasets import (
    DATASETS,
    PLATFORMS,
    load_dataset,
    quality_instance,
)
from repro.harness.report import format_table

__all__ = ["main", "build_parser", "EXIT_OK", "EXIT_FAILURE",
           "EXIT_USAGE"]

EXIT_OK = 0
EXIT_FAILURE = 1
EXIT_USAGE = 2

EXPERIMENTS: dict[str, Callable[..., "exp.ExperimentResult"]] = {
    "table1": exp.table1_execution_times,
    "table2": exp.table2_quality,
    "table3": exp.table3_a100_vs_v100,
    "table4": exp.table4_single_gpu,
    "table5": exp.table5_cugraph,
    "table6": exp.table6_fom,
    "fig4": exp.fig4_strong_scaling,
    "fig5": exp.fig5_components,
    "fig6": exp.fig6_batch_scaling,
    "fig7": exp.fig7_kmer_components,
    "fig8": exp.fig8_warp_work,
    "fig9": exp.fig9_interconnect,
    "fig10": exp.fig10_platforms,
    "fig11": exp.fig11_occupancy,
}


def build_parser() -> argparse.ArgumentParser:
    """The argparse tree (exposed for tests)."""
    # One parent for every execution-facing subcommand: same spelling,
    # same help, same defaults.  Subcommands that cannot honour a flag
    # reject it explicitly in their handler (exit 2), never ignore it.
    common = argparse.ArgumentParser(add_help=False)
    common.add_argument("--platform", choices=sorted(PLATFORMS),
                        default=None,
                        help="simulated platform (default: the "
                             "dataset's bandwidth-scaled DGX-A100)")
    common.add_argument("--devices", "-n", type=int, nargs="+",
                        default=None, metavar="N",
                        help="simulated GPU count(s); run takes one, "
                             "sweep a grid")
    common.add_argument("--batches", "-b", type=int, nargs="+",
                        default=None, metavar="B",
                        help="batches per device (default auto); run "
                             "takes one, sweep a grid")
    common.add_argument("--seed", type=int, default=None,
                        help="base RNG seed for randomised algorithms "
                             "(grids derive per-cell seeds from it)")
    from repro.matching.pointer_index import POINTING_ENGINES

    common.add_argument("--pointing-engine", choices=POINTING_ENGINES,
                        default=None, dest="pointing_engine",
                        help="host pointing engine for the locally "
                             "dominant algorithms: 'index' (sorted-"
                             "adjacency cursors, amortised O(m)) or "
                             "'segment' (per-round segmented arg-max); "
                             "default follows REPRO_POINTING_ENGINE, "
                             "then 'index'.  Bit-identical matchings "
                             "either way")
    common.add_argument("--json", action="store_true",
                        help="machine-readable JSON instead of the "
                             "human-readable rendering")
    common.add_argument("--metrics-out", metavar="PATH", default=None,
                        help="export telemetry; .prom writes Prometheus "
                             "text, anything else a JSON metrics "
                             "document")
    common.add_argument("--store", metavar="PATH", default=None,
                        help="persistent run store (SQLite): finished "
                             "cells are served from it with zero "
                             "recompute and every new record is "
                             "persisted; default $REPRO_RUN_STORE "
                             "when set, else no store")

    p = argparse.ArgumentParser(
        prog="repro-matching",
        description="Multi-GPU locally dominant weighted matching "
                    "(SC'24 reproduction)",
    )
    sub = p.add_subparsers(dest="command", required=True)

    runp = sub.add_parser("run", parents=[common],
                          help="run one algorithm on one dataset")
    runp.add_argument("--algorithm", "-a", required=True,
                      choices=algorithm_names())
    runp.add_argument("--dataset", "-d", required=True,
                      choices=sorted(DATASETS))
    runp.add_argument("--quality", action="store_true",
                      help="run on the dataset's tiny blossom-tractable "
                           "quality instance instead of the full analog")
    runp.add_argument("--profile", action="store_true",
                      help="print the per-iteration profiler table "
                           "(simulator-backed algorithms)")
    runp.add_argument("--trace", metavar="PATH", default=None,
                      help="write a chrome://tracing JSON of the run")
    runp.add_argument("--shards", type=int, default=None, metavar="K",
                      help="coreset algorithms only: partition edges "
                           "across K shards (default 4)")
    runp.add_argument("--parallel", type=int, default=0, metavar="N",
                      help="coreset algorithms only: execute shard "
                           "cells in N worker processes "
                           "(bit-identical to serial)")

    sweepp = sub.add_parser(
        "sweep", parents=[common],
        help="sweep LD-GPU over device/batch configurations",
    )
    sweepp.add_argument("--dataset", "-d", required=True,
                        choices=sorted(DATASETS))
    sweepp.add_argument("--parallel", type=int, default=0, metavar="N",
                        help="fan the grid out to N worker processes "
                             "(bit-identical to serial)")

    from repro.streaming.engine import STREAM_ENGINES

    streamp = sub.add_parser(
        "stream", parents=[common],
        help="stream update batches into a dataset and repair the "
             "matching incrementally",
    )
    streamp.add_argument("--dataset", "-d", required=True,
                         choices=sorted(DATASETS))
    streamp.add_argument("--quality", action="store_true",
                         help="stream against the dataset's tiny "
                              "quality instance instead of the full "
                              "analog")
    streamp.add_argument("--num-batches", type=int, default=8,
                         metavar="K", dest="num_batches",
                         help="generated update batches (default 8; "
                              "ignored with --events)")
    streamp.add_argument("--batch-size", type=int, default=32,
                         metavar="K", dest="batch_size",
                         help="ops per generated batch (default 32; "
                              "ignored with --events)")
    streamp.add_argument("--engine", choices=STREAM_ENGINES,
                         default="incremental", dest="stream_engine",
                         help="'incremental' repairs locally from the "
                              "affected frontier; 'recompute' reruns "
                              "ld_seq from scratch per batch. "
                              "Bit-identical matchings either way")
    streamp.add_argument("--events", metavar="PATH", default=None,
                         help="replay a recorded JSONL event log "
                              "instead of generating a stream")
    streamp.add_argument("--record", metavar="PATH", default=None,
                         help="save the applied stream as a JSONL "
                              "event log (replayable via --events)")
    streamp.add_argument("--no-verify", action="store_true",
                         dest="no_verify",
                         help="skip the final bit-identity check "
                              "against from-scratch ld_seq on the "
                              "mutated graph")

    benchp = sub.add_parser(
        "bench", parents=[common],
        help="run a benchmark suite and gate against a baseline",
    )
    from repro.harness.bench import SUITES

    benchp.add_argument("--suite", choices=sorted(SUITES),
                        default="smoke")
    benchp.add_argument("--repeats", type=int, default=3,
                        help="runs per workload; medians are reported")
    benchp.add_argument("--parallel", type=int, default=0, metavar="N",
                        help="worker processes for the workload grid")
    benchp.add_argument("--out", metavar="PATH", default=None,
                        help="report path (default BENCH_<suite>.json "
                             "in the current directory)")
    benchp.add_argument("--baseline", metavar="PATH", default=None,
                        help="baseline report to gate against (default "
                             "benchmarks/baseline_<suite>.json when "
                             "present)")
    benchp.add_argument("--tolerance", type=float, default=0.05,
                        help="relative slowdown allowed before the gate "
                             "fails (default 0.05)")

    statp = sub.add_parser(
        "stats", parents=[common],
        help="print paper-claim metrics of a stored RunRecord",
    )
    statp.add_argument("record", metavar="RECORD_JSON",
                       help="path to a RunRecord written by run --json")
    statp.add_argument("--threshold", type=float, default=0.2,
                       help="edges-accessed threshold for the Fig. 8 "
                            "iteration fraction (default 0.2)")

    expp = sub.add_parser("experiment",
                          help="regenerate a paper table/figure")
    expp.add_argument("name", choices=sorted(EXPERIMENTS))
    expp.add_argument("--quick", action="store_true",
                      help="reduced sweep (seconds instead of minutes)")
    expp.add_argument("--parallel", type=int, default=0, metavar="N",
                      help="worker processes for grid-shaped "
                           "experiments (ignored by the others)")
    expp.add_argument("--json", action="store_true",
                      help="print the table as a JSON document")
    expp.add_argument("--store", metavar="PATH", default=None,
                      help="run store for grid-shaped experiments "
                           "(ignored by the others); default "
                           "$REPRO_RUN_STORE")

    # store: inspect/resume the persistent run store.  --store rides on
    # each action (after the action word) via a tiny parent parser.
    storecommon = argparse.ArgumentParser(add_help=False)
    storecommon.add_argument("--store", metavar="PATH", default=None,
                             help="store database path (default "
                                  "$REPRO_RUN_STORE)")

    reportp = sub.add_parser(
        "report", parents=[storecommon],
        help="render the analysis report (paper tables, significance, "
             "bench trajectories, provenance) from a run store",
    )
    reportp.add_argument("--out", metavar="DIR", default="report",
                         help="output directory (default report/)")
    reportp.add_argument("--format", choices=["html", "md", "json"],
                         default="html",
                         help="html: standalone no-JS page "
                              "(index.html); md/json: the same data "
                              "for terminals/machines")
    reportp.add_argument("--since", metavar="SHA|DATE", default=None,
                         help="only analyse runs since an ISO date "
                              "(YYYY-MM-DD, on created_at) or whose "
                              "provenance git describe starts with SHA")
    reportp.add_argument("--suite", action="append", default=None,
                         metavar="NAME",
                         help="restrict bench trajectories to this "
                              "suite (repeatable; default all found)")
    reportp.add_argument("--bench-dir", metavar="DIR", default=None,
                         help="committed baseline directory (default "
                              "benchmarks/)")
    reportp.add_argument("--tolerance", type=float, default=0.05,
                         help="relative slowdown allowed before a "
                              "trajectory point is flagged (default "
                              "0.05, the bench gate's)")
    reportp.add_argument("--gate", action="store_true",
                         help="exit 1 when any gated bench metric "
                              "regressed (CI mode)")

    analysisp = sub.add_parser(
        "analysis",
        help="typed queries over the run store (the report's "
             "building blocks)",
    )
    asub = analysisp.add_subparsers(dest="analysis_action",
                                    required=True)
    aquery = asub.add_parser(
        "query", parents=[storecommon],
        help="filter stored runs; optionally aggregate a metric by "
             "group keys",
    )
    aquery.add_argument("--algorithm", "-a", nargs="+", default=None)
    aquery.add_argument("--dataset", "-d", nargs="+", default=None)
    aquery.add_argument("--status", nargs="+", default=None,
                        choices=["pending", "leased", "done", "error"])
    aquery.add_argument("--platform", default=None,
                        help="simulated platform name filter")
    aquery.add_argument("--devices", "-n", type=int, nargs="+",
                        default=None, metavar="N")
    aquery.add_argument("--batches", "-b", type=int, default=None,
                        metavar="B")
    aquery.add_argument("--pointing-engine", dest="pointing_engine",
                        default=None)
    aquery.add_argument("--since", metavar="SHA|DATE", default=None,
                        help="ISO date (created_at) or provenance git "
                             "describe prefix")
    aquery.add_argument("--label-prefix", default=None,
                        help="cell label prefix (bench cells are "
                             "'<suite>:<workload>')")
    aquery.add_argument("--metric", default=None,
                        help="aggregate this metric (sim_time, "
                             "wall_time_s, duration_s, weight, "
                             "matched_edges, iterations, "
                             "host_entries_scanned) instead of "
                             "listing rows")
    aquery.add_argument("--group-by", nargs="+", default=None,
                        metavar="KEY",
                        help="grouping keys for --metric (default "
                             "algorithm dataset)")
    aquery.add_argument("--json", action="store_true",
                        help="machine-readable JSON")

    storep = sub.add_parser(
        "store",
        help="inspect, resume and maintain the persistent run store",
    )
    ssub = storep.add_subparsers(dest="store_action", required=True)
    sls = ssub.add_parser("ls", parents=[storecommon],
                          help="list stored cells and their lifecycle "
                               "status")
    sls.add_argument("--status", default=None,
                     choices=["pending", "leased", "done", "error"],
                     help="only cells in this state")
    sls.add_argument("--algorithm", "-a", nargs="+", default=None,
                     help="only cells of these algorithm(s)")
    sls.add_argument("--dataset", "-d", nargs="+", default=None,
                     help="only cells on these dataset(s)")
    sls.add_argument("--json", action="store_true",
                     help="machine-readable JSON")
    sshow = ssub.add_parser("show", parents=[storecommon],
                            help="full config + stored record of one "
                                 "cell")
    sshow.add_argument("fingerprint", metavar="FINGERPRINT",
                       help="cell fingerprint (unique prefix accepted; "
                            "the 'cell:' prefix may be omitted)")
    sresume = ssub.add_parser(
        "resume", parents=[storecommon],
        help="re-run every pending/failed/stale cell; finished cells "
             "are never recomputed",
    )
    sresume.add_argument("--parallel", type=int, default=0, metavar="N",
                         help="worker processes for the resumed cells")
    sexport = ssub.add_parser("export", parents=[storecommon],
                              help="dump the whole store as JSON")
    sexport.add_argument("--json", action="store_true",
                         help="accepted for symmetry; export is always "
                              "JSON")
    sexport.add_argument("--out", metavar="PATH", default=None,
                         help="write to PATH instead of stdout")
    sgc = ssub.add_parser("gc", parents=[storecommon],
                          help="reclaim stale leases (and optionally "
                               "drop error rows)")
    sgc.add_argument("--prune-errors", action="store_true",
                     help="delete error rows so their cells re-register "
                          "from scratch")

    # service plane: daemon, worker fleet, remote-capable job verbs.
    servep = sub.add_parser(
        "serve", parents=[storecommon],
        help="run the matching-as-a-service HTTP daemon over a store",
    )
    servep.add_argument("--host", default=None,
                        help="bind address (default 127.0.0.1)")
    servep.add_argument("--port", type=int, default=None,
                        help="bind port (default 8787; 0 = ephemeral)")
    servep.add_argument("--quota", type=int, default=None, metavar="N",
                        help="per-client cap on unfinished jobs; over "
                             "it new submissions get HTTP 429 "
                             "(default: unlimited)")
    servep.add_argument("--lease-seconds", type=float, default=None,
                        metavar="S",
                        help="lease duration stamped on claims made "
                             "through this daemon's store connections "
                             "(default $REPRO_RUN_STORE_LEASE_S, "
                             "else 300)")
    servep.add_argument("--quiet", action="store_true",
                        help="suppress per-request access log lines")

    workerp = sub.add_parser(
        "worker", parents=[storecommon],
        help="claim and execute store cells priority-first (run any "
             "number of these against one store)",
    )
    workerp.add_argument("--max-cells", type=int, default=None,
                         metavar="N",
                         help="exit after executing N cells "
                              "(default: unbounded)")
    workerp.add_argument("--idle-exit", type=float, default=None,
                         metavar="S", dest="idle_exit",
                         help="exit after S seconds with an empty "
                              "queue; 0 drains and returns "
                              "(default: run until interrupted)")
    workerp.add_argument("--poll", type=float, default=0.5, metavar="S",
                         help="sleep between empty polls "
                              "(default 0.5)")
    workerp.add_argument("--algorithm", "-a", nargs="+", default=None,
                         choices=algorithm_names(),
                         help="only claim cells of these algorithm(s)")
    workerp.add_argument("--lease-seconds", type=float, default=None,
                         metavar="S",
                         help="per-claim lease duration (default "
                              "$REPRO_RUN_STORE_LEASE_S, else 300)")
    workerp.add_argument("--json", action="store_true",
                         help="print the worker summary as JSON")

    submitp = sub.add_parser(
        "submit", parents=[common],
        help="register a job for the worker fleet (no local execution; "
             "--store takes a path or an http:// daemon URL)",
    )
    submitp.add_argument("--algorithm", "-a", required=True,
                         choices=algorithm_names())
    submitp.add_argument("--dataset", "-d", required=True,
                         choices=sorted(DATASETS))
    submitp.add_argument("--quality", action="store_true",
                         help="submit the dataset's tiny "
                              "blossom-tractable quality instance")
    submitp.add_argument("--priority", type=int, default=0,
                         help="queue priority; higher claims first "
                              "(default 0)")
    submitp.add_argument("--client", default=None,
                         help="client name recorded on the job (quota "
                              "attribution)")
    submitp.add_argument("--label", default=None,
                         help="free-form tag recorded on the record")
    submitp.add_argument("--wait", action="store_true",
                         help="block until the job finishes and print "
                              "its result")
    submitp.add_argument("--timeout", type=float, default=None,
                         metavar="S",
                         help="give up --wait after S seconds "
                              "(exit 1)")

    jobp = sub.add_parser(
        "job",
        help="follow a submitted job (--store takes a path or an "
             "http:// daemon URL)",
    )
    jsub = jobp.add_subparsers(dest="job_action", required=True)
    for action, blurb in (("status", "lifecycle state of one job"),
                          ("result", "stored RunRecord of one job"),
                          ("cancel", "request cancellation of one "
                                     "job")):
        ap = jsub.add_parser(action, parents=[storecommon], help=blurb)
        ap.add_argument("fingerprint", metavar="FINGERPRINT")
        ap.add_argument("--json", action="store_true",
                        help="machine-readable JSON")
        if action == "result":
            ap.add_argument("--wait", action="store_true",
                            help="poll until the job is terminal")
            ap.add_argument("--timeout", type=float, default=None,
                            metavar="S",
                            help="give up --wait after S seconds")

    cachep = sub.add_parser(
        "cache",
        help="inspect the on-disk graph cache (REPRO_GRAPH_CACHE*)",
    )
    csub = cachep.add_subparsers(dest="cache_action", required=True)
    cls_ = csub.add_parser("ls", help="list cached graph snapshots")
    cls_.add_argument("--json", action="store_true",
                      help="machine-readable JSON")
    csub.add_parser("clear", help="remove every cached snapshot")
    cevict = csub.add_parser(
        "evict",
        help="drop oldest-used snapshots beyond the entry budget",
    )
    cevict.add_argument("--max-entries", type=int, default=None,
                        metavar="N",
                        help="keep at most N snapshots (default "
                             "$REPRO_GRAPH_CACHE_ENTRIES, else 64)")

    listp = sub.add_parser("list", help="list registered entities")
    listp.add_argument("what", choices=["datasets", "algorithms",
                                        "experiments"])
    return p


def _reject_flags(parser: argparse.ArgumentParser,
                  args: argparse.Namespace, command: str,
                  **flags: str) -> None:
    """Exit 2 for shared flags a subcommand cannot honour.

    ``flags`` maps attribute name -> rendered flag; a non-default value
    is a usage error, not something to ignore silently.
    """
    for attr, flag in flags.items():
        if getattr(args, attr) not in (None, False):
            parser.error(f"{flag} does not apply to '{command}'")


def _store_from(args: argparse.Namespace):
    """The :class:`~repro.store.db.RunStore` named by ``--store`` or
    ``REPRO_RUN_STORE`` (None when neither is set)."""
    from repro.store import resolve_store

    return resolve_store(getattr(args, "store", None))


def _single(parser: argparse.ArgumentParser, values: list | None,
            flag: str, default: int | None) -> int | None:
    """The one value 'run' accepts for a grid-capable shared flag."""
    if values is None:
        return default
    if len(values) != 1:
        parser.error(f"'run' takes a single {flag} value "
                     f"(got {len(values)}); use 'sweep' for grids")
    return values[0]


def _cmd_run(parser: argparse.ArgumentParser,
             args: argparse.Namespace) -> int:
    devices = _single(parser, args.devices, "--devices", 1)
    batches = _single(parser, args.batches, "--batches", None)
    from repro.engine import get_spec

    spec = get_spec(args.algorithm)
    if args.pointing_engine is not None and \
            not spec.accepts_pointing_engine:
        parser.error(f"--pointing-engine does not apply to "
                     f"algorithm '{args.algorithm}'")
    overrides = None
    if "coreset" in spec.tags and "internal" not in spec.tags:
        # The coordinator passes the dataset ref down to its shard
        # cells so they are store-resumable / fleet-claimable.
        overrides = {"dataset": args.dataset, "quality": args.quality}
        if args.shards is not None:
            if args.shards < 1:
                parser.error("--shards must be >= 1")
            overrides["num_shards"] = args.shards
        if args.parallel:
            overrides["shard_parallel"] = args.parallel
    elif args.shards is not None or args.parallel:
        parser.error("--shards/--parallel apply only to coreset "
                     "algorithms (coreset_greedy, coreset_ld)")
    g = quality_instance(args.dataset) if args.quality \
        else load_dataset(args.dataset)
    sinks: list = []
    trace_sink = metrics_sink = None
    if args.trace:
        trace_sink = TraceSink(path=args.trace)
        sinks.append(trace_sink)
    if args.metrics_out:
        metrics_sink = MetricsSink()
        sinks.append(metrics_sink)
    # Through the facade: with a store a previously stored run is
    # served without recompute (its record is bit-identical to a fresh
    # one, minus the never-serialised in-memory result).
    import repro.api as api

    record = api.run(
        args.algorithm, args.dataset, quality=args.quality,
        platform=args.platform, devices=devices, batches=batches,
        pointing_engine=args.pointing_engine, seed=args.seed,
        overrides=overrides, sinks=tuple(sinks),
        store=_store_from(args))
    fmt = None
    if metrics_sink is not None and \
            metrics_sink.last_snapshot is not None:
        from repro.telemetry import write_metrics

        fmt = write_metrics(args.metrics_out,
                            metrics_sink.last_snapshot, record)
    if args.json:
        print(record.to_json(indent=1), end="")
        return EXIT_OK
    result = record.result
    print(f"{g!r}")
    if result is not None:
        print(result.summary())
    else:
        bits = [f"weight={record.weight:.6g}",
                f"matched_edges={record.matched_edges}",
                f"iterations={record.iterations}"]
        if record.sim_time is not None:
            bits.append(f"sim_time={record.sim_time:.4g}s")
        print(f"{record.algorithm} (served from store): "
              + ", ".join(bits))
    if record.extra.get("peak_shard_edges") is not None:
        print(f"coreset: shards={len(record.extra['shard_edges'])}, "
              f"peak_shard_edges={record.extra['peak_shard_edges']}, "
              f"merge_edges={record.extra['merge_edges']}")
    totals = record.timeline_totals
    if totals:
        if args.profile and result is not None:
            from repro.gpusim.report import profile_report

            print(profile_report(record))
        elif args.profile:
            print("per-iteration profile unavailable for store-served "
                  "records (re-run without --store to collect one)")
        else:
            from repro.gpusim.timeline import fractions_from_totals

            frac = fractions_from_totals(totals)
            rows = [[k, 100.0 * v] for k, v in frac.items() if v > 0]
            print(format_table(["component", "% time"], rows,
                               floatfmt=".1f"))
    if trace_sink is not None and trace_sink.saved_paths:
        print(f"trace written to {trace_sink.saved_paths[0]}")
    if fmt is not None:
        print(f"metrics ({fmt}) written to {args.metrics_out}")
    elif metrics_sink is not None:
        print("no metrics collected (record served from store)")
    return EXIT_OK


def _cmd_sweep(parser: argparse.ArgumentParser,
               args: argparse.Namespace) -> int:
    import repro.api as api

    result = api.sweep(
        args.dataset, platform=args.platform,
        devices=tuple(args.devices) if args.devices else (1, 2, 4, 8),
        batches=tuple(args.batches) if args.batches else (None,),
        parallel=args.parallel,
        collect_metrics=args.metrics_out is not None,
        seed=args.seed, pointing_engine=args.pointing_engine,
        store=_store_from(args),
    )
    if args.metrics_out:
        from repro.telemetry import write_metrics

        fmt = write_metrics(args.metrics_out, result.metrics)
    if args.json:
        doc = {
            "graph": result.graph_name,
            "points": [vars(p).copy() for p in result.points],
            "records": [r.to_dict() for r in result.records],
        }
        ok = [p for p in result.points if p.ok]
        doc["best"] = vars(result.best).copy() if ok else None
        print(json.dumps(doc, indent=1))
        return EXIT_OK
    print(result.render())
    errors = [r for r in result.records if not r.ok]
    for r in errors:
        if r.error["type"] != "DeviceOOMError":
            print(f"cell error [{r.num_devices} GPUs x "
                  f"{r.num_batches or 'auto'} batches]: "
                  f"{r.error['type']}: {r.error['message']}")
    ok = [p for p in result.points if p.ok]
    if not ok:
        print("\nno configuration fit device memory")
        return EXIT_FAILURE
    best = result.best
    print(f"\nbest: {best.num_devices} GPUs x "
          f"{best.num_batches} batches -> {best.time_s:.4f}s")
    if args.metrics_out:
        print(f"metrics ({fmt}) written to {args.metrics_out}")
    return EXIT_OK


def _cmd_stream(parser: argparse.ArgumentParser,
                args: argparse.Namespace) -> int:
    _reject_flags(parser, args, "stream", platform="--platform",
                  devices="--devices", batches="--batches",
                  pointing_engine="--pointing-engine", store="--store")
    import numpy as np

    from repro.engine import RunContext, execute
    from repro.matching.ld_seq import ld_seq
    from repro.streaming import EdgeStream, make_engine

    g = quality_instance(args.dataset) if args.quality \
        else load_dataset(args.dataset)
    if args.events is not None:
        stream = EdgeStream.load(args.events)
        if stream.num_vertices != g.num_vertices:
            parser.error(
                f"--events log is over {stream.num_vertices} vertices "
                f"but '{args.dataset}' has {g.num_vertices}")
    else:
        stream = EdgeStream.generate(
            g, num_batches=args.num_batches,
            batch_size=args.batch_size,
            seed=args.seed if args.seed is not None else 0)
    if args.record:
        stream.save(args.record)

    sinks: list = []
    metrics_sink = None
    if args.metrics_out:
        metrics_sink = MetricsSink()
        sinks.append(metrics_sink)
    ctx = RunContext(seed=stream.seed, dataset=args.dataset,
                     sinks=tuple(sinks))
    record = execute("dynamic_ld", g, ctx, events=stream,
                     stream_engine=args.stream_engine,
                     batch_size=args.batch_size)

    verified = None
    if not args.no_verify:
        # Replay the structural mutations alone and re-match from
        # scratch: the engine's mate array must be byte-for-byte the
        # LD fixed point of the mutated graph.
        oracle_eng = make_engine("recompute", g)
        for batch in stream:
            oracle_eng._apply_ops(batch)
        oracle = ld_seq(oracle_eng.snapshot(), collect_stats=False)
        verified = bool(np.array_equal(record.result.mate, oracle.mate))

    fmt = None
    if metrics_sink is not None and \
            metrics_sink.last_snapshot is not None:
        from repro.telemetry import write_metrics

        fmt = write_metrics(args.metrics_out,
                            metrics_sink.last_snapshot, record)
    if args.json:
        doc = record.to_dict()
        if verified is not None:
            doc["verified_vs_ld_seq"] = verified
        print(json.dumps(doc, indent=1))
        return EXIT_FAILURE if verified is False else EXIT_OK

    print(f"{g!r}")
    extra = record.extra
    affected = extra.get("affected_per_batch") or []
    host = extra.get("host_entries_per_batch") or []
    latency = extra.get("update_latency_s") or []
    rows = [[i, a, h, 1e3 * t]
            for i, (a, h, t) in enumerate(zip(affected, host, latency))]
    if rows:
        print(format_table(
            ["batch", "affected", "host entries", "latency (ms)"],
            rows, floatfmt=".3f",
            title=f"dynamic_ld ({extra.get('stream_engine')}) — "
                  f"{extra.get('stream_ops')} ops in "
                  f"{extra.get('stream_batches')} batches"))
    modeled = extra.get("stream_recompute_entries_modeled")
    total_host = extra.get("host_entries_scanned")
    line = (f"final: weight={record.weight:.6g}, "
            f"matched_edges={record.matched_edges}, "
            f"repairs={extra.get('stream_repairs')}, "
            f"affected_vertices={extra.get('affected_vertices')}")
    print(line)
    if total_host is not None and modeled:
        print(f"host entries: {total_host} vs {modeled} modeled "
              f"recompute floor "
              f"({100.0 * total_host / modeled:.1f}%)")
    if args.record:
        print(f"event log written to {args.record}")
    if fmt is not None:
        print(f"metrics ({fmt}) written to {args.metrics_out}")
    if verified is not None:
        if not verified:
            print("VERIFICATION FAILED: mate array differs from "
                  "from-scratch ld_seq on the mutated graph",
                  file=sys.stderr)
            return EXIT_FAILURE
        print("verified: mate array bit-identical to from-scratch "
              "ld_seq on the mutated graph")
    return EXIT_OK


def _cmd_bench(parser: argparse.ArgumentParser,
               args: argparse.Namespace) -> int:
    _reject_flags(parser, args, "bench", platform="--platform",
                  devices="--devices", batches="--batches",
                  seed="--seed", metrics_out="--metrics-out",
                  pointing_engine="--pointing-engine")
    from repro.harness.bench import (
        bench_report_path,
        compare_reports,
        run_bench,
        validate_bench_report,
        write_bench_report,
    )

    report = run_bench(args.suite, repeats=args.repeats,
                       parallel=args.parallel, store=_store_from(args))
    out = args.out or bench_report_path(args.suite)
    write_bench_report(report, out)
    if args.json:
        print(json.dumps(report, indent=1))
    else:
        rows = [[w["name"], w["algorithm"], w["dataset"], w["status"],
                 w["median_sim_time_s"], w["median_wall_time_s"]]
                for w in report["workloads"]]
        print(format_table(
            ["workload", "algorithm", "dataset", "status",
             "median sim (s)", "median wall (s)"],
            rows, floatfmt=".3g",
            title=f"bench suite '{args.suite}' x{args.repeats}",
        ))
        staging = report.get("staging")
        if staging:
            shm_s = staging.get("median_shm_attach_s")
            speedup = staging.get("speedup")
            if shm_s is None:
                print(f"staging ({staging['graph']}): npz reload "
                      f"{staging['median_npz_load_s']:.3g}s; "
                      "shared-memory plane unavailable")
            else:
                print(f"staging ({staging['graph']}): shm attach "
                      f"{shm_s:.3g}s vs npz reload "
                      f"{staging['median_npz_load_s']:.3g}s "
                      f"({speedup:.3g}x)")
        print(f"report written to {out}")

    baseline_path = args.baseline
    if baseline_path is None:
        default = f"benchmarks/baseline_{args.suite}.json"
        import os

        baseline_path = default if os.path.isfile(default) else None
    if baseline_path is None:
        print("no baseline to compare against "
              "(--baseline to provide one)")
        return EXIT_OK
    with open(baseline_path, "rt") as fh:
        baseline = json.load(fh)
    validate_bench_report(baseline)
    problems = compare_reports(report, baseline,
                               tolerance=args.tolerance)
    if problems:
        print(f"\nREGRESSION vs {baseline_path}:")
        for line in problems:
            print(f"  {line}")
        return EXIT_FAILURE
    print(f"within {100 * args.tolerance:.1f}% of {baseline_path}")
    return EXIT_OK


def _cmd_stats(parser: argparse.ArgumentParser,
               args: argparse.Namespace) -> int:
    """Paper-claim metrics of a stored RunRecord (``run --json``
    output)."""
    _reject_flags(parser, args, "stats", platform="--platform",
                  devices="--devices", batches="--batches",
                  seed="--seed", metrics_out="--metrics-out",
                  pointing_engine="--pointing-engine",
                  store="--store")
    import numpy as np

    from repro.engine import RunRecord
    from repro.gpusim.timeline import COMPONENTS
    from repro.metrics.workstats import (
        edges_accessed_fraction,
        iterations_below_fraction,
    )

    with open(args.record, "rt") as fh:
        record = RunRecord.from_json(fh.read())

    doc: dict = {"algorithm": record.algorithm, "graph": record.graph,
                 "status": record.status}
    totals = record.timeline_totals
    if totals:
        t = sum(totals.values())
        comm = sum(totals.get(c, 0.0) for c in COMPONENTS
                   if c not in ("pointing", "matching"))
        doc["communication_fraction"] = comm / t if t else 0.0
    scanned = record.extra.get("edges_scanned")
    host_scanned = record.extra.get("host_entries_scanned")
    if host_scanned is not None and \
            record.extra.get("pointing_engine") is not None:
        modeled = int(sum(scanned)) if scanned else None
        doc["pointing"] = {
            "engine": record.extra.get("pointing_engine"),
            "host_entries_scanned": int(host_scanned),
            "modeled_edges_scanned": modeled,
            "host_fraction_of_modeled":
                host_scanned / modeled if modeled else None,
        }
        for key in ("host_entries_scanned_pointing",
                    "host_entries_scanned_matching"):
            val = record.extra.get(key)
            if val is not None:
                doc["pointing"][key] = int(val)
    if record.extra.get("stream_batches") is not None:
        modeled = record.extra.get("stream_recompute_entries_modeled")
        host = record.extra.get("host_entries_scanned")
        latencies = record.extra.get("update_latency_s") or []
        doc["streaming"] = {
            "engine": record.extra.get("stream_engine"),
            "batches": int(record.extra["stream_batches"]),
            "ops": record.extra.get("stream_ops"),
            "repairs": record.extra.get("stream_repairs"),
            "affected_vertices": record.extra.get("affected_vertices"),
            "host_entries_scanned":
                int(host) if host is not None else None,
            "modeled_recompute_entries":
                int(modeled) if modeled is not None else None,
            "host_fraction_of_recompute":
                host / modeled if host is not None and modeled else None,
            "median_update_latency_s":
                record.extra.get("median_update_latency_s"),
        }
    if scanned and record.num_directed_edges:
        frac = edges_accessed_fraction(np.asarray(scanned),
                                       record.num_directed_edges)
        doc["edges_accessed"] = {
            "min": float(frac.min()),
            "median": float(np.median(frac)),
            "max": float(frac.max()),
            "iterations_below_threshold": iterations_below_fraction(
                np.asarray(scanned), record.num_directed_edges,
                args.threshold),
            "threshold": args.threshold,
        }
    if args.json:
        print(json.dumps(doc, indent=1))
        return EXIT_OK

    print(f"{record.algorithm} on {record.graph}"
          f" ({record.num_vertices} vertices, "
          f"{record.num_directed_edges} directed edges)")
    if record.provenance:
        prov = record.provenance
        bits = [f"{k}={prov[k]}" for k in
                ("git", "python", "numpy", "seed",
                 "dataset_fingerprint") if prov.get(k) is not None]
        print("provenance: " + ", ".join(bits))

    if totals:
        t = sum(totals.values())
        rows = [[c, 1e3 * totals[c], 100.0 * totals[c] / t if t else 0.0]
                for c in COMPONENTS if c in totals]
        print(format_table(["component", "time (ms)", "% time"], rows,
                           floatfmt=".3f"))
        print(f"communication fraction: "
              f"{100.0 * doc['communication_fraction']:.1f}% "
              f"(paper: ~90% for multi-GPU runs)")
    else:
        print("no timeline — not a simulator-backed run")

    if "edges_accessed" in doc:
        ea = doc["edges_accessed"]
        print(f"edges accessed per iteration: "
              f"min {100.0 * ea['min']:.1f}%, "
              f"median {100.0 * ea['median']:.1f}%, "
              f"max {100.0 * ea['max']:.1f}%")
        print(f"iterations touching <{100.0 * args.threshold:.0f}% of "
              f"edges: {100.0 * ea['iterations_below_threshold']:.1f}% "
              f"(paper: ~90% of iterations under 20%)")
    else:
        print("no edges_scanned series — run with collect_stats "
              "(the default) to record Fig. 8 statistics")

    if "pointing" in doc:
        pt = doc["pointing"]
        line = (f"pointing engine '{pt['engine']}': "
                f"{pt['host_entries_scanned']} adjacency entries "
                f"examined on the host")
        if pt.get("host_entries_scanned_pointing") is not None and \
                pt.get("host_entries_scanned_matching") is not None:
            line += (f" (pointing {pt['host_entries_scanned_pointing']}, "
                     f"matching {pt['host_entries_scanned_matching']})")
        if pt["modeled_edges_scanned"]:
            line += (f" vs {pt['modeled_edges_scanned']} modeled "
                     f"({100.0 * pt['host_fraction_of_modeled']:.1f}%)")
        print(line)

    if "streaming" in doc:
        st_ = doc["streaming"]
        print(f"streaming engine '{st_['engine']}': {st_['batches']} "
              f"batches ({st_['ops']} ops), {st_['repairs']} repairs, "
              f"{st_['affected_vertices']} affected vertices")
        if st_["host_entries_scanned"] is not None and \
                st_["modeled_recompute_entries"]:
            print(f"streaming host work: "
                  f"{st_['host_entries_scanned']} entries vs "
                  f"{st_['modeled_recompute_entries']} modeled "
                  f"from-scratch recompute floor "
                  f"({100.0 * st_['host_fraction_of_recompute']:.1f}%)")
        if st_["median_update_latency_s"] is not None:
            print(f"median update latency: "
                  f"{1e3 * st_['median_update_latency_s']:.3f} ms")
    return EXIT_OK


def _cmd_experiment(parser: argparse.ArgumentParser,
                    args: argparse.Namespace) -> int:
    import inspect

    fn = EXPERIMENTS[args.name]
    params = inspect.signature(fn).parameters
    kwargs = {"quick": args.quick}
    if "parallel" in params:
        kwargs["parallel"] = args.parallel
    if "store" in params:
        kwargs["store"] = _store_from(args)
    result = fn(**kwargs)
    if args.json:
        print(json.dumps(result.to_json(), indent=1))
    else:
        print(result.render())
    return EXIT_OK


def _require_store(parser: argparse.ArgumentParser,
                   args: argparse.Namespace):
    store = _store_from(args)
    if store is None:
        parser.error("no run store: pass --store PATH or set "
                     "REPRO_RUN_STORE")
    return store


def _cmd_report(parser: argparse.ArgumentParser,
                args: argparse.Namespace) -> int:
    store = _require_store(parser, args)
    from repro.analysis.report import resolve_since, write_report

    path, data = write_report(
        store, out_dir=args.out, fmt=args.format,
        suites=args.suite, tolerance=args.tolerance,
        bench_dir=args.bench_dir, **resolve_since(args.since))
    n_flag = data["regressions_flagged"]
    print(f"report ({args.format}) written to {path}")
    print(f"runs analysed: {data['overview']['n_records']}; "
          f"bench series: "
          f"{sum(len(e) for e in data['trajectories'].values())}; "
          f"gated regressions: {n_flag}")
    if n_flag:
        for f in data["regressions"]:
            if f["flagged"]:
                print(f"  REGRESSION {f['suite']}:{f['entry']} "
                      f"{f['metric']}: {f['ratio']:.3f}x vs "
                      f"{f['reference_source']}")
        if args.gate:
            return EXIT_FAILURE
    return EXIT_OK


def _cmd_analysis(parser: argparse.ArgumentParser,
                  args: argparse.Namespace) -> int:
    store = _require_store(parser, args)
    from repro.analysis.queries import METRICS, ResultSet, RunQuery
    from repro.analysis.report import resolve_since

    when = resolve_since(args.since)
    query = RunQuery(
        algorithm=args.algorithm, dataset=args.dataset,
        status=args.status, platform=args.platform,
        num_devices=args.devices, num_batches=args.batches,
        pointing_engine=args.pointing_engine,
        label_prefix=args.label_prefix,
        since=when.get("since"), git=when.get("git"))
    rs = ResultSet(store, query)

    if args.metric:
        if args.metric not in METRICS:
            parser.error(f"unknown metric {args.metric!r}; have "
                         f"{', '.join(sorted(METRICS))}")
        by = tuple(args.group_by) if args.group_by \
            else ("algorithm", "dataset")
        try:
            aggs = rs.aggregate(args.metric, by=by)
        except KeyError as exc:
            parser.error(str(exc))
        if args.json:
            doc = [dict(zip(by, [str(k) for k in key]),
                        **agg.to_dict())
                   for key, agg in aggs.items()]
            print(json.dumps(doc, indent=1))
            return EXIT_OK
        rows = [list(map(str, key))
                + [agg.n, agg.median, agg.mean, agg.ci_lo, agg.ci_hi]
                for key, agg in sorted(aggs.items(),
                                       key=lambda kv: kv[0])]
        print(format_table(
            list(by) + ["n", "median", "mean", "ci_lo", "ci_hi"],
            rows, floatfmt=".4g",
            title=f"{args.metric} ({query.describe()})"))
        return EXIT_OK

    if args.json:
        print(json.dumps(rs.to_documents(), indent=1))
        return EXIT_OK
    print(format_table(
        ["fingerprint", "algorithm", "dataset", "status", "attempts",
         "worker"],
        rs.summary_rows(),
        title=f"{len(rs.rows)} run(s) matching {query.describe()}"))
    return EXIT_OK


def _cmd_store(parser: argparse.ArgumentParser,
               args: argparse.Namespace) -> int:
    store = _require_store(parser, args)
    action = args.store_action

    if action == "ls":
        # The analysis query layer is the read path: the same SQL
        # narrowing + listing shape `analysis query` uses.
        from repro.analysis.queries import ResultSet, RunQuery

        rs = ResultSet(store, RunQuery(algorithm=args.algorithm,
                                       dataset=args.dataset,
                                       status=args.status))
        if args.json:
            print(json.dumps(rs.to_documents(), indent=1))
            return EXIT_OK
        rows = rs.summary_rows()
        print(format_table(
            ["fingerprint", "algorithm", "dataset", "status",
             "attempts", "worker"],
            rows, title=f"run store {store.path}",
        ))
        counts = store.counts()
        print(", ".join(f"{s}: {n}" for s, n in counts.items()))
        return EXIT_OK

    if action == "show":
        matches = store.find(args.fingerprint)
        if not matches:
            print(f"no stored cell matches {args.fingerprint!r}")
            return EXIT_FAILURE
        if len(matches) > 1:
            print(f"{args.fingerprint!r} is ambiguous "
                  f"({len(matches)} matches):")
            for r in matches:
                print(f"  {r.fingerprint}")
            return EXIT_FAILURE
        r = matches[0]
        doc = {
            "fingerprint": r.fingerprint,
            "algorithm": r.algorithm,
            "dataset": r.dataset,
            "graph_fingerprint": r.graph_fingerprint,
            "status": r.status,
            "attempts": r.attempts,
            "seed": r.seed,
            "record_schema": r.record_schema,
            "worker": r.worker,
            "error_type": r.error_type,
            "error_message": r.error_message,
            "config": r.config,
            "record": json.loads(r.record_json)
            if r.record_json is not None else None,
        }
        print(json.dumps(doc, indent=1))
        return EXIT_OK

    if action == "export":
        doc = store.export()
        text = json.dumps(doc, indent=1, sort_keys=True) + "\n"
        if args.out:
            with open(args.out, "wt") as fh:
                fh.write(text)
            print(f"{doc['counts']['done']} done / "
                  f"{len(doc['runs'])} cells exported to {args.out}")
        else:
            print(text, end="")
        return EXIT_OK

    if action == "gc":
        out = store.gc(prune_errors=args.prune_errors)
        print(f"stale leases reclaimed: {out['stale_reclaimed']}, "
              f"error rows pruned: {out['errors_pruned']}")
        return EXIT_OK

    # resume: reclaim dead leases, rebuild every unfinished cell from
    # its stored config, and run them back through the same store —
    # cells that finished in the meantime are served, not recomputed.
    # Cells are grouped by graph source: self-contained cells (own
    # dataset or builder) run as one batch; cells whose graph was
    # passed in-process by a ``sweep -d NAME`` run under the dataset
    # named by their context, reloaded here as the shared graph.
    from repro.engine.cells import run_cells
    from repro.store import cell_from_config

    reclaimed = store.reclaim_stale()
    todo = store.runs(("pending", "error"))
    groups: dict[str | None, list] = {}
    skipped = []
    for row in todo:
        try:
            cell = cell_from_config(row.config)
        except ValueError as exc:
            skipped.append((row.fingerprint, str(exc)))
            continue
        key = None if (cell.dataset or cell.build) \
            else row.config["ctx_dataset"]
        groups.setdefault(key, []).append(cell)
    if reclaimed:
        print(f"reclaimed {reclaimed} stale lease(s)")
    if not groups and not skipped:
        print("nothing to resume: every cell is done")
        return EXIT_OK
    records = []
    for key, cells in groups.items():
        if key is not None:
            try:
                shared = load_dataset(key)
            except KeyError:
                skipped.extend(
                    (f"(ctx dataset {key!r})",
                     f"unknown context dataset {key!r}")
                    for _ in cells)
                continue
        else:
            shared = None
        records.extend(run_cells(cells, graph=shared,
                                 parallel=args.parallel, store=store))
    ok = sum(1 for r in records if r.ok)
    print(f"resumed {len(records)} cell(s): {ok} ok, "
          f"{len(records) - ok} error")
    for fp, why in skipped:
        print(f"cannot resume {fp}: {why}")
    counts = store.counts()
    print("store now: " + ", ".join(f"{s}: {n}"
                                    for s, n in counts.items()))
    return EXIT_FAILURE if skipped or ok < len(records) else EXIT_OK


def _service_store_arg(parser: argparse.ArgumentParser,
                       args: argparse.Namespace):
    """The raw ``--store`` value for the remote-capable job verbs:
    an ``http://`` URL passes through to :mod:`repro.api` untouched,
    anything else resolves like every other subcommand (path or
    ``REPRO_RUN_STORE``)."""
    raw = getattr(args, "store", None)
    if isinstance(raw, str) and raw.startswith(("http://", "https://")):
        return raw
    return _require_store(parser, args)


def _local_store_path(parser: argparse.ArgumentParser,
                      args: argparse.Namespace, command: str):
    """serve/worker attach to the database itself, never a daemon."""
    raw = getattr(args, "store", None)
    if isinstance(raw, str) and raw.startswith(("http://", "https://")):
        parser.error(f"'{command}' attaches to the store database, "
                     "not a daemon URL")
    return _require_store(parser, args)


def _render_job_record(record, as_json: bool) -> None:
    if as_json:
        print(record.to_json(indent=1), end="")
        return
    bits = [f"weight={record.weight:.6g}",
            f"matched_edges={record.matched_edges}",
            f"iterations={record.iterations}"]
    if record.sim_time is not None:
        bits.append(f"sim_time={record.sim_time:.4g}s")
    state = "ok" if record.ok else (
        f"error ({record.error['type']}: {record.error['message']})")
    print(f"{record.algorithm} on {record.graph}: {state}")
    print(", ".join(bits))


def _cmd_serve(parser: argparse.ArgumentParser,
               args: argparse.Namespace) -> int:
    store = _local_store_path(parser, args, "serve")
    from repro.service.daemon import DEFAULT_HOST, DEFAULT_PORT, serve

    def ready(host: str, port: int) -> None:
        print(f"serving {store.path} on http://{host}:{port} "
              f"(submit with repro.api / 'submit --store "
              f"http://{host}:{port}'; Ctrl-C stops)",
              flush=True)

    serve(store.path,
          host=args.host or DEFAULT_HOST,
          port=DEFAULT_PORT if args.port is None else args.port,
          quota=args.quota, lease_seconds=args.lease_seconds,
          quiet=args.quiet, ready=ready)
    return EXIT_OK


def _cmd_worker(parser: argparse.ArgumentParser,
                args: argparse.Namespace) -> int:
    store = _local_store_path(parser, args, "worker")
    if args.lease_seconds is not None:
        store.lease_seconds = float(args.lease_seconds)
    from repro.service.worker import worker_loop

    def on_cell(fp: str, record) -> None:
        if not args.json:
            state = "ok" if record.ok else "error"
            print(f"[{store.worker_id}] {fp[:17]} {record.algorithm} "
                  f"on {record.graph}: {state}", flush=True)

    summary = worker_loop(
        store, poll_s=args.poll, max_cells=args.max_cells,
        idle_exit_s=args.idle_exit, algorithm=args.algorithm,
        on_cell=on_cell)
    if args.json:
        print(json.dumps(summary.to_dict(), indent=1))
    else:
        print(f"worker {summary.worker_id}: {summary.executed} cell(s) "
              f"in {summary.wall_s:.1f}s — {summary.ok} ok, "
              f"{summary.errors} error, {summary.cancelled} released "
              f"on cancel, {summary.stale_reclaims} stale reclaim(s)")
    return EXIT_OK if summary.errors == 0 else EXIT_FAILURE


def _cmd_submit(parser: argparse.ArgumentParser,
                args: argparse.Namespace) -> int:
    devices = _single(parser, args.devices, "--devices", 1)
    batches = _single(parser, args.batches, "--batches", None)
    _reject_flags(parser, args, "submit", metrics_out="--metrics-out")
    import repro.api as api

    store = _service_store_arg(parser, args)
    try:
        fp = api.submit(
            args.algorithm, args.dataset, quality=args.quality,
            platform=args.platform, devices=devices, batches=batches,
            pointing_engine=args.pointing_engine, seed=args.seed,
            label=args.label, priority=args.priority,
            client=args.client, store=store)
    except (api.JobError, ValueError) as exc:
        print(f"submission rejected: {exc}", file=sys.stderr)
        return EXIT_FAILURE
    if not args.wait:
        if args.json:
            print(json.dumps(
                {"fingerprint": fp,
                 "state": api.status(fp, store=store).state}, indent=1))
        else:
            print(fp)
        return EXIT_OK
    try:
        record = api.result(fp, store=store, wait=True,
                            timeout=args.timeout)
    except api.JobCancelled:
        print(f"job {fp} was cancelled", file=sys.stderr)
        return EXIT_FAILURE
    except TimeoutError as exc:
        print(str(exc), file=sys.stderr)
        return EXIT_FAILURE
    _render_job_record(record, args.json)
    return EXIT_OK if record.ok else EXIT_FAILURE


def _cmd_job(parser: argparse.ArgumentParser,
             args: argparse.Namespace) -> int:
    import repro.api as api

    store = _service_store_arg(parser, args)
    fp = args.fingerprint
    if not fp.startswith("cell:"):
        fp = f"cell:{fp}"
    try:
        if args.job_action == "status":
            st = api.status(fp, store=store)
            if args.json:
                print(json.dumps(st.to_dict(), indent=1))
            else:
                bits = [f"state={st.state}",
                        f"priority={st.priority}",
                        f"attempts={st.attempts}"]
                if st.client:
                    bits.append(f"client={st.client}")
                if st.worker:
                    bits.append(f"worker={st.worker}")
                if st.error_type:
                    bits.append(f"error={st.error_type}: "
                                f"{st.error_message}")
                print(f"{st.fingerprint} {st.algorithm} "
                      f"on {st.dataset or '-'}: " + ", ".join(bits))
            return EXIT_OK
        if args.job_action == "result":
            record = api.result(fp, store=store, wait=args.wait,
                                timeout=args.timeout)
            if record is None:
                state = api.status(fp, store=store).state
                print(f"job {fp} is still {state} "
                      "(--wait blocks until it finishes)",
                      file=sys.stderr)
                return EXIT_FAILURE
            _render_job_record(record, args.json)
            return EXIT_OK if record.ok else EXIT_FAILURE
        cancelled = api.cancel(fp, store=store)
        if args.json:
            print(json.dumps({"fingerprint": fp,
                              "cancelled": cancelled}, indent=1))
        elif cancelled:
            print(f"cancellation requested for {fp}")
        else:
            print(f"{fp} is already done; nothing to cancel")
        return EXIT_OK if cancelled else EXIT_FAILURE
    except api.JobNotFound:
        print(f"no job {fp} in {store if isinstance(store, str) else store.path}",
              file=sys.stderr)
        return EXIT_FAILURE
    except api.JobCancelled:
        print(f"job {fp} was cancelled", file=sys.stderr)
        return EXIT_FAILURE
    except TimeoutError as exc:
        print(str(exc), file=sys.stderr)
        return EXIT_FAILURE


def _cmd_cache(parser: argparse.ArgumentParser,
               args: argparse.Namespace) -> int:
    """Disk snapshots plus the shared-memory graph plane.

    ``ls`` lists both; ``clear`` removes both (any ``repro_graph_*``
    segment still in ``/dev/shm`` at clear time is either a live grid's
    — which will fall back to rebuilding — or an orphan from a hard
    crash); ``evict`` applies the entry cap to disk snapshots only, as
    segments are released by their owning process.
    """
    import os

    from repro.harness.cache import GraphCache, cache_disabled
    from repro.harness.shm import list_orphan_segments, unlink_segment

    if cache_disabled():
        print(f"graph cache is disabled (REPRO_GRAPH_CACHE="
              f"{os.environ.get('REPRO_GRAPH_CACHE', '')})")
        return EXIT_FAILURE
    action = args.cache_action
    if action == "evict":
        cache = GraphCache(max_entries=args.max_entries)
    else:
        cache = GraphCache()

    if action == "ls":
        entries = cache.entries()
        segments = list_orphan_segments()
        if args.json:
            doc = [{"path": str(p), "bytes": p.stat().st_size}
                   for p in entries]
            shm_doc = [{"name": name, "bytes": nbytes}
                       for name, nbytes in segments]
            print(json.dumps({"root": str(cache.root),
                              "entries": doc,
                              "shm_segments": shm_doc}, indent=1))
            return EXIT_OK
        if not entries:
            print(f"graph cache {cache.root}: empty")
        else:
            rows = [[p.name, p.stat().st_size] for p in entries]
            print(format_table(["snapshot", "bytes"], rows,
                               title=f"graph cache {cache.root} "
                                     f"({len(entries)} entries)"))
        if segments:
            rows = [[name, nbytes] for name, nbytes in segments]
            print(format_table(
                ["shm segment", "bytes"], rows,
                title=f"shared-memory graph plane "
                      f"({len(segments)} segment(s); live grids or "
                      f"orphans — 'cache clear' unlinks them)"))
        return EXIT_OK

    if action == "clear":
        n = len(cache.entries())
        cache.clear()
        print(f"removed {n} snapshot(s) from {cache.root}")
        freed = sum(1 for name, _ in list_orphan_segments()
                    if unlink_segment(name))
        if freed:
            print(f"unlinked {freed} shared-memory segment(s)")
        return EXIT_OK

    removed = cache.evict()
    print(f"evicted {removed} snapshot(s) "
          f"(keeping at most {cache.max_entries}) from {cache.root}")
    return EXIT_OK


def _cmd_list(parser: argparse.ArgumentParser,
              args: argparse.Namespace) -> int:
    if args.what == "datasets":
        rows = [
            [s.name, s.group, s.paper_vertices, s.paper_edges, s.notes]
            for s in DATASETS.values()
        ]
        print(format_table(
            ["name", "group", "paper |V|", "paper |E|", "notes"], rows
        ))
    elif args.what == "algorithms":
        from repro.engine import algorithm_specs

        rows = [
            [s.name, ", ".join(s.capability_tags), s.summary]
            for s in algorithm_specs()
        ]
        print(format_table(["algorithm", "capabilities", "summary"],
                           rows))
    else:
        for name in sorted(EXPERIMENTS):
            print(name)
    return EXIT_OK


_COMMANDS: dict[str, Callable[[argparse.ArgumentParser,
                               argparse.Namespace], int]] = {
    "run": _cmd_run,
    "sweep": _cmd_sweep,
    "stream": _cmd_stream,
    "bench": _cmd_bench,
    "stats": _cmd_stats,
    "experiment": _cmd_experiment,
    "report": _cmd_report,
    "analysis": _cmd_analysis,
    "store": _cmd_store,
    "serve": _cmd_serve,
    "worker": _cmd_worker,
    "submit": _cmd_submit,
    "job": _cmd_job,
    "cache": _cmd_cache,
    "list": _cmd_list,
}


def main(argv: list[str] | None = None) -> int:
    """Entry point for the ``repro-matching`` console script."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return _COMMANDS[args.command](parser, args)


if __name__ == "__main__":
    sys.exit(main())
