"""Pluggable instrumentation for engine-executed runs.

Sinks attach to a :class:`~repro.engine.context.RunContext` and are
notified by :func:`~repro.engine.executor.execute` around every run.
Built-ins cover the common cases — wall-clock accounting, iteration
counting, and capture/export of simulator traces — and custom sinks just
subclass :class:`InstrumentationSink`.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.engine.context import RunContext
    from repro.engine.record import RunRecord
    from repro.engine.spec import AlgorithmSpec
    from repro.graph.csr import CSRGraph

__all__ = [
    "InstrumentationSink",
    "WallClockSink",
    "IterationCounterSink",
    "TraceSink",
    "MetricsSink",
]


class InstrumentationSink:
    """Base sink: all hooks are no-ops; override what you need."""

    def on_run_start(self, spec: "AlgorithmSpec", graph: "CSRGraph",
                     ctx: "RunContext") -> None:
        """Called just before the algorithm callable runs."""

    def on_run_end(self, record: "RunRecord") -> None:
        """Called with the finished :class:`RunRecord`."""

    def on_run_error(self, spec: "AlgorithmSpec", graph: "CSRGraph",
                     ctx: "RunContext", exc: BaseException) -> None:
        """Called instead of :meth:`on_run_end` when the algorithm
        raises (e.g. :class:`~repro.gpusim.memory.DeviceOOMError`);
        sinks holding per-run state must release it here."""


class WallClockSink(InstrumentationSink):
    """Accumulates measured wall seconds per algorithm."""

    def __init__(self) -> None:
        self.runs: list[tuple[str, float]] = []

    def on_run_end(self, record: "RunRecord") -> None:
        self.runs.append((record.algorithm, record.wall_time_s))

    def total_seconds(self, algorithm: str | None = None) -> float:
        """Summed wall time, optionally for one algorithm."""
        return sum(t for name, t in self.runs
                   if algorithm is None or name == algorithm)


class IterationCounterSink(InstrumentationSink):
    """Counts runs and pointing/matching iterations per algorithm."""

    def __init__(self) -> None:
        self.counts: dict[str, dict[str, int]] = {}

    def on_run_end(self, record: "RunRecord") -> None:
        c = self.counts.setdefault(record.algorithm,
                                   {"runs": 0, "iterations": 0})
        c["runs"] += 1
        c["iterations"] += record.iterations


class TraceSink(InstrumentationSink):
    """Captures a :class:`~repro.gpusim.trace.Trace` from every
    simulator-backed run (results without a timeline are skipped).

    ``path`` writes each captured trace as chrome://tracing JSON — a
    single run's CLI export (``repro-matching run --trace``) or, with a
    ``{n}`` placeholder, one file per run.  Without ``{n}`` every run
    writes the *same* file: the second save warns once and
    ``saved_paths`` records only the surviving path.
    """

    def __init__(self, path: str | None = None) -> None:
        self.path = path
        self.traces: list[Any] = []
        self.saved_paths: list[str] = []
        self._overwrite_warned = False

    def on_run_end(self, record: "RunRecord") -> None:
        result = record.result
        if result is None or result.timeline is None:
            return
        from repro.gpusim.trace import Trace

        trace = Trace.from_result(result)
        self.traces.append(trace)
        if self.path is not None:
            target = str(self.path).replace("{n}", str(len(self.traces)))
            trace.save(target)
            if target in self.saved_paths:
                if not self._overwrite_warned:
                    import warnings

                    warnings.warn(
                        f"TraceSink path {self.path!r} has no '{{n}}' "
                        f"placeholder; successive runs overwrite "
                        f"{target!r} and only the last trace survives",
                        RuntimeWarning,
                        stacklevel=2,
                    )
                    self._overwrite_warned = True
            else:
                self.saved_paths.append(target)


class MetricsSink(InstrumentationSink):
    """Activates a :class:`~repro.telemetry.MetricsRegistry` around every
    run and snapshots it when the run finishes.

    Each run gets a fresh registry (so per-run exports are isolated);
    the snapshots accumulate in :attr:`snapshots`, pairwise with
    :attr:`records`, and :meth:`merged` folds them into one sweep-level
    view (histograms add across cells).  On run end the sink finalises
    the run-scope gauges — ``repro_communication_fraction``,
    ``repro_run_wall_seconds`` / ``repro_run_sim_seconds``,
    ``repro_run_iterations`` and Fig. 8's
    ``repro_iterations_below_edges_threshold`` — from the finished
    :class:`~repro.engine.record.RunRecord`, so they agree with the
    record by construction.
    """

    #: Fig. 8's threshold: iterations touching <20% of the edges.
    EDGES_THRESHOLD = 0.2

    def __init__(self) -> None:
        self.snapshots: list[Any] = []
        self.records: list["RunRecord"] = []
        self._scopes: list[Any] = []

    def on_run_start(self, spec: "AlgorithmSpec", graph: "CSRGraph",
                     ctx: "RunContext") -> None:
        from repro.telemetry import MetricsRegistry, record_into

        scope = record_into(MetricsRegistry())
        registry = scope.__enter__()
        self._scopes.append((scope, registry))

    def on_run_error(self, spec: "AlgorithmSpec", graph: "CSRGraph",
                     ctx: "RunContext", exc: BaseException) -> None:
        if self._scopes:
            scope, _ = self._scopes.pop()
            scope.__exit__(None, None, None)

    def on_run_end(self, record: "RunRecord") -> None:
        if not self._scopes:
            return
        scope, registry = self._scopes.pop()
        scope.__exit__(None, None, None)
        self._finalise(registry, record)
        self.snapshots.append(registry.snapshot())
        self.records.append(record)

    def _finalise(self, registry: Any, record: "RunRecord") -> None:
        """Run-scope gauges derived from the finished record."""
        alg = record.algorithm
        registry.gauge(
            "repro_run_wall_seconds",
            "Measured wall-clock seconds of the run.", algorithm=alg,
        ).set(record.wall_time_s)
        if record.sim_time is not None:
            registry.gauge(
                "repro_run_sim_seconds",
                "Modeled simulator seconds of the run.", algorithm=alg,
            ).set(record.sim_time)
        registry.gauge(
            "repro_run_iterations",
            "Pointing/matching rounds executed.", algorithm=alg,
        ).set(record.iterations)
        result = record.result
        timeline = getattr(result, "timeline", None)
        if timeline is not None:
            registry.gauge(
                "repro_communication_fraction",
                "Share of modeled time in collectives, transfers and "
                "sync (the paper's ~90% claim).", algorithm=alg,
            ).set(timeline.communication_fraction())
        scanned = getattr(result, "stats", {}).get("edges_scanned") \
            if result is not None else None
        if scanned is not None and record.num_directed_edges > 0:
            from repro.metrics.workstats import iterations_below_fraction

            registry.gauge(
                "repro_iterations_below_edges_threshold",
                "Fraction of iterations scanning less than the "
                "threshold share of edges (Fig. 8).",
                algorithm=alg, threshold=self.EDGES_THRESHOLD,
            ).set(iterations_below_fraction(
                scanned, record.num_directed_edges,
                self.EDGES_THRESHOLD,
            ))

    # -------------------------------------------------------------- #
    @property
    def last_snapshot(self) -> Any | None:
        """The most recent run's snapshot (None before any run)."""
        return self.snapshots[-1] if self.snapshots else None

    def merged(self) -> Any:
        """All runs' snapshots folded into one
        (:func:`repro.telemetry.aggregate_snapshots`)."""
        from repro.telemetry import aggregate_snapshots

        return aggregate_snapshots(self.snapshots)
