"""Pluggable instrumentation for engine-executed runs.

Sinks attach to a :class:`~repro.engine.context.RunContext` and are
notified by :func:`~repro.engine.executor.execute` around every run.
Built-ins cover the common cases — wall-clock accounting, iteration
counting, and capture/export of simulator traces — and custom sinks just
subclass :class:`InstrumentationSink`.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.engine.context import RunContext
    from repro.engine.record import RunRecord
    from repro.engine.spec import AlgorithmSpec
    from repro.graph.csr import CSRGraph

__all__ = [
    "InstrumentationSink",
    "WallClockSink",
    "IterationCounterSink",
    "TraceSink",
]


class InstrumentationSink:
    """Base sink: both hooks are no-ops; override what you need."""

    def on_run_start(self, spec: "AlgorithmSpec", graph: "CSRGraph",
                     ctx: "RunContext") -> None:
        """Called just before the algorithm callable runs."""

    def on_run_end(self, record: "RunRecord") -> None:
        """Called with the finished :class:`RunRecord`."""


class WallClockSink(InstrumentationSink):
    """Accumulates measured wall seconds per algorithm."""

    def __init__(self) -> None:
        self.runs: list[tuple[str, float]] = []

    def on_run_end(self, record: "RunRecord") -> None:
        self.runs.append((record.algorithm, record.wall_time_s))

    def total_seconds(self, algorithm: str | None = None) -> float:
        """Summed wall time, optionally for one algorithm."""
        return sum(t for name, t in self.runs
                   if algorithm is None or name == algorithm)


class IterationCounterSink(InstrumentationSink):
    """Counts runs and pointing/matching iterations per algorithm."""

    def __init__(self) -> None:
        self.counts: dict[str, dict[str, int]] = {}

    def on_run_end(self, record: "RunRecord") -> None:
        c = self.counts.setdefault(record.algorithm,
                                   {"runs": 0, "iterations": 0})
        c["runs"] += 1
        c["iterations"] += record.iterations


class TraceSink(InstrumentationSink):
    """Captures a :class:`~repro.gpusim.trace.Trace` from every
    simulator-backed run (results without a timeline are skipped).

    ``path`` writes each captured trace as chrome://tracing JSON — a
    single run's CLI export (``repro-matching run --trace``) or, with a
    ``{n}`` placeholder, one file per run.
    """

    def __init__(self, path: str | None = None) -> None:
        self.path = path
        self.traces: list[Any] = []
        self.saved_paths: list[str] = []

    def on_run_end(self, record: "RunRecord") -> None:
        result = record.result
        if result is None or result.timeline is None:
            return
        from repro.gpusim.trace import Trace

        trace = Trace.from_result(result)
        self.traces.append(trace)
        if self.path is not None:
            target = str(self.path).replace("{n}", str(len(self.traces)))
            trace.save(target)
            self.saved_paths.append(target)
