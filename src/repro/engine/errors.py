"""Exceptions raised by the execution engine."""

from __future__ import annotations

__all__ = [
    "EngineError",
    "UnknownAlgorithmError",
    "ConfigurationDivergenceError",
]


class EngineError(RuntimeError):
    """Base class for engine-layer failures."""


class UnknownAlgorithmError(EngineError, KeyError):
    """Lookup of a name absent from the algorithm registry.

    Subclasses ``KeyError`` so pre-registry callers of
    ``run_algorithm`` keep working unchanged.
    """

    def __init__(self, name: str, known: list[str]):
        self.name = name
        self.known = known
        super().__init__(
            f"unknown algorithm {name!r}; known: {sorted(known)}"
        )

    def __str__(self) -> str:  # KeyError quotes its arg; keep the message
        return self.args[0]


class ConfigurationDivergenceError(EngineError):
    """Two configurations of the same algorithm produced different
    matchings.

    LD-GPU's Lemma III.1 guarantees the mate array is independent of the
    device/batch configuration; a divergence means the implementation is
    broken, and must surface even under ``python -O`` (which is why this
    is an exception, not an ``assert``).
    """

    def __init__(self, algorithm: str, config_ref: str, config_bad: str):
        self.algorithm = algorithm
        self.config_ref = config_ref
        self.config_bad = config_bad
        super().__init__(
            f"{algorithm} result depends on configuration: "
            f"{config_bad} disagrees with {config_ref} — broken"
        )
