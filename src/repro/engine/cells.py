"""Grid cells and the one API that runs them.

Every sweep, experiment and benchmark in this repository is the same
shape: a list of *cells* — (algorithm, graph, context overrides) triples
— mapped through :func:`~repro.engine.executor.execute`.  This module
makes that shape first-class:

* :class:`Cell` — one grid point.  References its graph by registry
  dataset name (resolved lazily, so cells stay cheap to build and cheap
  to ship to worker processes) or uses the shared ``graph`` argument of
  :func:`run_cells`.
* :func:`run_cells` — maps ``execute`` over the cells, serially or (with
  ``parallel=N``) on a :class:`~concurrent.futures.ProcessPoolExecutor`
  via :mod:`repro.harness.parallel`.  Results come back in cell order
  either way, and a crashing cell becomes an ``error``
  :class:`~repro.engine.record.RunRecord` instead of killing the grid.
* :func:`derive_cell_seed` — deterministic per-cell seeds: the seed a
  randomised algorithm sees depends only on the context's base seed and
  the cell's position in the grid, never on scheduling order or worker
  count.  This is what makes ``parallel=N`` bit-identical to serial.

The paper's sweeps are embarrassingly parallel across configurations
(cf. Birn et al., arXiv:1302.4587); treating each cell as a composable,
failure-isolated unit (cf. Assadi et al., arXiv:1906.01993) is what the
``RunRecord`` list gives back.
"""

from __future__ import annotations

import hashlib
import time
import traceback as _traceback
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Iterable, Sequence

from repro.engine.context import RunContext
from repro.engine.executor import execute
from repro.engine.record import RunRecord
from repro.engine.spec import AlgorithmSpec, get_spec

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.graph.csr import CSRGraph
    from repro.store.db import RunStore

__all__ = [
    "Cell",
    "MaterialisedCell",
    "run_cells",
    "run_materialised_cell",
    "run_stored_cell",
    "materialise_cells",
    "derive_cell_seed",
    "error_record",
]

#: How long a worker sleeps between store polls while another worker
#: holds the lease on the cell it needs.
STORE_POLL_S = 0.05


@dataclass(frozen=True)
class Cell:
    """One grid point: an algorithm plus how to run it.

    Attributes
    ----------
    algorithm:
        Registry name or an :class:`AlgorithmSpec` object (unregistered
        specs work — :func:`execute` accepts both).
    dataset:
        Registry dataset whose analog (or, with ``quality=True``, whose
        blossom-tractable quality instance) is the input graph.  Cells
        without a dataset use ``build`` when set, else the shared
        ``graph`` passed to :func:`run_cells`.
    build:
        Zero-argument callable producing the input graph, for cells
        whose graph is not a registry dataset (benchmark stress graphs,
        ad-hoc experiments).  Must be a module-level function (or
        otherwise picklable) for ``parallel=N`` runs, and deterministic
        — the parallel path builds it once per distinct callable and
        stages it through the graph cache.  Ignored when ``dataset``
        is set.
    ctx:
        Full per-cell context; ``None`` uses :func:`run_cells`'s base
        context.  Use this when cells span datasets/platforms.
    config:
        :meth:`RunContext.with_config` overrides applied on top of the
        chosen context (``{"num_devices": 4, "num_batches": None}`` —
        key presence is what marks an override, so ``None`` values pass
        through meaningfully).
    overrides:
        Keyword arguments forwarded verbatim to the algorithm callable
        (``{"collect_stats": False}``).
    seed:
        Explicit per-cell seed; ``None`` derives one from the context
        seed via :func:`derive_cell_seed` (or keeps no seed when the
        context has none).
    label:
        Free-form tag recorded in ``RunRecord.extra["label"]``.
    replicate:
        Repeat index for deliberate re-measurement of one configuration
        (bench repeats).  Identical cells share a store fingerprint and
        the second run would be served from the store; distinct
        ``replicate`` values keep each repeat addressable on its own.
    """

    algorithm: Any = "ld_gpu"
    dataset: str | None = None
    quality: bool = False
    build: Any = field(default=None, repr=False)
    ctx: RunContext | None = None
    config: dict[str, Any] = field(default_factory=dict)
    overrides: dict[str, Any] = field(default_factory=dict)
    seed: int | None = None
    label: str | None = None
    replicate: int | None = None

    @property
    def algorithm_name(self) -> str:
        return self.algorithm.name \
            if isinstance(self.algorithm, AlgorithmSpec) \
            else str(self.algorithm)


@dataclass(frozen=True)
class MaterialisedCell:
    """A cell bound to its grid position and effective context."""

    index: int
    cell: Cell
    ctx: RunContext


def derive_cell_seed(base_seed: int, index: int) -> int:
    """Deterministic, well-mixed seed for grid cell ``index``.

    Stable across processes and Python versions (sha256, not ``hash``),
    so serial and process-parallel execution of the same grid hand every
    randomised algorithm the same seed.
    """
    digest = hashlib.sha256(f"{base_seed}:{index}".encode()).digest()
    return int.from_bytes(digest[:4], "big") & 0x7FFFFFFF


def materialise_cells(
    cells: Iterable[Cell],
    ctx: RunContext | None = None,
) -> list[MaterialisedCell]:
    """Bind each cell to its index and effective context.

    Seed policy: an explicit ``cell.seed`` wins; otherwise a context
    seed is *derived per cell* (:func:`derive_cell_seed`) so repeated
    cells of a randomised algorithm explore independent streams while
    staying reproducible; no context seed means no seed, as with
    :func:`execute`.
    """
    base = ctx if ctx is not None else RunContext()
    out: list[MaterialisedCell] = []
    for i, cell in enumerate(cells):
        ectx = cell.ctx if cell.ctx is not None else base
        if cell.config:
            ectx = ectx.with_config(**cell.config)
        if cell.seed is not None:
            ectx = ectx.with_config(seed=cell.seed)
        elif ectx.seed is not None:
            ectx = ectx.with_config(
                seed=derive_cell_seed(ectx.seed, i))
        out.append(MaterialisedCell(i, cell, ectx))
    return out


def error_record(
    cell: Cell,
    ctx: RunContext,
    graph: "CSRGraph | None",
    exc: BaseException,
    *,
    fingerprint: str | None = None,
    config: dict[str, Any] | None = None,
    started_at: float | None = None,
) -> RunRecord:
    """The ``status="error"`` record standing in for a crashed cell.

    Carries enough configuration to identify the cell in a stored sweep
    (algorithm, graph/dataset, devices/batches/seed) plus the exception
    type, message and formatted traceback.  ``weight``/``matched_edges``
    are zero, ``sim_time`` is ``None`` — consumers filter on
    ``record.ok``.

    ``fingerprint``/``config`` are the cell's store address and full
    normalised configuration (:func:`repro.store.fingerprint.
    fingerprint_for`); when present they land in ``extra`` so the
    failed cell is *re-addressable* — ``store resume`` rebuilds exactly
    this cell from the recorded config and re-runs it.
    """
    name = cell.algorithm_name
    try:
        spec = cell.algorithm if isinstance(cell.algorithm, AlgorithmSpec) \
            else get_spec(name)
    except KeyError:
        spec = None
    extra: dict[str, Any] = {}
    if cell.label is not None:
        extra["label"] = cell.label
    if fingerprint is not None:
        extra["fingerprint"] = fingerprint
    if config is not None:
        extra["cell_config"] = config
    platform = None
    if spec is not None and (spec.needs_platform or spec.needs_device_spec):
        platform = ctx.resolved_platform().name
    return RunRecord(
        algorithm=name,
        graph=graph.name if graph is not None
        else (cell.dataset or "<unresolved>"),
        num_vertices=int(graph.num_vertices) if graph is not None else 0,
        num_directed_edges=int(graph.num_directed_edges)
        if graph is not None else 0,
        weight=0.0,
        matched_edges=0,
        iterations=0,
        sim_time=None,
        wall_time_s=0.0,
        started_at=started_at,
        duration_s=(time.time() - started_at)
        if started_at is not None else None,
        dataset=ctx.dataset if ctx.dataset is not None else cell.dataset,
        platform=platform,
        cpu=ctx.resolved_cpu().name
        if (spec is not None and spec.needs_cpu) else None,
        num_devices=ctx.num_devices
        if (spec is not None and spec.needs_devices) else None,
        num_batches=ctx.num_batches
        if (spec is not None and spec.needs_batches) else None,
        seed=ctx.seed,
        capability_tags=spec.capability_tags if spec is not None else (),
        status="error",
        error={
            "type": type(exc).__name__,
            "message": str(exc),
            "traceback": "".join(_traceback.format_exception(exc)),
        },
        extra=extra,
    )


def _resolve_graph(cell: Cell, shared: "CSRGraph | None") -> "CSRGraph":
    """The input graph for a cell (serial path: in-process memo via the
    dataset registry's ``lru_cache``)."""
    if cell.dataset is not None:
        from repro.harness.datasets import load_dataset, quality_instance

        return quality_instance(cell.dataset) if cell.quality \
            else load_dataset(cell.dataset)
    if cell.build is not None:
        return cell.build()
    if shared is None:
        raise ValueError(
            f"cell {cell.algorithm_name!r} names no dataset or builder "
            "and run_cells received no graph"
        )
    return shared


def run_materialised_cell(mc: MaterialisedCell, graph: "CSRGraph",
                          on_error: str = "record") -> RunRecord:
    """Execute one materialised cell on an already-resolved graph.

    The single cell-execution path shared by the serial loop and the
    process-pool workers — which is what makes their records identical
    field for field.
    """
    cell, ctx = mc.cell, mc.ctx
    started_at = time.time()
    try:
        record = execute(cell.algorithm, graph, ctx, **cell.overrides)
    except Exception as exc:
        if on_error == "raise":
            raise
        fp = config = None
        try:
            from repro.store.fingerprint import fingerprint_for

            fp, config, _ = fingerprint_for(cell, ctx, graph)
        except Exception:
            pass  # never let fingerprinting mask the real failure
        return error_record(cell, ctx, graph, exc,
                            fingerprint=fp, config=config,
                            started_at=started_at)
    if cell.label is not None:
        record.extra["label"] = cell.label
    return record


def run_stored_cell(mc: MaterialisedCell, graph: "CSRGraph",
                    store: "RunStore", on_error: str = "record",
                    ) -> RunRecord:
    """Execute one cell *through* a :class:`~repro.store.db.RunStore`.

    The cell is registered under its content fingerprint, then resolved
    by a claim-or-wait loop:

    * ``done`` row → the stored record is returned bit-identically
      (zero recompute; counted as a store hit);
    * claimable row (``pending``, previous ``error``, or a stale lease
      left by a dead worker) → this process takes the lease, runs the
      cell, persists the outcome and returns it;
    * row leased by a live worker → poll until that worker's record
      lands, then serve it from the store.

    A crash inside the cell persists a ``status="error"`` record that
    carries the fingerprint and full normalised config (re-claimable
    and re-addressable by ``store resume``).  Interruptions that are
    not ordinary exceptions (``KeyboardInterrupt``, ``SystemExit``)
    release the lease — the cell returns to ``pending`` untouched,
    which is what makes killed sweeps resumable.
    """
    from repro.store.fingerprint import fingerprint_for

    fp, config, gfp = fingerprint_for(mc.cell, mc.ctx, graph)
    store.register(fp, algorithm=mc.cell.algorithm_name, config=config,
                   seed=mc.ctx.seed, graph_fingerprint=gfp,
                   dataset=mc.cell.dataset or mc.ctx.dataset)
    while True:
        cached = store.lookup(fp)
        if cached is not None:
            return cached
        if store.claim(fp):
            started_at = time.time()
            try:
                record = run_materialised_cell(mc, graph,
                                               on_error="raise")
            except Exception as exc:
                record = error_record(mc.cell, mc.ctx, graph, exc,
                                      fingerprint=fp, config=config,
                                      started_at=started_at)
                store.complete(fp, record)
                if on_error == "raise":
                    raise
                return record
            except BaseException:
                store.release(fp)
                raise
            store.complete(fp, record)
            return record
        time.sleep(STORE_POLL_S)


def _run_one(mc: MaterialisedCell, graph: "CSRGraph | None",
             on_error: str) -> RunRecord:
    """Resolve the cell's graph, then execute with failure isolation."""
    try:
        g = _resolve_graph(mc.cell, graph)
    except Exception as exc:
        if on_error == "raise":
            raise
        return error_record(mc.cell, mc.ctx, None, exc)
    return run_materialised_cell(mc, g, on_error)


def run_cells(
    cells: Sequence[Cell],
    ctx: RunContext | None = None,
    *,
    graph: "CSRGraph | None" = None,
    parallel: int = 0,
    on_error: str = "record",
    cache: Any = None,
    store: Any = None,
    shm: Any = None,
) -> list[RunRecord]:
    """Run every cell and return its :class:`RunRecord`, in cell order.

    Parameters
    ----------
    cells:
        The grid.  Cells reference graphs by ``dataset`` name or fall
        back to the shared ``graph``.
    ctx:
        Base context for cells without their own (default
        ``RunContext()``).
    parallel:
        ``0`` (default) runs in-process; ``N >= 1`` fans the cells out
        to ``N`` worker processes (:mod:`repro.harness.parallel`).
        Results are bit-identical to the serial path — deterministic
        per-cell seeds, order-preserving collection — but context
        ``sinks`` are **not** notified from workers (attach sinks only
        to serial runs, or aggregate from the returned records).
    on_error:
        ``"record"`` (default) turns a crashing cell into an ``error``
        record (:func:`error_record`); ``"raise"`` propagates the first
        failure, killing the rest of the grid.
    cache:
        Parallel path only: a :class:`~repro.harness.cache.GraphCache`
        staging graphs on disk for the workers, ``None`` for the
        default cache, or ``False`` to ship graphs by pickle instead.
    shm:
        Parallel path only: ``None`` (default) also publishes staged
        graphs into shared memory so workers attach zero-copy views
        instead of re-reading ``.npz`` snapshots (disable globally with
        ``REPRO_SHM=off``); ``False`` forces disk-only staging; a
        :class:`~repro.harness.shm.SharedGraphRegistry` pins segment
        ownership to that registry.
    store:
        A :class:`~repro.store.db.RunStore` (or a database path) making
        the grid *durable*: every cell is registered under its content
        fingerprint, cells already ``done`` are served from the store
        bit-identically (no recompute), only ``pending``/failed/stale
        cells execute, and every completed record is persisted
        (:func:`run_stored_cell`).  ``None`` keeps the grid ephemeral.
        Store-served records have ``result=None`` — the in-memory
        :class:`~repro.engine.record.MatchResult` is never serialised —
        so consumers needing per-component numbers read
        ``record.timeline_totals``.

    Returns
    -------
    list[RunRecord]
        One record per cell, order-aligned with ``cells``.  Check
        ``record.ok`` before using result fields.
    """
    if on_error not in ("record", "raise"):
        raise ValueError(f"on_error must be 'record' or 'raise', "
                         f"got {on_error!r}")
    if store is not None:
        from repro.store.db import resolve_store

        store = resolve_store(store, use_env=False)
    materialised = materialise_cells(cells, ctx)
    if parallel and parallel >= 1:
        from repro.harness.parallel import run_cells_parallel

        return run_cells_parallel(
            materialised, graph=graph, max_workers=int(parallel),
            on_error=on_error, cache=cache, store=store, shm=shm,
        )
    if store is None:
        return [_run_one(mc, graph, on_error) for mc in materialised]
    out: list[RunRecord] = []
    for mc in materialised:
        try:
            g = _resolve_graph(mc.cell, graph)
        except Exception as exc:
            if on_error == "raise":
                raise
            out.append(error_record(mc.cell, mc.ctx, None, exc))
            continue
        out.append(run_stored_cell(mc, g, store, on_error))
    return out
