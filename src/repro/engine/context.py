"""Execution contexts: platform/CPU selection, seeding, instrumentation.

A :class:`RunContext` carries everything about *how* to run that is not
the algorithm or the graph: which (possibly memory-scaled) platform and
host CPU model to simulate on, how many devices and batches, the RNG seed
for randomised algorithms, and the instrumentation sinks every run
reports to.  :meth:`RunContext.for_dataset` encapsulates the paper's
bandwidth-scaling protocol (previously re-derived by the CLI, the
experiments and the benchmarks independently).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING, Any

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.engine.sinks import InstrumentationSink
    from repro.gpusim.spec import CpuSpec, PlatformSpec
    from repro.graph.csr import CSRGraph

__all__ = ["RunContext"]


@dataclass(frozen=True)
class RunContext:
    """Immutable configuration for one or more algorithm runs.

    Attributes
    ----------
    platform:
        :class:`~repro.gpusim.spec.PlatformSpec` for simulator-backed
        GPU algorithms; ``None`` selects the default DGX-A100.
    cpu:
        :class:`~repro.gpusim.spec.CpuSpec` for CPU cost models;
        ``None`` selects the default dual-socket EPYC 7742.
    num_devices / num_batches:
        Device count and per-device batch count for multi-GPU
        algorithms (``num_batches=None`` = auto-fit).
    seed:
        Forwarded to randomised algorithms when set; ``None`` keeps each
        algorithm's own default.
    pointing_engine:
        Forwarded as ``engine=`` to algorithms whose spec declares
        ``accepts_pointing_engine`` (``"index"``/``"segment"``, see
        :mod:`repro.matching.pointer_index`); ``None`` keeps the
        ``REPRO_POINTING_ENGINE``-then-``"index"`` default.
    dataset:
        Name of the dataset this context was derived for (recorded in
        every :class:`~repro.engine.record.RunRecord`).
    sinks:
        :class:`~repro.engine.sinks.InstrumentationSink` instances
        notified around every :func:`~repro.engine.executor.execute`.
    """

    platform: "PlatformSpec | None" = None
    cpu: "CpuSpec | None" = None
    num_devices: int = 1
    num_batches: int | None = None
    seed: int | None = None
    pointing_engine: str | None = None
    dataset: str | None = None
    sinks: tuple["InstrumentationSink", ...] = field(default=())

    # -------------------------------------------------------------- #
    # construction helpers
    # -------------------------------------------------------------- #

    @classmethod
    def for_dataset(
        cls,
        name: str,
        platform: "PlatformSpec | None" = None,
        cpu: "CpuSpec | None" = None,
        graph: "CSRGraph | None" = None,
        num_devices: int = 1,
        num_batches: int | None = None,
        seed: int | None = None,
        pointing_engine: str | None = None,
        sinks: tuple["InstrumentationSink", ...] = (),
    ) -> "RunContext":
        """Context with the platform/CPU *memory-scaled* for a registry
        dataset (see :func:`repro.harness.datasets.scaled_platform`).

        ``graph`` overrides the analog used to compute the scale factor
        — pass the quality instance to scale for it instead of the full
        analog.
        """
        from repro.gpusim.spec import CPU_EPYC_7742_2S, DGX_A100
        from repro.harness.datasets import scaled_cpu, scaled_platform

        base_plat = platform if platform is not None else DGX_A100
        base_cpu = cpu if cpu is not None else CPU_EPYC_7742_2S
        return cls(
            platform=scaled_platform(name, base_plat, graph),
            cpu=scaled_cpu(name, base_cpu, graph),
            num_devices=num_devices,
            num_batches=num_batches,
            seed=seed,
            pointing_engine=pointing_engine,
            dataset=name,
            sinks=tuple(sinks),
        )

    def with_config(self, **changes: Any) -> "RunContext":
        """A copy with some fields replaced (``dataclasses.replace``)."""
        return replace(self, **changes)

    # -------------------------------------------------------------- #
    # resolution (lazy defaults keep this module import-cycle free)
    # -------------------------------------------------------------- #

    def resolved_platform(self) -> "PlatformSpec":
        """The platform, defaulting to the unscaled DGX-A100."""
        if self.platform is not None:
            return self.platform
        from repro.gpusim.spec import DGX_A100

        return DGX_A100

    def resolved_cpu(self) -> "CpuSpec":
        """The CPU model, defaulting to the paper's SR-OMP host."""
        if self.cpu is not None:
            return self.cpu
        from repro.gpusim.spec import CPU_EPYC_7742_2S

        return CPU_EPYC_7742_2S
