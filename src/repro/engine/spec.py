"""Algorithm descriptors and the global registry.

Every matching algorithm registers an :class:`AlgorithmSpec` next to its
implementation (at the bottom of its module in ``repro.matching``).  The
spec declares what the algorithm needs from a
:class:`~repro.engine.context.RunContext` — a platform, a device count, a
CPU model, a seed — and :meth:`AlgorithmSpec.bind` turns that declaration
into the correct keyword arguments, replacing the per-algorithm if-chains
that every entry point used to carry.

This module imports nothing from the rest of ``repro`` at module level;
the registry is populated lazily by importing :mod:`repro.matching` on
first query, which keeps algorithm modules free to import it in turn.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable, Dict

from repro.engine.errors import UnknownAlgorithmError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.engine.context import RunContext
    from repro.graph.csr import CSRGraph
    from repro.matching.types import MatchResult

__all__ = [
    "AlgorithmSpec",
    "register",
    "get_spec",
    "algorithm_names",
    "algorithm_specs",
]


@dataclass(frozen=True)
class AlgorithmSpec:
    """One registered algorithm: callable + declared parameter needs +
    capability tags.

    Attributes
    ----------
    name:
        Registry key (``"ld_gpu"``, ``"sr_omp"``, ...).
    fn:
        ``callable(graph, **kwargs) -> MatchResult``.
    summary:
        One-line description for ``repro-matching list algorithms``.
    needs_platform / needs_devices / needs_batches / needs_cpu /
    needs_device_spec:
        Which context-owned parameters the callable accepts
        (``platform=`` / ``num_devices=`` / ``num_batches=`` / ``cpu=`` /
        ``spec=`` respectively).
    accepts_seed:
        The callable is randomised and takes ``seed=``; a context seed is
        forwarded when set.
    accepts_pointing_engine:
        The callable takes ``engine=`` (``"index"``/``"segment"``, see
        :mod:`repro.matching.pointer_index`); a context
        ``pointing_engine`` is forwarded when set.
    simulator_backed:
        Runs under a cost model and reports ``sim_time`` (and usually a
        component :class:`~repro.gpusim.timeline.Timeline`).
    exact:
        Computes the true maximum weight matching.
    approx_ratio:
        Worst-case approximation guarantee as a display string
        (``"1/2"``, ``"2/3"``, ``"2/3-eps"``); ``None`` for exact solvers.
    parallel_safe:
        The callable is a pure function of ``(graph, kwargs)`` — no
        process-global mutable state — so
        :func:`~repro.engine.cells.run_cells` may dispatch it to worker
        processes.  Mark ``False`` for algorithms that mutate shared
        state (e.g. incremental matchers wrapping a live object).
    record_stats:
        Names of ``result.stats`` entries the executor copies into
        ``RunRecord.extra`` (JSON-coerced).  This is how an algorithm's
        *deterministic output payload* survives the run store — a
        store-served record has ``result=None``, so anything a
        downstream consumer needs (e.g. a shard's coreset edge list)
        must be declared here.  Keys absent from ``stats`` are skipped.
    tags:
        Extra free-form capability tags.
    """

    name: str
    fn: Callable[..., "MatchResult"] = field(repr=False)
    summary: str = ""
    needs_platform: bool = False
    needs_devices: bool = False
    needs_batches: bool = False
    needs_cpu: bool = False
    needs_device_spec: bool = False
    accepts_seed: bool = False
    accepts_pointing_engine: bool = False
    simulator_backed: bool = False
    exact: bool = False
    approx_ratio: str | None = None
    parallel_safe: bool = True
    record_stats: tuple[str, ...] = ()
    tags: tuple[str, ...] = ()

    @property
    def capability_tags(self) -> tuple[str, ...]:
        """Canonical tag list (what ``list algorithms`` prints)."""
        out: list[str] = []
        if self.simulator_backed:
            out.append("simulator_backed")
        if self.exact:
            out.append("exact")
        if self.approx_ratio is not None:
            out.append(f"approx_ratio={self.approx_ratio}")
        out.append("parallel-safe" if self.parallel_safe
                   else "serial-only")
        out.extend(self.tags)
        return tuple(out)

    def bind(self, graph: "CSRGraph", ctx: "RunContext") -> dict[str, Any]:
        """Build the keyword arguments for ``fn(graph, **kwargs)`` from
        the declared needs and the context's configuration."""
        kwargs: dict[str, Any] = {}
        if self.needs_platform:
            kwargs["platform"] = ctx.resolved_platform()
        if self.needs_device_spec:
            kwargs["spec"] = ctx.resolved_platform().device
        if self.needs_devices:
            kwargs["num_devices"] = ctx.num_devices
        if self.needs_batches:
            kwargs["num_batches"] = ctx.num_batches
        if self.needs_cpu:
            kwargs["cpu"] = ctx.resolved_cpu()
        if self.accepts_seed and ctx.seed is not None:
            kwargs["seed"] = ctx.seed
        if self.accepts_pointing_engine and \
                ctx.pointing_engine is not None:
            kwargs["engine"] = ctx.pointing_engine
        return kwargs


_REGISTRY: Dict[str, AlgorithmSpec] = {}
_POPULATED = False


def register(spec: AlgorithmSpec) -> AlgorithmSpec:
    """Add ``spec`` to the global registry (idempotent per name+fn)."""
    existing = _REGISTRY.get(spec.name)
    if existing is not None and existing.fn is not spec.fn:
        raise ValueError(f"algorithm {spec.name!r} already registered")
    _REGISTRY[spec.name] = spec
    return spec


def _ensure_populated() -> None:
    """Import the algorithm modules once so their specs register."""
    global _POPULATED
    if not _POPULATED:
        import repro.matching  # noqa: F401  (registration side effect)

        _POPULATED = True


def get_spec(name: str) -> AlgorithmSpec:
    """Look up one spec; raises :class:`UnknownAlgorithmError` (a
    ``KeyError``) for unregistered names."""
    _ensure_populated()
    try:
        return _REGISTRY[name]
    except KeyError:
        raise UnknownAlgorithmError(name, list(_REGISTRY)) from None


def algorithm_names() -> list[str]:
    """Sorted names of every registered algorithm."""
    _ensure_populated()
    return sorted(_REGISTRY)


def algorithm_specs() -> list[AlgorithmSpec]:
    """Every registered spec, sorted by name."""
    _ensure_populated()
    return [_REGISTRY[n] for n in sorted(_REGISTRY)]
