"""Unified algorithm registry and execution-context layer.

The engine is the one structured path from "an algorithm name and a
graph" to "a uniform structured result":

* :class:`AlgorithmSpec` — a registered algorithm with declared parameter
  needs (platform / devices / batches / CPU / seed) and capability tags
  (``simulator_backed``, ``exact``, ``approx_ratio=...``).  Specs are
  registered next to each implementation in :mod:`repro.matching`.
* :class:`RunContext` — owns platform selection and the paper's
  memory-scaling protocol (:meth:`RunContext.for_dataset`), the RNG
  seed, and pluggable instrumentation sinks.
* :func:`execute` — binds context kwargs via :meth:`AlgorithmSpec.bind`,
  runs, notifies sinks, and returns a :class:`RunRecord`.
* :class:`RunRecord` — the JSON-serialisable outcome (the CLI's
  ``--json`` output and the harness's machine-readable results).
* :class:`Cell` / :func:`run_cells` — grids of runs as data: every
  sweep, experiment and benchmark maps ``execute`` over a cell list,
  serially or process-parallel (``parallel=N``), with per-cell failure
  isolation and deterministic per-cell seeds.

Example::

    from repro.engine import RunContext, execute
    from repro.harness.datasets import load_dataset

    g = load_dataset("mouse_gene")
    ctx = RunContext.for_dataset("mouse_gene", num_devices=4)
    record = execute("ld_gpu", g, ctx)
    print(record.to_json(indent=1))

Adding a new backend (say a real CuPy executor next to the ``gpusim``
cost model) is one more :func:`register` call — every entry point (CLI,
experiments, sweeps, benchmarks) picks it up with zero dispatch code.
"""

from repro.engine.errors import (
    ConfigurationDivergenceError,
    EngineError,
    UnknownAlgorithmError,
)
from repro.engine.spec import (
    AlgorithmSpec,
    algorithm_names,
    algorithm_specs,
    get_spec,
    register,
)
from repro.engine.context import RunContext
from repro.engine.record import RunRecord, SCHEMA_VERSION
from repro.engine.executor import execute
from repro.engine.cells import (
    Cell,
    derive_cell_seed,
    error_record,
    run_cells,
)
from repro.engine.sinks import (
    InstrumentationSink,
    IterationCounterSink,
    MetricsSink,
    TraceSink,
    WallClockSink,
)

__all__ = [
    "AlgorithmSpec",
    "RunContext",
    "RunRecord",
    "SCHEMA_VERSION",
    "execute",
    "Cell",
    "run_cells",
    "derive_cell_seed",
    "error_record",
    "register",
    "get_spec",
    "algorithm_names",
    "algorithm_specs",
    "EngineError",
    "UnknownAlgorithmError",
    "ConfigurationDivergenceError",
    "InstrumentationSink",
    "WallClockSink",
    "IterationCounterSink",
    "TraceSink",
    "MetricsSink",
]
