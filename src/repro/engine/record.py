"""Uniform structured results for any algorithm run.

A :class:`RunRecord` is what :func:`~repro.engine.executor.execute`
returns: the scalar outcome of a run (weight, matched edges, iterations,
modeled and wall-clock seconds) plus the configuration that produced it,
in a shape that serialises losslessly to JSON.  The raw
:class:`~repro.matching.types.MatchResult` rides along in ``.result`` for
in-process callers but is excluded from serialisation (mate arrays are
persisted separately via ``MatchResult.save``).
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields
from typing import Any

__all__ = ["RunRecord", "SCHEMA_VERSION"]

#: Bump when the serialised field set changes incompatibly.
#: v2: adds the ``provenance`` manifest (git/python/numpy versions,
#: host platform, dataset fingerprint, wall+sim durations) — see
#: :mod:`repro.telemetry.provenance`.  v1 documents still load
#: (``provenance`` comes back ``None``).
#: v3: adds ``status`` (``"ok"``/``"error"``) and ``error`` (exception
#: type/message/traceback) so a crashed sweep cell serialises as a
#: record instead of killing the grid.  v1/v2 documents still load
#: (``status`` comes back ``"ok"``, ``error`` ``None``).
#: v4: adds the wall-clock timestamps ``started_at`` (unix epoch
#: seconds when the run began) and ``duration_s`` (total wall seconds
#: the run occupied, algorithm plus record assembly) so bench
#: trajectories order by real time, not just git order.  v1-v3
#: documents still load (both come back ``None``).
SCHEMA_VERSION = 4


def _coerce(v: Any) -> Any:
    """NumPy scalars/arrays → plain Python (JSON-safe)."""
    import numpy as np

    if isinstance(v, np.generic):
        return v.item()
    if isinstance(v, np.ndarray):
        return v.tolist()
    if isinstance(v, dict):
        return {k: _coerce(x) for k, x in v.items()}
    if isinstance(v, (list, tuple)):
        return [_coerce(x) for x in v]
    return v


@dataclass
class RunRecord:
    """One algorithm run, flattened for machines.

    Everything except ``result`` round-trips through
    :meth:`to_dict` / :meth:`from_dict` (and therefore ``--json``).
    """

    algorithm: str
    graph: str
    num_vertices: int
    num_directed_edges: int
    weight: float
    matched_edges: int
    iterations: int
    sim_time: float | None = None
    wall_time_s: float = 0.0
    #: Unix epoch seconds when the run began (``time.time()``); ``None``
    #: on pre-v4 documents.  Deliberately non-deterministic — strip it
    #: (with the other wall-clock fields) before bit-identity diffs.
    started_at: float | None = None
    #: Total wall-clock seconds the run occupied end to end (algorithm
    #: call plus provenance/record assembly); ``wall_time_s`` times only
    #: the algorithm callable.  ``None`` on pre-v4 documents.
    duration_s: float | None = None
    dataset: str | None = None
    platform: str | None = None
    cpu: str | None = None
    num_devices: int | None = None
    num_batches: int | None = None
    seed: int | None = None
    capability_tags: tuple[str, ...] = ()
    #: ``"ok"`` for a completed run; ``"error"`` when the cell crashed
    #: and :func:`~repro.engine.cells.run_cells` recorded the failure
    #: instead of propagating it.
    status: str = "ok"
    #: ``{"type", "message", "traceback"}`` of the failure for an
    #: ``error`` record; ``None`` on success.
    error: dict[str, Any] | None = None
    timeline_totals: dict[str, float] | None = None
    #: Self-description manifest (:func:`repro.telemetry.provenance.
    #: build_manifest`) — code/env versions, dataset fingerprint, seed.
    provenance: dict[str, Any] | None = None
    extra: dict[str, Any] = field(default_factory=dict)
    #: The producing MatchResult — in-process only, never serialised.
    result: Any = field(default=None, compare=False, repr=False)

    @property
    def ok(self) -> bool:
        """True for a completed run (``status == "ok"``)."""
        return self.status == "ok"

    # -------------------------------------------------------------- #
    # serialisation
    # -------------------------------------------------------------- #

    _SERIALISED = None  # populated below, after the dataclass exists

    def to_dict(self) -> dict[str, Any]:
        """JSON-safe dict (numpy coerced, ``result`` dropped)."""
        out: dict[str, Any] = {"schema": SCHEMA_VERSION}
        for name in self._SERIALISED:
            out[name] = _coerce(getattr(self, name))
        return out

    @classmethod
    def from_dict(cls, d: dict[str, Any]) -> "RunRecord":
        """Inverse of :meth:`to_dict` (``result`` is ``None``)."""
        schema = d.get("schema", SCHEMA_VERSION)
        if schema > SCHEMA_VERSION:
            raise ValueError(
                f"RunRecord schema {schema} is newer than supported "
                f"({SCHEMA_VERSION})"
            )
        kwargs = {k: d[k] for k in cls._SERIALISED if k in d}
        if "capability_tags" in kwargs:
            kwargs["capability_tags"] = tuple(kwargs["capability_tags"])
        return cls(**kwargs)

    def to_json(self, indent: int | None = None) -> str:
        """:meth:`to_dict` as a JSON string.

        Keys are sorted and the document ends with a newline, so store
        exports and committed baseline files diff cleanly line by line
        and re-serialising a parsed record reproduces the exact bytes
        (``from_json(s).to_json() == s``).
        """
        import json

        return json.dumps(self.to_dict(), indent=indent,
                          sort_keys=True) + "\n"

    @classmethod
    def from_json(cls, text: str) -> "RunRecord":
        """Parse a string written by :meth:`to_json`."""
        import json

        return cls.from_dict(json.loads(text))


RunRecord._SERIALISED = tuple(
    f.name for f in fields(RunRecord) if f.name != "result"
)
