"""The one way to run a registered algorithm.

:func:`execute` resolves a spec, binds context-owned keyword arguments,
runs the algorithm under wall-clock timing, notifies the context's
instrumentation sinks and returns a uniform
:class:`~repro.engine.record.RunRecord` — the same structured shape for
``ld_gpu`` on eight simulated GPUs and for a pure-Python exact solver.
"""

from __future__ import annotations

import dataclasses
import time
from typing import TYPE_CHECKING, Any

from repro.engine.context import RunContext
from repro.engine.record import RunRecord, _coerce
from repro.engine.spec import AlgorithmSpec, get_spec

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.graph.csr import CSRGraph
    from repro.matching.types import MatchResult

__all__ = ["execute"]


def _normalise_config(result: "MatchResult") -> dict[str, Any] | None:
    """Force ``result.stats["config"]`` to a plain dict.

    Algorithms attach their configuration echo in whatever shape is
    natural to them — ``ld_gpu`` a dataclass, others a dict.  The engine
    boundary flattens that to one JSON-safe shape so every
    :class:`RunRecord` round-trips identically regardless of which of
    the registered algorithms produced it.
    """
    cfg = result.stats.get("config")
    if cfg is None:
        return None
    if dataclasses.is_dataclass(cfg) and not isinstance(cfg, type):
        cfg = dataclasses.asdict(cfg)
    cfg = _coerce(cfg)
    result.stats["config"] = cfg
    return cfg


def _resolved_batches(spec: AlgorithmSpec, ctx: RunContext,
                      result: "MatchResult") -> int | None:
    """The batch count actually used (auto-fit resolves ``None``)."""
    if not spec.needs_batches:
        return None
    cfg = result.stats.get("config")
    if isinstance(cfg, dict):
        resolved = cfg.get("num_batches")
    else:
        resolved = getattr(cfg, "num_batches", None)
    return resolved if resolved is not None else ctx.num_batches


def execute(
    algorithm: "str | AlgorithmSpec",
    graph: "CSRGraph",
    ctx: RunContext | None = None,
    **overrides: Any,
) -> RunRecord:
    """Run ``algorithm`` on ``graph`` under ``ctx``.

    ``overrides`` are forwarded verbatim to the algorithm callable on
    top of the bound context kwargs (e.g. ``collect_stats=False``,
    ``max_iterations=3``).  Algorithm-specific errors (notably
    :class:`~repro.gpusim.memory.DeviceOOMError`) propagate so callers
    can render the paper's '-' entries.
    """
    spec = algorithm if isinstance(algorithm, AlgorithmSpec) \
        else get_spec(algorithm)
    if ctx is None:
        ctx = RunContext()
    kwargs = spec.bind(graph, ctx)
    kwargs.update(overrides)

    for sink in ctx.sinks:
        sink.on_run_start(spec, graph, ctx)

    started_at = time.time()
    t0 = time.perf_counter()
    try:
        result = spec.fn(graph, **kwargs)
    except BaseException as exc:
        for sink in ctx.sinks:
            sink.on_run_error(spec, graph, ctx, exc)
        raise
    wall = time.perf_counter() - t0

    from repro.telemetry.provenance import build_manifest

    manifest = build_manifest(
        graph=graph,
        seed=kwargs.get("seed"),
        dataset=ctx.dataset,
        sim_platform=ctx.resolved_platform().name
        if (spec.needs_platform or spec.needs_device_spec) else None,
        wall_time_s=wall,
        sim_time_s=float(result.sim_time)
        if result.sim_time is not None else None,
    )
    # Paper-claim series ride along in ``extra`` so a stored record is
    # enough for ``repro-matching stats`` (Fig. 8's edges-accessed
    # fractions need the per-iteration scan counts).
    extra: dict[str, Any] = {}
    scanned = result.stats.get("edges_scanned")
    if scanned is not None:
        extra["edges_scanned"] = _coerce(scanned)
    # Pointing-engine diagnostics (modeled vs. actual host work) ride
    # along too, so stored records can report the index engine's saving.
    for key in ("pointing_engine", "host_entries_scanned",
                "host_entries_scanned_pointing",
                "host_entries_scanned_matching"):
        val = result.stats.get(key)
        if val is not None:
            extra[key] = _coerce(val)
    # Spec-declared stats passthrough: algorithms whose *output* lives
    # in stats (coreset shard edge lists, per-shard memory peaks, ...)
    # declare the keys on their AlgorithmSpec so store-served records —
    # which carry no in-memory MatchResult — stay fully usable.
    for key in spec.record_stats:
        val = result.stats.get(key)
        if val is not None:
            extra[key] = _coerce(val)
    config = _normalise_config(result)
    if config is not None:
        extra["config"] = config

    record = RunRecord(
        algorithm=spec.name,
        graph=graph.name,
        num_vertices=int(graph.num_vertices),
        num_directed_edges=int(graph.num_directed_edges),
        weight=float(result.weight),
        matched_edges=int(result.num_matched_edges),
        iterations=int(result.iterations),
        sim_time=float(result.sim_time)
        if result.sim_time is not None else None,
        wall_time_s=wall,
        started_at=started_at,
        duration_s=time.perf_counter() - t0,
        dataset=ctx.dataset,
        platform=ctx.resolved_platform().name
        if (spec.needs_platform or spec.needs_device_spec) else None,
        cpu=ctx.resolved_cpu().name if spec.needs_cpu else None,
        num_devices=ctx.num_devices if spec.needs_devices else None,
        num_batches=_resolved_batches(spec, ctx, result),
        seed=kwargs.get("seed"),
        capability_tags=spec.capability_tags,
        timeline_totals=_coerce(result.timeline.totals)
        if result.timeline is not None else None,
        provenance=manifest,
        extra=extra,
        result=result,
    )

    for sink in ctx.sinks:
        sink.on_run_end(record)
    return record
