"""Metrics registry — Counters, Gauges and fixed-bucket Histograms.

The registry is the numeric half of :mod:`repro.telemetry`: every
instrumented layer (the :mod:`repro.gpusim` device model, the LD-GPU
iteration loop, the engine executor) emits into one
:class:`MetricsRegistry`, and exporters turn an immutable
:meth:`MetricsRegistry.snapshot` into Prometheus text or a JSON metrics
document.  The design follows the Prometheus client-library data model —
metric *families* keyed by name, carrying typed *children* keyed by their
label set — because that is the shape both export formats need.

Values are plain Python floats; nothing here is thread-aware (the
simulator is single-threaded) and nothing here touches the wall clock.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Any, Iterable, Mapping

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "MetricsSnapshot",
    "aggregate_snapshots",
    "DEFAULT_SECONDS_BUCKETS",
    "DEFAULT_BYTES_BUCKETS",
]

#: Log-spaced bucket bounds for modeled durations: the simulator spans
#: sub-microsecond kernel launches to minute-scale LARGE-graph runs.
DEFAULT_SECONDS_BUCKETS: tuple[float, ...] = (
    1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1.0, 10.0, 60.0, 600.0,
)

#: Bucket bounds for transfer sizes (bytes), 4 KiB to 64 GiB.
DEFAULT_BYTES_BUCKETS: tuple[float, ...] = tuple(
    4096.0 * 16**k for k in range(9)
)

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")

#: Reserved label the histogram exposition uses for bucket bounds.
_RESERVED_LABELS = frozenset({"le"})


def _labels_key(labels: Mapping[str, Any]) -> tuple[tuple[str, str], ...]:
    """Validated, sorted, stringified label set (the child key)."""
    out = []
    for k in sorted(labels):
        if not _LABEL_RE.match(k) or k in _RESERVED_LABELS:
            raise ValueError(f"invalid label name {k!r}")
        out.append((k, str(labels[k])))
    return tuple(out)


class Counter:
    """Monotonically increasing value (counts, accumulated seconds)."""

    def __init__(self) -> None:
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (must be >= 0) to the counter."""
        if amount < 0:
            raise ValueError("counters only go up")
        self.value += amount


class Gauge:
    """A value that can be set to anything (fractions, configuration)."""

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount


class Histogram:
    """Fixed-bucket histogram with cumulative exposition.

    ``bucket_counts[i]`` counts observations ``<= bounds[i]`` exclusively
    of earlier buckets (non-cumulative storage); the exporter emits the
    Prometheus cumulative form including the implicit ``+Inf`` bucket.
    """

    def __init__(self, bounds: Iterable[float]) -> None:
        bounds = tuple(float(b) for b in bounds)
        if not bounds:
            raise ValueError("histogram needs at least one bucket bound")
        if any(b2 <= b1 for b1, b2 in zip(bounds, bounds[1:])):
            raise ValueError("bucket bounds must be strictly increasing")
        self.bounds = bounds
        self.bucket_counts = [0] * (len(bounds) + 1)  # last = +Inf
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        """Record one observation."""
        value = float(value)
        self.sum += value
        self.count += 1
        for i, bound in enumerate(self.bounds):
            if value <= bound:
                self.bucket_counts[i] += 1
                return
        self.bucket_counts[-1] += 1

    def cumulative_counts(self) -> list[int]:
        """Counts ``<= bound`` per bound plus the ``+Inf`` total."""
        out, running = [], 0
        for c in self.bucket_counts:
            running += c
            out.append(running)
        return out


@dataclass
class _Family:
    """One metric family: a name, a type, help text, typed children."""

    name: str
    kind: str  # "counter" | "gauge" | "histogram"
    help: str
    children: dict[tuple[tuple[str, str], ...], Any]
    bounds: tuple[float, ...] | None = None  # histograms only


class MetricsRegistry:
    """Holds metric families and hands out their children.

    ``registry.counter("repro_spans_total", "...", component="sync")``
    returns the child for that exact label set, creating family and child
    on first use.  Re-registering a name as a different type (or a
    histogram with different buckets) is an error — names are the
    contract the exporters and dashboards rely on.
    """

    def __init__(self) -> None:
        self._families: dict[str, _Family] = {}

    # -------------------------------------------------------------- #
    def _family(self, name: str, kind: str, help: str,
                bounds: tuple[float, ...] | None = None) -> _Family:
        if not _NAME_RE.match(name):
            raise ValueError(f"invalid metric name {name!r}")
        fam = self._families.get(name)
        if fam is None:
            fam = _Family(name, kind, help, {}, bounds)
            self._families[name] = fam
            return fam
        if fam.kind != kind:
            raise ValueError(
                f"metric {name!r} already registered as {fam.kind}"
            )
        if kind == "histogram" and fam.bounds != bounds:
            raise ValueError(
                f"histogram {name!r} already registered with different "
                f"buckets"
            )
        if help and not fam.help:
            fam.help = help
        return fam

    def counter(self, name: str, help: str = "", **labels: Any) -> Counter:
        """The :class:`Counter` child of ``name`` for ``labels``."""
        fam = self._family(name, "counter", help)
        key = _labels_key(labels)
        child = fam.children.get(key)
        if child is None:
            child = fam.children[key] = Counter()
        return child

    def gauge(self, name: str, help: str = "", **labels: Any) -> Gauge:
        """The :class:`Gauge` child of ``name`` for ``labels``."""
        fam = self._family(name, "gauge", help)
        key = _labels_key(labels)
        child = fam.children.get(key)
        if child is None:
            child = fam.children[key] = Gauge()
        return child

    def histogram(self, name: str, help: str = "",
                  buckets: Iterable[float] = DEFAULT_SECONDS_BUCKETS,
                  **labels: Any) -> Histogram:
        """The :class:`Histogram` child of ``name`` for ``labels``."""
        bounds = tuple(float(b) for b in buckets)
        fam = self._family(name, "histogram", help, bounds)
        key = _labels_key(labels)
        child = fam.children.get(key)
        if child is None:
            child = fam.children[key] = Histogram(bounds)
        return child

    # -------------------------------------------------------------- #
    def snapshot(self) -> "MetricsSnapshot":
        """An immutable copy of every family's current state."""
        families: dict[str, dict[str, Any]] = {}
        for name, fam in sorted(self._families.items()):
            samples = []
            for key, child in sorted(fam.children.items()):
                labels = dict(key)
                if fam.kind == "histogram":
                    samples.append({
                        "labels": labels,
                        "sum": child.sum,
                        "count": child.count,
                        "buckets": list(zip(fam.bounds,
                                            child.cumulative_counts())),
                    })
                else:
                    samples.append({"labels": labels,
                                    "value": child.value})
            families[name] = {
                "type": fam.kind,
                "help": fam.help,
                "samples": samples,
            }
            if fam.bounds is not None:
                families[name]["buckets"] = list(fam.bounds)
        return MetricsSnapshot(families)


class MetricsSnapshot:
    """Frozen view of a registry — what exporters and aggregators see.

    ``families`` maps metric name to ``{"type", "help", "samples"}``;
    histogram samples carry ``sum``/``count`` and cumulative ``buckets``
    as ``(upper_bound, count<=bound)`` pairs (the ``+Inf`` entry is
    implicit: it equals ``count``).
    """

    def __init__(self, families: dict[str, dict[str, Any]]) -> None:
        self.families = families

    def __contains__(self, name: str) -> bool:
        return name in self.families

    def samples(self, name: str) -> list[dict[str, Any]]:
        """All samples of one family ([] when absent)."""
        fam = self.families.get(name)
        return fam["samples"] if fam else []

    def total(self, name: str, **label_filter: Any) -> float:
        """Sum of matching sample values (histograms contribute ``sum``).

        The reconciliation helper: ``snapshot.total(
        "repro_component_seconds_total", component="sync")`` must equal
        ``Timeline.totals["sync"]`` for an instrumented run.
        """
        want = {k: str(v) for k, v in label_filter.items()}
        out = 0.0
        for s in self.samples(name):
            if all(s["labels"].get(k) == v for k, v in want.items()):
                out += s["sum"] if "sum" in s else s["value"]
        return out

    def value(self, name: str, **label_filter: Any) -> float | None:
        """The value of the single sample matching the filter.

        The point-read companion to :meth:`total`: ``None`` when no
        sample matches, the scalar value (histogram ``sum``) when
        exactly one does, and ``ValueError`` when several do — a
        report that meant ``total`` should say so rather than silently
        read the first.
        """
        want = {k: str(v) for k, v in label_filter.items()}
        matches = [s for s in self.samples(name)
                   if all(s["labels"].get(k) == v
                          for k, v in want.items())]
        if not matches:
            return None
        if len(matches) > 1:
            raise ValueError(
                f"{name}{want or ''} matches {len(matches)} samples; "
                f"use total() to aggregate or narrow the labels")
        s = matches[0]
        return s["sum"] if "sum" in s else s["value"]

    def label_values(self, name: str, label: str) -> list[str]:
        """Distinct values of one label across a family's samples,
        sorted — e.g. every ``component`` the span timer observed."""
        return sorted({s["labels"][label] for s in self.samples(name)
                       if label in s["labels"]})

    def to_dict(self) -> dict[str, Any]:
        """JSON-safe nested dict (used by the JSON exporter)."""
        import copy

        return copy.deepcopy(self.families)

    def merged_with(self, other: "MetricsSnapshot") -> "MetricsSnapshot":
        """Cell-wise merge: counters/histograms add, gauges last-wins.

        The sweep aggregator uses this to fold per-cell snapshots into
        one distribution (e.g. span-seconds histograms across a whole
        (devices × batches) grid).  Merging a histogram family observed
        with different bucket bounds is an error.
        """
        merged = self.to_dict()
        for name, fam in other.families.items():
            if name not in merged:
                import copy

                merged[name] = copy.deepcopy(fam)
                continue
            mine = merged[name]
            if mine["type"] != fam["type"]:
                raise ValueError(
                    f"cannot merge {name!r}: {mine['type']} vs "
                    f"{fam['type']}"
                )
            if mine.get("buckets") != fam.get("buckets"):
                raise ValueError(
                    f"cannot merge histogram {name!r}: bucket bounds "
                    f"differ"
                )
            by_labels = {tuple(sorted(s["labels"].items())): s
                         for s in mine["samples"]}
            for s in fam["samples"]:
                key = tuple(sorted(s["labels"].items()))
                tgt = by_labels.get(key)
                if tgt is None:
                    import copy

                    new = copy.deepcopy(s)
                    mine["samples"].append(new)
                    by_labels[key] = new
                elif mine["type"] == "histogram":
                    tgt["sum"] += s["sum"]
                    tgt["count"] += s["count"]
                    tgt["buckets"] = [
                        (b, c1 + c2) for (b, c1), (_, c2)
                        in zip(tgt["buckets"], s["buckets"])
                    ]
                elif mine["type"] == "counter":
                    tgt["value"] += s["value"]
                else:  # gauge: last writer wins
                    tgt["value"] = s["value"]
            mine["samples"].sort(
                key=lambda s: tuple(sorted(s["labels"].items()))
            )
        return MetricsSnapshot(merged)


def aggregate_snapshots(
    snapshots: Iterable[MetricsSnapshot],
) -> MetricsSnapshot:
    """Fold many snapshots into one (see :meth:`MetricsSnapshot.merged_with`)."""
    out = MetricsSnapshot({})
    for snap in snapshots:
        out = out.merged_with(snap)
    return out
