"""Metric exporters — Prometheus text exposition and JSON documents.

Two formats cover the two consumption paths the ROADMAP cares about:

* ``.prom`` — the Prometheus text exposition format (HELP/TYPE lines,
  escaped labels, cumulative histogram buckets with the implicit ``+Inf``
  terminal), scrapeable or pushable into any existing dashboard stack;
* ``.json`` — a structured metrics document carrying the full snapshot,
  the run's provenance manifest, and a reconciliation block tying the
  exported component totals back to the producing
  :class:`~repro.gpusim.timeline.Timeline`.

:func:`write_metrics` infers the format from the path suffix — the CLI's
``--metrics-out`` contract.
"""

from __future__ import annotations

import json
import math
from typing import TYPE_CHECKING, Any

from repro.telemetry.registry import MetricsSnapshot

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.engine.record import RunRecord

__all__ = [
    "to_prometheus",
    "to_json_document",
    "write_metrics",
    "validate_prometheus_text",
    "METRICS_DOCUMENT_SCHEMA",
]

#: Bump when the JSON metrics document layout changes incompatibly.
METRICS_DOCUMENT_SCHEMA = 1


def _escape_label_value(value: str) -> str:
    """Backslash, quote and newline escaping per the exposition format."""
    return (value.replace("\\", "\\\\").replace('"', '\\"')
            .replace("\n", "\\n"))


def _escape_help(text: str) -> str:
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def _fmt_value(v: float) -> str:
    """Prometheus number formatting (integers without trailing .0)."""
    if v == math.inf:
        return "+Inf"
    if v == -math.inf:
        return "-Inf"
    f = float(v)
    if f.is_integer() and abs(f) < 1e15:
        return str(int(f))
    return repr(f)


def _label_str(labels: dict[str, str], extra: str = "") -> str:
    parts = [f'{k}="{_escape_label_value(v)}"'
             for k, v in sorted(labels.items())]
    if extra:
        parts.append(extra)
    return "{" + ",".join(parts) + "}" if parts else ""


def to_prometheus(snapshot: MetricsSnapshot) -> str:
    """The snapshot in Prometheus text exposition format."""
    lines: list[str] = []
    for name, fam in snapshot.families.items():
        if fam["help"]:
            lines.append(f"# HELP {name} {_escape_help(fam['help'])}")
        lines.append(f"# TYPE {name} {fam['type']}")
        for s in fam["samples"]:
            labels = s["labels"]
            if fam["type"] == "histogram":
                for bound, count in s["buckets"]:
                    le = _label_str(labels,
                                    f'le="{_fmt_value(bound)}"')
                    lines.append(f"{name}_bucket{le} {count}")
                inf = _label_str(labels, 'le="+Inf"')
                lines.append(f"{name}_bucket{inf} {s['count']}")
                ls = _label_str(labels)
                lines.append(f"{name}_sum{ls} {_fmt_value(s['sum'])}")
                lines.append(f"{name}_count{ls} {s['count']}")
            else:
                ls = _label_str(labels)
                lines.append(f"{name}{ls} {_fmt_value(s['value'])}")
    return "\n".join(lines) + "\n" if lines else ""


def validate_prometheus_text(text: str) -> int:
    """Structural validation of an exposition document.

    Checks HELP/TYPE ordering, sample-line shape, known types, and that
    every histogram's cumulative buckets are monotone and terminated by
    ``+Inf`` matching ``_count``.  Returns the number of sample lines;
    raises ``ValueError`` with a line reference on the first violation.
    Used by the tests and the CI smoke step.
    """
    import re

    sample_re = re.compile(
        r"^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{.*\})? "
        r"([0-9eE+.\-]+|[+-]Inf|NaN)$"
    )
    typed: dict[str, str] = {}
    current: str | None = None
    hist: dict[str, Any] = {}
    samples = 0

    def close_histogram() -> None:
        if not hist:
            return
        for key, info in hist.items():
            counts = info["bucket_counts"]
            if not counts or counts[-1][0] != math.inf:
                raise ValueError(
                    f"histogram series {key} lacks a +Inf bucket"
                )
            bounds = [b for b, _ in counts]
            if bounds != sorted(bounds):
                raise ValueError(
                    f"histogram series {key} buckets out of order"
                )
            values = [c for _, c in counts]
            if any(v2 < v1 for v1, v2 in zip(values, values[1:])):
                raise ValueError(
                    f"histogram series {key} bucket counts not monotone"
                )
            if info["count"] is None or values[-1] != info["count"]:
                raise ValueError(
                    f"histogram series {key}: +Inf bucket != _count"
                )
        hist.clear()

    for i, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        if line.startswith("# HELP ") or line.startswith("# TYPE "):
            parts = line.split(" ", 3)
            if len(parts) < 3:
                raise ValueError(f"line {i}: malformed comment {line!r}")
            if parts[1] == "TYPE":
                mtype = parts[3] if len(parts) > 3 else ""
                if mtype not in ("counter", "gauge", "histogram",
                                 "summary", "untyped"):
                    raise ValueError(
                        f"line {i}: unknown metric type in {line!r}"
                    )
                close_histogram()
                current = parts[2]
                typed[current] = mtype
            continue
        if line.startswith("#"):
            continue
        m = sample_re.match(line)
        if m is None:
            raise ValueError(f"line {i}: malformed sample {line!r}")
        name, labelstr, value = m.groups()
        samples += 1
        base = current
        if base and typed.get(base) == "histogram":
            if name not in (f"{base}_bucket", f"{base}_sum",
                            f"{base}_count"):
                raise ValueError(
                    f"line {i}: unexpected series {name!r} under "
                    f"histogram {base!r}"
                )
            labels = _parse_labels(labelstr or "{}", i)
            key = base + _label_str(
                {k: v for k, v in labels.items() if k != "le"}
            )
            info = hist.setdefault(key, {"bucket_counts": [],
                                         "count": None})
            if name.endswith("_bucket"):
                le = labels.get("le")
                if le is None:
                    raise ValueError(f"line {i}: bucket without le=")
                bound = math.inf if le == "+Inf" else float(le)
                info["bucket_counts"].append((bound, float(value)))
            elif name.endswith("_count"):
                info["count"] = float(value)
        elif base is not None and name != base:
            raise ValueError(
                f"line {i}: sample {name!r} does not match preceding "
                f"TYPE {base!r}"
            )
        if labelstr:
            _parse_labels(labelstr, i)
    close_histogram()
    if samples == 0:
        raise ValueError("document contains no samples")
    return samples


def _unescape_label_value(raw: str) -> str:
    """Single left-to-right pass inverting :func:`_escape_label_value`.

    Sequential ``str.replace`` calls are wrong in either order — e.g.
    the wire form ``\\\\n`` (a literal backslash followed by ``n``)
    must not collapse into a newline, which unescaping ``\\n`` first
    would produce.  Each escape sequence is consumed exactly once;
    sequences outside the format's three (``\\\\``, ``\\"``, ``\\n``)
    are preserved verbatim, matching the reference parser's laxness.
    """
    out: list[str] = []
    i = 0
    while i < len(raw):
        c = raw[i]
        if c == "\\" and i + 1 < len(raw):
            nxt = raw[i + 1]
            out.append({"\\": "\\", '"': '"', "n": "\n"}.get(
                nxt, c + nxt))
            i += 2
        else:
            out.append(c)
            i += 1
    return "".join(out)


def _parse_labels(labelstr: str, lineno: int) -> dict[str, str]:
    """Parse ``{k="v",...}`` with escape handling; raises on malformed."""
    import re

    if not (labelstr.startswith("{") and labelstr.endswith("}")):
        raise ValueError(f"line {lineno}: malformed labels {labelstr!r}")
    body = labelstr[1:-1]
    if not body:
        return {}
    pair_re = re.compile(
        r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"(,|$)'
    )
    out: dict[str, str] = {}
    pos = 0
    while pos < len(body):
        m = pair_re.match(body, pos)
        if m is None:
            raise ValueError(
                f"line {lineno}: malformed label pair at {body[pos:]!r}"
            )
        out[m.group(1)] = _unescape_label_value(m.group(2))
        pos = m.end()
    return out


def to_json_document(
    snapshot: MetricsSnapshot,
    record: "RunRecord | None" = None,
) -> dict[str, Any]:
    """The structured JSON metrics document.

    ``record`` (when given) contributes the provenance manifest and the
    reconciliation block: exported per-component totals next to the
    run's ``Timeline.totals`` with their absolute differences, plus the
    ``communication_fraction`` both ways.  A document whose
    ``reconciliation.max_abs_diff`` is ~0 is internally consistent.
    """
    doc: dict[str, Any] = {
        "schema": METRICS_DOCUMENT_SCHEMA,
        "metrics": snapshot.to_dict(),
    }
    if record is None:
        return doc
    doc["run"] = {
        "algorithm": record.algorithm,
        "graph": record.graph,
        "dataset": record.dataset,
        "num_devices": record.num_devices,
        "num_batches": record.num_batches,
        "iterations": record.iterations,
        "wall_time_s": record.wall_time_s,
        "sim_time_s": record.sim_time,
    }
    doc["provenance"] = record.provenance
    totals = record.timeline_totals
    if totals is not None:
        exported = {
            c: snapshot.total("repro_component_seconds_total",
                              component=c)
            for c in totals
        }
        diffs = {c: abs(exported[c] - totals[c]) for c in totals}
        t = sum(totals.values())
        comm = sum(totals[c] for c in ("allreduce_pointers",
                                       "allreduce_mate",
                                       "batch_transfer", "sync")
                   if c in totals)
        doc["reconciliation"] = {
            "timeline_totals": dict(totals),
            "exported_totals": exported,
            "max_abs_diff": max(diffs.values()) if diffs else 0.0,
            "communication_fraction_timeline": comm / t if t else 0.0,
            "communication_fraction_metric": snapshot.total(
                "repro_communication_fraction"),
        }
    return doc


def write_metrics(
    path: str,
    snapshot: MetricsSnapshot,
    record: "RunRecord | None" = None,
) -> str:
    """Write ``snapshot`` to ``path``, format inferred from the suffix.

    ``.prom``/``.txt`` → Prometheus text; ``.json`` (and anything else)
    → the JSON document.  Returns the format written.
    """
    path = str(path)
    if path.endswith((".prom", ".txt")):
        with open(path, "wt") as fh:
            fh.write(to_prometheus(snapshot))
        return "prometheus"
    with open(path, "wt") as fh:
        json.dump(to_json_document(snapshot, record), fh, indent=1)
    return "json"
