"""Span/event emission — how instrumented code reaches the registry.

Library code never holds a registry: it emits through the *active*
registry, a :mod:`contextvars` slot that a :class:`~repro.engine.sinks.
MetricsSink` (or any caller using :func:`record_into`) activates around a
run.  With no registry active every emission is a cheap no-op, so the
simulator's hot loops pay nothing when nobody is watching.

Two kinds of events exist:

* **modeled spans** — :meth:`SpanEmitter.emit` records a simulated
  duration for one of the paper's timeline components, feeding the
  owning :class:`~repro.gpusim.timeline.Timeline` *and* the registry
  from the same float, so exported component totals reconcile with
  ``Timeline.totals`` exactly;
* **wall-clock spans** — :func:`span` measures real elapsed time around
  a block (the engine's measured side).
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from contextvars import ContextVar
from typing import TYPE_CHECKING, Any, Iterator

from repro.telemetry.registry import MetricsRegistry

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.gpusim.timeline import Timeline

__all__ = [
    "active_registry",
    "record_into",
    "emit_event",
    "observe",
    "count",
    "span",
    "SpanEmitter",
]

_ACTIVE: ContextVar[MetricsRegistry | None] = ContextVar(
    "repro_metrics_registry", default=None
)


def active_registry() -> MetricsRegistry | None:
    """The registry emissions currently land in (``None`` = disabled)."""
    return _ACTIVE.get()


@contextmanager
def record_into(registry: MetricsRegistry) -> Iterator[MetricsRegistry]:
    """Activate ``registry`` for the dynamic extent of the block."""
    token = _ACTIVE.set(registry)
    try:
        yield registry
    finally:
        _ACTIVE.reset(token)


def emit_event(name: str, help: str = "", **labels: Any) -> None:
    """Count one occurrence of ``name`` (no-op without an active
    registry)."""
    reg = _ACTIVE.get()
    if reg is not None:
        reg.counter(name, help, **labels).inc()


def count(name: str, amount: float, help: str = "",
          **labels: Any) -> None:
    """Add ``amount`` to counter ``name`` (no-op when disabled)."""
    reg = _ACTIVE.get()
    if reg is not None:
        reg.counter(name, help, **labels).inc(amount)


def observe(name: str, value: float, help: str = "",
            buckets: Any = None, **labels: Any) -> None:
    """Observe ``value`` into histogram ``name`` (no-op when disabled)."""
    reg = _ACTIVE.get()
    if reg is not None:
        if buckets is None:
            reg.histogram(name, help, **labels).observe(value)
        else:
            reg.histogram(name, help, buckets=buckets,
                          **labels).observe(value)


@contextmanager
def span(name: str, help: str = "", **labels: Any) -> Iterator[None]:
    """Wall-clock span: observe elapsed seconds into
    ``repro_wall_span_seconds{span=name}``."""
    t0 = time.perf_counter()
    try:
        yield
    finally:
        observe("repro_wall_span_seconds", time.perf_counter() - t0,
                "Measured wall-clock span durations.", span=name,
                **labels)


class SpanEmitter:
    """Bound emitter for a simulator-backed run.

    Couples a :class:`~repro.gpusim.timeline.Timeline` with a fixed label
    set (``algorithm``, ``device``) so the iteration loop writes one call
    per component::

        tel = SpanEmitter(timeline, algorithm="ld_gpu", device=spec.name)
        tel.emit("pointing", t_comp)

    Each ``emit`` charges the timeline (preserving every existing report)
    and, when a registry is active, the span metrics:

    * ``repro_component_seconds_total`` — counter; accumulated in the
      same order as ``Timeline.add``, so the per-component totals agree
      bit-for-bit;
    * ``repro_span_seconds`` — histogram of individual span durations;
    * ``repro_spans_total`` — span count.
    """

    def __init__(self, timeline: "Timeline | None" = None,
                 **labels: Any) -> None:
        self.timeline = timeline
        self.labels = {k: str(v) for k, v in labels.items()}

    def emit(self, component: str, seconds: float,
             **extra_labels: Any) -> None:
        """Record a modeled span of ``seconds`` for ``component``."""
        if self.timeline is not None:
            self.timeline.add(component, seconds)
        reg = _ACTIVE.get()
        if reg is None:
            return
        labels = {**self.labels, **extra_labels, "component": component}
        reg.counter(
            "repro_component_seconds_total",
            "Modeled seconds accumulated per timeline component.",
            **labels,
        ).inc(seconds)
        reg.histogram(
            "repro_span_seconds",
            "Distribution of individual modeled span durations.",
            **labels,
        ).observe(seconds)
        reg.counter(
            "repro_spans_total", "Number of modeled spans emitted.",
            **labels,
        ).inc()
