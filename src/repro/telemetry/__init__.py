"""Unified observability: metrics, spans, exporters, provenance.

The paper's headline analyses are measurement artifacts — Fig. 5/7's
component breakdowns, the "~90% communication" claim, Fig. 8's "90% of
iterations touch <20% of the edges".  This package makes every run emit
those quantities uniformly:

* :mod:`~repro.telemetry.registry` — ``Counter`` / ``Gauge`` /
  fixed-bucket ``Histogram`` families labeled by
  ``algorithm``/``device``/``batch``/``component``, snapshots, and the
  sweep-level snapshot aggregator;
* :mod:`~repro.telemetry.spans` — the emission API.  Instrumented code
  (the LD-GPU loop, :mod:`repro.gpusim`) emits through the *active*
  registry (a context variable) and pays nothing when none is active;
  :class:`SpanEmitter` feeds a run's
  :class:`~repro.gpusim.timeline.Timeline` and the registry from the
  same floats so exports reconcile with existing reports exactly;
* :mod:`~repro.telemetry.exporters` — Prometheus text exposition and a
  structured JSON metrics document (with provenance + reconciliation),
  selected by path suffix via :func:`write_metrics`;
* :mod:`~repro.telemetry.provenance` — the self-description manifest
  (git describe, python/numpy versions, host platform, seed, dataset
  fingerprint, durations) the engine attaches to every
  :class:`~repro.engine.record.RunRecord`.

Wiring: :class:`repro.engine.sinks.MetricsSink` activates a registry
around each :func:`repro.engine.execute` call and snapshots it per run;
``repro-matching run --metrics-out out.prom`` is the CLI surface.

Metric names are a contract::

    repro_component_seconds_total{algorithm,device,component}   counter
    repro_span_seconds{algorithm,device,component}              histogram
    repro_spans_total{algorithm,device,component}               counter
    repro_kernel_seconds{device,kernel}                         histogram
    repro_kernel_launches_total{device}                         counter
    repro_device_bytes_total{device,direction}                  counter
    repro_exposed_transfer_seconds{device}                      histogram
    repro_batch_load_seconds{device,batch}                      histogram
    repro_allreduce_seconds{scope}                              histogram
    repro_cluster_nodes / repro_cluster_devices_per_node        gauge
    repro_communication_fraction{algorithm}                     gauge
    repro_run_wall_seconds{algorithm} / repro_run_sim_seconds   gauge
    repro_run_iterations{algorithm}                             gauge
    repro_iterations_below_edges_threshold{algorithm,threshold} gauge
    repro_wall_span_seconds{span}                               histogram
    repro_store_hits_total                                      counter
    repro_store_claims_total                                    counter
    repro_store_stale_reclaims_total                            counter
    repro_store_cancels_total                                   counter
    repro_service_requests_total{method}                        counter
    repro_service_submissions_total                             counter
    repro_service_rejections_total{reason}                      counter
    repro_service_jobs{state}                                   gauge
    repro_service_uptime_seconds                                gauge

The four ``repro_store_*`` counters come from the run store
(:mod:`repro.store`): records served without recompute, leases taken,
leases reclaimed from dead workers, and cancellation requests.  The
``repro_service_*`` families are the ``repro serve`` daemon's own
(:mod:`repro.service.daemon`), scraped from its ``/metrics``
endpoint; the jobs gauge counts the derived ``cancelled`` state
alongside the row statuses.
"""

from repro.telemetry.registry import (
    DEFAULT_BYTES_BUCKETS,
    DEFAULT_SECONDS_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    MetricsSnapshot,
    aggregate_snapshots,
)
from repro.telemetry.spans import (
    SpanEmitter,
    active_registry,
    count,
    emit_event,
    observe,
    record_into,
    span,
)
from repro.telemetry.exporters import (
    METRICS_DOCUMENT_SCHEMA,
    to_json_document,
    to_prometheus,
    validate_prometheus_text,
    write_metrics,
)
from repro.telemetry.provenance import (
    PROVENANCE_SCHEMA_VERSION,
    build_manifest,
    git_describe,
    graph_fingerprint,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "MetricsSnapshot",
    "aggregate_snapshots",
    "DEFAULT_SECONDS_BUCKETS",
    "DEFAULT_BYTES_BUCKETS",
    "SpanEmitter",
    "active_registry",
    "record_into",
    "emit_event",
    "count",
    "observe",
    "span",
    "to_prometheus",
    "to_json_document",
    "write_metrics",
    "validate_prometheus_text",
    "METRICS_DOCUMENT_SCHEMA",
    "build_manifest",
    "git_describe",
    "graph_fingerprint",
    "PROVENANCE_SCHEMA_VERSION",
]
