"""Run provenance — the manifest that makes stored results self-describing.

A sweep output read six months later must answer "what produced this?"
without the producing checkout: code version (``git describe`` when the
tree is a git checkout), interpreter and NumPy versions, host platform,
the RNG seed, and a content fingerprint of the input graph.  The engine
attaches one manifest to every :class:`~repro.engine.record.RunRecord`
(serialised under the ``provenance`` key, record schema v2) and the
metrics exporters embed it in the JSON metrics document.
"""

from __future__ import annotations

import hashlib
import platform as _platform
import sys
from functools import lru_cache
from typing import TYPE_CHECKING, Any

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.graph.csr import CSRGraph

__all__ = [
    "PROVENANCE_SCHEMA_VERSION",
    "git_describe",
    "graph_fingerprint",
    "build_manifest",
]

#: Bump when manifest keys change incompatibly.
PROVENANCE_SCHEMA_VERSION = 1

#: Array prefix/suffix length hashed by :func:`graph_fingerprint` —
#: enough to distinguish real inputs without touching every byte of a
#: billion-edge graph.
_FINGERPRINT_SAMPLE = 256


@lru_cache(maxsize=1)
def git_describe() -> str | None:
    """``git describe --always --dirty`` of the source tree, or ``None``
    when the tree is not a git checkout (e.g. an installed wheel)."""
    import os
    import subprocess

    here = os.path.dirname(os.path.abspath(__file__))
    try:
        out = subprocess.run(
            ["git", "describe", "--always", "--dirty"],
            cwd=here, capture_output=True, text=True, timeout=5,
        )
    except (OSError, subprocess.TimeoutExpired):
        return None
    if out.returncode != 0:
        return None
    return out.stdout.strip() or None


def _hash_array(h: "hashlib._Hash", arr) -> None:
    """Feed an array's shape, dtype, edges and checksum into ``h``."""
    import numpy as np

    a = np.ascontiguousarray(arr)
    h.update(str(a.shape).encode())
    h.update(str(a.dtype).encode())
    k = _FINGERPRINT_SAMPLE
    h.update(a[:k].tobytes())
    h.update(a[-k:].tobytes())
    # A cheap whole-array checksum catches interior edits the sampled
    # prefix/suffix would miss.
    h.update(np.asarray(a.view(np.uint8).sum(dtype=np.uint64)).tobytes())


def graph_fingerprint(graph: "CSRGraph") -> str:
    """Deterministic content hash of a CSR graph (name-independent).

    Covers ``indptr``, ``indices`` and ``weights`` via sampled bytes plus
    whole-array checksums — two graphs with the same fingerprint carry
    the same topology and weights for all practical purposes, while the
    cost stays O(1)-ish on LARGE inputs.
    """
    h = hashlib.sha256()
    h.update(f"v={graph.num_vertices};e={graph.num_directed_edges};"
             .encode())
    for arr in (graph.indptr, graph.indices, graph.weights):
        _hash_array(h, arr)
    return f"sha256:{h.hexdigest()[:32]}"


def build_manifest(
    graph: "CSRGraph | None" = None,
    seed: int | None = None,
    dataset: str | None = None,
    sim_platform: str | None = None,
    wall_time_s: float | None = None,
    sim_time_s: float | None = None,
    dataset_cache: str | None = None,
    **extra: Any,
) -> dict[str, Any]:
    """The provenance manifest attached to every run record.

    All inputs are optional; absent facts serialise as ``None`` so the
    key set is stable across producers (CLI runs, sweeps, tests).
    ``dataset_cache`` names the on-disk
    :class:`~repro.harness.cache.GraphCache` root when input graphs
    were staged through it (parallel grids, bench suites) — ``None``
    means graphs were built in-process.  Cache entries are keyed by the
    same :func:`graph_fingerprint` recorded here as
    ``dataset_fingerprint``, so the manifest pins the exact bytes a
    cached run consumed.
    """
    import numpy as np

    manifest: dict[str, Any] = {
        "schema": PROVENANCE_SCHEMA_VERSION,
        "git": git_describe(),
        "python": sys.version.split()[0],
        "numpy": np.__version__,
        "host_platform": _platform.platform(),
        "sim_platform": sim_platform,
        "dataset": dataset,
        "dataset_fingerprint": graph_fingerprint(graph)
        if graph is not None else None,
        "seed": seed,
        "wall_time_s": wall_time_s,
        "sim_time_s": sim_time_s,
        "dataset_cache": dataset_cache,
    }
    manifest.update(extra)
    return manifest
