"""repro.api — the stable programmatic surface of the reproduction.

This module is the **single supported entry point** for driving runs
from Python, whether the work executes in this process, in a shared
:class:`~repro.store.db.RunStore` drained by a ``repro worker`` fleet,
or behind a remote ``repro serve`` daemon.  Everything else under
``repro.*`` is either re-exported here, documented in ``docs/api.md``,
or an implementation detail that may move between releases.

Five job verbs plus two synchronous conveniences::

    import repro.api as api

    # fire-and-forget through a store or a daemon
    fp = api.submit("ld_gpu", dataset="GAP-kron", devices=4,
                    priority=5, client="alice", store="runs.db")
    api.status(fp, store="runs.db").state        # "pending" ... "done"
    record = api.result(fp, store="runs.db", wait=True)

    # synchronous, in-process (the modern ``run_algorithm``)
    record = api.run("ld_gpu", dataset="mouse_gene", devices=4)

Every verb takes ``store=`` naming where the jobs live:

* a :class:`~repro.store.db.RunStore`, a path, or ``None`` (which
  falls back to ``$REPRO_RUN_STORE``) — **local mode**: the store is
  opened directly;
* an ``http://host:port`` URL — **client mode**: the verb becomes an
  HTTP call against a ``repro serve`` daemon; no SQLite file is
  touched from this process.

The two modes are interchangeable by construction: the daemon's
handlers call the exact local functions below, so a job submitted over
HTTP lands in the store byte-for-byte as one submitted in-process.

Submission is validated against the :class:`~repro.engine.spec.
AlgorithmSpec` registry (unknown algorithms and inapplicable options
are rejected before anything is registered), and the returned job id
is the cell's *content fingerprint* — submitting the same work twice
returns the same id and never recomputes a finished result.
"""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.parse
import urllib.request
from dataclasses import asdict, dataclass
from typing import TYPE_CHECKING, Any, Callable, Iterable, Sequence

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.engine.record import RunRecord
    from repro.store.db import RunStore, StoredRun

__all__ = [
    "JobError",
    "JobNotFound",
    "JobCancelled",
    "QuotaExceeded",
    "JobStatus",
    "submit",
    "status",
    "result",
    "cancel",
    "query",
    "run",
    "sweep",
    "process",
]

#: Job-facing lifecycle states (`JobStatus.state`): the store's row
#: statuses plus the derived terminal ``cancelled``.
JOB_STATES = ("pending", "leased", "done", "error", "cancelled")

_DEFAULT_POLL_S = 0.2


class JobError(Exception):
    """Base class for job-lifecycle failures raised by this module."""


class JobNotFound(JobError, KeyError):
    """No job with that fingerprint exists in the target store."""


class JobCancelled(JobError):
    """The job was cancelled before a result could be produced."""


class QuotaExceeded(JobError):
    """The daemon refused the submission (per-client pending quota)."""


@dataclass(frozen=True)
class JobStatus:
    """One job's lifecycle snapshot, identical in local and HTTP mode."""

    fingerprint: str
    state: str
    algorithm: str
    dataset: str | None
    priority: int
    client: str | None
    attempts: int
    worker: str | None
    cancel_requested: bool
    seed: int | None
    created_at: float
    updated_at: float
    error_type: str | None = None
    error_message: str | None = None

    @property
    def terminal(self) -> bool:
        """Whether the job can no longer change state on its own."""
        return self.state in ("done", "error", "cancelled")

    @classmethod
    def from_stored(cls, row: "StoredRun") -> "JobStatus":
        return cls(
            fingerprint=row.fingerprint,
            state=row.state,
            algorithm=row.algorithm,
            dataset=row.dataset,
            priority=row.priority,
            client=row.client,
            attempts=row.attempts,
            worker=row.worker,
            cancel_requested=row.cancel_requested,
            seed=row.seed,
            created_at=row.created_at,
            updated_at=row.updated_at,
            error_type=row.error_type,
            error_message=row.error_message,
        )

    def to_dict(self) -> dict[str, Any]:
        return asdict(self)

    @classmethod
    def from_dict(cls, doc: dict[str, Any]) -> "JobStatus":
        return cls(**{k: doc.get(k) for k in cls.__dataclass_fields__})


# ------------------------------------------------------------------ #
# cell construction (shared by submit/run; the daemon reuses submit)
# ------------------------------------------------------------------ #


def _resolve_platform(platform: Any):
    """A PlatformSpec from a registry name, a spec, or None."""
    if platform is None or not isinstance(platform, str):
        return platform
    from repro.harness.datasets import PLATFORMS

    if platform not in PLATFORMS:
        raise ValueError(f"unknown platform {platform!r}; have "
                         f"{', '.join(sorted(PLATFORMS))}")
    return PLATFORMS[platform]


def _resolve_builder(builder: Any) -> Callable[[], Any] | None:
    """A module-level builder callable from a callable or a
    ``module:qualname`` reference; validated to be re-importable so
    worker processes can rebuild the cell."""
    if builder is None:
        return None
    from repro.store.fingerprint import _builder_ref, _import_builder

    if isinstance(builder, str):
        try:
            return _import_builder(builder)
        except (ImportError, AttributeError) as exc:
            raise ValueError(
                f"builder {builder!r} is not importable: {exc}"
            ) from exc
    ref = _builder_ref(builder)
    try:
        if _import_builder(ref) is not builder:
            raise ValueError(
                f"builder {ref!r} does not resolve back to the given "
                "callable (lambdas and closures cannot be shipped to "
                "workers; use a module-level function)")
    except (ImportError, AttributeError) as exc:
        raise ValueError(
            f"builder {ref!r} is not importable by workers: {exc}"
        ) from exc
    return builder


def _build_cell(
    algorithm: str,
    dataset: str | None,
    *,
    builder: Any = None,
    quality: bool = False,
    platform: Any = None,
    devices: int = 1,
    batches: int | None = None,
    pointing_engine: str | None = None,
    seed: int | None = None,
    overrides: dict[str, Any] | None = None,
    label: str | None = None,
    replicate: int | None = None,
    sinks: Sequence[Any] = (),
):
    """Validate one job spec against the registry and bind it into a
    ``(MaterialisedCell, CSRGraph)`` pair — the exact first cell of a
    one-cell :func:`~repro.engine.cells.run_cells` grid, which is what
    makes submitted jobs bit-identical to locally executed ones."""
    from repro.engine.cells import Cell, materialise_cells
    from repro.engine.context import RunContext
    from repro.engine.spec import get_spec

    spec = get_spec(algorithm)  # raises UnknownAlgorithmError
    if pointing_engine is not None and not spec.accepts_pointing_engine:
        raise ValueError(f"pointing_engine does not apply to "
                         f"algorithm {algorithm!r}")
    if dataset is not None and builder is not None:
        raise ValueError("pass dataset or builder, not both")
    platform_spec = _resolve_platform(platform)
    build = _resolve_builder(builder)
    if dataset is not None:
        from repro.harness.datasets import (
            DATASETS,
            load_dataset,
            quality_instance,
        )

        if dataset not in DATASETS:
            raise ValueError(f"unknown dataset {dataset!r}; have "
                             f"{', '.join(sorted(DATASETS))}")
        g = quality_instance(dataset) if quality else load_dataset(dataset)
        ctx_kwargs: dict[str, Any] = dict(
            graph=g, num_devices=int(devices), num_batches=batches,
            seed=seed, pointing_engine=pointing_engine,
            sinks=tuple(sinks))
        if platform_spec is not None:
            ctx_kwargs["platform"] = platform_spec
        ctx = RunContext.for_dataset(dataset, **ctx_kwargs)
    elif build is not None:
        g = build()
        ctx = RunContext(platform=platform_spec,
                         num_devices=int(devices), num_batches=batches,
                         seed=seed, pointing_engine=pointing_engine,
                         sinks=tuple(sinks))
    else:
        raise ValueError("a job needs a graph source: pass dataset=NAME "
                         "or builder=module-level-callable")
    cell = Cell(algorithm, dataset=dataset, quality=quality,
                build=build, ctx=ctx,
                overrides=dict(overrides or {}), label=label,
                replicate=replicate)
    return materialise_cells([cell])[0], g


# ------------------------------------------------------------------ #
# backends: local RunStore vs repro-serve HTTP
# ------------------------------------------------------------------ #


def _is_url(store: Any) -> bool:
    return isinstance(store, str) and \
        store.startswith(("http://", "https://"))


def _local_store(store: Any) -> "RunStore":
    from repro.store.db import resolve_store

    resolved = resolve_store(store)
    if resolved is None:
        raise ValueError("no run store: pass store=PATH (or an "
                         "http:// daemon URL) or set REPRO_RUN_STORE")
    return resolved


class _LocalBackend:
    """Job verbs against a directly opened RunStore."""

    def __init__(self, store: "RunStore") -> None:
        self.store = store

    def submit(self, spec: dict[str, Any]) -> str:
        from repro.store.fingerprint import fingerprint_for

        priority = int(spec.pop("priority", 0) or 0)
        client = spec.pop("client", None)
        mc, g = _build_cell(spec.pop("algorithm"),
                            spec.pop("dataset", None), **spec)
        fp, config, gfp = fingerprint_for(mc.cell, mc.ctx, g)
        self.store.register(
            fp, algorithm=mc.cell.algorithm_name, config=config,
            seed=mc.ctx.seed, graph_fingerprint=gfp,
            dataset=mc.cell.dataset or mc.ctx.dataset,
            priority=priority, client=client)
        return fp

    def _row(self, fingerprint: str) -> "StoredRun":
        row = self.store.get(fingerprint)
        if row is None:
            raise JobNotFound(fingerprint)
        return row

    def status(self, fingerprint: str) -> JobStatus:
        return JobStatus.from_stored(self._row(fingerprint))

    def result(self, fingerprint: str) -> "RunRecord | None":
        """The stored record when terminal, None while in flight;
        raises :class:`JobCancelled` for cancelled jobs."""
        row = self._row(fingerprint)
        if row.state == "cancelled":
            raise JobCancelled(fingerprint)
        if row.status in ("done", "error"):
            return row.record()
        return None

    def cancel(self, fingerprint: str) -> bool:
        self._row(fingerprint)
        return self.store.request_cancel(fingerprint)

    def query(self, *, algorithm=None, dataset=None, state=None,
              client=None) -> list[JobStatus]:
        states = None if state is None else (
            [state] if isinstance(state, str) else list(state))
        for s in states or ():
            if s not in JOB_STATES:
                raise ValueError(f"unknown state {s!r}; have "
                                 f"{', '.join(JOB_STATES)}")
        # "cancelled" is derived, so SQL narrows on the real statuses
        # and the derived state filters in Python.
        sql_status = None
        if states is not None:
            sql_status = set()
            for s in states:
                sql_status.update(("pending", "error")
                                  if s == "cancelled" else (s,))
        rows = self.store.select(algorithm=algorithm, dataset=dataset,
                                 status=sql_status, client=client)
        out = [JobStatus.from_stored(r) for r in rows]
        if states is not None:
            out = [j for j in out if j.state in states]
        return out


class _HttpBackend:
    """The same verbs as JSON calls against a ``repro serve`` daemon."""

    def __init__(self, base_url: str) -> None:
        self.base = base_url.rstrip("/")

    def _call(self, method: str, path: str,
              body: dict[str, Any] | None = None,
              params: dict[str, Any] | None = None) -> Any:
        url = f"{self.base}{path}"
        if params:
            pairs = []
            for k, v in params.items():
                if v is None:
                    continue
                vals = v if isinstance(v, (list, tuple)) else [v]
                pairs.extend((k, str(x)) for x in vals)
            if pairs:
                url += "?" + urllib.parse.urlencode(pairs)
        data = None
        headers = {"Accept": "application/json"}
        if body is not None:
            data = json.dumps(body).encode()
            headers["Content-Type"] = "application/json"
        req = urllib.request.Request(url, data=data, headers=headers,
                                     method=method)
        try:
            with urllib.request.urlopen(req, timeout=60) as resp:
                payload = resp.read()
        except urllib.error.HTTPError as exc:
            detail = ""
            try:
                detail = json.loads(exc.read() or b"{}").get("error", "")
            except Exception:
                pass
            if exc.code == 404:
                raise JobNotFound(detail or path) from None
            if exc.code == 409:
                raise JobCancelled(detail or path) from None
            if exc.code == 429:
                raise QuotaExceeded(detail or path) from None
            raise ValueError(
                f"daemon rejected {method} {path}: "
                f"{detail or exc.reason} (HTTP {exc.code})") from None
        return json.loads(payload) if payload else None

    def submit(self, spec: dict[str, Any]) -> str:
        builder = spec.get("builder")
        if builder is not None and not isinstance(builder, str):
            from repro.store.fingerprint import _builder_ref

            spec["builder"] = _builder_ref(builder)
        platform = spec.get("platform")
        if platform is not None and not isinstance(platform, str):
            raise ValueError(
                "HTTP submission takes a registry platform name; "
                f"got {type(platform).__name__}")
        sinks = spec.pop("sinks", ())
        if sinks:
            raise ValueError("sinks cannot be attached to remote jobs")
        doc = self._call("POST", "/api/v1/jobs", body=spec)
        return doc["fingerprint"]

    def status(self, fingerprint: str) -> JobStatus:
        doc = self._call("GET", f"/api/v1/jobs/{fingerprint}")
        return JobStatus.from_dict(doc)

    def result(self, fingerprint: str) -> "RunRecord | None":
        doc = self._call("GET", f"/api/v1/jobs/{fingerprint}/result")
        if doc.get("record") is None:
            return None
        from repro.engine.record import RunRecord

        return RunRecord.from_json(json.dumps(doc["record"]))

    def cancel(self, fingerprint: str) -> bool:
        doc = self._call("POST", f"/api/v1/jobs/{fingerprint}/cancel")
        return bool(doc.get("cancelled"))

    def query(self, *, algorithm=None, dataset=None, state=None,
              client=None) -> list[JobStatus]:
        doc = self._call("GET", "/api/v1/jobs", params={
            "algorithm": algorithm, "dataset": dataset,
            "state": state, "client": client})
        return [JobStatus.from_dict(d) for d in doc["jobs"]]


def _backend(store: Any) -> "_LocalBackend | _HttpBackend":
    if _is_url(store):
        return _HttpBackend(store)
    return _LocalBackend(_local_store(store))


# ------------------------------------------------------------------ #
# the public verbs
# ------------------------------------------------------------------ #


def submit(
    algorithm: str,
    dataset: str | None = None,
    *,
    builder: Any = None,
    quality: bool = False,
    platform: Any = None,
    devices: int = 1,
    batches: int | None = None,
    pointing_engine: str | None = None,
    seed: int | None = None,
    overrides: dict[str, Any] | None = None,
    label: str | None = None,
    replicate: int | None = None,
    priority: int = 0,
    client: str | None = None,
    store: Any = None,
) -> str:
    """Register a matching job and return its fingerprint (job id).

    The job is validated against the algorithm registry, addressed by
    content (resubmitting identical work returns the same fingerprint
    without invalidating a finished result), and becomes claimable by
    any ``repro worker`` attached to the same store.  ``priority``
    orders the queue (higher first), ``client`` attributes the job.
    ``store`` may be a path/:class:`~repro.store.db.RunStore` (local)
    or an ``http://`` daemon URL (remote).
    """
    return _backend(store).submit(dict(
        algorithm=algorithm, dataset=dataset, builder=builder,
        quality=quality, platform=platform, devices=devices,
        batches=batches, pointing_engine=pointing_engine, seed=seed,
        overrides=overrides, label=label, replicate=replicate,
        priority=priority, client=client))


def status(fingerprint: str, *, store: Any = None) -> JobStatus:
    """The job's lifecycle snapshot; raises :class:`JobNotFound`."""
    return _backend(store).status(fingerprint)


def result(
    fingerprint: str,
    *,
    store: Any = None,
    wait: bool = False,
    timeout: float | None = None,
    poll_s: float = _DEFAULT_POLL_S,
) -> "RunRecord | None":
    """The job's :class:`~repro.engine.record.RunRecord`.

    Served bit-identically from the store once the job is terminal
    (check ``record.ok`` — failed jobs return their ``error`` record).
    While the job is still pending/leased: returns ``None``, or with
    ``wait=True`` polls until it lands (``timeout`` seconds →
    :class:`TimeoutError`).  Cancelled jobs raise
    :class:`JobCancelled`.
    """
    backend = _backend(store)
    deadline = None if timeout is None else time.monotonic() + timeout
    while True:
        record = backend.result(fingerprint)
        if record is not None or not wait:
            return record
        if deadline is not None and time.monotonic() > deadline:
            raise TimeoutError(
                f"job {fingerprint} not finished after {timeout}s")
        time.sleep(poll_s)


def cancel(fingerprint: str, *, store: Any = None) -> bool:
    """Request cancellation: workers skip the job between rounds and a
    not-yet-started lease is released.  Jobs already ``done`` stay
    done (returns False); raises :class:`JobNotFound` for unknown
    fingerprints."""
    return _backend(store).cancel(fingerprint)


def query(
    *,
    algorithm: str | Iterable[str] | None = None,
    dataset: str | Iterable[str] | None = None,
    state: str | Iterable[str] | None = None,
    client: str | Iterable[str] | None = None,
    store: Any = None,
) -> list[JobStatus]:
    """Jobs matching the filters, oldest first.  ``state`` accepts the
    job states (:data:`JOB_STATES`), including the derived
    ``cancelled``."""
    return _backend(store).query(algorithm=algorithm, dataset=dataset,
                                 state=state, client=client)


# ------------------------------------------------------------------ #
# synchronous conveniences (in-process execution)
# ------------------------------------------------------------------ #


def run(
    algorithm: str,
    dataset: str | None = None,
    *,
    builder: Any = None,
    quality: bool = False,
    platform: Any = None,
    devices: int = 1,
    batches: int | None = None,
    pointing_engine: str | None = None,
    seed: int | None = None,
    overrides: dict[str, Any] | None = None,
    label: str | None = None,
    sinks: Sequence[Any] = (),
    store: Any = None,
) -> "RunRecord":
    """Execute one job synchronously in this process and return its
    :class:`~repro.engine.record.RunRecord`.

    The modern replacement for the deprecated
    ``repro.harness.run_algorithm``: same validation and cell shape as
    :func:`submit`, executed immediately.  With ``store=`` (a path or
    RunStore — not a daemon URL) the run is durable: a previously
    stored result is served without recompute and a fresh one is
    persisted.  Exceptions propagate (no error-record swallowing —
    this is the interactive path).
    """
    if _is_url(store):
        raise ValueError("run() executes locally; submit() the job to "
                         "a daemon URL instead")
    from repro.engine.cells import run_materialised_cell, run_stored_cell

    mc, g = _build_cell(
        algorithm, dataset, builder=builder, quality=quality,
        platform=platform, devices=devices, batches=batches,
        pointing_engine=pointing_engine, seed=seed,
        overrides=overrides, label=label, sinks=sinks)
    if store is None:
        import os

        from repro.store.db import RUN_STORE_ENV

        store = os.environ.get(RUN_STORE_ENV) or None
    if store is None:
        return run_materialised_cell(mc, g, on_error="raise")
    return run_stored_cell(mc, g, _local_store(store),
                           on_error="raise")


def sweep(
    dataset: str,
    *,
    platform: Any = None,
    devices: tuple[int, ...] = (1, 2, 4, 8),
    batches: tuple[int | None, ...] = (None,),
    parallel: int = 0,
    seed: int | None = None,
    pointing_engine: str | None = None,
    collect_metrics: bool = False,
    store: Any = None,
):
    """Sweep LD-GPU over a device/batch grid on a registry dataset —
    the facade over :func:`repro.harness.sweep.sweep_ld_gpu` the CLI's
    ``sweep`` verb runs on.  Returns its ``SweepResult``."""
    if _is_url(store):
        raise ValueError("sweep() executes locally; submit() the grid "
                         "cells to a daemon URL instead")
    from repro.harness.datasets import load_dataset
    from repro.harness.sweep import sweep_ld_gpu
    from repro.store.db import resolve_store

    platform_spec = _resolve_platform(platform)
    if platform_spec is None:
        platform_spec = _resolve_platform("DGX-A100")
    g = load_dataset(dataset)
    kwargs: dict[str, Any] = {}
    if pointing_engine is not None:
        kwargs["engine"] = pointing_engine
    return sweep_ld_gpu(
        g, platforms=(platform_spec,), device_counts=tuple(devices),
        batch_counts=tuple(batches), parallel=parallel,
        collect_metrics=collect_metrics, seed=seed,
        store=resolve_store(store), dataset=dataset, **kwargs)


def process(
    *,
    store: Any = None,
    max_cells: int | None = None,
    idle_exit_s: float = 0.0,
    poll_s: float = 0.5,
    algorithm: str | Iterable[str] | None = None,
) -> int:
    """Drain claimable jobs *in this process* (an inline worker).

    Runs the same loop as ``repro worker`` — priority-first claims,
    heartbeats, cancellation honoured between rounds — and returns the
    number of cells executed.  ``idle_exit_s=0`` returns as soon as
    the queue is empty, which makes this the programmatic way to drain
    a store you just submitted to.
    """
    if _is_url(store):
        raise ValueError("process() drains a local store; workers "
                         "attach to the database, not the daemon")
    from repro.service.worker import worker_loop

    summary = worker_loop(_local_store(store), max_cells=max_cells,
                          idle_exit_s=idle_exit_s, poll_s=poll_s,
                          algorithm=algorithm)
    return summary.executed
