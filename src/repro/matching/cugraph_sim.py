"""RAPIDS cuGraph multi-GPU approximate matching analog.

cuGraph's experimental MG matching follows Manne & Bisseling's locally
dominant algorithm (the paper, §IV-D) — arithmetically the same rounds as
LD-GPU — but its execution model differs in exactly the ways the paper
blames for the order-of-magnitude gap in Table V:

* **process-per-GPU over MPI** (RAFT comms) instead of NCCL over CUDA
  streams: every reduction is host-mediated (D2H → host exchange → H2D)
  with MPI message latencies;
* **full-graph load per process**: each rank ingests the entire graph and
  filters its partition, inflating memory and setup (we charge only the
  steady-state comm, as the paper excludes loading, but we *account* the
  memory so oversized graphs OOM like the real thing).

The matching produced is identical to LD-GPU's (same rounds, same total
order); only the cost model differs.
"""

from __future__ import annotations

import numpy as np

from repro.engine.spec import AlgorithmSpec, register
from repro.comm.transfer import d2h_time, h2d_time
from repro.gpusim.memory import DeviceOOMError
from repro.gpusim.kernels import matching_kernel_cost, pointing_kernel_cost
from repro.gpusim.spec import DGX_A100, PlatformSpec
from repro.gpusim.timeline import Timeline
from repro.graph.csr import CSRGraph
from repro.matching.ld_seq import compute_pointers, find_mutual_pairs
from repro.matching.types import UNMATCHED, MatchResult
from repro.matching.validate import matching_weight
from repro.partition.vertex import edge_balanced_partition

__all__ = ["cugraph_mg_sim"]

#: MPI point-to-point latency through the CUDA-aware OpenMPI stack, per
#: message (much higher than an NCCL collective step).
_MPI_LATENCY_S = 60e-6

#: Dataframe-style passes over the live edge set per iteration: cuGraph's
#: implementation materialises candidate/filter columns with generic thrust
#: primitives instead of a fused pointing kernel.
_PASSES_PER_ITERATION = 10

#: Host-driven orchestration latency per iteration (Python/RAFT dispatch,
#: kernel-graph setup, stream syncs across the process group).
_HOST_OVERHEAD_S = 4e-3


def cugraph_mg_sim(
    graph: CSRGraph,
    platform: PlatformSpec = DGX_A100,
    num_devices: int = 4,
    max_iterations: int | None = None,
) -> MatchResult:
    """Manne–Bisseling LD rounds under the cuGraph execution model."""
    if num_devices < 1:
        raise ValueError("need at least one device")
    n = graph.num_vertices
    spec = platform.device

    # Process-per-GPU load model: every rank materialises the full graph.
    full = graph.memory_bytes() + 2 * n * 8
    if full > spec.memory_bytes:
        raise DeviceOOMError(f"cuGraph/{spec.name}", full, 0,
                             spec.memory_bytes)

    offsets = edge_balanced_partition(graph.indptr, num_devices)
    eids = graph.canonical_edge_ids()
    mate = np.full(n, UNMATCHED, dtype=np.int64)
    pointer = np.full(n, UNMATCHED, dtype=np.int64)
    degrees = graph.degrees
    timeline = Timeline()

    frontier = np.arange(n, dtype=np.int64)
    iterations = 0
    while max_iterations is None or iterations < max_iterations:
        timeline.begin_iteration()
        point_times = []
        scanned = 0
        unmatched = np.nonzero(mate == UNMATCHED)[0]
        for i in range(num_devices):
            start, stop = int(offsets[i]), int(offsets[i + 1])
            sel = frontier[(frontier >= start) & (frontier < stop)]
            # Cost model: cuGraph re-scans every live vertex with several
            # generic passes per iteration — no frontier optimisation.
            live = unmatched[(unmatched >= start) & (unmatched < stop)]
            prof = pointing_kernel_cost(spec, degrees[live])
            point_times.append(prof.seconds * _PASSES_PER_ITERATION)
            scanned += compute_pointers(
                graph.indptr, graph.indices, graph.weights, eids,
                mate, pointer, sel,
            )
        timeline.add("pointing", max(point_times))

        # Host-staged allgather of the pointers: D2H, P×(P−1) MPI
        # messages of the partition slices, H2D — twice per iteration
        # (pointers, then mates).
        nbytes = n * 8
        stage = (
            d2h_time(nbytes // num_devices, platform.host_link)
            + h2d_time(nbytes, platform.host_link)
            + (num_devices - 1) * (_MPI_LATENCY_S
                                   + (nbytes / num_devices)
                                   / platform.host_link.bandwidth_bps)
        )
        timeline.add("allreduce_pointers", stage if num_devices > 1 else 0.0)

        lo, hi = find_mutual_pairs(pointer, frontier)
        match_times = []
        for i in range(num_devices):
            start, stop = int(offsets[i]), int(offsets[i + 1])
            prof = matching_kernel_cost(spec, stop - start)
            match_times.append(prof.seconds)
        timeline.add("matching", max(match_times))
        timeline.add("allreduce_mate", stage if num_devices > 1 else 0.0)
        timeline.add("sync", 4 * spec.kernel_launch_us * 1e-6
                     + _MPI_LATENCY_S + _HOST_OVERHEAD_S)

        iterations += 1
        timeline.end_iteration()
        if len(lo) == 0:
            break
        mate[lo] = hi
        mate[hi] = lo
        pointer[lo] = UNMATCHED
        pointer[hi] = UNMATCHED
        live = np.nonzero((mate == UNMATCHED) & (pointer >= 0))[0]
        frontier = live[mate[pointer[live]] != UNMATCHED]

    return MatchResult(
        mate=mate,
        weight=matching_weight(graph, mate),
        algorithm="cugraph_mg",
        iterations=iterations,
        sim_time=timeline.total,
        timeline=timeline,
        stats={"num_devices": num_devices, "platform": platform.name},
    )


register(AlgorithmSpec(
    name="cugraph",
    fn=cugraph_mg_sim,
    summary="Manne-Bisseling LD over an MPI-style MG model (cuGraph)",
    needs_platform=True,
    needs_devices=True,
    simulator_backed=True,
    approx_ratio="1/2",
))
