"""Short-augmentation local search — the (2/3 − ε)-approximation family.

The paper's concluding remarks point "towards the development of
distributed matching schemes targeting higher quality guarantees"; the
canonical next rung above ½ is Pettie & Sanders' (2/3 − ε)-approximation
(the paper's ref. [34]): improve a maximal matching with *short
augmentations* — moves that add at most two edges around a centre vertex
and drop the matched edges they conflict with.  A matching admitting no
gainful short augmentation is a 2/3-approximation; performing
``O(n·ln(1/ε))`` random-centre augmentations reaches (2/3 − ε) in
expectation.

Two entry points:

* :func:`two_thirds_matching` — deterministic sweeps until no centre
  admits a gainful move (the 2/3 fixed point; what the tests verify
  against the exact optimum);
* :func:`random_augmentation_matching` — the randomised Pettie–Sanders
  schedule with an explicit ε.
"""

from __future__ import annotations

import math

import numpy as np

from repro.engine.spec import AlgorithmSpec, register
from repro.graph.csr import CSRGraph
from repro.matching.ld_seq import ld_seq
from repro.matching.types import UNMATCHED, MatchResult
from repro.matching.validate import matching_weight

__all__ = [
    "two_thirds_matching",
    "random_augmentation_matching",
    "best_short_augmentation",
    "apply_augmentation",
]

_GAIN_EPS = 1e-12


def _best_rematch(
    graph: CSRGraph, mate: np.ndarray, p: int, banned: tuple[int, ...]
) -> tuple[int, float]:
    """Heaviest edge from ``p`` to a vertex free after the move.

    ``banned`` are vertices claimed by the primary added edge.  Only
    currently-unmatched neighbours qualify (their mate state is not
    changed by the move).
    """
    lo, hi = graph.indptr[p], graph.indptr[p + 1]
    nbrs = graph.indices[lo:hi]
    ws = graph.weights[lo:hi]
    best_r, best_w = UNMATCHED, 0.0
    for r, wr in zip(nbrs.tolist(), ws.tolist()):
        if r in banned or mate[r] != UNMATCHED:
            continue
        if wr > best_w:
            best_r, best_w = r, wr
    return best_r, best_w


def best_short_augmentation(
    graph: CSRGraph, mate: np.ndarray, center: int
) -> tuple[float, list[tuple[int, int]]]:
    """The gain-maximal short augmentation centred at ``center``.

    Enumerates, for every neighbour ``u`` of the centre ``v``:

    * add ``{v, u}``, dropping the matched edges at ``v`` and ``u``;
    * optionally re-match each displaced mate (``p`` = old mate of v,
      ``q`` = old mate of u) to its heaviest *free* neighbour — or to
      each other when ``{p, q}`` is an edge.

    Returns ``(gain, added_edges)``; gain ≤ 0 means no improving move.
    """
    v = center
    p = int(mate[v])
    lo, hi = graph.indptr[v], graph.indptr[v + 1]
    nbrs = graph.indices[lo:hi]
    ws = graph.weights[lo:hi]
    w_vp = graph.edge_weight(v, p) if p != UNMATCHED else 0.0

    best_gain = 0.0
    best_moves: list[tuple[int, int]] = []
    for u, w_vu in zip(nbrs.tolist(), ws.tolist()):
        if u == p:
            continue
        q = int(mate[u])
        w_uq = graph.edge_weight(u, q) if q != UNMATCHED else 0.0
        gain = w_vu - w_vp - w_uq
        moves = [(v, u)]

        # Re-match the displaced mates.  p and q are free after the move.
        extra = 0.0
        if p != UNMATCHED and q != UNMATCHED and p != q \
                and graph.has_edge(p, q):
            w_pq = graph.edge_weight(p, q)
            extra = w_pq
            extra_moves = [(p, q)]
        else:
            extra_moves = []
            if p != UNMATCHED:
                r, wr = _best_rematch(graph, mate, p, (v, u, q))
                if r != UNMATCHED:
                    extra += wr
                    extra_moves.append((p, r))
            if q != UNMATCHED:
                banned = (v, u, p) + tuple(
                    b for _, b in extra_moves
                )
                r, wr = _best_rematch(graph, mate, q, banned)
                if r != UNMATCHED:
                    extra += wr
                    extra_moves.append((q, r))
        gain += extra
        moves += extra_moves

        if gain > best_gain + _GAIN_EPS:
            best_gain = gain
            best_moves = moves
    return best_gain, best_moves


def apply_augmentation(
    mate: np.ndarray, moves: list[tuple[int, int]]
) -> None:
    """Apply an augmentation in place: unmatch every endpoint's current
    partner, then match the listed pairs."""
    for a, b in moves:
        for x in (a, b):
            old = int(mate[x])
            if old != UNMATCHED:
                mate[old] = UNMATCHED
                mate[x] = UNMATCHED
    for a, b in moves:
        mate[a] = b
        mate[b] = a


def two_thirds_matching(
    graph: CSRGraph,
    init: MatchResult | None = None,
    max_sweeps: int = 50,
) -> MatchResult:
    """Local search to a short-augmentation fixed point (≥ 2/3 · OPT).

    Starts from ``init`` (default: the LD matching) and sweeps all
    vertices until one full sweep applies no move.
    """
    base = init if init is not None else ld_seq(graph, collect_stats=False)
    mate = base.mate.copy()
    n = graph.num_vertices
    sweeps = 0
    augmentations = 0
    improved = True
    while improved and sweeps < max_sweeps:
        improved = False
        sweeps += 1
        for v in range(n):
            gain, moves = best_short_augmentation(graph, mate, v)
            if gain > _GAIN_EPS:
                apply_augmentation(mate, moves)
                augmentations += 1
                improved = True
    return MatchResult(
        mate=mate,
        weight=matching_weight(graph, mate),
        algorithm="two_thirds",
        iterations=sweeps,
        stats={"augmentations": augmentations,
               "initial_weight": base.weight},
    )


def random_augmentation_matching(
    graph: CSRGraph,
    epsilon: float = 0.1,
    seed: int = 0,
    init: MatchResult | None = None,
) -> MatchResult:
    """Pettie–Sanders randomised schedule: ``ceil(n/3 · ln(1/ε))``
    random-centre short augmentations on top of a maximal matching,
    giving (2/3 − ε)·OPT in expectation."""
    if not 0 < epsilon < 1:
        raise ValueError("epsilon must be in (0, 1)")
    base = init if init is not None else ld_seq(graph, collect_stats=False)
    mate = base.mate.copy()
    n = graph.num_vertices
    rounds = max(1, math.ceil(n / 3 * math.log(1 / epsilon)))
    rng = np.random.default_rng(seed)
    centers = rng.integers(0, n, size=rounds) if n else []
    augmentations = 0
    for v in centers:
        gain, moves = best_short_augmentation(graph, mate, int(v))
        if gain > _GAIN_EPS:
            apply_augmentation(mate, moves)
            augmentations += 1
    return MatchResult(
        mate=mate,
        weight=matching_weight(graph, mate),
        algorithm="pettie_sanders",
        iterations=rounds,
        stats={"augmentations": augmentations, "epsilon": epsilon,
               "initial_weight": base.weight},
    )


register(AlgorithmSpec(
    name="two_thirds",
    fn=two_thirds_matching,
    summary="short-augmentation local search to the 2/3 fixed point",
    approx_ratio="2/3",
))
register(AlgorithmSpec(
    name="pettie_sanders",
    fn=random_augmentation_matching,
    summary="Pettie-Sanders randomised short augmentations",
    accepts_seed=True,
    approx_ratio="2/3-eps",
))
