"""Exact maximum weight matching — the paper's LEMON baseline.

A from-scratch implementation of Edmonds' blossom algorithm in the
primal–dual formulation of Galil ("Efficient algorithms for finding maximum
matching in graphs", ACM Computing Surveys 1986) — the same algorithm LEMON
and van Rantwijk's classic ``mwmatching`` implement.  O(n³) worst case; the
paper could only run LEMON on its SMALL instances, and Table II measures
the LD/Suitor quality gap against it.

Engineering notes:

* Operates directly on :class:`~repro.graph.csr.CSRGraph` adjacency.
* Integer blossom ids: vertices ``0..n-1``, non-trivial blossoms allocated
  from ``n..2n-1`` (a graph has at most ``n/2`` nested blossoms live).
* Dual variables are stored pre-multiplied by two (slacks stay integral for
  integer weights) and all "tight" tests use ``slack <= 0`` so accumulated
  float error in the duals cannot deadlock the search.
* ``verify=True`` checks the complementary-slackness certificate at the
  end — the proof of optimality, used throughout the test suite.
"""

from __future__ import annotations

import numpy as np

from repro.engine.spec import AlgorithmSpec, register
from repro.graph.csr import CSRGraph
from repro.matching.types import UNMATCHED, MatchResult
from repro.matching.validate import matching_weight

__all__ = ["blossom_mwm", "maximum_weight_matching"]

_FREE, _S, _T = 0, 1, 2
_BREADCRUMB = 4
_NONE = -1


def maximum_weight_matching(
    graph: CSRGraph,
    maxcardinality: bool = False,
    verify: bool = False,
) -> np.ndarray:
    """Return the optimal ``mate`` array for ``graph``.

    ``maxcardinality=True`` restricts the optimum to maximum-cardinality
    matchings (LEMON's ``MaxWeightedPerfectMatching`` flavour when one
    exists).
    """
    n = graph.num_vertices
    mate = np.full(n, UNMATCHED, dtype=np.int64)
    if n == 0 or graph.num_directed_edges == 0:
        return mate
    indptr, indices, weights = graph.indptr, graph.indices, graph.weights

    # weight lookup per directed slot owner: wmap[(v, w)]
    wmap: dict[tuple[int, int], float] = {}
    for v in range(n):
        for k in range(indptr[v], indptr[v + 1]):
            wmap[(v, int(indices[k]))] = float(weights[k])

    maxweight = float(weights.max())

    nslots = 2 * n
    label = np.zeros(nslots, dtype=np.int64)
    labeledge: list[tuple[int, int] | None] = [None] * nslots
    inblossom = np.arange(n, dtype=np.int64)
    blossomparent = np.full(nslots, _NONE, dtype=np.int64)
    blossombase = np.concatenate(
        [np.arange(n, dtype=np.int64), np.full(n, _NONE, dtype=np.int64)]
    )
    blossomchilds: list[list[int] | None] = [None] * nslots
    blossomedges: list[list[tuple[int, int]] | None] = [None] * nslots
    mybestedges: list[list[tuple[int, int]] | None] = [None] * nslots
    bestedge: list[tuple[int, int] | None] = [None] * nslots
    dualvar = np.zeros(nslots, dtype=np.float64)
    dualvar[:n] = maxweight
    active_blossoms: list[int] = []
    unused_blossoms = list(range(nslots - 1, n - 1, -1))
    allowedge: dict[tuple[int, int], bool] = {}
    queue: list[int] = []

    mate_arr = mate  # alias; mate[v] is the partner vertex or -1

    # ---------------------------------------------------------------- #
    def slack(v: int, w: int) -> float:
        return dualvar[v] + dualvar[w] - 2.0 * wmap[(v, w)]

    def blossom_leaves(b: int):
        stack = [b]
        while stack:
            t = stack.pop()
            if t < n:
                yield t
            else:
                stack.extend(blossomchilds[t])  # type: ignore[arg-type]

    def assign_label(w: int, t: int, v: int) -> None:
        b = int(inblossom[w])
        assert label[w] == _FREE and label[b] == _FREE
        label[w] = label[b] = t
        if v != _NONE:
            labeledge[w] = labeledge[b] = (v, w)
        else:
            labeledge[w] = labeledge[b] = None
        bestedge[w] = bestedge[b] = None
        if t == _S:
            queue.extend(blossom_leaves(b))
        else:  # T: label the base's mate S
            base = int(blossombase[b])
            assign_label(int(mate_arr[base]), _S, base)

    def scan_blossom(v: int, w: int) -> int:
        """Trace back from v and w; return a new blossom's base vertex or
        -1 when an augmenting path was found."""
        path = []
        base = _NONE
        while v != _NONE:
            b = int(inblossom[v])
            if label[b] & _BREADCRUMB:
                base = int(blossombase[b])
                break
            assert label[b] == _S
            path.append(b)
            label[b] = _S | _BREADCRUMB
            if labeledge[b] is None:
                assert mate_arr[blossombase[b]] == UNMATCHED
                v = _NONE
            else:
                assert labeledge[b][0] == mate_arr[blossombase[b]]
                v = labeledge[b][0]
                b = int(inblossom[v])
                assert label[b] == _T
                v = labeledge[b][0]  # type: ignore[index]
            if w != _NONE:
                v, w = w, v
        for b in path:
            label[b] = _S
        return base

    def add_blossom(base: int, v: int, w: int) -> None:
        bb = int(inblossom[base])
        bv = int(inblossom[v])
        bw = int(inblossom[w])
        b = unused_blossoms.pop()
        active_blossoms.append(b)
        blossombase[b] = base
        blossomparent[b] = _NONE
        blossomparent[bb] = b
        path: list[int] = []
        edgs: list[tuple[int, int]] = [(v, w)]
        while bv != bb:
            blossomparent[bv] = b
            path.append(bv)
            edgs.append(labeledge[bv])  # type: ignore[arg-type]
            assert label[bv] == _T or (
                label[bv] == _S
                and labeledge[bv][0] == mate_arr[blossombase[bv]]
            )
            v = labeledge[bv][0]  # type: ignore[index]
            bv = int(inblossom[v])
        path.append(bb)
        path.reverse()
        edgs.reverse()
        while bw != bb:
            blossomparent[bw] = b
            path.append(bw)
            le = labeledge[bw]
            edgs.append((le[1], le[0]))  # type: ignore[index]
            assert label[bw] == _T or (
                label[bw] == _S
                and labeledge[bw][0] == mate_arr[blossombase[bw]]
            )
            w = labeledge[bw][0]  # type: ignore[index]
            bw = int(inblossom[w])
        assert label[bb] == _S
        label[b] = _S
        labeledge[b] = labeledge[bb]
        dualvar[b] = 0.0
        blossomchilds[b] = path
        blossomedges[b] = edgs
        for leaf in blossom_leaves(b):
            if label[inblossom[leaf]] == _T:
                queue.append(leaf)
            inblossom[leaf] = b
        # Compute the new blossom's least-slack edges to S-blossoms.
        bestedgeto: dict[int, tuple[int, int]] = {}
        for bv2 in path:
            if bv2 >= n and mybestedges[bv2] is not None:
                nblists = [mybestedges[bv2]]
                mybestedges[bv2] = None
            else:
                nblists = [
                    [
                        (leaf, int(indices[k]))
                        for leaf in blossom_leaves(bv2)
                        for k in range(indptr[leaf], indptr[leaf + 1])
                    ]
                ]
            for nblist in nblists:
                for (i, j) in nblist:  # type: ignore[union-attr]
                    if inblossom[j] == b:
                        i, j = j, i
                    bj = int(inblossom[j])
                    if (
                        bj != b
                        and label[bj] == _S
                        and (
                            bj not in bestedgeto
                            or slack(i, j) < slack(*bestedgeto[bj])
                        )
                    ):
                        bestedgeto[bj] = (i, j)
            bestedge[bv2] = None
        mybestedges[b] = list(bestedgeto.values())
        best = None
        for k in mybestedges[b]:  # type: ignore[union-attr]
            if best is None or slack(*k) < slack(*best):
                best = k
        bestedge[b] = best

    def expand_blossom(b: int, endstage: bool) -> None:
        def _recurse(b: int, endstage: bool):
            for s in blossomchilds[b]:  # type: ignore[union-attr]
                blossomparent[s] = _NONE
                if s < n:
                    inblossom[s] = s
                elif endstage and dualvar[s] == 0:
                    yield s
                else:
                    for leaf in blossom_leaves(s):
                        inblossom[leaf] = s
            if (not endstage) and label[b] == _T:
                entrychild = int(inblossom[labeledge[b][1]])  # type: ignore[index]
                childs = blossomchilds[b]  # type: ignore[assignment]
                edgs = blossomedges[b]  # type: ignore[assignment]
                j = childs.index(entrychild)
                if j & 1:
                    j -= len(childs)
                    jstep = 1
                else:
                    jstep = -1
                v, w = labeledge[b]  # type: ignore[misc]
                while j != 0:
                    if jstep == 1:
                        p, q = edgs[j]
                    else:
                        q, p = edgs[j - 1]
                    label[w] = _FREE
                    label[q] = _FREE
                    assign_label(w, _T, v)
                    allowedge[(p, q)] = allowedge[(q, p)] = True
                    j += jstep
                    if jstep == 1:
                        v, w = edgs[j]
                    else:
                        w, v = edgs[j - 1]
                    allowedge[(v, w)] = allowedge[(w, v)] = True
                    j += jstep
                bw = childs[j]
                label[w] = _T
                label[bw] = _T
                labeledge[w] = labeledge[bw] = (v, w)
                bestedge[bw] = None
                j += jstep
                while childs[j] != entrychild:
                    bv = childs[j]
                    if label[bv] == _S:
                        j += jstep
                        continue
                    leaf = bv
                    if bv >= n:
                        for leaf in blossom_leaves(bv):
                            if label[leaf]:
                                break
                    if label[leaf]:
                        assert label[leaf] == _T
                        assert inblossom[leaf] == bv
                        label[leaf] = _FREE
                        label[mate_arr[blossombase[bv]]] = _FREE
                        assign_label(leaf, _T, labeledge[leaf][0])  # type: ignore[index]
                    j += jstep
            label[b] = _FREE
            labeledge[b] = None
            bestedge[b] = None
            blossomchilds[b] = None
            blossomedges[b] = None
            blossombase[b] = _NONE
            mybestedges[b] = None
            dualvar[b] = 0.0
            active_blossoms.remove(b)
            unused_blossoms.append(b)

        stack = [_recurse(b, endstage)]
        while stack:
            top = stack[-1]
            advanced = False
            for s in top:
                stack.append(_recurse(s, endstage))
                advanced = True
                break
            if not advanced:
                stack.pop()

    def augment_blossom(b: int, v: int) -> None:
        def _recurse(b: int, v: int):
            t = v
            while blossomparent[t] != b:
                t = int(blossomparent[t])
            if t >= n:
                yield (t, v)
            childs = blossomchilds[b]  # type: ignore[assignment]
            edgs = blossomedges[b]  # type: ignore[assignment]
            i = j = childs.index(t)
            if i & 1:
                j -= len(childs)
                jstep = 1
            else:
                jstep = -1
            while j != 0:
                j += jstep
                t = childs[j]
                if jstep == 1:
                    w, x = edgs[j]
                else:
                    x, w = edgs[j - 1]
                if t >= n:
                    yield (t, w)
                j += jstep
                t = childs[j]
                if t >= n:
                    yield (t, x)
                mate_arr[w] = x
                mate_arr[x] = w
            blossomchilds[b] = childs[i:] + childs[:i]
            blossomedges[b] = edgs[i:] + edgs[:i]
            blossombase[b] = blossombase[blossomchilds[b][0]]
            assert blossombase[b] == v

        stack = [_recurse(b, v)]
        while stack:
            top = stack[-1]
            advanced = False
            for args in top:
                stack.append(_recurse(*args))
                advanced = True
                break
            if not advanced:
                stack.pop()

    def augment_matching(v: int, w: int) -> None:
        for s, j in ((v, w), (w, v)):
            while True:
                bs = int(inblossom[s])
                assert label[bs] == _S
                assert (
                    labeledge[bs] is None
                    and mate_arr[blossombase[bs]] == UNMATCHED
                ) or labeledge[bs][0] == mate_arr[blossombase[bs]]
                if bs >= n:
                    augment_blossom(bs, s)
                mate_arr[s] = j
                if labeledge[bs] is None:
                    break
                t = labeledge[bs][0]
                bt = int(inblossom[t])
                assert label[bt] == _T
                s, j = labeledge[bt]  # type: ignore[misc]
                assert blossombase[bt] == t
                if bt >= n:
                    augment_blossom(bt, j)
                mate_arr[j] = s

    def verify_optimum() -> None:
        vdualoffset = 0.0
        if maxcardinality:
            vdualoffset = max(0.0, -float(dualvar[:n].min()))
        assert dualvar[:n].min() + vdualoffset >= -1e-9
        assert all(dualvar[b] >= -1e-9 for b in active_blossoms)
        for v in range(n):
            for k in range(indptr[v], indptr[v + 1]):
                w2 = int(indices[k])
                if v > w2:
                    continue
                s = dualvar[v] + dualvar[w2] - 2.0 * weights[k]
                vbl, wbl = [v], [w2]
                while blossomparent[vbl[-1]] != _NONE:
                    vbl.append(int(blossomparent[vbl[-1]]))
                while blossomparent[wbl[-1]] != _NONE:
                    wbl.append(int(blossomparent[wbl[-1]]))
                vbl.reverse()
                wbl.reverse()
                for bi, bj in zip(vbl, wbl):
                    if bi != bj:
                        break
                    s += 2.0 * dualvar[bi]
                assert s >= -1e-6
                if mate_arr[v] == w2:
                    assert abs(s) <= 1e-6
        for v in range(n):
            assert mate_arr[v] != UNMATCHED or \
                abs(dualvar[v] + vdualoffset) <= 1e-6
        for b in active_blossoms:
            if dualvar[b] > 1e-9:
                assert len(blossomedges[b]) % 2 == 1
                for (i, j) in blossomedges[b][1::2]:
                    assert mate_arr[i] == j and mate_arr[j] == i

    # ------------------------- main loop ----------------------------- #
    while True:
        label[:] = _FREE
        labeledge = [None] * nslots
        bestedge = [None] * nslots
        for b in active_blossoms:
            mybestedges[b] = None
        allowedge.clear()
        queue.clear()
        for v in range(n):
            if mate_arr[v] == UNMATCHED and label[inblossom[v]] == _FREE:
                assign_label(v, _S, _NONE)

        augmented = False
        while True:
            while queue and not augmented:
                v = queue.pop()
                assert label[inblossom[v]] == _S
                for k in range(indptr[v], indptr[v + 1]):
                    w2 = int(indices[k])
                    bv = int(inblossom[v])
                    bw = int(inblossom[w2])
                    if bv == bw:
                        continue
                    if (v, w2) not in allowedge:
                        kslack = slack(v, w2)
                        if kslack <= 0:
                            allowedge[(v, w2)] = allowedge[(w2, v)] = True
                    else:
                        kslack = 0.0
                    if (v, w2) in allowedge:
                        if label[bw] == _FREE:
                            assign_label(w2, _T, v)
                        elif label[bw] == _S:
                            base = scan_blossom(v, w2)
                            if base != _NONE:
                                add_blossom(base, v, w2)
                            else:
                                augment_matching(v, w2)
                                augmented = True
                                break
                        elif label[w2] == _FREE:
                            assert label[bw] == _T
                            label[w2] = _T
                            labeledge[w2] = (v, w2)
                    elif label[bw] == _S:
                        if bestedge[bv] is None or \
                                kslack < slack(*bestedge[bv]):
                            bestedge[bv] = (v, w2)
                    elif label[w2] == _FREE:
                        if bestedge[w2] is None or \
                                kslack < slack(*bestedge[w2]):
                            bestedge[w2] = (v, w2)
            if augmented:
                break

            # No augmenting path: pump slack out of the duals.
            deltatype = -1
            delta = 0.0
            deltaedge: tuple[int, int] | None = None
            deltablossom = _NONE
            if not maxcardinality:
                deltatype = 1
                delta = float(dualvar[:n].min())
            for v in range(n):
                if label[inblossom[v]] == _FREE and bestedge[v] is not None:
                    d = slack(*bestedge[v])
                    if deltatype == -1 or d < delta:
                        delta = d
                        deltatype = 2
                        deltaedge = bestedge[v]
            for b in range(nslots):
                if (
                    blossomparent[b] == _NONE
                    and (b < n or blossombase[b] >= 0)
                    and label[b] == _S
                    and bestedge[b] is not None
                ):
                    d = slack(*bestedge[b]) / 2.0
                    if deltatype == -1 or d < delta:
                        delta = d
                        deltatype = 3
                        deltaedge = bestedge[b]
            for b in active_blossoms:
                if (
                    blossomparent[b] == _NONE
                    and label[b] == _T
                    and (deltatype == -1 or dualvar[b] < delta)
                ):
                    delta = float(dualvar[b])
                    deltatype = 4
                    deltablossom = b
            if deltatype == -1:
                assert maxcardinality
                deltatype = 1
                delta = max(0.0, float(dualvar[:n].min()))

            for v in range(n):
                lb = label[inblossom[v]]
                if lb == _S:
                    dualvar[v] -= delta
                elif lb == _T:
                    dualvar[v] += delta
            for b in active_blossoms:
                if blossomparent[b] == _NONE:
                    if label[b] == _S:
                        dualvar[b] += delta
                    elif label[b] == _T:
                        dualvar[b] -= delta

            if deltatype == 1:
                break
            elif deltatype == 2:
                v, w2 = deltaedge  # type: ignore[misc]
                assert label[inblossom[v]] == _S
                allowedge[(v, w2)] = allowedge[(w2, v)] = True
                queue.append(v)
            elif deltatype == 3:
                v, w2 = deltaedge  # type: ignore[misc]
                allowedge[(v, w2)] = allowedge[(w2, v)] = True
                assert label[inblossom[v]] == _S
                queue.append(v)
            elif deltatype == 4:
                expand_blossom(deltablossom, False)

        if not augmented:
            break

        # End of a successful stage: expand all S-blossoms with zero dual.
        for b in list(active_blossoms):
            if (
                blossombase[b] >= 0
                and blossomparent[b] == _NONE
                and label[b] == _S
                and dualvar[b] == 0
            ):
                expand_blossom(b, True)

    if verify:
        verify_optimum()
    return mate_arr


def blossom_mwm(graph: CSRGraph, maxcardinality: bool = False,
                verify: bool = False) -> MatchResult:
    """:func:`maximum_weight_matching` wrapped in a :class:`MatchResult`."""
    mate = maximum_weight_matching(graph, maxcardinality=maxcardinality,
                                   verify=verify)
    return MatchResult(
        mate=mate,
        weight=matching_weight(graph, mate),
        algorithm="blossom" + ("_maxcard" if maxcardinality else ""),
        iterations=0,
    )


register(AlgorithmSpec(
    name="blossom",
    fn=blossom_mwm,
    summary="exact maximum weight matching (LEMON stand-in)",
    exact=True,
))
