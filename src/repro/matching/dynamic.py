"""Dynamic matching maintenance under edge insertions and deletions.

Streaming graph pipelines (the paper's motivation list includes
scheduling and resource allocation) rarely re-match from scratch: they
maintain a matching as the graph mutates.  :class:`DynamicMatcher` keeps
a *valid, maximal* matching across updates with local repairs:

* **insert(u, v, w)** — if the new edge beats the matched weight at both
  endpoints combined, switch to it (a short augmentation); otherwise try
  to match it greedily.
* **delete(u, v)** — if the edge was matched, unmatch it and greedily
  re-match both endpoints.

Each repair is O(deg(u) + deg(v)); quality can drift below the ½ bound
over adversarial update sequences, so the class tracks drift and exposes
:meth:`rebuild` (a fresh LD run) — the standard periodic-rebuild pattern.
The test suite checks validity and maximality after every operation and
measures drift against rebuilds.
"""

from __future__ import annotations

import numpy as np

from repro.graph.builders import from_coo
from repro.graph.csr import CSRGraph
from repro.matching.ld_seq import ld_seq
from repro.matching.types import UNMATCHED
from repro.matching.validate import matching_weight

__all__ = ["DynamicMatcher"]


class DynamicMatcher:
    """Maintain a maximal matching over an edge-mutable graph.

    The graph is held as a dict-of-dicts adjacency (mutation-friendly);
    :meth:`to_graph` materialises the CSR snapshot.
    """

    def __init__(self, graph: CSRGraph | None = None,
                 num_vertices: int | None = None):
        if graph is not None:
            self._n = graph.num_vertices
            self._adj: list[dict[int, float]] = [
                dict(zip(graph.neighbors(v).tolist(),
                         graph.neighbor_weights(v).tolist()))
                for v in range(self._n)
            ]
            base = ld_seq(graph, collect_stats=False)
            self.mate = base.mate.copy()
        else:
            self._n = int(num_vertices or 0)
            self._adj = [dict() for _ in range(self._n)]
            self.mate = np.full(self._n, UNMATCHED, dtype=np.int64)
        self.updates = 0

    # -------------------------------------------------------------- #
    @property
    def num_vertices(self) -> int:
        return self._n

    @property
    def num_edges(self) -> int:
        return sum(len(a) for a in self._adj) // 2

    @property
    def weight(self) -> float:
        """Current matching weight."""
        total = 0.0
        for v in range(self._n):
            u = int(self.mate[v])
            if u != UNMATCHED and v < u:
                total += self._adj[v][u]
        return total

    def to_graph(self, name: str = "dynamic") -> CSRGraph:
        """CSR snapshot of the current graph."""
        us, vs, ws = [], [], []
        for v in range(self._n):
            for u, w in self._adj[v].items():
                if v < u:
                    us.append(v)
                    vs.append(u)
                    ws.append(w)
        return from_coo(np.array(us, dtype=np.int64),
                        np.array(vs, dtype=np.int64),
                        np.array(ws, dtype=np.float64),
                        num_vertices=self._n, name=name)

    # -------------------------------------------------------------- #
    def _ensure_vertex(self, v: int) -> None:
        if v < 0:
            raise ValueError("negative vertex id")
        while v >= self._n:
            self._adj.append(dict())
            self.mate = np.append(self.mate, UNMATCHED)
            self._n += 1

    def _matched_weight_at(self, v: int) -> float:
        u = int(self.mate[v])
        return self._adj[v][u] if u != UNMATCHED else 0.0

    def _unmatch(self, v: int) -> int:
        u = int(self.mate[v])
        if u != UNMATCHED:
            self.mate[v] = UNMATCHED
            self.mate[u] = UNMATCHED
        return u

    def _greedy_match(self, v: int) -> None:
        """Match ``v`` to its heaviest free neighbour, if any."""
        if self.mate[v] != UNMATCHED:
            return
        best_u, best_w = UNMATCHED, 0.0
        for u, w in self._adj[v].items():
            if self.mate[u] == UNMATCHED and w > best_w:
                best_u, best_w = u, w
        if best_u != UNMATCHED:
            self.mate[v] = best_u
            self.mate[best_u] = v

    # -------------------------------------------------------------- #
    def insert(self, u: int, v: int, w: float) -> None:
        """Insert (or re-weight) edge ``{u, v}`` and repair locally."""
        if u == v:
            raise ValueError("self-loops are not allowed")
        if w <= 0:
            raise ValueError("weights must be positive")
        self._ensure_vertex(max(u, v))
        self._adj[u][v] = w
        self._adj[v][u] = w
        self.updates += 1

        if self.mate[u] == v:
            return  # already matched through this edge (re-weight)
        # Switch when the new edge outweighs what it displaces.
        displaced = self._matched_weight_at(u) + self._matched_weight_at(v)
        if w > displaced:
            pu = self._unmatch(u)
            pv = self._unmatch(v)
            self.mate[u] = v
            self.mate[v] = u
            for orphan in (pu, pv):
                if orphan != UNMATCHED and orphan not in (u, v):
                    self._greedy_match(orphan)
        else:
            self._greedy_match(u)
            self._greedy_match(v)

    def delete(self, u: int, v: int) -> None:
        """Delete edge ``{u, v}`` and repair locally."""
        if v not in self._adj[u]:
            raise KeyError(f"edge ({u}, {v}) not present")
        del self._adj[u][v]
        del self._adj[v][u]
        self.updates += 1
        if self.mate[u] == v:
            self._unmatch(u)
            self._greedy_match(u)
            self._greedy_match(v)

    def rebuild(self) -> None:
        """Re-run LD matching from scratch (the periodic drift reset)."""
        result = ld_seq(self.to_graph(), collect_stats=False)
        self.mate = result.mate.copy()
        self.updates = 0

    # -------------------------------------------------------------- #
    def drift(self) -> float:
        """Current weight / rebuilt weight (≤ 1; 1 = no drift)."""
        snapshot = self.to_graph()
        fresh = ld_seq(snapshot, collect_stats=False)
        if fresh.weight == 0:
            return 1.0
        return matching_weight(snapshot, self.mate) / fresh.weight
