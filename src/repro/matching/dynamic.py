"""Dynamic matching maintenance under edge insertions and deletions.

Streaming graph pipelines (the paper's motivation list includes
scheduling and resource allocation) rarely re-match from scratch: they
maintain a matching as the graph mutates.  :class:`DynamicMatcher` keeps
a *valid, maximal* matching across updates with local repairs:

* **insert(u, v, w)** — if the new edge beats the matched weight at both
  endpoints combined, switch to it (a short augmentation); otherwise try
  to match it greedily.
* **delete(u, v)** — if the edge was matched, unmatch it and greedily
  re-match both endpoints.

Each repair is O(deg(u) + deg(v)); quality can drift below the ½ bound
over adversarial update sequences, so the class tracks drift and exposes
:meth:`rebuild` (a fresh LD run) — the standard periodic-rebuild pattern.
The test suite checks validity and maximality after every operation and
measures drift against rebuilds.
"""

from __future__ import annotations

import numpy as np

from repro.graph.builders import from_coo
from repro.graph.csr import CSRGraph
from repro.graph.transform import edge_subgraph
from repro.matching.ld_seq import ld_seq
from repro.matching.types import UNMATCHED
from repro.matching.validate import matching_weight

__all__ = ["DynamicMatcher"]


class DynamicMatcher:
    """Maintain a maximal matching over an edge-mutable graph.

    The graph is held two ways, kept in sync by every update:

    * a dict-of-dicts adjacency — mutation-friendly, drives the O(deg)
      local repairs;
    * a *base + overlay* snapshot plan — the CSR the matcher started
      from (``_base``), a liveness mask over its undirected edges, and a
      small dict of edges added or re-weighted since.  :meth:`to_graph`
      turns that into a CSR via
      :func:`~repro.graph.transform.edge_subgraph` (pure deletions) or
      a vectorised masked-base + overlay rebuild — never the per-edge
      Python loop this class used to run.
    """

    def __init__(self, graph: CSRGraph | None = None,
                 num_vertices: int | None = None):
        if graph is not None:
            self._n = graph.num_vertices
            self._adj: list[dict[int, float]] = [
                dict(zip(graph.neighbors(v).tolist(),
                         graph.neighbor_weights(v).tolist()))
                for v in range(self._n)
            ]
            base = ld_seq(graph, collect_stats=False)
            self.mate = base.mate.copy()
        else:
            self._n = int(num_vertices or 0)
            self._adj = [dict() for _ in range(self._n)]
            self.mate = np.full(self._n, UNMATCHED, dtype=np.int64)
        self._rebase(graph)
        self.updates = 0

    def _rebase(self, graph: CSRGraph | None) -> None:
        """Reset the snapshot plan: ``graph`` becomes the base, the
        overlay empties."""
        self._base = graph if graph is not None \
            else CSRGraph.empty(self._n)
        bu, bv, bw = self._base.edge_array()
        self._base_uvw = (bu, bv, bw)
        self._base_live = np.ones(len(bu), dtype=bool)
        self._base_index = {
            (int(a), int(b)): k
            for k, (a, b) in enumerate(zip(bu.tolist(), bv.tolist()))
        }
        self._extra: dict[tuple[int, int], float] = {}

    # -------------------------------------------------------------- #
    @property
    def num_vertices(self) -> int:
        return self._n

    @property
    def num_edges(self) -> int:
        return sum(len(a) for a in self._adj) // 2

    def has_edge(self, u: int, v: int) -> bool:
        """True if edge ``{u, v}`` is currently present."""
        return 0 <= u < self._n and v in self._adj[u]

    def edges(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Current undirected edge list ``(u, v, w)`` with ``u < v``,
        sorted lexicographically — the public face of the adjacency
        (callers should not reach into the private ``_adj``)."""
        us: list[int] = []
        vs: list[int] = []
        ws: list[float] = []
        for u in range(self._n):
            for v, w in self._adj[u].items():
                if u < v:
                    us.append(u)
                    vs.append(v)
                    ws.append(w)
        u_arr = np.asarray(us, dtype=np.int64)
        v_arr = np.asarray(vs, dtype=np.int64)
        w_arr = np.asarray(ws, dtype=np.float64)
        order = np.lexsort((v_arr, u_arr))
        return u_arr[order], v_arr[order], w_arr[order]

    @property
    def weight(self) -> float:
        """Current matching weight."""
        total = 0.0
        for v in range(self._n):
            u = int(self.mate[v])
            if u != UNMATCHED and v < u:
                total += self._adj[v][u]
        return total

    def to_graph(self, name: str = "dynamic") -> CSRGraph:
        """CSR snapshot of the current graph.

        Pure deletions reduce to one :func:`edge_subgraph` extraction of
        the base (vertex set unchanged, overlay empty); otherwise the
        live base edges and the overlay are merged vectorised through
        :func:`from_coo`.
        """
        if not self._extra and self._n == self._base.num_vertices:
            sub, _ = edge_subgraph(self._base, self._base_live,
                                   name=name)
            return sub
        bu, bv, bw = self._base_uvw
        live = self._base_live
        if self._extra:
            keys = np.array(sorted(self._extra), dtype=np.int64)
            eu, ev = keys[:, 0], keys[:, 1]
            ew = np.array([self._extra[(int(a), int(b))]
                           for a, b in keys], dtype=np.float64)
        else:
            eu = ev = np.empty(0, dtype=np.int64)
            ew = np.empty(0, dtype=np.float64)
        return from_coo(np.concatenate([bu[live], eu]),
                        np.concatenate([bv[live], ev]),
                        np.concatenate([bw[live], ew]),
                        num_vertices=self._n, name=name)

    # -------------------------------------------------------------- #
    def _ensure_vertex(self, v: int) -> None:
        if v < 0:
            raise ValueError("negative vertex id")
        while v >= self._n:
            self._adj.append(dict())
            self.mate = np.append(self.mate, UNMATCHED)
            self._n += 1

    def _matched_weight_at(self, v: int) -> float:
        u = int(self.mate[v])
        return self._adj[v][u] if u != UNMATCHED else 0.0

    def _unmatch(self, v: int) -> int:
        u = int(self.mate[v])
        if u != UNMATCHED:
            self.mate[v] = UNMATCHED
            self.mate[u] = UNMATCHED
        return u

    def _greedy_match(self, v: int) -> None:
        """Match ``v`` to its heaviest free neighbour, if any."""
        if self.mate[v] != UNMATCHED:
            return
        best_u, best_w = UNMATCHED, 0.0
        for u, w in self._adj[v].items():
            if self.mate[u] == UNMATCHED and w > best_w:
                best_u, best_w = u, w
        if best_u != UNMATCHED:
            self.mate[v] = best_u
            self.mate[best_u] = v

    # -------------------------------------------------------------- #
    def insert(self, u: int, v: int, w: float) -> None:
        """Insert (or re-weight) edge ``{u, v}`` and repair locally."""
        if u == v:
            raise ValueError("self-loops are not allowed")
        if w <= 0:
            raise ValueError("weights must be positive")
        self._ensure_vertex(max(u, v))
        self._adj[u][v] = w
        self._adj[v][u] = w
        lo, hi = (u, v) if u < v else (v, u)
        k = self._base_index.get((lo, hi))
        if k is not None and self._base_live[k] and \
                float(self._base_uvw[2][k]) == w:
            pass  # identical to the live base edge — nothing to overlay
        else:
            if k is not None:
                self._base_live[k] = False
            self._extra[(lo, hi)] = w
        self.updates += 1

        if self.mate[u] == v:
            return  # already matched through this edge (re-weight)
        # Switch when the new edge outweighs what it displaces.
        displaced = self._matched_weight_at(u) + self._matched_weight_at(v)
        if w > displaced:
            pu = self._unmatch(u)
            pv = self._unmatch(v)
            self.mate[u] = v
            self.mate[v] = u
            for orphan in (pu, pv):
                if orphan != UNMATCHED and orphan not in (u, v):
                    self._greedy_match(orphan)
        else:
            self._greedy_match(u)
            self._greedy_match(v)

    def delete(self, u: int, v: int) -> None:
        """Delete edge ``{u, v}`` and repair locally."""
        if v not in self._adj[u]:
            raise KeyError(f"edge ({u}, {v}) not present")
        del self._adj[u][v]
        del self._adj[v][u]
        lo, hi = (u, v) if u < v else (v, u)
        if (lo, hi) in self._extra:
            del self._extra[(lo, hi)]
        else:
            self._base_live[self._base_index[(lo, hi)]] = False
        self.updates += 1
        if self.mate[u] == v:
            self._unmatch(u)
            self._greedy_match(u)
            self._greedy_match(v)

    def rebuild(self) -> None:
        """Re-run LD matching from scratch (the periodic drift reset).

        Also re-bases the snapshot plan: the rebuilt CSR becomes the new
        ``_base``, so a long mutation history collapses back to a clean
        mask + empty overlay.
        """
        snapshot = self.to_graph()
        result = ld_seq(snapshot, collect_stats=False)
        self.mate = result.mate.copy()
        self._rebase(snapshot)
        self.updates = 0

    # -------------------------------------------------------------- #
    def drift(self) -> float:
        """Current weight / rebuilt weight (≤ 1; 1 = no drift)."""
        snapshot = self.to_graph()
        fresh = ld_seq(snapshot, collect_stats=False)
        if fresh.weight == 0:
            return 1.0
        return matching_weight(snapshot, self.mate) / fresh.weight
