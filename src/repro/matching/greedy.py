"""Global-sort greedy ½-approximate matching.

The classical baseline (Avis '83): sort edges by decreasing weight, add an
edge whenever both endpoints are free.  With the same ``(w, eid)`` total
order the LD algorithms use for tie-breaking, greedy produces *exactly* the
same matching as LD-SEQ/LD-GPU — a theorem (locally dominant matchings
under a total order are unique) the test suite leans on as a cross-check.

The global sort is what makes greedy unattractive on parallel hardware
(§II-B), but it is the simplest correct oracle for the concurrent variants.
"""

from __future__ import annotations

import numpy as np

from repro.engine.spec import AlgorithmSpec, register
from repro.graph.csr import CSRGraph
from repro.matching.types import UNMATCHED, MatchResult

__all__ = ["greedy_matching"]


def greedy_matching(graph: CSRGraph) -> MatchResult:
    """Sort-based greedy matching under the ``(w, eid)`` total order."""
    n = graph.num_vertices
    mate = np.full(n, UNMATCHED, dtype=np.int64)
    u, v, w = graph.edge_array()
    # Decreasing (w, eid); eid == canonical id == u * n + v since u < v.
    eid = u * np.int64(max(n, 1)) + v
    order = np.lexsort((-eid, -w))
    weight = 0.0
    for k in order:
        a, b = int(u[k]), int(v[k])
        if mate[a] == UNMATCHED and mate[b] == UNMATCHED:
            mate[a] = b
            mate[b] = a
            weight += float(w[k])
    return MatchResult(
        mate=mate,
        weight=weight,
        algorithm="greedy",
        iterations=0,
    )


register(AlgorithmSpec(
    name="greedy",
    fn=greedy_matching,
    summary="global-sort greedy",
    approx_ratio="1/2",
))
