"""Red-blue auction matching (Fagginger Auer & Bisseling, 2012).

The earliest GPU greedy matching the paper's related work cites: vertices
are randomly coloured blue/red; blue vertices bid for their heaviest
eligible neighbour, red vertices accept their best bid; matched vertices
retire and the rest are re-coloured.  Its quality "is shown to be subpar to
subsequent work" (§II-C) because a blue vertex can be matched through a
non-dominant edge when its dominant partner is also blue — the test suite
quantifies that gap against LD/greedy.
"""

from __future__ import annotations

import numpy as np

from repro.engine.spec import AlgorithmSpec, register
from repro.graph.csr import CSRGraph
from repro.graph.segments import gather_rows, segment_argmax_lex
from repro.matching.types import UNMATCHED, MatchResult
from repro.matching.validate import matching_weight

__all__ = ["auction_matching"]

_NEG_INF = -np.inf


def auction_matching(
    graph: CSRGraph,
    seed: int = 0,
    max_iterations: int | None = None,
) -> MatchResult:
    """Run the red-blue auction to a maximal matching."""
    n = graph.num_vertices
    rng = np.random.default_rng(seed)
    indptr, indices, weights = graph.indptr, graph.indices, graph.weights
    eids = graph.canonical_edge_ids()
    mate = np.full(n, UNMATCHED, dtype=np.int64)

    live = np.arange(n, dtype=np.int64)
    iterations = 0
    while len(live) and (max_iterations is None or
                         iterations < max_iterations):
        iterations += 1
        blue = rng.random(len(live)) < 0.5
        blues = live[blue]
        if len(blues) == 0 or len(blues) == len(live):
            continue  # degenerate colouring, retry
        is_blue = np.zeros(n, dtype=bool)
        is_blue[blues] = True

        # Blue vertices bid for their heaviest available *red* neighbour.
        sub_indptr, pos = gather_rows(indptr, blues)
        nbrs = indices[pos]
        ok = (mate[nbrs] == UNMATCHED) & ~is_blue[nbrs]
        primary = np.where(ok, weights[pos], _NEG_INF)
        win = segment_argmax_lex(primary, eids[pos], sub_indptr)
        has = win >= 0
        bidders = blues[has]
        targets = nbrs[win[has]]
        bw = weights[pos][win[has]]
        be = eids[pos][win[has]]

        if len(bidders):
            # Red vertices accept their best bid.
            order = np.lexsort((be, bw, targets))
            t_s = targets[order]
            last = np.ones(len(t_s), dtype=bool)
            last[:-1] = t_s[1:] != t_s[:-1]
            acc = order[last]
            red = targets[acc]
            blu = bidders[acc]
            mate[red] = blu
            mate[blu] = red

        # Retire matched vertices and vertices with no live neighbour.
        live = live[mate[live] == UNMATCHED]
        if len(live):
            sub_indptr, pos = gather_rows(indptr, live)
            any_free = np.zeros(len(live), dtype=np.int64)
            free_nbr = (mate[indices[pos]] == UNMATCHED).astype(np.int64)
            # per-row OR via sum > 0
            starts = sub_indptr[:-1][np.diff(sub_indptr) > 0]
            rows = np.nonzero(np.diff(sub_indptr) > 0)[0]
            if len(rows):
                any_free[rows] = np.add.reduceat(free_nbr, starts)
            live = live[any_free > 0]

    return MatchResult(
        mate=mate,
        weight=matching_weight(graph, mate),
        algorithm="auction",
        iterations=iterations,
        stats={"seed": seed},
    )


register(AlgorithmSpec(
    name="auction",
    fn=auction_matching,
    summary="Fagginger Auer & Bisseling red-blue auction",
    accepts_seed=True,
    approx_ratio="1/2",
))
