"""LD-MultiNode — the distributed extension of LD-GPU.

The paper's conclusion flags "sustainable strong scalability on the next
generation of HPC platforms" for distributed matching as open work.  This
module takes the obvious first step: run the *same* LD-GPU algorithm over
several dense-GPU nodes, replacing the single NCCL ring with NCCL's
multi-node tree-of-rings (hierarchical intra-node NVLink reduce +
inter-node InfiniBand ring + intra-node broadcast).

Everything else — edge-balanced contiguous partitioning across the
cluster's GPUs, batching per device, the two phase kernels, the
termination rule — is inherited unchanged from :func:`ld_gpu`, so the
matching remains bit-identical to LD-SEQ at any cluster shape (the
Lemma III.1 argument only needs a correct global MAX reduction, which the
hierarchical collective provides).
"""

from __future__ import annotations

from repro.comm.collectives import hierarchical_allreduce_max
from repro.gpusim.cluster import (
    DGX_A100_SUPERPOD,
    ClusterSpec,
    emit_cluster_shape,
)
from repro.graph.csr import CSRGraph
from repro.matching.ld_gpu import ld_gpu
from repro.matching.types import MatchResult
from repro.telemetry.spans import observe

__all__ = ["ld_multinode"]


def ld_multinode(
    graph: CSRGraph,
    cluster: ClusterSpec = DGX_A100_SUPERPOD,
    num_nodes: int | None = None,
    devices_per_node: int | None = None,
    **ld_kwargs,
) -> MatchResult:
    """Run LD-GPU across ``num_nodes × devices_per_node`` GPUs.

    Parameters
    ----------
    cluster:
        Hardware description (node platform + inter-node fabric).
    num_nodes / devices_per_node:
        Cluster slice to use; default the whole cluster with every GPU
        per node.
    ld_kwargs:
        Forwarded to :func:`ld_gpu` (``num_batches``, ``partition``,
        ``collect_stats``, ...).

    Returns a :class:`MatchResult` whose ``stats`` additionally records
    the cluster shape.
    """
    nodes = num_nodes if num_nodes is not None else cluster.num_nodes
    dpn = devices_per_node if devices_per_node is not None \
        else cluster.node.max_devices
    if not 1 <= nodes <= cluster.num_nodes:
        raise ValueError(
            f"num_nodes must be in [1, {cluster.num_nodes}]"
        )
    platform = cluster.flat_platform(dpn)
    emit_cluster_shape(cluster, nodes, dpn)

    def allreduce(buffers):
        t = hierarchical_allreduce_max(
            buffers, dpn, cluster.node.gpu_link, cluster.inter_node
        )
        # Separate from the component spans ld_gpu emits (those already
        # charge allreduce_* time) — this is the collective-level
        # distribution of the tree-of-rings itself.
        observe("repro_allreduce_seconds", t,
                "Per-call hierarchical allreduce durations.",
                scope="hierarchical", cluster=cluster.name)
        return t

    result = ld_gpu(
        graph,
        platform,
        num_devices=nodes * dpn,
        allreduce=allreduce if nodes > 1 else None,
        **ld_kwargs,
    )
    result.algorithm = "ld_multinode"
    result.stats["cluster"] = cluster.name
    result.stats["num_nodes"] = nodes
    result.stats["devices_per_node"] = dpn
    return result
