"""LocalMax — Birn et al.'s edge-centric locally dominant matching.

The dual view of the pointer algorithm (§II-B): per round, an *edge* is
kept iff it dominates (under the ``(w, eid)`` total order) every live edge
sharing an endpoint with it.  All dominant edges are committed at once and
their neighbourhoods removed.  With the shared total order it produces the
same unique locally dominant matching as LD-SEQ / greedy, which the tests
assert; it typically converges in fewer, heavier rounds than the
vertex-centric formulation (each round scans every live edge).
"""

from __future__ import annotations

import numpy as np

from repro.engine.spec import AlgorithmSpec, register
from repro.graph.csr import CSRGraph
from repro.graph.segments import row_ids, segment_max
from repro.matching.types import UNMATCHED, MatchResult
from repro.matching.validate import matching_weight

__all__ = ["local_max"]

_NEG_INF = -np.inf


def local_max(graph: CSRGraph,
              max_iterations: int | None = None) -> MatchResult:
    """Run edge-centric LocalMax to a maximal matching."""
    n = graph.num_vertices
    mate = np.full(n, UNMATCHED, dtype=np.int64)
    rid = row_ids(graph.indptr)
    # eids fit float64 exactly while n^2 < 2^53 — enforced upstream by the
    # harness graph scales; the two-field lexicographic max below uses a
    # weight pass followed by an eid pass among weight-maximal slots.
    eids = graph.canonical_edge_ids().astype(np.float64)
    iterations = 0
    rounds_edges: list[int] = []

    while max_iterations is None or iterations < max_iterations:
        live_slot = (mate[rid] == UNMATCHED) & \
            (mate[graph.indices] == UNMATCHED)
        if not np.any(live_slot):
            break
        w = np.where(live_slot, graph.weights, _NEG_INF)
        vmax_w = segment_max(w, graph.indptr)
        at_max = w == vmax_w[rid]
        e = np.where(at_max, eids, -1.0)
        vmax_e = segment_max(e, graph.indptr)

        # A slot (u -> v) is vertex-dominant at u if it attains u's best
        # (w, eid); the edge is committed when dominant at both endpoints.
        dom_here = at_max & (eids == vmax_e[rid])
        dom_other = (graph.weights == vmax_w[graph.indices]) & \
            (eids == vmax_e[graph.indices])
        winner = dom_here & dom_other & (rid < graph.indices) & live_slot

        us, vs = rid[winner], graph.indices[winner]
        rounds_edges.append(len(us))
        iterations += 1
        if len(us) == 0:
            break
        mate[us] = vs
        mate[vs] = us

    return MatchResult(
        mate=mate,
        weight=matching_weight(graph, mate),
        algorithm="local_max",
        iterations=iterations,
        stats={"matches_per_round": np.asarray(rounds_edges,
                                               dtype=np.int64)},
    )


register(AlgorithmSpec(
    name="local_max",
    fn=local_max,
    summary="Birn et al. edge-centric LocalMax",
    approx_ratio="1/2",
))
