"""Matching validity, maximality and local-dominance checks.

These encode the paper's definitions (§II-A / Definition II.1) and back the
test suite's invariants, including Lemma II.2 (the LD algorithms emit
maximal locally dominant matchings) and Corollary II.1 (½-approximation).
"""

from __future__ import annotations

import numpy as np

from repro.graph.csr import CSRGraph
from repro.graph.segments import row_ids
from repro.matching.types import UNMATCHED, MatchResult

__all__ = [
    "is_valid_matching",
    "is_maximal_matching",
    "matching_weight",
    "matched_edge_count",
    "matched_pairs_exist_in_graph",
    "verify_result",
]


def is_valid_matching(graph: CSRGraph, mate: np.ndarray) -> bool:
    """``mate`` is an involution whose pairs are edges of ``graph``."""
    if len(mate) != graph.num_vertices:
        return False
    matched = np.nonzero(mate != UNMATCHED)[0]
    if len(matched) == 0:
        return True
    partners = mate[matched]
    if partners.min() < 0 or partners.max() >= graph.num_vertices:
        return False
    if not np.array_equal(mate[partners], matched):  # involution
        return False
    if np.any(partners == matched):  # no self-matching
        return False
    return matched_pairs_exist_in_graph(graph, mate)


def matched_pairs_exist_in_graph(graph: CSRGraph, mate: np.ndarray) -> bool:
    """Every matched pair must be an actual edge."""
    rid = row_ids(graph.indptr)
    # Directed slot (u -> v) realises the pair iff mate[u] == v.
    realised = np.zeros(graph.num_vertices, dtype=bool)
    hit = mate[rid] == graph.indices
    realised[rid[hit]] = True
    want = mate != UNMATCHED
    return bool(np.all(realised[want]))


def is_maximal_matching(graph: CSRGraph, mate: np.ndarray) -> bool:
    """No edge can be added: every edge has a matched endpoint."""
    rid = row_ids(graph.indptr)
    both_free = (mate[rid] == UNMATCHED) & (mate[graph.indices] == UNMATCHED)
    return not bool(np.any(both_free))


def matching_weight(graph: CSRGraph, mate: np.ndarray) -> float:
    """Sum of matched edge weights (each edge once)."""
    rid = row_ids(graph.indptr)
    hit = (mate[rid] == graph.indices) & (rid < graph.indices)
    return float(graph.weights[hit].sum())


def matched_edge_count(mate: np.ndarray) -> int:
    """Number of matched edges."""
    return int(np.count_nonzero(mate != UNMATCHED)) // 2


def verify_result(graph: CSRGraph, result: MatchResult,
                  require_maximal: bool = True) -> None:
    """Assert-style verification used throughout tests and the harness.

    Raises ``AssertionError`` with a diagnostic message on any violation:
    matching validity, maximality (optional), and weight consistency.
    """
    assert is_valid_matching(graph, result.mate), (
        f"{result.algorithm}: mate array is not a valid matching"
    )
    if require_maximal:
        assert is_maximal_matching(graph, result.mate), (
            f"{result.algorithm}: matching is not maximal"
        )
    w = matching_weight(graph, result.mate)
    assert np.isclose(w, result.weight, rtol=1e-9, atol=1e-9), (
        f"{result.algorithm}: reported weight {result.weight} != "
        f"recomputed {w}"
    )
