"""Path-growing matching (Drake & Hougardy, 2003) — paper ref. [14].

A classic linear-time ½-approximation the paper's related work builds on:
grow a path from an arbitrary vertex by repeatedly following the heaviest
remaining incident edge, alternately assigning edges to two candidate
matchings M₁/M₂, deleting each visited vertex; return the heavier
matching.  Strictly sequential (the path is a dependency chain), which is
exactly why the locally dominant family displaced it on parallel
hardware — but it remains a strong and simple quality baseline.
"""

from __future__ import annotations

import numpy as np

from repro.engine.spec import AlgorithmSpec, register
from repro.graph.csr import CSRGraph
from repro.matching.types import UNMATCHED, MatchResult
from repro.matching.validate import matching_weight

__all__ = ["path_growing_matching"]


def path_growing_matching(graph: CSRGraph) -> MatchResult:
    """Run path growing; returns the heavier of the two path matchings.

    The returned matching is maximal-ised afterwards with a greedy sweep
    over the leftover edges (the textbook algorithm alone need not be
    maximal; the sweep keeps the ½ guarantee and never reduces weight).
    """
    n = graph.num_vertices
    indptr, indices, weights = graph.indptr, graph.indices, graph.weights
    alive = np.ones(n, dtype=bool)
    m1 = np.full(n, UNMATCHED, dtype=np.int64)
    m2 = np.full(n, UNMATCHED, dtype=np.int64)
    w1 = w2 = 0.0

    for start in range(n):
        if not alive[start]:
            continue
        x = start
        side = 0
        while True:
            lo, hi = indptr[x], indptr[x + 1]
            nbrs = indices[lo:hi]
            mask = alive[nbrs]
            mask_idx = np.nonzero(mask)[0]
            if len(mask_idx) == 0:
                alive[x] = False
                break
            ws = weights[lo:hi][mask_idx]
            k = mask_idx[int(np.argmax(ws))]
            y = int(nbrs[k])
            wxy = float(weights[lo + k])
            if side == 0:
                # add to M1 if both endpoints free there
                if m1[x] == UNMATCHED and m1[y] == UNMATCHED:
                    m1[x], m1[y] = y, x
                    w1 += wxy
            else:
                if m2[x] == UNMATCHED and m2[y] == UNMATCHED:
                    m2[x], m2[y] = y, x
                    w2 += wxy
            alive[x] = False
            x = y
            side ^= 1

    mate = m1 if w1 >= w2 else m2

    # Maximal-ise: greedy sweep over edges with both endpoints free.
    u, v, w = graph.edge_array()
    free = (mate[u] == UNMATCHED) & (mate[v] == UNMATCHED)
    order = np.argsort(-w[free], kind="stable")
    fu, fv = u[free][order], v[free][order]
    for a, b in zip(fu.tolist(), fv.tolist()):
        if mate[a] == UNMATCHED and mate[b] == UNMATCHED:
            mate[a], mate[b] = b, a

    return MatchResult(
        mate=mate,
        weight=matching_weight(graph, mate),
        algorithm="path_growing",
        iterations=0,
        stats={"path_matching_weights": (w1, w2)},
    )


register(AlgorithmSpec(
    name="path_growing",
    fn=path_growing_matching,
    summary="Drake-Hougardy path growing",
    approx_ratio="1/2",
))
