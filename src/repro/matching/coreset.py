"""Shard-parallel matching via randomized composable coresets.

Implements the 2-round scheme of Assadi–Bateni–Mirrokni (PAPERS.md,
arXiv:1906.01993) for graphs that exceed a single worker's memory:

1. **Partition** — every undirected edge is assigned to one of ``k``
   shards by a seeded keyed hash of its canonical edge id
   (:func:`shard_assignments`).  The assignment is a pure function of
   ``(seed, edge id, k)`` — deterministic across processes, platforms
   and Python versions — so shards can be extracted independently on
   ``k`` machines without any coordination.
2. **Coreset round** — each shard computes a matching of *its edges
   only* with a registered base algorithm (greedy or LD); that matching
   (≤ ``n/2`` edges) is the shard's *composable coreset*.  Shards run
   as ordinary grid cells (algorithm ``coreset_shard``) through
   :func:`~repro.engine.cells.run_cells`, so they inherit the whole
   execution substrate: ``parallel=N`` process fan-out with shared-
   memory graph staging, and — with ``store=`` — the PR-8 worker fleet
   draining shard cells from a shared run store.
3. **Merge round** — the coordinator unions the ``k`` coresets
   (disjoint edge sets, global vertex ids) into a graph of at most
   ``k·n/2`` edges and runs the base algorithm once more on the union.

Quality: with greedy/LD (½-approximate) shard matchings the merged
matching is a constant-factor approximation of the maximum weight
matching (ABM'19 prove 3/8 for the greedy instantiation); the ``coreset``
bench suite and test suite measure the ratio against blossom on
tractable instances.  Memory: no participant ever holds more than its
shard (reported as ``peak_shard_edges``) or the coreset union
(``merge_edges``) — the MPC memory-per-machine discipline of the
Ghaffari–Uitto notes (SNIPPETS.md, snippet 3), made measurable.
"""

from __future__ import annotations

import hashlib
from typing import Any

import numpy as np

from repro.engine.spec import AlgorithmSpec, register
from repro.graph.csr import CSRGraph
from repro.graph.transform import edge_subgraph
from repro.matching.types import MatchResult
from repro.telemetry.spans import count

__all__ = [
    "shard_assignments",
    "extract_shard",
    "coreset_shard",
    "coreset_matching",
    "coreset_greedy",
    "coreset_ld",
    "CORESET_BASES",
]

#: Base (per-shard and merge-round) algorithms a coreset run may use.
CORESET_BASES = ("greedy", "ld")

_SHARDS_COUNTER = "repro_coreset_shards_total"
_MERGE_COUNTER = "repro_coreset_merge_edges_total"

# splitmix64 finalizer constants (Steele et al.) — fixed-width uint64
# arithmetic, identical on every platform numpy supports.
_MIX_M1 = np.uint64(0xBF58476D1CE4E5B9)
_MIX_M2 = np.uint64(0x94D049BB133111EB)


def _shard_key(seed: int) -> tuple[np.uint64, np.uint64]:
    """Two 64-bit lanes of ``sha256("repro-coreset:<seed>")``.

    The *key* comes from sha256 — collision-resistant, stable across
    platforms — while the per-edge application below is a vectorised
    64-bit mixer, so assigning 10⁹ edges costs one numpy pass instead
    of 10⁹ hashlib calls.
    """
    digest = hashlib.sha256(f"repro-coreset:{seed}".encode()).digest()
    return (np.uint64(int.from_bytes(digest[:8], "big")),
            np.uint64(int.from_bytes(digest[8:16], "big")))


def _mix64(x: np.ndarray) -> np.ndarray:
    """splitmix64 finalizer over a uint64 array (wrapping arithmetic)."""
    x = x.copy()
    x ^= x >> np.uint64(30)
    x *= _MIX_M1
    x ^= x >> np.uint64(27)
    x *= _MIX_M2
    x ^= x >> np.uint64(31)
    return x


def shard_assignments(graph: CSRGraph, num_shards: int,
                      seed: int = 0) -> np.ndarray:
    """Shard id (``int64`` in ``[0, num_shards)``) per undirected edge.

    Aligned with :meth:`~repro.graph.csr.CSRGraph.edge_array` order.
    The assignment hashes the canonical edge id ``u·n + v`` under a
    sha256-derived key (:func:`_shard_key`), so it is a deterministic
    function of ``(seed, edge, num_shards)`` alone: the same edge lands
    on the same shard no matter which process — coordinator, pool
    worker or fleet worker — computes the partition.
    """
    if num_shards < 1:
        raise ValueError("num_shards must be >= 1")
    u, v, _ = graph.edge_array()
    eid = (u * np.int64(max(graph.num_vertices, 1)) + v).astype(np.uint64)
    k1, k2 = _shard_key(seed)
    with np.errstate(over="ignore"):
        h = _mix64(_mix64(eid ^ k1) ^ k2)
    return (h % np.uint64(num_shards)).astype(np.int64)


def extract_shard(
    graph: CSRGraph, shard_index: int, num_shards: int, seed: int = 0
) -> tuple[CSRGraph, np.ndarray]:
    """One shard's subgraph (global vertex ids) + original-eid mapping.

    ``(sub, eids)`` as returned by
    :func:`~repro.graph.transform.edge_subgraph`; the union of the
    ``num_shards`` extractions is exactly the parent's edge set, each
    edge appearing in exactly one shard.
    """
    if not 0 <= shard_index < num_shards:
        raise ValueError(
            f"shard_index {shard_index} out of range for "
            f"{num_shards} shards")
    mask = shard_assignments(graph, num_shards, seed) == shard_index
    return edge_subgraph(
        graph, mask,
        name=f"{graph.name}-shard{shard_index}of{num_shards}")


def _base_fn(base: str):
    if base in ("greedy", "coreset_greedy"):
        from repro.matching.greedy import greedy_matching

        return lambda g, engine=None: greedy_matching(g)
    if base in ("ld", "ld_seq", "coreset_ld"):
        from repro.matching.ld_seq import ld_seq

        return lambda g, engine=None: ld_seq(
            g, collect_stats=False, engine=engine)
    raise ValueError(
        f"unknown coreset base {base!r}; have {CORESET_BASES}")


def coreset_shard(
    graph: CSRGraph,
    shard_index: int = 0,
    num_shards: int = 1,
    partition_seed: int = 0,
    base: str = "greedy",
    engine: str | None = None,
) -> MatchResult:
    """Round 1 on one shard: extract, match, emit the coreset.

    Registered as algorithm ``coreset_shard`` so a shard is an ordinary
    grid cell — runnable serially, in a process pool, or claimed from a
    run store by a fleet worker.  The coreset (matched edges as
    parallel ``u``/``v``/``w`` arrays) and the shard's memory footprint
    travel in ``stats`` keys declared via ``record_stats``, which is
    what keeps a *store-served* shard record (no in-memory result)
    exactly as useful to the coordinator as a fresh one.
    """
    sub, _ = extract_shard(graph, shard_index, num_shards,
                           partition_seed)
    result = _base_fn(base)(sub, engine=engine)
    pairs = result.matched_pairs()
    cu, cv = pairs[:, 0], pairs[:, 1]
    # Vectorised weight lookup: the shard's edge_array is (u, v)-lex
    # sorted, so canonical eids are ascending and searchsorted finds
    # each matched pair's weight in O(log m).
    su, sv, sw = sub.edge_array()
    scale = np.int64(max(sub.num_vertices, 1))
    pos = np.searchsorted(su * scale + sv, cu * scale + cv)
    cw = sw[pos] if len(cu) else np.empty(0, dtype=np.float64)
    return MatchResult(
        mate=result.mate,
        weight=result.weight,
        algorithm="coreset_shard",
        iterations=result.iterations,
        stats={
            "config": {
                "shard_index": int(shard_index),
                "num_shards": int(num_shards),
                "partition_seed": int(partition_seed),
                "base": base,
            },
            "coreset_u": cu.tolist(),
            "coreset_v": cv.tolist(),
            "coreset_w": cw.tolist(),
            "shard_edges": int(sub.num_edges),
            "coreset_edges": int(len(cu)),
        },
    )


def _coreset_from_record(record: Any) -> dict[str, Any]:
    """The deterministic shard payload, identically shaped whether the
    record is fresh (``extra`` filled by the executor) or served back
    from a run store (``extra`` round-tripped through JSON)."""
    extra = record.extra or {}
    missing = [k for k in ("coreset_u", "coreset_v", "coreset_w",
                           "shard_edges") if k not in extra]
    if missing:
        raise RuntimeError(
            f"shard record for {record.graph!r} lacks coreset payload "
            f"keys {missing} (schema drift?)")
    return extra


def coreset_matching(
    graph: CSRGraph,
    num_shards: int = 4,
    base: str = "greedy",
    seed: int | None = None,
    shard_parallel: int = 0,
    store: Any = None,
    dataset: str | None = None,
    quality: bool = False,
    engine: str | None = None,
) -> MatchResult:
    """Rounds 1+2: shard cells through ``run_cells``, merge, re-match.

    The result is a valid matching of ``graph`` that is maximal on the
    *coreset union* — not necessarily on the full graph (an edge kept
    by no shard's matching can join two free vertices).  ABM'19's
    guarantee is weight-relative, and that is what the bench suite
    gates.

    Parameters
    ----------
    num_shards:
        ``k`` — the simulated machine count.  Each shard holds
        ``~m/k`` edges (reported: ``peak_shard_edges``).
    base:
        Per-shard and merge-round matcher: ``"greedy"`` (global-sort
        greedy) or ``"ld"`` (:func:`~repro.matching.ld_seq.ld_seq`).
        Both resolve ties under the shared ``(w, eid)`` total order and
        select the same edge set (weights can differ in the last ulp
        from summation order); ``coreset_ld`` exists to exercise the LD
        pointing machinery per shard.
    seed:
        Partition seed (``None`` → 0).  Same seed + same ``num_shards``
        → the same shards, the same coresets, and a byte-identical
        record regardless of *how* the shards executed.
    shard_parallel:
        ``0`` runs shards serially in-process; ``N ≥ 1`` fans them out
        to ``N`` worker processes (the parent graph is staged once
        through the graph cache + shared-memory plane and each worker
        extracts its own shard from the zero-copy view).
    store:
        A run-store path/instance: shard cells are registered under
        their content fingerprints and an attached ``repro worker``
        fleet may claim them — the coordinator claims whatever the
        fleet doesn't and serves fleet-completed shards from the store.
        Execution mechanics (``shard_parallel``, ``store``) never enter
        the result, only *what* was computed does.
    dataset / quality:
        Registry name (+ quality flag) of ``graph`` when it has one.
        Optional for in-process runs; **required for fleet execution**,
        because a fleet worker rebuilds a shard cell from its stored
        config and needs a graph source that exists outside the
        coordinator process.
    engine:
        Pointing engine forwarded to LD shard/merge runs
        (``base="ld"`` only).
    """
    if num_shards < 1:
        raise ValueError("num_shards must be >= 1")
    _base_fn(base)  # validate early, before any cell runs
    from repro.engine.cells import Cell, run_cells

    pseed = int(seed) if seed is not None else 0
    overrides: dict[str, Any] = {
        "num_shards": int(num_shards),
        "partition_seed": pseed,
        "base": base,
    }
    if engine is not None:
        overrides["engine"] = engine
    cells = [
        Cell("coreset_shard", dataset=dataset, quality=quality,
             overrides={**overrides, "shard_index": i},
             label=f"coreset-shard-{i}/{num_shards}")
        for i in range(num_shards)
    ]
    records = run_cells(cells, graph=graph, parallel=shard_parallel,
                        store=store, on_error="raise")
    count(_SHARDS_COUNTER, num_shards,
          help="coreset shard cells executed")

    payloads = [_coreset_from_record(r) for r in records]
    mu = np.concatenate([np.asarray(p["coreset_u"], dtype=np.int64)
                         for p in payloads]) \
        if payloads else np.empty(0, dtype=np.int64)
    mv = np.concatenate([np.asarray(p["coreset_v"], dtype=np.int64)
                         for p in payloads]) \
        if payloads else np.empty(0, dtype=np.int64)
    mw = np.concatenate([np.asarray(p["coreset_w"], dtype=np.float64)
                         for p in payloads]) \
        if payloads else np.empty(0, dtype=np.float64)

    from repro.graph.builders import from_coo

    merged = from_coo(mu, mv, mw, num_vertices=graph.num_vertices,
                      name=f"{graph.name}-coreset-union")
    count(_MERGE_COUNTER, merged.num_edges,
          help="edges in merged coreset unions")
    final = _base_fn(base)(merged, engine=engine)

    shard_edges = [int(p["shard_edges"]) for p in payloads]
    name = "coreset_greedy" if base in ("greedy", "coreset_greedy") \
        else "coreset_ld"
    return MatchResult(
        mate=final.mate,
        weight=final.weight,
        algorithm=name,
        iterations=final.iterations,
        stats={
            # Execution mechanics (shard_parallel/store) deliberately
            # excluded: the echo describes the computation, and records
            # must not depend on how the shards were scheduled.
            "config": {
                "num_shards": int(num_shards),
                "base": base,
                "partition_seed": pseed,
            },
            "peak_shard_edges": max(shard_edges, default=0),
            "shard_edges": shard_edges,
            "coreset_edges": [int(p.get("coreset_edges",
                                        len(p["coreset_u"])))
                              for p in payloads],
            "merge_edges": int(merged.num_edges),
            "shard_weights": [float(r.weight) for r in records],
        },
    )


def coreset_greedy(
    graph: CSRGraph,
    num_shards: int = 4,
    seed: int | None = None,
    shard_parallel: int = 0,
    store: Any = None,
    dataset: str | None = None,
    quality: bool = False,
) -> MatchResult:
    """Composable-coreset matching with greedy shards (ABM'19 §3)."""
    return coreset_matching(
        graph, num_shards=num_shards, base="greedy", seed=seed,
        shard_parallel=shard_parallel, store=store, dataset=dataset,
        quality=quality)


def coreset_ld(
    graph: CSRGraph,
    num_shards: int = 4,
    seed: int | None = None,
    shard_parallel: int = 0,
    store: Any = None,
    dataset: str | None = None,
    quality: bool = False,
    engine: str | None = None,
) -> MatchResult:
    """Composable-coreset matching with locally dominant shards."""
    return coreset_matching(
        graph, num_shards=num_shards, base="ld", seed=seed,
        shard_parallel=shard_parallel, store=store, dataset=dataset,
        quality=quality, engine=engine)


#: Stats keys every coordinator record must surface (store-safe).
_COORD_RECORD_STATS = (
    "peak_shard_edges", "shard_edges", "coreset_edges",
    "merge_edges", "shard_weights",
)

register(AlgorithmSpec(
    name="coreset_shard",
    fn=coreset_shard,
    summary="one coreset round-1 shard (internal to coreset_*)",
    approx_ratio="1/2",
    record_stats=("coreset_u", "coreset_v", "coreset_w",
                  "shard_edges", "coreset_edges"),
    tags=("coreset", "internal"),
))

register(AlgorithmSpec(
    name="coreset_greedy",
    fn=coreset_greedy,
    summary="2-round composable-coreset matching, greedy shards "
            "(Assadi et al.)",
    accepts_seed=True,
    approx_ratio="3/8",
    record_stats=_COORD_RECORD_STATS,
    tags=("coreset", "distributed"),
))

register(AlgorithmSpec(
    name="coreset_ld",
    fn=coreset_ld,
    summary="2-round composable-coreset matching, locally dominant "
            "shards",
    accepts_seed=True,
    accepts_pointing_engine=True,
    approx_ratio="3/8",
    record_stats=_COORD_RECORD_STATS,
    tags=("coreset", "distributed"),
))
