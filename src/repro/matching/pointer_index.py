"""Sorted-adjacency pointer index — amortized O(m) pointing.

The pointing phase is the hot path of the whole reproduction: the
*segment* engine (:func:`~repro.matching.ld_seq.compute_pointers`)
re-gathers every frontier vertex's full adjacency and re-runs a masked
lexicographic arg-max over all of its edges each round, so the host-side
work is O(m × rounds) even though availability only ever shrinks — the
exact monotonicity the paper exploits in §III-B ("logical control of
task distribution") and that Suitor-style algorithms (Birn et al.,
*Efficient Parallel and External Matching*) turn into amortized-linear
total work.

:class:`PointerIndex` is the *index* engine: built once per run (per
device partition in LD-GPU, keyed by ``row_offset``), it sorts each CSR
row's adjacency descending by the shared lexicographic key ``(w, eid)``
and keeps a per-vertex cursor into the sorted layout.  Pointing then
just advances each frontier vertex's cursor past neighbours whose
``mate`` is set and takes the first live entry.  Because the key is a
strict total order within a row (canonical edge ids are distinct across
a vertex's neighbours), the first live entry *is* the
``segment_argmax_lex`` winner — the engines are bit-identical by
construction (the same total order as Lemma III.1's tie-break).
Cursors only ever move forward and each advance permanently retires one
adjacency entry, so the host arithmetic over an entire run is O(m) plus
the one O(m log m) build, instead of O(m × rounds).

Cursor advances are vectorised as repeated whole-frontier NumPy steps
over a shrinking working set — there is no per-vertex Python loop.

:class:`MutualIndex` applies the same delta discipline to the
*matching* (SetMates) phase: the full-scan oracle
(:func:`~repro.matching.ld_seq.find_mutual_pairs` with no candidate
restriction) re-probes every vertex's pointer each round, but a pair
can only *become* mutual in the round one of its endpoints re-points —
so re-examining exactly the vertices whose pointer value changed since
the previous round finds the identical pair set (the frontier-delta
repair idea of GPU batch-dynamic matching, arXiv:2401.17018).  Pointer
values within a row only ever walk down the sorted order, so the total
number of changes — and hence the matching phase's host work over a
run — is amortised O(m), matching the pointing phase.

The *modeled* quantities are unchanged by construction:
:meth:`PointerIndex.point` returns the sum of frontier degrees (what
the paper's warp kernels would scan, Fig. 8's ``edges_scanned``) and
the matching kernel keeps charging its full-vertex sweep, while the
actual host entries examined by both phases accumulate separately in
:attr:`PointerIndex.host_entries_scanned` /
:attr:`MutualIndex.host_entries_scanned` and are exported by the
algorithms as the ``repro_host_entries_scanned_total`` counter so
modeled vs. host work can be compared (``repro-matching stats``).
"""

from __future__ import annotations

import os

import numpy as np

from repro.matching.types import UNMATCHED

__all__ = [
    "POINTING_ENGINES",
    "POINTING_ENGINE_ENV",
    "DEFAULT_POINTING_ENGINE",
    "HOST_SCAN_COUNTER",
    "HOST_SCAN_HELP",
    "resolve_pointing_engine",
    "PointerIndex",
    "MutualIndex",
]

#: Recognised pointing engines: the sorted-adjacency cursor index and the
#: legacy full-rescan segment arg-max (kept as the reference oracle).
POINTING_ENGINES: tuple[str, ...] = ("index", "segment")

#: Environment knob consulted when an algorithm is called with
#: ``engine=None``.
POINTING_ENGINE_ENV = "REPRO_POINTING_ENGINE"

DEFAULT_POINTING_ENGINE = "index"

#: Telemetry counter for actual host-side adjacency entries examined —
#: the quantity the index engine shrinks while ``edges_scanned`` (the
#: modeled warp-edge work) stays put.
HOST_SCAN_COUNTER = "repro_host_entries_scanned_total"
HOST_SCAN_HELP = (
    "Entries actually examined by the host-side pointing and matching "
    "engines (modeled edges_scanned is the sum of frontier degrees; "
    "the modeled matching kernel sweeps every owned vertex)."
)


def resolve_pointing_engine(engine: str | None = None) -> str:
    """The effective pointing engine for an algorithm call.

    ``None`` falls back to the ``REPRO_POINTING_ENGINE`` environment
    variable, then to ``"index"``.  Unknown names raise ``ValueError``.
    """
    if engine is None:
        engine = os.environ.get(POINTING_ENGINE_ENV) \
            or DEFAULT_POINTING_ENGINE
    if engine not in POINTING_ENGINES:
        raise ValueError(
            f"unknown pointing engine {engine!r}; "
            f"expected one of {POINTING_ENGINES}"
        )
    return engine


class PointerIndex:
    """Build-once sorted adjacency + per-vertex cursors for one CSR
    row range.

    Parameters
    ----------
    indptr:
        Local row offsets (length ``n_local + 1``); may describe a
        device partition's row range starting at global vertex id
        ``row_offset`` (cf. :func:`~repro.matching.ld_seq.
        compute_pointers`).
    indices / weights / eids:
        Adjacency arrays indexed by ``indptr``'s local positions
        (suffix views of the global arrays work — only the first
        ``indptr[-1]`` entries are read).  Neighbour ids are global.
    row_offset:
        Global id of local row 0.

    Notes
    -----
    The index snapshots nothing about ``mate``: entries are skipped
    lazily during :meth:`point`, and because matched vertices never
    become unmatched within a run, a skipped entry never needs to be
    revisited.  One index must therefore only be used with a single,
    monotonically-filling ``mate`` array (one run).
    """

    def __init__(
        self,
        indptr: np.ndarray,
        indices: np.ndarray,
        weights: np.ndarray,
        eids: np.ndarray,
        row_offset: int = 0,
    ) -> None:
        self.indptr = np.ascontiguousarray(indptr, dtype=np.int64)
        self.row_offset = int(row_offset)
        n_local = len(self.indptr) - 1
        m = int(self.indptr[-1]) if n_local >= 0 else 0
        rows = np.repeat(np.arange(n_local, dtype=np.int64),
                         np.diff(self.indptr))
        # Stable sort by (row asc, weight desc, eid desc): rows stay
        # contiguous, so ``indptr`` still delimits them in the sorted
        # layout.  Canonical eids are non-negative, so negation is safe.
        order = np.lexsort((-eids[:m], -weights[:m], rows))
        #: Neighbour id per sorted adjacency slot.
        self.sorted_indices = indices[:m][order]
        #: Per-local-vertex cursor into the sorted layout.
        self.cursor = self.indptr[:-1].copy()
        #: Actual adjacency entries examined across all ``point`` calls.
        self.host_entries_scanned = 0
        #: Entries examined by the most recent ``point`` call.
        self.last_host_scanned = 0

    @property
    def num_rows(self) -> int:
        return len(self.indptr) - 1

    def point(
        self,
        mate: np.ndarray,
        pointer: np.ndarray,
        frontier: np.ndarray,
    ) -> int:
        """Pointing phase for ``frontier`` — drop-in for
        :func:`~repro.matching.ld_seq.compute_pointers`.

        Advances each frontier vertex's cursor past neighbours whose
        ``mate`` is set and points it at the first live entry (or
        ``UNMATCHED`` when its row is exhausted).  Updates ``pointer``
        in place and returns the *modeled* scan count — the sum of
        frontier degrees, exactly what the segment engine reports — so
        ``edges_scanned`` stats stay bit-identical across engines.
        """
        if len(frontier) == 0:
            self.last_host_scanned = 0
            return 0
        local = frontier - self.row_offset
        cur = self.cursor[local]
        end = self.indptr[local + 1]
        nbrs = self.sorted_indices

        # Whole-frontier vectorised cursor advance: ``work`` holds the
        # positions (into ``frontier``) whose current entry is dead;
        # each pass advances all of them one slot and re-checks.  The
        # working set only shrinks, and every pass retires at least one
        # adjacency entry per member permanently.
        work = np.nonzero(cur < end)[0]
        host = len(work)
        work = work[mate[nbrs[cur[work]]] != UNMATCHED]
        while len(work):
            cur[work] += 1
            work = work[cur[work] < end[work]]
            host += len(work)
            work = work[mate[nbrs[cur[work]]] != UNMATCHED]
        self.cursor[local] = cur

        has = cur < end
        pointer[frontier] = UNMATCHED
        live = frontier[has]
        pointer[live] = nbrs[cur[has]]

        self.last_host_scanned = int(host)
        self.host_entries_scanned += self.last_host_scanned
        return int((end - self.indptr[local]).sum())


class MutualIndex:
    """Frontier-delta mutual-pointer check — amortised O(m) matching.

    Tracks the last-seen pointer value of every vertex (``prev``) and
    narrows each round's mutual check to the vertices whose pointer
    actually *changed*.  That restriction is exact: a pair ``{u, v}``
    becomes mutual precisely in the round of the later of its two
    pointer writes, and the endpoint written that round is — by
    definition — in the changed set, so the pair is discovered in the
    same round, and as the same ``(lo, hi)`` rows, as the full-scan
    oracle (:func:`~repro.matching.ld_seq.find_mutual_pairs` over all
    vertices).  Within a run a vertex's pointer only walks down its
    row's ``(w, eid)``-sorted order before going ``UNMATCHED``, so
    total changes — and hence total host probes — are bounded by
    ``m + 2n`` however many rounds the run takes.

    Like :class:`PointerIndex`, one instance serves exactly one run's
    monotonically-filling ``mate``/``pointer`` evolution; the caller
    passes every round's re-pointed set (a superset of the changed
    vertices) as ``candidates``.
    """

    def __init__(self, num_vertices: int) -> None:
        #: Last pointer value examined per vertex.
        self.prev = np.full(num_vertices, UNMATCHED, dtype=np.int64)
        #: Actual entries probed across all ``find_pairs`` calls.
        self.host_entries_scanned = 0
        #: Entries probed by the most recent ``find_pairs`` call.
        self.last_host_scanned = 0

    def find_pairs(
        self,
        pointer: np.ndarray,
        candidates: np.ndarray | None = None,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Mutually pointing pairs, drop-in for the full-scan oracle.

        ``candidates`` must contain every vertex whose pointer may have
        changed since the previous call (the round's pointing
        frontier); ``None`` diffs the whole array.  Returns ``(lo,
        hi)`` pair arrays identical to
        ``find_mutual_pairs(pointer, None)``.
        """
        from repro.matching.ld_seq import find_mutual_pairs

        if candidates is None:
            changed = np.nonzero(pointer != self.prev)[0]
        else:
            changed = candidates[
                pointer[candidates] != self.prev[candidates]
            ]
        self.prev[changed] = pointer[changed]
        self.last_host_scanned = int(len(changed))
        self.host_entries_scanned += self.last_host_scanned
        return find_mutual_pairs(pointer, changed)
