"""b-matching via b-Suitor — the Suitor lineage's capacity generalisation.

A *b-matching* lets vertex ``v`` take up to ``b(v)`` partners; it is the
workhorse behind matching-based load balancing, graph sparsification and
the multi-objective AMG coarsening the paper cites ([11]).  The b-Suitor
algorithm (Khan, Pothen, Halappanavar et al.) generalises Suitor's
proposal mechanism: every vertex keeps standing proposals to its heaviest
eligible neighbours; a proposal is eligible when it beats the *weakest*
accepted proposal at the target; displaced proposers re-propose.  Under a
total order it produces exactly the greedy ½-approximate b-matching —
the same relationship the 1-matching algorithms share, and the invariant
the tests assert.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.graph.csr import CSRGraph
from repro.graph.segments import row_ids

__all__ = ["BMatchResult", "b_suitor", "greedy_b_matching",
           "is_valid_b_matching"]


@dataclass
class BMatchResult:
    """Outcome of a b-matching run.

    Attributes
    ----------
    partners:
        list of ``int64`` arrays; ``partners[v]`` holds v's matched
        partners (sorted ascending).
    weight:
        total weight of the matched edge set (each edge once).
    b:
        the per-vertex capacity array the run used.
    """

    partners: list[np.ndarray]
    weight: float
    b: np.ndarray
    algorithm: str
    stats: dict[str, Any] = field(default_factory=dict)

    @property
    def num_matched_edges(self) -> int:
        return sum(len(p) for p in self.partners) // 2

    def edge_set(self) -> set[tuple[int, int]]:
        """Matched edges as canonical (lo, hi) pairs."""
        out = set()
        for v, ps in enumerate(self.partners):
            for u in ps.tolist():
                out.add((min(v, u), max(v, u)))
        return out


def _normalise_b(graph: CSRGraph, b) -> np.ndarray:
    n = graph.num_vertices
    if np.isscalar(b):
        if b < 1:
            raise ValueError("b must be >= 1")
        return np.full(n, int(b), dtype=np.int64)
    arr = np.asarray(b, dtype=np.int64)
    if len(arr) != n:
        raise ValueError("per-vertex b must have length |V|")
    if len(arr) and arr.min() < 0:
        raise ValueError("b values must be non-negative")
    return arr


def b_suitor(graph: CSRGraph, b: int | np.ndarray = 2) -> BMatchResult:
    """Sequential b-Suitor with the shared ``(w, eid)`` total order.

    ``b`` is a scalar capacity or a per-vertex array.  Runs in
    ``O(m log d_max)`` with per-vertex acceptance heaps and monotone
    adjacency pointers (each vertex proposes to each neighbour at most
    once).
    """
    n = graph.num_vertices
    bs = _normalise_b(graph, b)
    indptr, indices, weights = graph.indptr, graph.indices, graph.weights
    eids = graph.canonical_edge_ids()

    # Adjacency of each vertex sorted by decreasing (w, eid): the
    # eligibility threshold only rises, so a monotone pointer suffices.
    order = np.arange(len(indices), dtype=np.int64)
    for v in range(n):
        lo, hi = int(indptr[v]), int(indptr[v + 1])
        if hi > lo:
            sub = np.lexsort((-eids[lo:hi], -weights[lo:hi]))
            order[lo:hi] = lo + sub

    # heaps[v]: accepted proposals as (w, eid, proposer) min-heaps.
    heaps: list[list[tuple[float, int, int]]] = [[] for _ in range(n)]
    ptr = indptr[:-1].astype(np.int64).copy()
    needed = bs.copy()
    proposals = 0

    stack = [v for v in range(n) if needed[v] > 0]
    while stack:
        u = stack.pop()
        while needed[u] > 0 and ptr[u] < indptr[u + 1]:
            k = int(order[ptr[u]])
            v = int(indices[k])
            w, e = float(weights[k]), int(eids[k])
            ptr[u] += 1
            hv = heaps[v]
            cap = int(bs[v])
            if cap == 0:
                continue
            if len(hv) == cap and (w, e) <= (hv[0][0], hv[0][1]):
                continue  # cannot beat v's weakest standing proposal
            heapq.heappush(hv, (w, e, u))
            proposals += 1
            needed[u] -= 1
            if len(hv) > cap:
                _, _, x = heapq.heappop(hv)
                needed[x] += 1
                stack.append(x)

    # At termination the proposal relation is symmetric under a total
    # order; the b-matching is exactly the standing proposals.
    partners: list[list[int]] = [[] for _ in range(n)]
    weight = 0.0
    seen: set[tuple[int, int]] = set()
    asymmetric = 0
    suitor_sets = [
        {u for _, _, u in hv} for hv in heaps
    ]
    for v in range(n):
        for w_, e_, u in heaps[v]:
            key = (min(u, v), max(u, v))
            if key in seen:
                continue
            if v not in suitor_sets[u]:
                asymmetric += 1
                continue
            seen.add(key)
            partners[u].append(v)
            partners[v].append(u)
            weight += w_

    return BMatchResult(
        partners=[np.array(sorted(p), dtype=np.int64) for p in partners],
        weight=weight,
        b=bs,
        algorithm="b_suitor",
        stats={"proposals": proposals, "asymmetric": asymmetric},
    )


def greedy_b_matching(graph: CSRGraph,
                      b: int | np.ndarray = 2) -> BMatchResult:
    """Global-sort greedy b-matching (the ½-approximation oracle)."""
    n = graph.num_vertices
    bs = _normalise_b(graph, b)
    u, v, w = graph.edge_array()
    eid = u * np.int64(max(n, 1)) + v
    order = np.lexsort((-eid, -w))
    capacity = bs.copy()
    partners: list[list[int]] = [[] for _ in range(n)]
    weight = 0.0
    for k in order:
        a, c = int(u[k]), int(v[k])
        if capacity[a] > 0 and capacity[c] > 0:
            capacity[a] -= 1
            capacity[c] -= 1
            partners[a].append(c)
            partners[c].append(a)
            weight += float(w[k])
    return BMatchResult(
        partners=[np.array(sorted(p), dtype=np.int64) for p in partners],
        weight=weight,
        b=bs,
        algorithm="greedy_b",
    )


def is_valid_b_matching(graph: CSRGraph, result: BMatchResult) -> bool:
    """Check capacities, symmetry, simplicity and edge existence."""
    n = graph.num_vertices
    if len(result.partners) != n:
        return False
    for v, ps in enumerate(result.partners):
        if len(ps) > result.b[v]:
            return False
        if len(ps) != len(np.unique(ps)):
            return False  # duplicate partner
        for u in ps.tolist():
            if u == v or not graph.has_edge(v, u):
                return False
            if v not in result.partners[u]:
                return False  # asymmetric
    # weight consistency
    total = sum(graph.edge_weight(a, b_) for a, b_ in result.edge_set())
    return bool(np.isclose(total, result.weight, rtol=1e-9, atol=1e-9))
