"""Suitor matching — the paper's SR-OMP and SR-GPU baselines.

The Suitor algorithm (Manne & Halappanavar, IPDPS'14) improves on the
pointer algorithm by *proposing*: a vertex u bids for its heaviest
neighbour v whose current best standing proposal is lighter than w(u, v);
an accepted bid displaces the previous suitor, which re-bids.  Because a
bid is only ever displaced by a heavier one, the candidate edge set shrinks
monotonically — "the Suitor algorithm is able to reduce the number of
candidate edges for matching" (§IV-D) — and for a consistent total order it
produces exactly the greedy/locally-dominant matching.

Three variants:

* :func:`suitor_seq` — the sequential displacement algorithm (reference).
* :func:`suitor_omp_sim` — round-synchronous vectorised Suitor with a
  multicore CPU cost model: the paper's **SR-OMP** (256 threads).
* :func:`suitor_gpu_sim` — the same rounds on one simulated GPU with
  SR-GPU's two signatures: one-vertex-per-warp load redistribution (great
  on regular graphs, useless on skewed ones — the paper's Table IV
  discussion) and a 32-bit graph representation, which both halves its
  bandwidth cost and makes it refuse LARGE graphs (Table I's '-').
"""

from __future__ import annotations

from dataclasses import replace

import numpy as np

from repro.engine.spec import AlgorithmSpec, register
from repro.gpusim.kernels import pointing_kernel_cost
from repro.gpusim.memory import DeviceOOMError
from repro.gpusim.spec import A100, CPU_EPYC_7742_2S, CpuSpec, DeviceSpec
from repro.gpusim.timeline import Timeline
from repro.graph.csr import CSRGraph
from repro.graph.segments import gather_rows, segment_argmax_lex
from repro.matching.types import UNMATCHED, MatchResult
from repro.matching.validate import matching_weight

__all__ = ["suitor_seq", "suitor_omp_sim", "suitor_gpu_sim"]

_NEG_INF = -np.inf


def suitor_seq(graph: CSRGraph) -> MatchResult:
    """Sequential Suitor with the shared ``(w, eid)`` total order."""
    n = graph.num_vertices
    indptr, indices, weights = graph.indptr, graph.indices, graph.weights
    eids = graph.canonical_edge_ids()
    suitor = np.full(n, UNMATCHED, dtype=np.int64)
    ws_w = np.full(n, _NEG_INF)  # weight of the standing proposal
    ws_e = np.full(n, -1, dtype=np.int64)  # its tie-break key

    for start in range(n):
        u = start
        while u != UNMATCHED:
            best_v = UNMATCHED
            best_w = _NEG_INF
            best_e = -1
            for k in range(indptr[u], indptr[u + 1]):
                v = int(indices[k])
                w = weights[k]
                e = eids[k]
                # Eligible: beats v's standing proposal ...
                if (w, e) <= (ws_w[v], ws_e[v]):
                    continue
                # ... and is u's best such neighbour.
                if (w, e) > (best_w, best_e):
                    best_v, best_w, best_e = v, w, e
            if best_v == UNMATCHED:
                break
            displaced = int(suitor[best_v])
            suitor[best_v] = u
            ws_w[best_v] = best_w
            ws_e[best_v] = best_e
            u = displaced if displaced != UNMATCHED else UNMATCHED

    mate = _suitor_to_mate(suitor)
    return MatchResult(
        mate=mate,
        weight=matching_weight(graph, mate),
        algorithm="suitor_seq",
        iterations=0,
    )


def _suitor_to_mate(suitor: np.ndarray) -> np.ndarray:
    """Mutual suitors form the matching."""
    n = len(suitor)
    mate = np.full(n, UNMATCHED, dtype=np.int64)
    has = np.nonzero(suitor != UNMATCHED)[0]
    mutual = has[suitor[suitor[has]] == has]
    mate[mutual] = suitor[mutual]
    return mate


def _suitor_rounds(
    graph: CSRGraph,
) -> tuple[np.ndarray, list[np.ndarray], int]:
    """Round-synchronous Suitor.

    Every active vertex bids in parallel; per target the best bid wins,
    displacing the previous suitor; losers and displaced vertices re-enter
    the active set.  Returns the final mate array, the per-round active
    frontiers (for the cost models), and the round count.
    """
    n = graph.num_vertices
    indptr, indices, weights = graph.indptr, graph.indices, graph.weights
    eids = graph.canonical_edge_ids()
    suitor = np.full(n, UNMATCHED, dtype=np.int64)
    ws_w = np.full(n, _NEG_INF)
    ws_e = np.full(n, -1, dtype=np.int64)

    active = np.arange(n, dtype=np.int64)
    frontiers: list[np.ndarray] = []
    rounds = 0
    while len(active):
        frontiers.append(active)
        rounds += 1
        sub_indptr, pos = gather_rows(indptr, active)
        nbrs = indices[pos]
        w = weights[pos]
        e = eids[pos]
        beats = (w > ws_w[nbrs]) | ((w == ws_w[nbrs]) & (e > ws_e[nbrs]))
        primary = np.where(beats, w, _NEG_INF)
        win = segment_argmax_lex(primary, e, sub_indptr)
        has = win >= 0
        proposers = active[has]
        targets = nbrs[win[has]]
        pw = w[win[has]]
        pe = e[win[has]]

        # Resolve per-target conflicts: best (w, eid) bid wins.
        order = np.lexsort((pe, pw, targets))
        targets_s = targets[order]
        last = np.ones(len(targets_s), dtype=bool)
        last[:-1] = targets_s[1:] != targets_s[:-1]
        winners_idx = order[last]
        tgt = targets[winners_idx]
        src = proposers[winners_idx]

        displaced = suitor[tgt]
        suitor[tgt] = src
        ws_w[tgt] = pw[winners_idx]
        ws_e[tgt] = pe[winners_idx]

        lost = proposers[~np.isin(np.arange(len(proposers)), winners_idx)]
        redo = displaced[displaced != UNMATCHED]
        active = np.unique(np.concatenate([lost, redo]))

    return _suitor_to_mate(suitor), frontiers, rounds


def suitor_omp_sim(
    graph: CSRGraph, cpu: CpuSpec = CPU_EPYC_7742_2S
) -> MatchResult:
    """SR-OMP: round-synchronous Suitor under a multicore cost model.

    Per round, the active vertices' adjacency is streamed once at the
    host's effective irregular bandwidth across ``cpu.threads`` threads,
    plus one OpenMP barrier.
    """
    mate, frontiers, rounds = _suitor_rounds(graph)
    degrees = graph.degrees
    t = 0.0
    bpa = 8 + 8  # SR-OMP uses the 64-bit CSR the paper feeds it
    for f in frontiers:
        work = int(degrees[f].sum())
        nbytes = work * bpa + len(f) * 32
        stream = nbytes / cpu.effective_bandwidth_bps
        # Straggler term: the heaviest vertex is processed by one thread.
        straggler = int(degrees[f].max()) * bpa / (
            cpu.effective_bandwidth_bps / cpu.threads
        )
        t += max(stream, straggler) + cpu.barrier_us * 1e-6
    return MatchResult(
        mate=mate,
        weight=matching_weight(graph, mate),
        algorithm="suitor_omp",
        iterations=rounds,
        sim_time=t,
        stats={"cpu": cpu.name, "rounds": rounds},
    )


def suitor_gpu_sim(
    graph: CSRGraph,
    spec: DeviceSpec = A100,
    vertices_per_warp: int = 1,
    thread_serial_factor: float = 10.0,
) -> MatchResult:
    """SR-GPU: round-synchronous Suitor on one simulated device.

    Uses a 32-bit graph representation (index_bytes=4, weight_bytes=4) and
    a *thread-per-vertex* kernel with vertices-per-warp redistribution:
    excellent balance on sparse/regular graphs, but a single thread scans a
    vertex's whole adjacency serially — ``thread_serial_factor`` derates
    the per-worker throughput accordingly, which is why LD-GPU's
    warp-cooperative scan catches up on the very dense inputs
    (mycielskian18, HV15R, mouse_gene in the paper's Table IV).

    Raises :class:`DeviceOOMError` when the graph plus the four |V|-sized
    state arrays exceed device memory — reproducing the paper's LARGE-graph
    failures.  A 1.15× working-set factor covers the kernel's temporaries.
    """
    spec32 = replace(
        spec.with_representation(4, 4),
        warp_throughput_gbs=spec.warp_throughput_gbs / thread_serial_factor,
    )
    need = int(1.15 * (graph.memory_bytes(index_bytes=4, weight_bytes=4)
                       + 4 * graph.num_vertices * 8))
    if need > spec32.memory_bytes:
        raise DeviceOOMError(f"SR-GPU/{spec.name}", need, 0,
                             spec32.memory_bytes)

    mate, frontiers, rounds = _suitor_rounds(graph)
    degrees = graph.degrees
    timeline = Timeline()
    for f in frontiers:
        prof = pointing_kernel_cost(spec32, degrees[f], vertices_per_warp)
        timeline.add("pointing", prof.seconds)
        timeline.add("sync", spec32.kernel_launch_us * 1e-6)
    return MatchResult(
        mate=mate,
        weight=matching_weight(graph, mate),
        algorithm="suitor_gpu",
        iterations=rounds,
        sim_time=timeline.total,
        timeline=timeline,
        stats={"device": spec.name, "rounds": rounds,
               "representation_bytes": need},
    )


register(AlgorithmSpec(
    name="suitor_seq",
    fn=suitor_seq,
    summary="sequential Suitor (Manne & Halappanavar)",
    approx_ratio="1/2",
))
register(AlgorithmSpec(
    name="sr_omp",
    fn=suitor_omp_sim,
    summary="round-synchronous Suitor, multicore cost model (SR-OMP)",
    needs_cpu=True,
    simulator_backed=True,
    approx_ratio="1/2",
))
register(AlgorithmSpec(
    name="sr_gpu",
    fn=suitor_gpu_sim,
    summary="single-device 32-bit Suitor, vertex-per-warp (SR-GPU)",
    needs_device_spec=True,
    simulator_backed=True,
    approx_ratio="1/2",
))
