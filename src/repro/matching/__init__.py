"""Weighted matching algorithms.

The paper's contribution (:func:`ld_gpu`) plus every algorithm it compares
against, and extensions along its future-work axis (path growing, short
augmentations, b-matching, dynamic maintenance).

Each algorithm registers an :class:`~repro.engine.spec.AlgorithmSpec`
next to its implementation, declaring its parameter needs and capability
tags — the single source of truth for dispatch.  Enumerate it with::

    from repro.engine import algorithm_specs
    for spec in algorithm_specs():
        print(spec.name, spec.capability_tags, spec.summary)

or ``repro-matching list algorithms`` on the command line (the README's
"Algorithm registry" table is the same listing).
"""

from repro.matching.types import MatchResult
from repro.matching.validate import (
    is_valid_matching,
    is_maximal_matching,
    matching_weight,
    matched_edge_count,
    verify_result,
)
from repro.matching.pointer_index import (
    PointerIndex,
    resolve_pointing_engine,
)
from repro.matching.ld_seq import ld_seq
from repro.matching.ld_gpu import ld_gpu
from repro.matching.ld_multinode import ld_multinode
from repro.matching.greedy import greedy_matching
from repro.matching.local_max import local_max
from repro.matching.suitor import suitor_seq, suitor_omp_sim, suitor_gpu_sim
from repro.matching.auction import auction_matching
from repro.matching.blossom import blossom_mwm, maximum_weight_matching
from repro.matching.cugraph_sim import cugraph_mg_sim
from repro.matching.path_growing import path_growing_matching
from repro.matching.augmenting import (
    two_thirds_matching,
    random_augmentation_matching,
)
from repro.matching.coreset import (
    coreset_greedy,
    coreset_ld,
    coreset_matching,
    coreset_shard,
    extract_shard,
    shard_assignments,
)
from repro.matching.dynamic import DynamicMatcher
from repro.streaming.scenario import dynamic_ld
from repro.matching.b_matching import (
    BMatchResult,
    b_suitor,
    greedy_b_matching,
    is_valid_b_matching,
)

__all__ = [
    "MatchResult",
    "is_valid_matching",
    "is_maximal_matching",
    "matching_weight",
    "matched_edge_count",
    "verify_result",
    "PointerIndex",
    "resolve_pointing_engine",
    "ld_seq",
    "ld_gpu",
    "ld_multinode",
    "greedy_matching",
    "local_max",
    "suitor_seq",
    "suitor_omp_sim",
    "suitor_gpu_sim",
    "auction_matching",
    "blossom_mwm",
    "maximum_weight_matching",
    "cugraph_mg_sim",
    "path_growing_matching",
    "two_thirds_matching",
    "random_augmentation_matching",
    "coreset_greedy",
    "coreset_ld",
    "coreset_matching",
    "coreset_shard",
    "extract_shard",
    "shard_assignments",
    "BMatchResult",
    "b_suitor",
    "greedy_b_matching",
    "is_valid_b_matching",
    "DynamicMatcher",
    "dynamic_ld",
]
