"""Weighted matching algorithms.

The paper's contribution (:func:`ld_gpu`) plus every algorithm it compares
against:

===================  =====================================================
``ld_seq``           Algorithm 1 — pointer-based locally dominant matching
``ld_gpu``           Algorithms 2–3 — multi-GPU batched LD matching (run on
                     the :mod:`repro.gpusim` device simulator)
``suitor_seq``       sequential Suitor (Manne & Halappanavar)
``suitor_omp_sim``   round-synchronous Suitor with a multicore cost model
                     (the paper's SR-OMP baseline)
``suitor_gpu_sim``   single-device Suitor with vertex-per-warp balancing and
                     a 32-bit representation (the paper's SR-GPU baseline)
``greedy_matching``  global-sort greedy ½-approximation
``local_max``        Birn et al. edge-centric locally dominant matching
``auction_matching`` Fagginger Auer & Bisseling red-blue auction
``blossom_mwm``      exact maximum weight matching (the LEMON baseline)
``cugraph_mg_sim``   Manne–Bisseling over an MPI-style process-per-GPU
                     communication model (the RAPIDS cuGraph baseline)
===================  =====================================================

Extensions beyond the paper's evaluation (its related/future work):

=============================  =======================================
``path_growing_matching``      Drake–Hougardy path growing (ref. [14])
``two_thirds_matching``        short-augmentation local search to the
                               2/3-approximate fixed point
``random_augmentation_...``    Pettie–Sanders randomised (2/3 − ε)
``b_suitor``                   b-matching via b-Suitor
=============================  =======================================
"""

from repro.matching.types import MatchResult
from repro.matching.validate import (
    is_valid_matching,
    is_maximal_matching,
    matching_weight,
    matched_edge_count,
    verify_result,
)
from repro.matching.ld_seq import ld_seq
from repro.matching.ld_gpu import ld_gpu
from repro.matching.ld_multinode import ld_multinode
from repro.matching.greedy import greedy_matching
from repro.matching.local_max import local_max
from repro.matching.suitor import suitor_seq, suitor_omp_sim, suitor_gpu_sim
from repro.matching.auction import auction_matching
from repro.matching.blossom import blossom_mwm, maximum_weight_matching
from repro.matching.cugraph_sim import cugraph_mg_sim
from repro.matching.path_growing import path_growing_matching
from repro.matching.augmenting import (
    two_thirds_matching,
    random_augmentation_matching,
)
from repro.matching.dynamic import DynamicMatcher
from repro.matching.b_matching import (
    BMatchResult,
    b_suitor,
    greedy_b_matching,
    is_valid_b_matching,
)

__all__ = [
    "MatchResult",
    "is_valid_matching",
    "is_maximal_matching",
    "matching_weight",
    "matched_edge_count",
    "verify_result",
    "ld_seq",
    "ld_gpu",
    "ld_multinode",
    "greedy_matching",
    "local_max",
    "suitor_seq",
    "suitor_omp_sim",
    "suitor_gpu_sim",
    "auction_matching",
    "blossom_mwm",
    "maximum_weight_matching",
    "cugraph_mg_sim",
    "path_growing_matching",
    "two_thirds_matching",
    "random_augmentation_matching",
    "BMatchResult",
    "b_suitor",
    "greedy_b_matching",
    "is_valid_b_matching",
    "DynamicMatcher",
]
