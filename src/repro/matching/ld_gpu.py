"""LD-GPU — Algorithms 2–3: multi-GPU batched locally dominant matching.

The paper's primary contribution, executed on the :mod:`repro.gpusim`
device simulator:

1. **Distribution** (§III-A): edge-balanced contiguous vertex partition;
   device *i* holds the CSR rows of its vertices (cut edges replicated)
   plus the two |V|-sized global arrays (``pointers``, ``mate``).
2. **Batching** (§III-B): when a partition's edges exceed device memory,
   its vertex range is split into edge-balanced batches streamed through
   two buffers on two CUDA streams (``dual_buffer_schedule``); batch
   buffers are re-filled every pointing phase, which is exactly the
   overhead that makes low-device-count runs on LARGE graphs slow and the
   resulting multi-GPU speedups superlinear (Fig. 4).
3. **Per iteration** (Algorithm 2): pointing kernels per batch →
   NCCL-style MAX allreduce of ``pointers`` → ``SetMates`` mutual check →
   MAX allreduce of ``mate`` → terminate when no edge was committed.

Arithmetic is shared with LD-SEQ (:func:`compute_pointers` /
:func:`find_mutual_pairs`), so for every (devices, batches) configuration
the ``mate`` array is bit-identical to the sequential algorithm — the
executable form of the paper's Lemma III.1.

Work model: like the frontier-optimised LD-SEQ, only vertices whose pointer
died are re-scanned, and only batches intersecting that frontier are
re-loaded; the paper motivates this "logical control of task distribution"
in §III-B, and Fig. 8's decaying warp-edge work measures the same effect.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.engine.spec import AlgorithmSpec, register
from repro.comm.collectives import allreduce_max
from repro.comm.transfer import h2d_time
from repro.gpusim.device import SimDevice
from repro.gpusim.kernels import matching_kernel_cost, pointing_kernel_cost
from repro.gpusim.memory import DeviceOOMError
from repro.gpusim.spec import DGX_A100, PlatformSpec
from repro.gpusim.stream import dual_buffer_schedule
from repro.gpusim.timeline import Timeline
from repro.matching.ld_seq import compute_pointers, find_mutual_pairs
from repro.matching.pointer_index import (
    HOST_SCAN_COUNTER,
    HOST_SCAN_HELP,
    MutualIndex,
    PointerIndex,
    resolve_pointing_engine,
)
from repro.matching.types import UNMATCHED, MatchResult
from repro.matching.validate import matching_weight
from repro.partition.batch import BatchPlan, auto_batch_count, plan_batches
from repro.partition.vertex import (
    edge_balanced_partition,
    vertex_balanced_partition,
)
from repro.telemetry.spans import SpanEmitter, count, observe
from repro.graph.csr import CSRGraph

__all__ = ["ld_gpu", "LdGpuRun"]

#: Fixed per-iteration device synchronisation charge (two end-of-phase
#: ``cudaDeviceSynchronize`` calls), in units of kernel-launch latencies.
_SYNCS_PER_ITERATION = 2


@dataclass
class _DevicePartition:
    """Per-device state: vertex range, local CSR rows, batch plan."""

    device: SimDevice
    start: int
    stop: int
    local_indptr: np.ndarray
    plan: BatchPlan
    pointers: np.ndarray
    mate: np.ndarray
    #: Sorted-adjacency pointer index (``engine="index"``), built once
    #: per run for this partition's row range (keyed by ``start`` as the
    #: row offset); ``None`` under the segment engine.
    index: PointerIndex | None = None

    @property
    def num_vertices(self) -> int:
        return self.stop - self.start


@dataclass
class LdGpuRun:
    """Configuration echo attached to a result's ``stats['config']``."""

    platform: str
    num_devices: int
    num_batches: int
    vertices_per_warp: int
    pointing_engine: str = "index"


def _setup_devices(
    graph: CSRGraph,
    platform: PlatformSpec,
    num_devices: int,
    num_batches: int | None,
    force_streaming: bool,
    partition: str,
) -> list[_DevicePartition]:
    """Distribute the graph and build every device's batch plan.

    Batches are *logical* (kernel-range decomposition over resident edge
    data) whenever the whole partition fits in device memory; edge data is
    only streamed through the two batch buffers when it does not —
    re-streaming a resident partition every iteration would charge phantom
    PCIe traffic.  ``force_streaming`` overrides this, reproducing the
    paper's Fig. 6/7 study that "deliberately introduc[es] nontrivial
    batch processing overheads" on graphs that would otherwise fit.

    Raises :class:`~repro.gpusim.memory.DeviceOOMError` when no batch count
    can fit a partition — the '-' entries of the paper's Table I.
    """
    n = graph.num_vertices
    spec = platform.device
    if partition == "edge":
        offsets = edge_balanced_partition(graph.indptr, num_devices)
    elif partition == "vertex":
        offsets = vertex_balanced_partition(n, num_devices)
    else:
        raise ValueError(
            f"unknown partition strategy {partition!r}; "
            "expected 'edge' or 'vertex'"
        )

    # The paper keeps #batches identical across devices; the auto policy
    # takes the max of the per-device minima.  The estimate assumes
    # balanced batches, but contiguity skew (an indivisible hub row) can
    # make the largest batch exceed the mean, so the count is verified
    # against the actual plans and escalated until the buffers fit.
    if num_batches is None:
        per_dev = []
        for i in range(num_devices):
            start, stop = int(offsets[i]), int(offsets[i + 1])
            edges = int(graph.indptr[stop] - graph.indptr[start])
            per_dev.append(
                auto_batch_count(edges, stop - start, n, spec)
            )
        num_batches = max(per_dev)
        if num_batches > 1:
            bpa = spec.bytes_per_adjacency
            while num_batches <= 4096:
                ok = True
                for i in range(num_devices):
                    start, stop = int(offsets[i]), int(offsets[i + 1])
                    local = graph.indptr[start:stop + 1] - \
                        graph.indptr[start]
                    plan = plan_batches(local, num_batches)
                    avail = spec.memory_bytes - 2 * n * 8 - local.nbytes
                    if 2 * plan.max_batch_edges * bpa > avail:
                        ok = False
                        break
                if ok:
                    break
                num_batches += 1
            else:
                raise DeviceOOMError(spec.name, 0, 0, spec.memory_bytes)

    parts: list[_DevicePartition] = []
    for i in range(num_devices):
        start, stop = int(offsets[i]), int(offsets[i + 1])
        dev = SimDevice(i, spec)
        local_indptr = graph.indptr[start : stop + 1] - graph.indptr[start]
        bpa = spec.bytes_per_adjacency
        fixed = 2 * n * 8 + local_indptr.nbytes
        edge_bytes = int(local_indptr[-1]) * bpa
        fits = fixed + edge_bytes <= spec.memory_bytes
        resident = fits and not (force_streaming and num_batches > 1)
        plan = plan_batches(local_indptr, num_batches, resident=resident)

        # Device-resident allocations (§III-C trade-off: global pointers
        # and mate arrays live on every device).
        pointers = dev.alloc_array("pointers", n, np.int64)
        mate = dev.alloc_array("mate", n, np.int64)
        dev.register_view("indptr", local_indptr)
        if plan.resident:
            dev.reserve("edges", edge_bytes)
        else:
            dev.reserve("batch_buffer_0", plan.max_batch_edges * bpa)
            dev.reserve("batch_buffer_1", plan.max_batch_edges * bpa)

        pointers.fill(UNMATCHED)
        mate.fill(UNMATCHED)
        parts.append(
            _DevicePartition(dev, start, stop, local_indptr, plan,
                             pointers, mate)
        )
    return parts


def ld_gpu(
    graph: CSRGraph,
    platform: PlatformSpec = DGX_A100,
    num_devices: int = 1,
    num_batches: int | None = None,
    vertices_per_warp: int = 8,
    max_iterations: int | None = None,
    collect_stats: bool = True,
    force_streaming: bool = False,
    partition: str = "edge",
    allreduce=None,
    engine: str | None = None,
) -> MatchResult:
    """Run LD-GPU on ``num_devices`` simulated GPUs of ``platform``.

    Parameters
    ----------
    num_batches:
        Batches per device; ``None`` selects the minimum count that fits
        device memory (1 when the partition is resident — the paper's
        default scenario).
    vertices_per_warp:
        Contiguous vertices assigned to each warp in the pointing kernel.
    collect_stats:
        Record per-iteration edge traffic, warp-work and occupancy series
        (Figs. 8 and 11).
    force_streaming:
        Stream batch edge data through the dual buffers every iteration
        even when the partition would fit resident — the paper's Fig. 6/7
        methodology for studying batch overheads on SMALL graphs.
    partition:
        ``"edge"`` (default, §III-A's edge-balanced contiguous split) or
        ``"vertex"`` (naive equal-#vertices ablation baseline).
    allreduce:
        Collective override: ``callable(buffers) -> seconds`` combining
        the per-device arrays in place (default: NCCL ring over
        ``platform.gpu_link``).  The multi-node extension injects a
        hierarchical NVLink+InfiniBand collective here.
    engine:
        Host-side engine for both phases: ``"index"`` builds one
        :class:`~repro.matching.pointer_index.PointerIndex` per device
        partition (sorted adjacency + cursors) plus a global
        :class:`~repro.matching.pointer_index.MutualIndex` (pointer-
        delta mutual checks), amortized O(m) host work; ``"segment"``
        re-scans via :func:`~repro.matching.ld_seq.compute_pointers`
        and an unrestricted
        :func:`~repro.matching.ld_seq.find_mutual_pairs` sweep (the
        reference oracle, mirroring the modeled kernels).  ``None``
        consults ``REPRO_POINTING_ENGINE`` (default ``"index"``).
        ``mate``, ``edges_scanned`` and ``sim_time`` are bit-identical
        across engines — the choice only moves actual host work
        (``stats["host_entries_scanned"]`` and its per-phase
        breakdown).

    Returns
    -------
    MatchResult
        With ``sim_time`` (modeled seconds), a component
        :class:`~repro.gpusim.timeline.Timeline`, and diagnostics in
        ``stats``.
    """
    if num_devices < 1:
        raise ValueError("need at least one device")
    if num_devices > platform.max_devices:
        raise ValueError(
            f"{platform.name} has only {platform.max_devices} devices"
        )
    engine = resolve_pointing_engine(engine)
    n = graph.num_vertices
    spec = platform.device
    parts = _setup_devices(graph, platform, num_devices, num_batches,
                           force_streaming, partition)
    nb = parts[0].plan.num_batches

    if allreduce is None:
        def allreduce(buffers):
            return allreduce_max(buffers, platform.gpu_link)

    eids = graph.canonical_edge_ids()
    if engine == "index":
        # One sorted-adjacency index per device partition, keyed by its
        # row offset: built once per run, reused across iterations and
        # batches (§III-B's monotone availability makes cursors safe).
        for p in parts:
            base = int(graph.indptr[p.start])
            p.index = PointerIndex(
                p.local_indptr, graph.indices[base:],
                graph.weights[base:], eids[base:], row_offset=p.start,
            )
    # The mutual check runs on the host over the *merged* pointers (one
    # check per iteration, not per device), so one delta index suffices.
    mutual = MutualIndex(n) if engine == "index" else None
    timeline = Timeline()
    # Component spans feed the timeline AND (when a metrics registry is
    # active, e.g. under the engine's MetricsSink) the telemetry
    # registry — from the same floats, so exports reconcile exactly.
    tel = SpanEmitter(timeline, algorithm="ld_gpu", device=spec.name)
    # Host-side merged views (what every device holds after allreduce).
    pointers_g = parts[0].pointers
    mate_g = parts[0].mate

    frontier = np.arange(n, dtype=np.int64)
    occupancy_series: list[float] = []
    edges_scanned_series: list[int] = []
    warp_mean_series: list[float] = []
    warp_std_series: list[float] = []
    new_matches_series: list[int] = []

    iterations = 0
    initial_transfer = 0.0
    host_pointing = 0
    host_matching = 0
    degrees = graph.degrees
    while max_iterations is None or iterations < max_iterations:
        timeline.begin_iteration()

        # ---------------- pointing phase (per device, batched) --------- #
        makespans = []
        computes = []
        iter_scanned = 0
        iter_host = 0
        occ_accum = 0.0
        occ_weight = 0.0
        w_tot = w_max = 0
        w_sumsq = 0.0
        w_warps = 0
        for p in parts:
            dev_frontier = frontier[
                (frontier >= p.start) & (frontier < p.stop)
            ]
            local = dev_frontier - p.start
            boff = p.plan.offsets
            which = np.searchsorted(boff, local, side="right") - 1
            load_times: list[float] = []
            comp_times: list[float] = []
            for b in range(nb):
                sel = dev_frontier[which == b]
                if len(sel) == 0:
                    continue  # batch untouched: neither loaded nor launched
                if p.plan.resident:
                    load_times.append(0.0)
                else:
                    nbytes = int(p.plan.edge_counts[b]) * \
                        spec.bytes_per_adjacency
                    # The paper excludes the host→device *partition*
                    # transfer from reported times; the first iteration's
                    # batch loads are exactly that initial placement, so
                    # they are tracked but not charged.
                    t_load = h2d_time(nbytes, platform.host_link)
                    if iterations == 0:
                        initial_transfer += t_load
                        t_load = 0.0
                    load_times.append(t_load)
                    p.device.record_h2d(nbytes)
                    observe(
                        "repro_batch_load_seconds",
                        t_load,
                        "Chargeable per-batch H2D load seconds "
                        "(iteration-0 placement loads excluded).",
                        algorithm="ld_gpu",
                        device=f"{spec.name}#{p.device.device_id}",
                        batch=b,
                    )
                prof = pointing_kernel_cost(
                    spec, degrees[sel], vertices_per_warp
                )
                comp_times.append(prof.seconds)
                p.device.record_kernel()
                occ_accum += prof.occupancy * prof.warp_stats.num_warps
                occ_weight += prof.warp_stats.num_warps
                ws = prof.warp_stats
                w_tot += ws.total_work
                w_max = max(w_max, ws.max_work)
                w_sumsq += (ws.std_work**2 + ws.mean_work**2) * ws.num_warps
                w_warps += ws.num_warps
                # Exact arithmetic for this batch's frontier slice.
                if p.index is not None:
                    iter_scanned += p.index.point(mate_g, p.pointers, sel)
                    iter_host += p.index.last_host_scanned
                else:
                    scanned = compute_pointers(
                        p.local_indptr,
                        graph.indices[graph.indptr[p.start]:],
                        graph.weights[graph.indptr[p.start]:],
                        eids[graph.indptr[p.start]:],
                        mate_g, p.pointers, sel, row_offset=p.start,
                    )
                    iter_scanned += scanned
                    iter_host += scanned
            pipe = dual_buffer_schedule(load_times, comp_times)
            makespans.append(pipe.makespan)
            computes.append(pipe.compute_time)
        t_point = max(makespans) if makespans else 0.0
        t_comp = max(computes) if computes else 0.0
        tel.emit("pointing", t_comp)
        tel.emit("batch_transfer", max(0.0, t_point - t_comp))
        host_pointing += iter_host

        # ---------------- allreduce(pointers) -------------------------- #
        # Each device contributes only its owned vertex range; everything
        # else is the reduction identity (-1).  This is what makes the MAX
        # reduction "unambiguous" in the paper's Lemma III.1 proof — a
        # stale merged value for a re-pointed remote vertex must not win.
        for p in parts:
            p.pointers[: p.start] = UNMATCHED
            p.pointers[p.stop :] = UNMATCHED
        t = allreduce([p.pointers for p in parts])
        tel.emit("allreduce_pointers", t)
        pointers_g = parts[0].pointers  # all equal after allreduce

        # ---------------- matching phase ------------------------------- #
        # Pairs are discovered once from the merged pointers — the index
        # engine probes only pointers that changed this round (every
        # change lands inside the frontier), the segment oracle sweeps
        # all vertices like the modeled kernel; each device's SetMates
        # writes only the endpoints it owns, and the mate allreduce below
        # reconstructs the global view, exactly as in Algorithm 2.
        if mutual is not None:
            lo, hi = mutual.find_pairs(pointers_g, frontier)
            match_host = mutual.last_host_scanned
        else:
            lo, hi = find_mutual_pairs(pointers_g, None)
            match_host = n
        host_matching += match_host
        count(HOST_SCAN_COUNTER, iter_host + match_host, HOST_SCAN_HELP,
              algorithm="ld_gpu", engine=engine, device=spec.name)
        match_times = []
        for p in parts:
            own_lo = lo[(lo >= p.start) & (lo < p.stop)]
            p.mate[own_lo] = pointers_g[own_lo]
            own_hi = hi[(hi >= p.start) & (hi < p.stop)]
            p.mate[own_hi] = pointers_g[own_hi]
            prof = matching_kernel_cost(spec, p.num_vertices)
            match_times.append(prof.seconds)
            p.device.record_kernel()
        tel.emit("matching", max(match_times) if match_times else 0.0)

        # ---------------- allreduce(mate) + sync ----------------------- #
        t = allreduce([p.mate for p in parts])
        tel.emit("allreduce_mate", t)
        mate_g = parts[0].mate
        sync_batches = max(0, nb - 2)
        tel.emit(
            "sync",
            (_SYNCS_PER_ITERATION + sync_batches)
            * spec.kernel_launch_us * 1e-6
            + platform.gpu_link.latency_s,
        )

        if collect_stats:
            edges_scanned_series.append(iter_scanned)
            occupancy_series.append(
                occ_accum / occ_weight if occ_weight else 0.0
            )
            mean_w = w_tot / w_warps if w_warps else 0.0
            var_w = max(0.0, w_sumsq / w_warps - mean_w**2) if w_warps \
                else 0.0
            warp_mean_series.append(mean_w)
            warp_std_series.append(var_w**0.5)
            new_matches_series.append(len(lo))

        iterations += 1
        timeline.end_iteration()
        if len(lo) == 0:
            break

        # Clear matched vertices' pointers on every device and advance the
        # frontier (identical to LD-SEQ's rule).
        for p in parts:
            p.pointers[lo] = UNMATCHED
            p.pointers[hi] = UNMATCHED
        pointers_g = parts[0].pointers
        live = np.nonzero((mate_g == UNMATCHED) & (pointers_g >= 0))[0]
        frontier = live[mate_g[pointers_g[live]] != UNMATCHED]

    weight = matching_weight(graph, mate_g)
    stats: dict = {
        "config": LdGpuRun(platform.name, num_devices, nb,
                           vertices_per_warp, engine),
        "pointing_engine": engine,
        "host_entries_scanned": host_pointing + host_matching,
        "host_entries_scanned_pointing": host_pointing,
        "host_entries_scanned_matching": host_matching,
        "initial_transfer_s": initial_transfer,
        "device_peak_bytes": [p.device.memory.peak for p in parts],
        "partition_offsets": np.array(
            [p.start for p in parts] + [parts[-1].stop], dtype=np.int64
        ),
    }
    if collect_stats:
        stats.update(
            edges_scanned=np.asarray(edges_scanned_series, dtype=np.int64),
            occupancy=np.asarray(occupancy_series),
            warp_work_mean=np.asarray(warp_mean_series),
            warp_work_std=np.asarray(warp_std_series),
            new_matches=np.asarray(new_matches_series, dtype=np.int64),
        )
    return MatchResult(
        mate=mate_g.copy(),
        weight=weight,
        algorithm="ld_gpu",
        iterations=iterations,
        sim_time=timeline.total,
        timeline=timeline,
        stats=stats,
    )


register(AlgorithmSpec(
    name="ld_gpu",
    fn=ld_gpu,
    summary="Algorithms 2-3 — multi-GPU batched LD matching",
    needs_platform=True,
    needs_devices=True,
    needs_batches=True,
    simulator_backed=True,
    approx_ratio="1/2",
    accepts_pointing_engine=True,
))
