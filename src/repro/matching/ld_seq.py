"""LD-SEQ — Algorithm 1: pointer-based locally dominant matching.

Each round has a *pointing* phase (every live vertex points at its heaviest
available neighbour) and a *matching* phase (mutually pointing pairs are
committed and their edges removed).  The module also exposes the two phase
kernels — :func:`compute_pointers` and :func:`find_mutual_pairs` — which
LD-GPU reuses per simulated device so the two implementations are
arithmetically identical (the paper's Lemma III.1 as code reuse).

Tie-breaking
------------
``argmax_u w({v, u})`` needs a total order to guarantee progress: with tied
weights, cyclic pointing can livelock Algorithm 1.  We maximise the
lexicographic key ``(w(e), eid(e))`` where ``eid`` is the canonical
undirected edge id — identical from both endpoints — so the globally
maximal available edge is mutually chosen every round and each round
commits at least one edge.

Pointing engines
----------------
Two interchangeable engines drive *both* phases (selected by the
``engine`` parameter, default ``REPRO_POINTING_ENGINE`` then ``index``):
the *segment* engine is the reference oracle — it re-scans each
frontier vertex's whole adjacency every pointing round
(:func:`compute_pointers`) and re-probes every vertex's pointer every
matching round (:func:`find_mutual_pairs` unrestricted, mirroring the
modeled full-sweep SetMates kernel) — while the *index* engine pairs
:class:`~repro.matching.pointer_index.PointerIndex` (sorted rows +
cursors) with :class:`~repro.matching.pointer_index.MutualIndex`
(pointer-delta mutual checks), making both phases amortized O(m) host
work over a run with bit-identical ``mate``/``edges_scanned``.
"""

from __future__ import annotations

import numpy as np

from repro.engine.spec import AlgorithmSpec, register
from repro.graph.csr import CSRGraph
from repro.graph.segments import gather_rows, segment_argmax_lex
from repro.matching.pointer_index import (
    HOST_SCAN_COUNTER,
    HOST_SCAN_HELP,
    MutualIndex,
    PointerIndex,
    resolve_pointing_engine,
)
from repro.matching.types import UNMATCHED, MatchResult
from repro.matching.validate import matching_weight
from repro.telemetry.spans import count

__all__ = ["ld_seq", "compute_pointers", "find_mutual_pairs"]

_NEG_INF = -np.inf


def compute_pointers(
    indptr: np.ndarray,
    indices: np.ndarray,
    weights: np.ndarray,
    eids: np.ndarray,
    mate: np.ndarray,
    pointer: np.ndarray,
    frontier: np.ndarray,
    row_offset: int = 0,
) -> int:
    """Pointing phase for the vertices in ``frontier``.

    ``indptr`` may describe a *local* row range starting at global vertex id
    ``row_offset`` (how a device partition stores its rows); ``indices``,
    ``mate`` and ``pointer`` are always global.  ``frontier`` holds global
    ids within the local range.  Updates ``pointer`` in place and returns
    the number of adjacency entries scanned (the paper's warp-edge work).
    """
    if len(frontier) == 0:
        return 0
    local = frontier - row_offset
    sub_indptr, pos = gather_rows(indptr, local)
    nbrs = indices[pos]
    primary = np.where(mate[nbrs] == UNMATCHED, weights[pos], _NEG_INF)
    win = segment_argmax_lex(primary, eids[pos], sub_indptr)
    has = win >= 0
    pointer[frontier] = UNMATCHED
    pointer[frontier[has]] = nbrs[win[has]]
    return len(pos)


def find_mutual_pairs(
    pointer: np.ndarray, candidates: np.ndarray | None = None
) -> tuple[np.ndarray, np.ndarray]:
    """Matching phase: mutually pointing pairs, each reported once.

    Returns ``(lo, hi)`` arrays of matched pairs with ``lo < hi``.
    ``candidates`` optionally restricts the scan to a vertex subset: any
    *new* mutual pair has at least one endpoint that re-pointed this round
    (two stale mutual pointers would have matched in the previous round),
    so passing the frontier finds every new pair while scanning only the
    re-pointed vertices.  Unrestricted, this is the full-scan oracle the
    :class:`~repro.matching.pointer_index.MutualIndex` delta engine is
    verified against (and internally narrows candidates for).
    """
    if candidates is None:
        candidates = np.nonzero(pointer >= 0)[0]
    else:
        candidates = candidates[pointer[candidates] >= 0]
    tgt = pointer[candidates]
    mutual = pointer[tgt] == candidates
    a, b = candidates[mutual], tgt[mutual]
    lo = np.minimum(a, b)
    hi = np.maximum(a, b)
    if len(lo) == 0:
        return lo, hi
    # A pair appears at most twice (once per endpoint); dedup on the
    # scalar key lo * n + hi — the same pairs in the same (lo, hi)
    # lexicographic order as a row-wise unique, without the structured
    # sort.  Exact for n^2 < 2^63, like the canonical edge ids.
    key = lo * np.int64(len(pointer)) + hi
    _, first = np.unique(key, return_index=True)
    return lo[first], hi[first]


def ld_seq(
    graph: CSRGraph,
    max_iterations: int | None = None,
    full_rescan: bool = False,
    collect_stats: bool = True,
    engine: str | None = None,
) -> MatchResult:
    """Run Algorithm 1 to completion.

    Parameters
    ----------
    max_iterations:
        Safety cap; ``None`` runs until the matching is maximal.
    full_rescan:
        If True, re-run the pointing phase over *all* live vertices every
        round (the literal Algorithm 1).  The default frontier optimisation
        re-scans only vertices whose pointer target was matched away, which
        is equivalent (availability only shrinks, so surviving pointers
        remain arg-maxima) and matches the per-iteration edge-traffic decay
        the paper measures in Fig. 8.
    engine:
        Host engine for both phases: ``"index"`` (sorted-adjacency
        cursors + pointer-delta mutual checks, amortized O(m) host work)
        or ``"segment"`` (full re-scan reference oracle, both phases).
        ``None`` consults ``REPRO_POINTING_ENGINE``, defaulting to
        ``"index"``.  The engines produce bit-identical results; only
        the host-side work differs (``stats["host_entries_scanned"]``
        and its per-phase breakdown).
    """
    engine = resolve_pointing_engine(engine)
    n = graph.num_vertices
    mate = np.full(n, UNMATCHED, dtype=np.int64)
    pointer = np.full(n, UNMATCHED, dtype=np.int64)
    eids = graph.canonical_edge_ids()
    index = PointerIndex(graph.indptr, graph.indices, graph.weights,
                         eids) if engine == "index" else None
    mutual = MutualIndex(n) if engine == "index" else None

    frontier = np.arange(n, dtype=np.int64)
    edges_scanned: list[int] = []
    new_matches: list[int] = []
    frontier_sizes: list[int] = []
    host_pointing = 0
    host_matching = 0

    iterations = 0
    while max_iterations is None or iterations < max_iterations:
        if index is not None:
            scanned = index.point(mate, pointer, frontier)
            iter_host = index.last_host_scanned
        else:
            scanned = compute_pointers(
                graph.indptr, graph.indices, graph.weights, eids,
                mate, pointer, frontier,
            )
            iter_host = scanned
        host_pointing += iter_host
        # Matching phase.  The index engine probes only vertices whose
        # pointer changed this round (every change happens inside the
        # frontier, so passing it is exhaustive); the segment oracle
        # re-probes everything, like the modeled SetMates sweep.
        if mutual is not None:
            matched_lo, matched_hi = mutual.find_pairs(pointer, frontier)
            match_host = mutual.last_host_scanned
        else:
            matched_lo, matched_hi = find_mutual_pairs(pointer, None)
            match_host = n
        host_matching += match_host
        count(HOST_SCAN_COUNTER, iter_host + match_host, HOST_SCAN_HELP,
              algorithm="ld_seq", engine=engine)
        if collect_stats:
            edges_scanned.append(scanned)
            frontier_sizes.append(len(frontier))
            new_matches.append(len(matched_lo))
        iterations += 1
        if len(matched_lo) == 0:
            break
        mate[matched_lo] = matched_hi
        mate[matched_hi] = matched_lo
        pointer[matched_lo] = UNMATCHED
        pointer[matched_hi] = UNMATCHED

        if full_rescan:
            frontier = np.nonzero(mate == UNMATCHED)[0]
        else:
            # Re-point exactly the vertices whose target was matched away.
            live = np.nonzero((mate == UNMATCHED) & (pointer >= 0))[0]
            frontier = live[mate[pointer[live]] != UNMATCHED]

    weight = matching_weight(graph, mate)
    stats = {}
    if collect_stats:
        stats = {
            "edges_scanned": np.asarray(edges_scanned, dtype=np.int64),
            "new_matches": np.asarray(new_matches, dtype=np.int64),
            "frontier_sizes": np.asarray(frontier_sizes, dtype=np.int64),
            "pointing_engine": engine,
            "host_entries_scanned": host_pointing + host_matching,
            "host_entries_scanned_pointing": host_pointing,
            "host_entries_scanned_matching": host_matching,
        }
    return MatchResult(
        mate=mate,
        weight=weight,
        algorithm="ld_seq" + ("(full)" if full_rescan else ""),
        iterations=iterations,
        stats=stats,
    )


register(AlgorithmSpec(
    name="ld_seq",
    fn=ld_seq,
    summary="Algorithm 1 — sequential locally dominant matching",
    approx_ratio="1/2",
    accepts_pointing_engine=True,
))
