"""Result containers shared by every matching algorithm."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

import numpy as np

__all__ = ["MatchResult", "UNMATCHED"]

#: Sentinel in ``mate`` arrays for an unmatched vertex (the paper's
#: "mate(v) = ∅").
UNMATCHED: int = -1


@dataclass
class MatchResult:
    """Outcome of a matching run.

    Attributes
    ----------
    mate:
        ``int64`` array of length ``|V|``; ``mate[v]`` is v's partner or
        :data:`UNMATCHED`.  Always an involution on matched vertices.
    weight:
        Total weight of the matching.
    algorithm:
        Name of the producing algorithm (``"ld_gpu"`` etc.).
    iterations:
        Number of pointing/matching rounds (0 for single-pass algorithms).
    sim_time:
        Modeled execution seconds on the simulated platform — comparable to
        the paper's reported times; ``None`` for algorithms run without a
        cost model.
    timeline:
        Optional :class:`repro.gpusim.timeline.Timeline` with the
        per-component breakdown used by Figs. 5/7.
    stats:
        Free-form per-algorithm diagnostics (per-iteration edge traffic,
        occupancy series, device/batch configuration, ...).
    """

    mate: np.ndarray
    weight: float
    algorithm: str
    iterations: int = 0
    sim_time: float | None = None
    timeline: Any | None = None
    stats: dict[str, Any] = field(default_factory=dict)

    @property
    def num_matched_edges(self) -> int:
        """Number of edges in the matching."""
        return int(np.count_nonzero(self.mate != UNMATCHED)) // 2

    @property
    def num_matched_vertices(self) -> int:
        """Number of matched vertices (2× the edge count)."""
        return int(np.count_nonzero(self.mate != UNMATCHED))

    def matched_pairs(self) -> np.ndarray:
        """``(k, 2)`` array of matched pairs with ``u < v``."""
        v = np.nonzero(self.mate != UNMATCHED)[0]
        u = self.mate[v]
        keep = v < u
        return np.stack([v[keep], u[keep]], axis=1)

    def summary(self) -> str:
        """One-line human-readable description."""
        t = f", sim_time={self.sim_time:.6f}s" if self.sim_time is not None \
            else ""
        return (
            f"{self.algorithm}: weight={self.weight:.6f}, "
            f"edges={self.num_matched_edges}, iters={self.iterations}{t}"
        )

    # -------------------------------------------------------------- #
    # persistence (matchings are expensive to recompute at scale)
    # -------------------------------------------------------------- #

    def save(self, path) -> None:
        """Persist the result (mate array + scalar fields) as ``.npz``.

        Timeline and free-form stats are not serialised — they describe
        the producing run, not the matching.
        """
        np.savez_compressed(
            path,
            mate=self.mate,
            weight=np.float64(self.weight),
            algorithm=np.array(self.algorithm),
            iterations=np.int64(self.iterations),
            sim_time=np.float64(self.sim_time)
            if self.sim_time is not None else np.float64(np.nan),
        )

    @classmethod
    def load(cls, path) -> "MatchResult":
        """Load a result written by :meth:`save`."""
        with np.load(path, allow_pickle=False) as data:
            sim_time = float(data["sim_time"])
            return cls(
                mate=data["mate"],
                weight=float(data["weight"]),
                algorithm=str(data["algorithm"]),
                iterations=int(data["iterations"]),
                sim_time=None if np.isnan(sim_time) else sim_time,
            )
