"""Configuration sweeps over (devices × batches × platforms).

The paper's reporting protocol is "best over a sweep" (Table I's caption,
Fig. 4's method); this module makes that protocol a first-class object so
the CLI, benches and users run identical grids and get back a tidy table
of every configuration — not just the winner.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable

from repro.gpusim.memory import DeviceOOMError
from repro.gpusim.spec import DGX_A100, PlatformSpec
from repro.graph.csr import CSRGraph
from repro.harness.report import format_table
from repro.matching.ld_gpu import ld_gpu

__all__ = [
    "TABLE1_DEVICE_COUNTS",
    "TABLE1_BATCH_COUNTS",
    "SweepPoint",
    "SweepResult",
    "sweep_ld_gpu",
]

#: The paper's Table I reporting grid: device counts swept for the
#: best-time protocol (``best_ld_gpu``) and by the full experiments.
TABLE1_DEVICE_COUNTS: tuple[int, ...] = (1, 2, 4, 6, 8)

#: Batch counts of the same protocol — auto-fit plus every studied
#: count below 15 (the caption's "batches < 15").
TABLE1_BATCH_COUNTS: tuple[int | None, ...] = (None, 2, 3, 5, 10, 14)


@dataclass(frozen=True)
class SweepPoint:
    """One configuration's outcome (``time_s`` is None on OOM)."""

    platform: str
    num_devices: int
    num_batches: int | None
    time_s: float | None
    iterations: int | None
    comm_fraction: float | None

    @property
    def ok(self) -> bool:
        return self.time_s is not None


@dataclass
class SweepResult:
    """All points of a sweep plus the winner.

    With ``collect_metrics=True`` each cell's telemetry snapshot lands
    in ``cell_snapshots`` (aligned with ``points``) and ``metrics``
    holds the sweep-level aggregate — histograms (span durations,
    kernel costs) merged across every cell of the grid.
    """

    graph_name: str
    points: list[SweepPoint] = field(default_factory=list)
    cell_snapshots: list[Any] = field(default_factory=list)
    metrics: Any | None = None

    @property
    def best(self) -> SweepPoint:
        ok = [p for p in self.points if p.ok]
        if not ok:
            raise DeviceOOMError("sweep", 0, 0, 0)
        return min(ok, key=lambda p: p.time_s)

    def render(self) -> str:
        rows = [
            [p.platform, p.num_devices,
             p.num_batches if p.num_batches is not None else "auto",
             p.time_s, p.iterations,
             100.0 * p.comm_fraction if p.comm_fraction is not None
             else None]
            for p in self.points
        ]
        return format_table(
            ["platform", "#GPUs", "#batches", "time (s)", "iters",
             "comm %"],
            rows, floatfmt=".4f",
            title=f"LD-GPU sweep on {self.graph_name}",
        )


def sweep_ld_gpu(
    graph: CSRGraph,
    platforms: Iterable[PlatformSpec] = (DGX_A100,),
    device_counts: Iterable[int] = TABLE1_DEVICE_COUNTS,
    batch_counts: Iterable[int | None] = (None,),
    collect_metrics: bool = False,
    **ld_kwargs: Any,
) -> SweepResult:
    """Run LD-GPU over the configuration grid.

    OOM configurations become points with ``time_s=None`` (rendered '-'),
    mirroring how the paper reports infeasible runs.  With
    ``collect_metrics=True`` every cell runs under a fresh
    :class:`~repro.telemetry.MetricsRegistry`; per-cell snapshots and
    the cross-cell aggregate land on the returned
    :class:`SweepResult` (see :attr:`SweepResult.metrics`).
    """
    from contextlib import nullcontext

    result = SweepResult(graph.name)
    for plat in platforms:
        for nd in device_counts:
            if nd > plat.max_devices:
                continue
            for nb in batch_counts:
                if collect_metrics:
                    from repro.telemetry import (
                        MetricsRegistry,
                        record_into,
                    )

                    registry = MetricsRegistry()
                    scope = record_into(registry)
                else:
                    registry, scope = None, nullcontext()
                try:
                    with scope:
                        r = ld_gpu(graph, plat, num_devices=nd,
                                   num_batches=nb, collect_stats=False,
                                   **ld_kwargs)
                    cfg = r.stats["config"]
                    result.points.append(SweepPoint(
                        plat.name, nd, cfg.num_batches, r.sim_time,
                        r.iterations,
                        r.timeline.communication_fraction(),
                    ))
                except DeviceOOMError:
                    result.points.append(SweepPoint(
                        plat.name, nd, nb, None, None, None,
                    ))
                if registry is not None:
                    result.cell_snapshots.append(registry.snapshot())
    if collect_metrics:
        from repro.telemetry import aggregate_snapshots

        result.metrics = aggregate_snapshots(result.cell_snapshots)
    return result
