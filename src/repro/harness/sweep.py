"""Configuration sweeps over (devices × batches × platforms).

The paper's reporting protocol is "best over a sweep" (Table I's caption,
Fig. 4's method); this module makes that protocol a first-class object so
the CLI, benches and users run identical grids and get back a tidy table
of every configuration — not just the winner.

Sweeps are cell grids: :func:`sweep_ld_gpu` builds one
:class:`~repro.engine.cells.Cell` per configuration and maps them
through :func:`~repro.engine.cells.run_cells` — serially by default,
process-parallel with ``parallel=N`` (bit-identical results, see
:mod:`repro.harness.parallel`).  A cell that fails — out-of-memory or
any other crash — becomes an ``error`` record and a ``time_s=None``
point instead of killing the grid, mirroring how the paper reports
infeasible runs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable

from repro.engine.cells import Cell, run_cells
from repro.engine.context import RunContext
from repro.engine.record import RunRecord
from repro.gpusim.memory import DeviceOOMError
from repro.gpusim.spec import DGX_A100, PlatformSpec
from repro.graph.csr import CSRGraph
from repro.harness.report import format_table

__all__ = [
    "TABLE1_DEVICE_COUNTS",
    "TABLE1_BATCH_COUNTS",
    "SweepPoint",
    "SweepResult",
    "sweep_cells",
    "sweep_ld_gpu",
]

#: The paper's Table I reporting grid: device counts swept for the
#: best-time protocol (``best_ld_gpu``) and by the full experiments.
TABLE1_DEVICE_COUNTS: tuple[int, ...] = (1, 2, 4, 6, 8)

#: Batch counts of the same protocol — auto-fit plus every studied
#: count below 15 (the caption's "batches < 15").
TABLE1_BATCH_COUNTS: tuple[int | None, ...] = (None, 2, 3, 5, 10, 14)


@dataclass(frozen=True)
class SweepPoint:
    """One configuration's outcome (``time_s`` is None on OOM/error)."""

    platform: str
    num_devices: int
    num_batches: int | None
    time_s: float | None
    iterations: int | None
    comm_fraction: float | None

    @property
    def ok(self) -> bool:
        return self.time_s is not None


@dataclass
class SweepResult:
    """All points of a sweep plus the winner.

    ``records`` holds the full :class:`RunRecord` per cell (aligned
    with ``points``), including ``status="error"`` records for failed
    cells — inspect ``record.error`` to distinguish an OOM from a bug.

    With ``collect_metrics=True`` each cell's telemetry snapshot lands
    in ``cell_snapshots`` (aligned with ``points``; failed cells get an
    empty snapshot) and ``metrics`` holds the sweep-level aggregate —
    histograms (span durations, kernel costs) merged across every cell
    of the grid.
    """

    graph_name: str
    points: list[SweepPoint] = field(default_factory=list)
    records: list[RunRecord] = field(default_factory=list)
    cell_snapshots: list[Any] = field(default_factory=list)
    metrics: Any | None = None

    @property
    def best(self) -> SweepPoint:
        ok = [p for p in self.points if p.ok]
        if not ok:
            raise DeviceOOMError("sweep", 0, 0, 0)
        return min(ok, key=lambda p: p.time_s)

    def render(self) -> str:
        rows = [
            [p.platform, p.num_devices,
             p.num_batches if p.num_batches is not None else "auto",
             p.time_s, p.iterations,
             100.0 * p.comm_fraction if p.comm_fraction is not None
             else None]
            for p in self.points
        ]
        return format_table(
            ["platform", "#GPUs", "#batches", "time (s)", "iters",
             "comm %"],
            rows, floatfmt=".4f",
            title=f"LD-GPU sweep on {self.graph_name}",
        )


def sweep_cells(
    platforms: Iterable[PlatformSpec] = (DGX_A100,),
    device_counts: Iterable[int] = TABLE1_DEVICE_COUNTS,
    batch_counts: Iterable[int | None] = (None,),
    algorithm: str = "ld_gpu",
    **overrides: Any,
) -> list[Cell]:
    """The cell grid of a sweep: platforms × devices × batches.

    Device counts beyond a platform's ``max_devices`` are skipped, as
    in the paper's protocol.  ``overrides`` are forwarded to every
    cell's algorithm call.
    """
    cells: list[Cell] = []
    for plat in platforms:
        for nd in device_counts:
            if nd > plat.max_devices:
                continue
            for nb in batch_counts:
                cells.append(Cell(
                    algorithm,
                    config={"platform": plat, "num_devices": nd,
                            "num_batches": nb},
                    overrides=dict(overrides),
                ))
    return cells


def _point_for(cell: Cell, record: RunRecord) -> SweepPoint:
    plat_name = cell.config["platform"].name
    if not record.ok:
        return SweepPoint(plat_name, cell.config["num_devices"],
                          cell.config["num_batches"], None, None, None)
    # Records served from a run store carry no in-memory result —
    # the communication split reads from the serialised totals either
    # way, so store-resumed sweeps render identical tables.
    from repro.gpusim.timeline import comm_fraction_from_totals

    comm = comm_fraction_from_totals(record.timeline_totals) \
        if record.timeline_totals else None
    return SweepPoint(
        plat_name, record.num_devices, record.num_batches,
        record.sim_time, record.iterations, comm,
    )


def sweep_ld_gpu(
    graph: CSRGraph,
    platforms: Iterable[PlatformSpec] = (DGX_A100,),
    device_counts: Iterable[int] = TABLE1_DEVICE_COUNTS,
    batch_counts: Iterable[int | None] = (None,),
    collect_metrics: bool = False,
    parallel: int = 0,
    seed: int | None = None,
    store: Any = None,
    dataset: str | None = None,
    **ld_kwargs: Any,
) -> SweepResult:
    """Run LD-GPU over the configuration grid.

    Failed configurations (OOM, crashes) become points with
    ``time_s=None`` (rendered '-'), mirroring how the paper reports
    infeasible runs; the failure detail stays on the aligned ``error``
    record in :attr:`SweepResult.records`.

    ``parallel=N`` fans the grid out to N worker processes with results
    bit-identical to the serial path.  With ``collect_metrics=True``
    every cell runs under a fresh
    :class:`~repro.telemetry.MetricsRegistry`; per-cell snapshots and
    the cross-cell aggregate land on the returned :class:`SweepResult`
    (see :attr:`SweepResult.metrics`).  Metrics collection is
    process-local, so it forces serial execution.  ``seed`` sets the
    base of the deterministic per-cell seed derivation (LD-GPU itself
    is deterministic; the seed matters for randomised algorithms run
    through :func:`sweep_cells` grids).  ``store`` (a
    :class:`~repro.store.db.RunStore` or database path) makes the sweep
    durable and resumable: finished configurations are served from the
    store with zero recompute, and an interrupted sweep picks up where
    it left off (``repro-matching store resume``).  ``dataset`` names
    the registry dataset ``graph`` was loaded from, when it was: the
    name lands on the context (and so in each cell's stored config),
    which is what lets ``store resume`` reload the graph for cells
    that received it in-process.
    """
    cells = sweep_cells(platforms, device_counts, batch_counts,
                        collect_stats=False, **ld_kwargs)
    sink = None
    if collect_metrics:
        from repro.engine.sinks import MetricsSink

        if parallel:
            import warnings

            warnings.warn(
                "collect_metrics runs the sweep serially: metric "
                "registries are process-local and cannot report back "
                "from parallel workers",
                RuntimeWarning, stacklevel=2,
            )
            parallel = 0
        if store is not None:
            import warnings

            warnings.warn(
                "collect_metrics disables the run store for this "
                "sweep: store-served cells never execute, so their "
                "per-cell metric snapshots cannot exist",
                RuntimeWarning, stacklevel=2,
            )
            store = None
        sink = MetricsSink()
        ctx = RunContext(seed=seed, dataset=dataset, sinks=(sink,))
    else:
        ctx = RunContext(seed=seed, dataset=dataset)

    records = run_cells(cells, ctx, graph=graph, parallel=parallel,
                        store=store)

    result = SweepResult(graph.name, records=records)
    for cell, record in zip(cells, records):
        result.points.append(_point_for(cell, record))

    if collect_metrics:
        from repro.telemetry import MetricsRegistry, aggregate_snapshots

        ok_snapshots = iter(sink.snapshots)
        for record in records:
            result.cell_snapshots.append(
                next(ok_snapshots) if record.ok
                else MetricsRegistry().snapshot()
            )
        result.metrics = aggregate_snapshots(result.cell_snapshots)
    return result
