"""Registry of the paper's fourteen evaluation graphs and their analogs.

Each entry records the paper's published properties (Table I, left) and a
generator recipe producing a scaled-down graph of the same structural
class.  ``load_dataset`` also returns the *memory-scaled* platforms: device
memory is shrunk by the same factor as the graph, so each analog needs
batching / multiple devices exactly where the original did.

Every dataset also has a ``quality_instance`` — a much smaller graph from
the same generator on which the O(n³) exact blossom solver (the LEMON
stand-in) is tractable; Table II runs on those.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from functools import lru_cache
from typing import Callable

from repro.graph.csr import CSRGraph
from repro.graph.generators import (
    fem_mesh_3d,
    kmer_graph,
    mycielskian_graph,
    powerlaw_cluster_graph,
    queen_mesh,
    rmat_graph,
    similarity_graph,
    uniform_random_graph,
    webcrawl_graph,
)
from repro.gpusim.spec import (CPU_EPYC_7742_2S, CpuSpec, DGX_2, DGX_A100,
                              DGX_A100_PCIE, PlatformSpec)

__all__ = [
    "DatasetSpec",
    "DATASETS",
    "PLATFORMS",
    "load_dataset",
    "scale_factor",
    "scaled_platform",
    "scaled_cpu",
    "small_datasets",
    "large_datasets",
    "quality_instance",
    "warm_graph_cache",
]

SMALL = "SMALL"
LARGE = "LARGE"


@dataclass(frozen=True)
class DatasetSpec:
    """One evaluation graph: paper facts + analog recipe."""

    name: str
    group: str  # SMALL (<=1B edges) or LARGE (>1B edges) in the paper
    paper_vertices: int
    paper_edges: int
    paper_dmax: int
    paper_davg: int
    build: Callable[[], CSRGraph] = field(repr=False)
    build_quality: Callable[[], CSRGraph] = field(repr=False)
    notes: str = ""


def _spec(name, group, pv, pe, dmax, davg, build, build_quality, notes=""):
    return DatasetSpec(name, group, pv, pe, dmax, davg, build,
                       build_quality, notes)


#: Table I's datasets, top to bottom.  Analogs target ~10⁵–10⁶ directed
#: adjacency entries; quality instances target ~10³ vertices.
DATASETS: dict[str, DatasetSpec] = {
    s.name: s
    for s in [
        _spec(
            "AGATHA-2015", LARGE, 184_000_000, 5_800_000_000,
            12_600_000, 63,
            lambda: rmat_graph(15, 24, probs=(0.55, 0.2, 0.2, 0.05),
                               seed=101, name="AGATHA-2015"),
            lambda: rmat_graph(8, 12, probs=(0.55, 0.2, 0.2, 0.05),
                               seed=101, name="AGATHA-2015-q"),
            "biomedical hypothesis graph; extreme hub skew",
        ),
        _spec(
            "uk-2007-05", LARGE, 105_000_000, 3_300_000_000, 975_000, 62,
            lambda: webcrawl_graph(36_000, out_degree=16, seed=102,
                                   name="uk-2007-05"),
            lambda: webcrawl_graph(700, out_degree=8, seed=102,
                                   name="uk-2007-05-q"),
            "LAW web crawl; host-local + hub tail",
        ),
        _spec(
            "webbase-2001", LARGE, 30_000_000, 3_300_000_000,
            2_100_000, 220,
            lambda: webcrawl_graph(12_000, out_degree=44, copy_prob=0.6,
                                   seed=103, name="webbase-2001"),
            lambda: webcrawl_graph(500, out_degree=16, copy_prob=0.6,
                                   seed=103, name="webbase-2001-q"),
            "dense web crawl",
        ),
        _spec(
            "MOLIERE_2016", LARGE, 134_000_000, 2_100_000_000, 68, 32,
            lambda: powerlaw_cluster_graph(30_000, avg_degree=32.0,
                                           exponent=3.5, seed=104,
                                           name="MOLIERE_2016"),
            lambda: powerlaw_cluster_graph(900, avg_degree=12.0,
                                           exponent=3.5, seed=104,
                                           name="MOLIERE_2016-q"),
            "literature graph; mild tail (paper d_max only 68)",
        ),
        _spec(
            "GAP-urand", LARGE, 134_000_000, 2_100_000_000,
            1_500_000, 31,
            lambda: uniform_random_graph(32_768, 510_000, seed=105,
                                         name="GAP-urand"),
            lambda: uniform_random_graph(800, 6_000, seed=105,
                                         name="GAP-urand-q"),
            "uniform random; LD-GPU's best case (45x)",
        ),
        _spec(
            "GAP-kron", LARGE, 118_000_000, 1_900_000_000, 816_000, 17,
            lambda: rmat_graph(16, 8, seed=106, name="GAP-kron"),
            lambda: rmat_graph(9, 5, seed=106, name="GAP-kron-q"),
            "Graph500 Kronecker",
        ),
        _spec(
            "com-Friendster", LARGE, 65_000_000, 1_800_000_000, 5_000, 55,
            lambda: powerlaw_cluster_graph(24_000, avg_degree=42.0,
                                           exponent=2.5, seed=107,
                                           name="com-Friendster"),
            lambda: powerlaw_cluster_graph(800, avg_degree=14.0,
                                           exponent=2.5, seed=107,
                                           name="com-Friendster-q"),
            "social; the paper's ~2000-iteration tail case",
        ),
        _spec(
            "Queen_4147", SMALL, 4_000_000, 317_000_000, 81, 79,
            lambda: queen_mesh(80, radius=4, seed=108, name="Queen_4147"),
            lambda: queen_mesh(24, radius=3, seed=108,
                               name="Queen_4147-q"),
            "3D FEM; regular degree (SR-GPU's best case)",
        ),
        _spec(
            "mycielskian18", SMALL, 196_000, 301_000_000, 98_000, 1530,
            lambda: mycielskian_graph(12, seed=109),
            lambda: mycielskian_graph(8, seed=109,
                                      name="mycielskian8-q"),
            "triangle-free, dense; occupancy outlier (Fig. 11)",
        ),
        _spec(
            "HV15R", SMALL, 2_000_000, 283_000_000, 484, 140,
            lambda: fem_mesh_3d(18, radius=2, seed=110, name="HV15R"),
            lambda: fem_mesh_3d(8, radius=2, seed=110, name="HV15R-q"),
            "CFD matrix; near-regular",
        ),
        _spec(
            "com-Orkut", SMALL, 3_000_000, 234_000_000, 33_000, 76,
            lambda: powerlaw_cluster_graph(7_000, avg_degree=70.0,
                                           exponent=2.2, seed=111,
                                           name="com-Orkut"),
            lambda: powerlaw_cluster_graph(600, avg_degree=16.0,
                                           exponent=2.2, seed=111,
                                           name="com-Orkut-q"),
            "social; heavy hub tail",
        ),
        _spec(
            "kmer_U1a", SMALL, 68_000_000, 139_000_000, 70, 4,
            lambda: kmer_graph(70_000, avg_degree=4.0, seed=112,
                               name="kmer_U1a"),
            lambda: kmer_graph(1_400, avg_degree=4.0, seed=112,
                               name="kmer_U1a-q"),
            "GenBank k-mer; batching study graph (Figs. 6-7)",
        ),
        _spec(
            "kmer_V2a", SMALL, 55_000_000, 117_000_000, 30, 2,
            lambda: kmer_graph(80_000, avg_degree=2.2, seed=113,
                               name="kmer_V2a"),
            lambda: kmer_graph(1_600, avg_degree=2.2, seed=113,
                               name="kmer_V2a-q"),
            "near-pure paths",
        ),
        _spec(
            "mouse_gene", SMALL, 45_000, 28_000_000, 8_000, 642,
            lambda: similarity_graph(2_500, avg_degree=56.0, seed=114,
                                     name="mouse_gene"),
            lambda: similarity_graph(500, avg_degree=24.0, seed=114,
                                     name="mouse_gene-q"),
            "gene coexpression; natural weights; smallest input",
        ),
    ]
}


@lru_cache(maxsize=32)
def load_dataset(name: str) -> CSRGraph:
    """Build (and memoise) the analog graph for a Table I dataset."""
    if name not in DATASETS:
        raise KeyError(
            f"unknown dataset {name!r}; known: {sorted(DATASETS)}"
        )
    return DATASETS[name].build()


@lru_cache(maxsize=32)
def quality_instance(name: str) -> CSRGraph:
    """Build the blossom-tractable quality instance for a dataset."""
    if name not in DATASETS:
        raise KeyError(name)
    return DATASETS[name].build_quality()


def scale_factor(name: str, graph: CSRGraph | None = None) -> float:
    """(analog directed edges) / (paper directed edges) for a dataset."""
    spec = DATASETS[name]
    g = graph if graph is not None else load_dataset(name)
    return g.num_directed_edges / (2 * spec.paper_edges)


def scaled_platform(name: str, platform: PlatformSpec = DGX_A100,
                    graph: CSRGraph | None = None) -> PlatformSpec:
    """Platform shrunk by the analog's scale factor.

    Device memory *and* every bandwidth are multiplied by
    (analog directed edges) / (paper directed edges); latencies stay real.
    Two consequences: (i) the edges-to-device-memory ratio — which decides
    how many devices a partition needs and whether batching kicks in —
    matches the paper's runs of the original graph, and (ii) the analog
    operates in the same bandwidth-versus-latency regime, so modeled times
    land near the paper's absolute seconds.

    Occupancy capacity is scaled by the *vertex* ratio instead, so the
    frontier under-fills the simulated device at the same fraction of the
    run as the original would (Fig. 11).
    """
    spec = DATASETS[name]
    g = graph if graph is not None else load_dataset(name)
    plat = platform.scaled(scale_factor(name, g))
    vfactor = g.num_vertices / spec.paper_vertices
    device = plat.device.with_occupancy_capacity(
        max(platform.device.hw_warps * vfactor, 1.0)
    )
    return replace(plat, device=device)


def scaled_cpu(name: str, cpu: CpuSpec = CPU_EPYC_7742_2S,
               graph: CSRGraph | None = None) -> CpuSpec:
    """The SR-OMP host model shrunk by the same factor (see
    :func:`scaled_platform`)."""
    return cpu.scaled(scale_factor(name, graph))


def warm_graph_cache(names=None, quality: bool = False, cache=None):
    """Pre-stage dataset analogs into the on-disk graph cache.

    Builds each named dataset (default: all of Table I) through the
    memoised loaders and snapshots it into the fingerprint-keyed
    :class:`~repro.harness.cache.GraphCache`, so a subsequent
    ``run_cells(..., parallel=N)`` grid — possibly in a different
    process, or a later session — pays zero generation cost.  Returns
    the cache used.
    """
    from repro.harness.cache import GraphCache

    if cache is None:
        cache = GraphCache()
    for name in (names if names is not None else list(DATASETS)):
        g = quality_instance(name) if quality else load_dataset(name)
        cache.store(g)
    return cache


def small_datasets() -> list[str]:
    """Names of the SMALL group, in Table I order."""
    return [s.name for s in DATASETS.values() if s.group == SMALL]


def large_datasets() -> list[str]:
    """Names of the LARGE group, in Table I order."""
    return [s.name for s in DATASETS.values() if s.group == LARGE]


#: Platforms of the paper, re-exported for harness callers (the CLI's
#: ``--platform`` choices come from here).
PLATFORMS: dict[str, PlatformSpec] = {
    "DGX-A100": DGX_A100,
    "DGX-2": DGX_2,
    "DGX-A100-PCIe": DGX_A100_PCIE,
}
