"""Benchmark harness: dataset registry, runners, experiments, reports.

``repro.harness.experiments`` has one entry point per table/figure of the
paper's evaluation section; the ``benchmarks/`` tree and the CLI both call
into it.  See DESIGN.md §4 for the experiment index.

Grid execution lives in :mod:`repro.engine.cells` (``Cell`` /
``run_cells``); this package adds the process-parallel executor
(:mod:`repro.harness.parallel`), the fingerprint-keyed on-disk
:class:`~repro.harness.cache.GraphCache`, the zero-copy shared-memory
graph plane (:mod:`repro.harness.shm`), and the benchmark-regression
gate (:mod:`repro.harness.bench`).
"""

from repro.harness.bench import (
    SUITES,
    compare_reports,
    run_bench,
    validate_bench_report,
    write_bench_report,
)
from repro.harness.cache import GraphCache, default_cache_root
from repro.harness.shm import (
    SharedGraphRegistry,
    SharedGraphSegment,
    default_registry,
    list_orphan_segments,
    shm_enabled,
    unlink_segment,
)
from repro.harness.datasets import (
    DATASETS,
    PLATFORMS,
    DatasetSpec,
    load_dataset,
    scaled_cpu,
    scaled_platform,
    small_datasets,
    large_datasets,
    quality_instance,
    warm_graph_cache,
)
from repro.harness.runners import ALGORITHMS, run_algorithm, best_ld_gpu
from repro.harness.sweep import (
    TABLE1_BATCH_COUNTS,
    TABLE1_DEVICE_COUNTS,
    sweep_cells,
    sweep_ld_gpu,
)
from repro.harness.report import format_table

__all__ = [
    "DATASETS",
    "PLATFORMS",
    "DatasetSpec",
    "load_dataset",
    "scaled_cpu",
    "scaled_platform",
    "small_datasets",
    "large_datasets",
    "quality_instance",
    "warm_graph_cache",
    "ALGORITHMS",
    "run_algorithm",
    "best_ld_gpu",
    "TABLE1_DEVICE_COUNTS",
    "TABLE1_BATCH_COUNTS",
    "sweep_cells",
    "sweep_ld_gpu",
    "GraphCache",
    "default_cache_root",
    "SharedGraphRegistry",
    "SharedGraphSegment",
    "default_registry",
    "list_orphan_segments",
    "shm_enabled",
    "unlink_segment",
    "SUITES",
    "run_bench",
    "write_bench_report",
    "validate_bench_report",
    "compare_reports",
    "format_table",
]
