"""Benchmark harness: dataset registry, runners, experiments, reports.

``repro.harness.experiments`` has one entry point per table/figure of the
paper's evaluation section; the ``benchmarks/`` tree and the CLI both call
into it.  See DESIGN.md §4 for the experiment index.
"""

from repro.harness.datasets import (
    DATASETS,
    DatasetSpec,
    load_dataset,
    small_datasets,
    large_datasets,
    quality_instance,
)
from repro.harness.runners import run_algorithm, best_ld_gpu
from repro.harness.report import format_table

__all__ = [
    "DATASETS",
    "DatasetSpec",
    "load_dataset",
    "small_datasets",
    "large_datasets",
    "quality_instance",
    "run_algorithm",
    "best_ld_gpu",
    "format_table",
]
