"""Benchmark harness: dataset registry, runners, experiments, reports.

``repro.harness.experiments`` has one entry point per table/figure of the
paper's evaluation section; the ``benchmarks/`` tree and the CLI both call
into it.  See DESIGN.md §4 for the experiment index.
"""

from repro.harness.datasets import (
    DATASETS,
    PLATFORMS,
    DatasetSpec,
    load_dataset,
    scaled_cpu,
    scaled_platform,
    small_datasets,
    large_datasets,
    quality_instance,
)
from repro.harness.runners import ALGORITHMS, run_algorithm, best_ld_gpu
from repro.harness.sweep import (
    TABLE1_BATCH_COUNTS,
    TABLE1_DEVICE_COUNTS,
    sweep_ld_gpu,
)
from repro.harness.report import format_table

__all__ = [
    "DATASETS",
    "PLATFORMS",
    "DatasetSpec",
    "load_dataset",
    "scaled_cpu",
    "scaled_platform",
    "small_datasets",
    "large_datasets",
    "quality_instance",
    "ALGORITHMS",
    "run_algorithm",
    "best_ld_gpu",
    "TABLE1_DEVICE_COUNTS",
    "TABLE1_BATCH_COUNTS",
    "sweep_ld_gpu",
    "format_table",
]
