"""Benchmark suites with a committed-baseline regression gate.

The paper's claims are *relative* — LD-GPU beats SR-GPU here, scaling
curves bend there — so the quantity worth gating in CI is the modeled
``sim_time``: it is a deterministic function of (graph, configuration,
cost model) and any drift means the cost model or an algorithm changed,
not that the CI machine was busy.  Wall-clock medians ride along as
informational fields but are never gated.

Protocol: every workload of a suite runs ``repeats`` times through
:func:`~repro.engine.cells.run_cells` (so ``parallel=N`` and the graph
cache apply), medians over the repeats land in a ``BENCH_<suite>.json``
document at the repository root, and :func:`compare_reports` checks it
against a committed baseline (``benchmarks/baseline_<suite>.json``)
with a relative tolerance.  ``repro-matching bench`` is the CLI face;
the CI ``bench-smoke`` job fails on any regression beyond tolerance.
"""

from __future__ import annotations

import json
import statistics
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

from repro.engine.cells import Cell, run_cells

__all__ = [
    "BENCH_SCHEMA_VERSION",
    "Workload",
    "SUITES",
    "run_bench",
    "write_bench_report",
    "validate_bench_report",
    "compare_reports",
    "bench_report_path",
]

BENCH_SCHEMA_VERSION = 1


@dataclass(frozen=True)
class Workload:
    """One benchmarked configuration (fixed algorithm/dataset/config)."""

    name: str
    algorithm: str
    dataset: str
    quality: bool = True
    config: dict[str, Any] = field(default_factory=dict)
    overrides: dict[str, Any] = field(default_factory=dict)

    def cell(self) -> Cell:
        return Cell(self.algorithm, dataset=self.dataset,
                    quality=self.quality, config=dict(self.config),
                    overrides=dict(self.overrides),
                    label=self.name)


#: Benchmark suites.  ``smoke`` runs on the tiny blossom-tractable
#: quality instances so the whole suite (x repeats) costs seconds —
#: small enough for a per-push CI gate while still crossing every
#: interesting code path: multi-device LD-GPU, forced batching, both
#: suitor baselines and a sequential reference.
SUITES: dict[str, tuple[Workload, ...]] = {
    "smoke": (
        Workload("ld_gpu-1dev", "ld_gpu", "GAP-kron",
                 config={"num_devices": 1},
                 overrides={"collect_stats": False}),
        Workload("ld_gpu-4dev", "ld_gpu", "GAP-kron",
                 config={"num_devices": 4},
                 overrides={"collect_stats": False}),
        Workload("ld_gpu-stream", "ld_gpu", "mouse_gene",
                 config={"num_devices": 2, "num_batches": 3},
                 overrides={"collect_stats": False,
                            "force_streaming": True}),
        Workload("sr_gpu", "sr_gpu", "GAP-kron"),
        Workload("sr_omp", "sr_omp", "mouse_gene"),
        Workload("ld_seq", "ld_seq", "mouse_gene"),
    ),
}


def _median(values: list[float]) -> float | None:
    vals = [v for v in values if v is not None]
    return statistics.median(vals) if vals else None


def run_bench(
    suite: str = "smoke",
    repeats: int = 3,
    parallel: int = 0,
    cache: Any = None,
) -> dict[str, Any]:
    """Run a suite; returns the ``BENCH_*.json`` document (schema v1).

    Every workload runs ``repeats`` times; ``median_sim_time_s`` (the
    gated metric — deterministic modeled seconds) and
    ``median_wall_time_s`` (informational) are medians over the repeats.
    A crashing workload reports ``status="error"`` with the error type
    instead of killing the suite.
    """
    if suite not in SUITES:
        raise KeyError(f"unknown bench suite {suite!r}; "
                       f"have {sorted(SUITES)}")
    if repeats < 1:
        raise ValueError("repeats must be >= 1")
    workloads = SUITES[suite]
    cells = [w.cell() for w in workloads for _ in range(repeats)]
    records = run_cells(cells, parallel=parallel, cache=cache)

    entries = []
    for i, w in enumerate(workloads):
        group = records[i * repeats:(i + 1) * repeats]
        ok = [r for r in group if r.ok]
        entry: dict[str, Any] = {
            "name": w.name,
            "algorithm": w.algorithm,
            "dataset": w.dataset,
            "status": "ok" if len(ok) == len(group) else "error",
            "median_sim_time_s": _median([r.sim_time for r in ok]),
            "median_wall_time_s": _median([r.wall_time_s for r in ok]),
            "weight": ok[0].weight if ok else None,
            "iterations": ok[0].iterations if ok else None,
        }
        if entry["status"] == "error":
            bad = next(r for r in group if not r.ok)
            entry["error"] = {"type": bad.error["type"],
                              "message": bad.error["message"]}
        entries.append(entry)

    from repro.harness.cache import cache_disabled, default_cache_root
    from repro.telemetry.provenance import build_manifest

    used_cache = None
    if parallel and cache is not False:
        used_cache = str(cache.root) if cache is not None \
            else (None if cache_disabled() else str(default_cache_root()))

    return {
        "schema": BENCH_SCHEMA_VERSION,
        "suite": suite,
        "repeats": repeats,
        "workloads": entries,
        "provenance": build_manifest(dataset_cache=used_cache),
    }


def bench_report_path(suite: str, root: "Path | str | None" = None) -> Path:
    """Where a suite's report lands: ``BENCH_<suite>.json`` under
    ``root`` (default: the current directory, i.e. the repo root when
    run from CI)."""
    base = Path(root) if root is not None else Path.cwd()
    return base / f"BENCH_{suite}.json"


def write_bench_report(report: dict[str, Any],
                       path: "Path | str | None" = None) -> Path:
    """Write ``report`` to ``path`` (default
    :func:`bench_report_path`)."""
    out = Path(path) if path is not None \
        else bench_report_path(report["suite"])
    with open(out, "wt") as fh:
        json.dump(report, fh, indent=1)
        fh.write("\n")
    return out


def validate_bench_report(doc: dict[str, Any]) -> None:
    """Raise ``ValueError`` unless ``doc`` is a well-formed v1 report."""
    if not isinstance(doc, dict):
        raise ValueError("bench report must be a JSON object")
    if doc.get("schema") != BENCH_SCHEMA_VERSION:
        raise ValueError(
            f"bench report schema {doc.get('schema')!r} != "
            f"{BENCH_SCHEMA_VERSION}")
    for key in ("suite", "repeats", "workloads", "provenance"):
        if key not in doc:
            raise ValueError(f"bench report missing {key!r}")
    if not isinstance(doc["workloads"], list) or not doc["workloads"]:
        raise ValueError("bench report has no workloads")
    for w in doc["workloads"]:
        for key in ("name", "algorithm", "dataset", "status",
                    "median_sim_time_s", "median_wall_time_s"):
            if key not in w:
                raise ValueError(
                    f"workload {w.get('name', '?')!r} missing {key!r}")
        if w["status"] == "ok" and not isinstance(
                w["median_sim_time_s"], (int, float, type(None))):
            raise ValueError(
                f"workload {w['name']!r}: median_sim_time_s must be "
                "numeric or null")


def compare_reports(
    current: dict[str, Any],
    baseline: dict[str, Any],
    tolerance: float = 0.05,
) -> list[str]:
    """Regressions of ``current`` against ``baseline``.

    Returns human-readable problem strings (empty list = gate passes):
    a workload whose gated metric (``median_sim_time_s``) exceeds the
    baseline by more than ``tolerance`` (relative), went from ok to
    error, or disappeared.  Faster-than-baseline and wall-clock changes
    never fail the gate; new workloads without a baseline entry are
    reported as advisory ``"new workload"`` lines only when the
    baseline suite matches.
    """
    problems: list[str] = []
    if current.get("suite") != baseline.get("suite"):
        problems.append(
            f"suite mismatch: current {current.get('suite')!r} vs "
            f"baseline {baseline.get('suite')!r}")
        return problems
    cur = {w["name"]: w for w in current["workloads"]}
    base = {w["name"]: w for w in baseline["workloads"]}
    for name, b in base.items():
        c = cur.get(name)
        if c is None:
            problems.append(f"{name}: workload missing from current run")
            continue
        if b["status"] == "ok" and c["status"] != "ok":
            err = c.get("error", {})
            problems.append(
                f"{name}: now failing ({err.get('type', 'unknown')}: "
                f"{err.get('message', '')})")
            continue
        bt, ct = b["median_sim_time_s"], c["median_sim_time_s"]
        if bt is None or ct is None:
            continue
        if ct > bt * (1.0 + tolerance):
            problems.append(
                f"{name}: median_sim_time_s {ct:.6g}s exceeds baseline "
                f"{bt:.6g}s by more than {100 * tolerance:.1f}%")
    return problems
