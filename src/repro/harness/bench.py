"""Benchmark suites with a committed-baseline regression gate.

The paper's claims are *relative* — LD-GPU beats SR-GPU here, scaling
curves bend there — so the quantity worth gating in CI is the modeled
``sim_time``: it is a deterministic function of (graph, configuration,
cost model) and any drift means the cost model or an algorithm changed,
not that the CI machine was busy.  Wall-clock medians ride along as
informational fields but are never gated.

Protocol: every workload of a suite runs ``repeats`` times through
:func:`~repro.engine.cells.run_cells` (so ``parallel=N`` and the graph
cache apply), medians over the repeats land in a ``BENCH_<suite>.json``
document at the repository root, and :func:`compare_reports` checks it
against a committed baseline (``benchmarks/baseline_<suite>.json``)
with a relative tolerance.  ``repro-matching bench`` is the CLI face;
the CI ``bench-smoke`` job fails on any regression beyond tolerance.
"""

from __future__ import annotations

import json
import statistics
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

from repro.engine.cells import Cell, run_cells

__all__ = [
    "BENCH_SCHEMA_VERSION",
    "Workload",
    "SUITES",
    "run_bench",
    "write_bench_report",
    "validate_bench_report",
    "compare_reports",
    "bench_report_path",
]

BENCH_SCHEMA_VERSION = 1


@dataclass(frozen=True)
class Workload:
    """One benchmarked configuration (fixed algorithm/dataset/config).

    The input graph is either a registry ``dataset`` (the default) or,
    for stress workloads with no registry analog, a module-level
    ``build`` callable (see :class:`~repro.engine.cells.Cell`).
    """

    name: str
    algorithm: str
    dataset: str | None = None
    quality: bool = True
    config: dict[str, Any] = field(default_factory=dict)
    overrides: dict[str, Any] = field(default_factory=dict)
    build: Any = field(default=None, repr=False)

    def cell(self, replicate: int | None = None,
             suite: str | None = None) -> Cell:
        # Distinct replicate indices keep bench repeats individually
        # addressable in a run store (identical cells would collapse
        # onto one fingerprint and repeats 2..N would be store hits).
        # A suite-qualified label ("<suite>:<name>") makes stored bench
        # cells discoverable by the trajectory layer
        # (:mod:`repro.analysis.trajectory`) via a label-prefix query.
        label = f"{suite}:{self.name}" if suite else self.name
        return Cell(self.algorithm, dataset=self.dataset,
                    quality=self.quality, build=self.build,
                    config=dict(self.config),
                    overrides=dict(self.overrides),
                    label=label, replicate=replicate)


# ------------------------------------------------------------------ #
# pointing stress graphs
# ------------------------------------------------------------------ #
#
# The ``pointing`` suite measures the two pointing engines
# (:mod:`repro.matching.pointer_index`) where their costs actually
# diverge.  The registry analogs converge in <= 10 rounds with a
# geometrically shrinking frontier, so total segment re-scanning is only
# ~1.7x |E| and the index engine's one-time sorted-adjacency build
# dominates.  Pointing-dominated instances are the tie-heavy ones: with
# equal weights the (weight, eid) tiebreak serialises locally dominant
# matching — a clique matches one pair per round (k/2 rounds over a
# full-size frontier, Theta(k^3) segment re-scanning vs the index
# engine's amortised O(k^2)) and a path matches right-to-left (n/2
# rounds dominated by per-round overhead).  Module-level zero-argument
# builders so ``parallel=N`` can pickle them by reference.


def _tie_clique(k: int, name: str):
    import numpy as np

    from repro.graph.builders import from_coo

    u, v = np.triu_indices(k, 1)
    return from_coo(u, v, np.ones(len(u)), num_vertices=k, name=name)


def tie_clique_500():
    """K_500, all weights equal: 250 pointing rounds, full frontier."""
    return _tie_clique(500, "tie-clique-500")


def tie_clique_300():
    """K_300, all weights equal (LD-GPU sized: fits 2 devices x 2
    batches without streaming)."""
    return _tie_clique(300, "tie-clique-300")


def tie_path_6000():
    """P_6000, all weights equal: one match per round, tiny frontier —
    isolates per-round pointing overhead."""
    import numpy as np

    from repro.graph.builders import from_coo

    u = np.arange(5999)
    return from_coo(u, u + 1, np.ones(5999), num_vertices=6000,
                    name="tie-path-6000")


def tie_path_3000():
    """P_3000, all weights equal: n/2 matching rounds over a tiny
    pointing frontier — the matching phase dominates, so the full-scan
    oracle pays Theta(n^2 / 2) host probes where the delta engine pays
    O(m + n)."""
    import numpy as np

    from repro.graph.builders import from_coo

    u = np.arange(2999)
    return from_coo(u, u + 1, np.ones(2999), num_vertices=3000,
                    name="tie-path-3000")


def _coreset_overrides(dataset: str, shards: int) -> dict[str, Any]:
    """Coreset workload kwargs: fixed partition seed + the dataset ref
    the coordinator hands down so shard cells stay store-resumable."""
    return {"num_shards": shards, "seed": 1,
            "dataset": dataset, "quality": True}


def _dynamic_overrides(engine: str, num_batches: int,
                       batch_size: int) -> dict[str, Any]:
    """Batch-dynamic workload kwargs.  The stream seed rides in
    overrides so every replicate applies the identical update stream
    (the matching itself is deterministic either way)."""
    return {"stream_engine": engine, "num_batches": num_batches,
            "batch_size": batch_size, "seed": 5}


#: Benchmark suites.  ``smoke`` runs on the tiny blossom-tractable
#: quality instances so the whole suite (x repeats) costs seconds —
#: small enough for a per-push CI gate while still crossing every
#: interesting code path: multi-device LD-GPU, forced batching, both
#: suitor baselines and a sequential reference.  ``pointing`` pits the
#: two pointing engines against each other: tie-heavy stress graphs
#: (where re-pointing dominates and the index engine wins on wall
#: time) plus one full-size analog pair recording the build-dominated
#: regime honestly; sim_time stays the gated metric and is engine-
#: independent by construction.  ``graph_plane`` guards the PR-6
#: surfaces: matching-phase host work (``host_entries_scanned`` is
#: deterministic, so it is gated like sim_time wherever the baseline
#: recorded it) on round-heavy tie paths where the SetMates full scan
#: is Theta(n * rounds), and — via the report's ``staging`` block — the
#: zero-copy warm-start claim that attaching a shared-memory segment
#: beats reloading the ``.npz`` snapshot.
SUITES: dict[str, tuple[Workload, ...]] = {
    "smoke": (
        Workload("ld_gpu-1dev", "ld_gpu", "GAP-kron",
                 config={"num_devices": 1},
                 overrides={"collect_stats": False}),
        Workload("ld_gpu-4dev", "ld_gpu", "GAP-kron",
                 config={"num_devices": 4},
                 overrides={"collect_stats": False}),
        Workload("ld_gpu-stream", "ld_gpu", "mouse_gene",
                 config={"num_devices": 2, "num_batches": 3},
                 overrides={"collect_stats": False,
                            "force_streaming": True}),
        Workload("sr_gpu", "sr_gpu", "GAP-kron"),
        Workload("sr_omp", "sr_omp", "mouse_gene"),
        Workload("ld_seq", "ld_seq", "mouse_gene"),
    ),
    "pointing": (
        Workload("ld_seq-tie-clique-index", "ld_seq",
                 build=tie_clique_500, quality=False,
                 overrides={"engine": "index"}),
        Workload("ld_seq-tie-clique-segment", "ld_seq",
                 build=tie_clique_500, quality=False,
                 overrides={"engine": "segment"}),
        Workload("ld_seq-tie-path-index", "ld_seq",
                 build=tie_path_6000, quality=False,
                 overrides={"engine": "index"}),
        Workload("ld_seq-tie-path-segment", "ld_seq",
                 build=tie_path_6000, quality=False,
                 overrides={"engine": "segment"}),
        Workload("ld_gpu-tie-clique-index", "ld_gpu",
                 build=tie_clique_300, quality=False,
                 config={"num_devices": 2, "num_batches": 2},
                 overrides={"engine": "index",
                            "collect_stats": False}),
        Workload("ld_gpu-tie-clique-segment", "ld_gpu",
                 build=tie_clique_300, quality=False,
                 config={"num_devices": 2, "num_batches": 2},
                 overrides={"engine": "segment",
                            "collect_stats": False}),
        Workload("ld_seq-GAP-kron-index", "ld_seq", "GAP-kron",
                 quality=False, overrides={"engine": "index"}),
        Workload("ld_seq-GAP-kron-segment", "ld_seq", "GAP-kron",
                 quality=False, overrides={"engine": "segment"}),
    ),
    "graph_plane": (
        Workload("ld_seq-tie-path-index", "ld_seq",
                 build=tie_path_3000, quality=False,
                 overrides={"engine": "index"}),
        Workload("ld_seq-tie-path-segment", "ld_seq",
                 build=tie_path_3000, quality=False,
                 overrides={"engine": "segment"}),
        Workload("ld_gpu-tie-clique-index", "ld_gpu",
                 build=tie_clique_300, quality=False,
                 config={"num_devices": 2, "num_batches": 2},
                 overrides={"engine": "index"}),
        Workload("ld_gpu-tie-clique-segment", "ld_gpu",
                 build=tie_clique_300, quality=False,
                 config={"num_devices": 2, "num_batches": 2},
                 overrides={"engine": "segment"}),
    ),
    # Shards x graph scale on the blossom-tractable quality instances,
    # with exact blossom references on the same graphs so run_bench can
    # attach approx_ratio_vs_blossom to every coreset entry.  The seed
    # rides in overrides (not ctx config) so every replicate partitions
    # identically.  Gated: peak_shard_edges may not grow (the MPC
    # memory-per-machine budget) and the ratio may not shrink beyond
    # tolerance.
    "coreset": (
        Workload("blossom-GAP-kron", "blossom", "GAP-kron"),
        Workload("blossom-mouse_gene", "blossom", "mouse_gene"),
        Workload("coreset_greedy-GAP-kron-2", "coreset_greedy",
                 "GAP-kron",
                 overrides=_coreset_overrides("GAP-kron", 2)),
        Workload("coreset_greedy-GAP-kron-4", "coreset_greedy",
                 "GAP-kron",
                 overrides=_coreset_overrides("GAP-kron", 4)),
        Workload("coreset_greedy-GAP-kron-8", "coreset_greedy",
                 "GAP-kron",
                 overrides=_coreset_overrides("GAP-kron", 8)),
        Workload("coreset_ld-GAP-kron-4", "coreset_ld", "GAP-kron",
                 overrides=_coreset_overrides("GAP-kron", 4)),
        Workload("coreset_greedy-mouse_gene-4", "coreset_greedy",
                 "mouse_gene",
                 overrides=_coreset_overrides("mouse_gene", 4)),
        Workload("coreset_ld-mouse_gene-8", "coreset_ld", "mouse_gene",
                 overrides=_coreset_overrides("mouse_gene", 8)),
    ),
    # Batch-dynamic streaming (:mod:`repro.streaming`): every
    # ``-incremental`` workload has a ``-recompute`` twin on the
    # identical seeded update stream.  Gated: ``host_entries_scanned``
    # and ``affected_vertices`` (deterministic, vs the committed
    # baseline) and the machine-relative update-latency
    # ``speedup_vs_recompute`` floor — local repair must beat
    # from-scratch recompute wherever it runs, the wall-clock analogue
    # of the staging gate.  ``median_update_latency_s`` itself rides
    # along informationally, never gated absolutely.
    "dynamic": (
        Workload("dynamic_ld-mouse_gene-b16-incremental", "dynamic_ld",
                 "mouse_gene", quality=False,
                 overrides=_dynamic_overrides("incremental", 12, 16)),
        Workload("dynamic_ld-mouse_gene-b16-recompute", "dynamic_ld",
                 "mouse_gene", quality=False,
                 overrides=_dynamic_overrides("recompute", 12, 16)),
        # Small batches on the tiny quality instance: the affected
        # frontier stays well below |V|, so the speedup margin is
        # robust even where per-batch recompute is already cheap.
        Workload("dynamic_ld-mouse_gene-q-b8-incremental",
                 "dynamic_ld", "mouse_gene",
                 overrides=_dynamic_overrides("incremental", 12, 8)),
        Workload("dynamic_ld-mouse_gene-q-b8-recompute",
                 "dynamic_ld", "mouse_gene",
                 overrides=_dynamic_overrides("recompute", 12, 8)),
    ),
}


def _median(values: list[float]) -> float | None:
    vals = [v for v in values if v is not None]
    return statistics.median(vals) if vals else None


def _measure_staging(build: Any, repeats: int) -> dict[str, Any]:
    """Warm-start comparison: shared-memory attach vs ``.npz`` reload.

    Stages one graph both ways a worker would see it — snapshot to a
    throwaway :class:`~repro.harness.cache.GraphCache` and reload, vs
    publish once and attach through a *fresh*
    :class:`~repro.harness.shm.SharedGraphRegistry` (so every attach is
    a cold map, not the owner's memoised fast path) — and reports the
    medians plus their ratio.  The npz side benefits from the per-
    process verification memo after the first load, so the reported
    ``speedup`` is a conservative lower bound on what a spawned worker
    actually saves.  ``speedup`` is ``None`` where the shared-memory
    plane is unavailable.
    """
    import tempfile
    import time

    from repro.harness.cache import GraphCache
    from repro.harness.shm import SharedGraphRegistry, shm_enabled

    graph = build()
    out: dict[str, Any] = {"graph": graph.name,
                           "median_shm_attach_s": None,
                           "speedup": None}
    with tempfile.TemporaryDirectory(prefix="repro-bench-stage-") as td:
        cache = GraphCache(td)
        path, fingerprint = cache.store(graph)
        npz_times = []
        for _ in range(repeats):
            t0 = time.perf_counter()
            cache.load(path, fingerprint)
            npz_times.append(time.perf_counter() - t0)
        out["median_npz_load_s"] = statistics.median(npz_times)

        if not shm_enabled():
            return out
        owner = SharedGraphRegistry()
        attachers = []  # keep views alive until after the unlink
        try:
            segment = owner.publish(graph, fingerprint)
            shm_times = []
            for _ in range(repeats):
                registry = SharedGraphRegistry()
                t0 = time.perf_counter()
                registry.attach(segment)
                shm_times.append(time.perf_counter() - t0)
                attachers.append(registry)
        finally:
            owner.unlink_all()
        out["median_shm_attach_s"] = statistics.median(shm_times)
        if out["median_shm_attach_s"] > 0:
            out["speedup"] = (out["median_npz_load_s"]
                              / out["median_shm_attach_s"])
    return out


def run_bench(
    suite: str = "smoke",
    repeats: int = 3,
    parallel: int = 0,
    cache: Any = None,
    store: Any = None,
) -> dict[str, Any]:
    """Run a suite; returns the ``BENCH_*.json`` document (schema v1).

    Every workload runs ``repeats`` times; ``median_sim_time_s`` (the
    gated metric — deterministic modeled seconds) and
    ``median_wall_time_s`` (informational) are medians over the repeats,
    as is ``host_entries_scanned`` (deterministic host-engine work,
    gated when the baseline recorded it; null under
    ``collect_stats=False``).  A crashing workload reports
    ``status="error"`` with the error type instead of killing the
    suite.  The ``graph_plane`` suite additionally attaches a
    ``staging`` block (:func:`_measure_staging`) comparing shared-
    memory attach against ``.npz`` reload for a representative graph.

    ``store`` (a :class:`~repro.store.db.RunStore` or database path)
    appends every (workload, replicate) record to a durable, queryable
    history keyed by content fingerprint instead of only overwriting
    ``BENCH_<suite>.json`` — re-running an unchanged suite against the
    same store serves every cell from history with zero recompute.
    """
    if suite not in SUITES:
        raise KeyError(f"unknown bench suite {suite!r}; "
                       f"have {sorted(SUITES)}")
    if repeats < 1:
        raise ValueError("repeats must be >= 1")
    workloads = SUITES[suite]
    cells = [w.cell(replicate=k, suite=suite) for w in workloads
             for k in range(repeats)]
    records = run_cells(cells, parallel=parallel, cache=cache,
                        store=store)

    entries = []
    for i, w in enumerate(workloads):
        group = records[i * repeats:(i + 1) * repeats]
        ok = [r for r in group if r.ok]
        entry: dict[str, Any] = {
            "name": w.name,
            "algorithm": w.algorithm,
            "dataset": w.dataset,
            "status": "ok" if len(ok) == len(group) else "error",
            "median_sim_time_s": _median([r.sim_time for r in ok]),
            "median_wall_time_s": _median([r.wall_time_s for r in ok]),
            "weight": ok[0].weight if ok else None,
            "iterations": ok[0].iterations if ok else None,
            # Deterministic like sim_time, so gated wherever the
            # baseline recorded it (null when the algorithm ran with
            # collect_stats=False).
            "host_entries_scanned": _median(
                [(r.extra or {}).get("host_entries_scanned")
                 for r in ok]),
        }
        # Coreset memory discipline: the shard/merge footprints are
        # deterministic functions of (graph, seed, k), gated like
        # sim_time wherever the baseline recorded them.
        if ok and (ok[0].extra or {}).get("peak_shard_edges") \
                is not None:
            entry["peak_shard_edges"] = ok[0].extra["peak_shard_edges"]
            entry["merge_edges"] = ok[0].extra.get("merge_edges")
        # Batch-dynamic workloads: the update latency is wall-clock
        # (informational, machine-dependent); affected_vertices is a
        # deterministic function of (graph, stream) and gated like
        # host_entries_scanned.
        if ok and (ok[0].extra or {}).get("stream_batches") is not None:
            entry["median_update_latency_s"] = _median(
                [(r.extra or {}).get("median_update_latency_s")
                 for r in ok])
            entry["affected_vertices"] = \
                (ok[0].extra or {}).get("affected_vertices")
            entry["stream_batches"] = ok[0].extra["stream_batches"]
        if entry["status"] == "error":
            bad = next(r for r in group if not r.ok)
            entry["error"] = {"type": bad.error["type"],
                              "message": bad.error["message"]}
        entries.append(entry)

    if suite == "coreset":
        # Pair every coreset entry with the exact blossom reference on
        # the same dataset: the ratio is the paper-facing quality claim
        # (>= 3/8 guaranteed, ~0.8 observed) and is gated against
        # decreases.
        exact = {e["dataset"]: e["weight"] for e in entries
                 if e["algorithm"] == "blossom"
                 and e["status"] == "ok"}
        for e in entries:
            if "peak_shard_edges" not in e:
                continue
            ref = exact.get(e["dataset"])
            e["approx_ratio_vs_blossom"] = (
                e["weight"] / ref
                if ref and e["status"] == "ok" else None)

    if suite == "dynamic":
        # Pair every incremental workload with its recompute twin on
        # the same stream: the per-update latency ratio is the
        # paper-facing claim (local repair amortised vs O(m) per
        # batch) and its >= 1.0 floor is gated machine-relatively.
        by_name = {e["name"]: e for e in entries}
        for e in entries:
            if not e["name"].endswith("-incremental"):
                continue
            twin = by_name.get(
                e["name"][:-len("incremental")] + "recompute")
            if twin is None or e["status"] != "ok" \
                    or twin["status"] != "ok":
                continue
            inc_l = e.get("median_update_latency_s")
            rec_l = twin.get("median_update_latency_s")
            if inc_l and rec_l:
                e["speedup_vs_recompute"] = rec_l / inc_l

    from repro.harness.cache import cache_disabled, default_cache_root
    from repro.telemetry.provenance import build_manifest

    used_cache = None
    if parallel and cache is not False:
        used_cache = str(cache.root) if cache is not None \
            else (None if cache_disabled() else str(default_cache_root()))
    used_store = None
    if store is not None:
        used_store = str(store.path) if hasattr(store, "path") \
            else str(store)

    report: dict[str, Any] = {
        "schema": BENCH_SCHEMA_VERSION,
        "suite": suite,
        "repeats": repeats,
        "workloads": entries,
        "provenance": build_manifest(dataset_cache=used_cache,
                                     run_store=used_store),
    }
    if suite == "graph_plane":
        report["staging"] = _measure_staging(tie_path_3000,
                                             max(repeats, 3))
    return report


def bench_report_path(suite: str, root: "Path | str | None" = None) -> Path:
    """Where a suite's report lands: ``BENCH_<suite>.json`` under
    ``root`` (default: the current directory, i.e. the repo root when
    run from CI)."""
    base = Path(root) if root is not None else Path.cwd()
    return base / f"BENCH_{suite}.json"


def write_bench_report(report: dict[str, Any],
                       path: "Path | str | None" = None) -> Path:
    """Write ``report`` to ``path`` (default
    :func:`bench_report_path`)."""
    out = Path(path) if path is not None \
        else bench_report_path(report["suite"])
    with open(out, "wt") as fh:
        json.dump(report, fh, indent=1)
        fh.write("\n")
    return out


def validate_bench_report(doc: dict[str, Any]) -> None:
    """Raise ``ValueError`` unless ``doc`` is a well-formed v1 report."""
    if not isinstance(doc, dict):
        raise ValueError("bench report must be a JSON object")
    if doc.get("schema") != BENCH_SCHEMA_VERSION:
        raise ValueError(
            f"bench report schema {doc.get('schema')!r} != "
            f"{BENCH_SCHEMA_VERSION}")
    for key in ("suite", "repeats", "workloads", "provenance"):
        if key not in doc:
            raise ValueError(f"bench report missing {key!r}")
    if not isinstance(doc["workloads"], list) or not doc["workloads"]:
        raise ValueError("bench report has no workloads")
    for w in doc["workloads"]:
        for key in ("name", "algorithm", "dataset", "status",
                    "median_sim_time_s", "median_wall_time_s"):
            if key not in w:
                raise ValueError(
                    f"workload {w.get('name', '?')!r} missing {key!r}")
        if w["status"] == "ok" and not isinstance(
                w["median_sim_time_s"], (int, float, type(None))):
            raise ValueError(
                f"workload {w['name']!r}: median_sim_time_s must be "
                "numeric or null")


def compare_reports(
    current: dict[str, Any],
    baseline: dict[str, Any],
    tolerance: float = 0.05,
) -> list[str]:
    """Regressions of ``current`` against ``baseline``.

    Returns human-readable problem strings (empty list = gate passes):
    a workload whose gated metric (``median_sim_time_s``,
    ``host_entries_scanned``, ``affected_vertices``,
    ``peak_shard_edges`` up, or ``approx_ratio_vs_blossom`` down —
    each only where the baseline recorded one) moves beyond the
    baseline by more than ``tolerance`` (relative), went from ok to
    error, or disappeared.  Faster-than-baseline and wall-clock changes
    never fail the gate; new workloads without a baseline entry are
    reported as advisory ``"new workload"`` lines only when the
    baseline suite matches.  When the baseline carries a ``staging``
    block, the zero-copy invariant is held too: a current ``speedup``
    below 1.0 (shared-memory attach slower than the ``.npz`` reload it
    replaces) fails the gate.  The ``dynamic`` suite's update-latency
    gate is the same machine-relative shape: wherever the baseline
    recorded a ``speedup_vs_recompute``, a current value below 1.0 —
    incremental repair slower than from-scratch recompute on the same
    stream, same machine — fails, while the absolute latencies stay
    ungated (CI machines vary; ratios on one machine do not).
    """
    problems: list[str] = []
    if current.get("suite") != baseline.get("suite"):
        problems.append(
            f"suite mismatch: current {current.get('suite')!r} vs "
            f"baseline {baseline.get('suite')!r}")
        return problems
    cur = {w["name"]: w for w in current["workloads"]}
    base = {w["name"]: w for w in baseline["workloads"]}
    for name, b in base.items():
        c = cur.get(name)
        if c is None:
            problems.append(f"{name}: workload missing from current run")
            continue
        if b["status"] == "ok" and c["status"] != "ok":
            err = c.get("error", {})
            problems.append(
                f"{name}: now failing ({err.get('type', 'unknown')}: "
                f"{err.get('message', '')})")
            continue
        bt, ct = b["median_sim_time_s"], c["median_sim_time_s"]
        if bt is not None and ct is not None \
                and ct > bt * (1.0 + tolerance):
            problems.append(
                f"{name}: median_sim_time_s {ct:.6g}s exceeds baseline "
                f"{bt:.6g}s by more than {100 * tolerance:.1f}%")
        bh = b.get("host_entries_scanned")
        ch = c.get("host_entries_scanned")
        if bh is not None and ch is not None \
                and ch > bh * (1.0 + tolerance):
            problems.append(
                f"{name}: host_entries_scanned {ch:.6g} exceeds "
                f"baseline {bh:.6g} by more than "
                f"{100 * tolerance:.1f}%")
        # Coreset gates: the per-machine memory budget may not grow,
        # the quality ratio may not shrink (both deterministic).
        bp = b.get("peak_shard_edges")
        cp = c.get("peak_shard_edges")
        if bp is not None and cp is not None \
                and cp > bp * (1.0 + tolerance):
            problems.append(
                f"{name}: peak_shard_edges {cp:.6g} exceeds baseline "
                f"{bp:.6g} by more than {100 * tolerance:.1f}%")
        br = b.get("approx_ratio_vs_blossom")
        cr = c.get("approx_ratio_vs_blossom")
        if br is not None and cr is not None \
                and cr < br * (1.0 - tolerance):
            problems.append(
                f"{name}: approx_ratio_vs_blossom {cr:.4g} fell below "
                f"baseline {br:.4g} by more than "
                f"{100 * tolerance:.1f}%")
        # Batch-dynamic gates: affected_vertices is deterministic (up-
        # gated); the update-latency speedup floor is machine-relative
        # like the staging gate — incremental repair may never lose to
        # from-scratch recompute on the machine it runs on.
        bav = b.get("affected_vertices")
        cav = c.get("affected_vertices")
        if bav is not None and cav is not None \
                and cav > bav * (1.0 + tolerance):
            problems.append(
                f"{name}: affected_vertices {cav:.6g} exceeds baseline "
                f"{bav:.6g} by more than {100 * tolerance:.1f}%")
        if b.get("speedup_vs_recompute") is not None:
            cs = c.get("speedup_vs_recompute")
            if not isinstance(cs, (int, float)):
                problems.append(
                    f"{name}: speedup_vs_recompute missing (recompute "
                    f"twin failed?)")
            elif cs < 1.0:
                problems.append(
                    f"{name}: incremental repair is slower than "
                    f"from-scratch recompute (speedup {cs:.3g}x < 1)")
    b_staging = baseline.get("staging")
    c_staging = current.get("staging") if b_staging else None
    if b_staging and c_staging:
        speedup = c_staging.get("speedup")
        if isinstance(speedup, (int, float)) and speedup < 1.0:
            problems.append(
                f"staging: shared-memory attach is slower than the npz "
                f"reload it replaces (speedup {speedup:.3g}x < 1)")
    return problems
