"""Uniform adapters for running any algorithm on any dataset."""

from __future__ import annotations

from typing import Any, Callable

import numpy as np

from repro.graph.csr import CSRGraph
from repro.gpusim.memory import DeviceOOMError
from repro.gpusim.spec import DGX_A100, PlatformSpec
from repro.matching.auction import auction_matching
from repro.matching.blossom import blossom_mwm
from repro.matching.cugraph_sim import cugraph_mg_sim
from repro.matching.greedy import greedy_matching
from repro.matching.ld_gpu import ld_gpu
from repro.matching.ld_seq import ld_seq
from repro.matching.local_max import local_max
from repro.matching.path_growing import path_growing_matching
from repro.matching.augmenting import (
    random_augmentation_matching,
    two_thirds_matching,
)
from repro.matching.suitor import suitor_gpu_sim, suitor_omp_sim, suitor_seq
from repro.matching.types import MatchResult

__all__ = ["ALGORITHMS", "run_algorithm", "best_ld_gpu"]

#: Name → callable(graph, **kwargs) for every implemented algorithm.
ALGORITHMS: dict[str, Callable[..., MatchResult]] = {
    "ld_seq": ld_seq,
    "ld_gpu": ld_gpu,
    "sr_omp": suitor_omp_sim,
    "sr_gpu": suitor_gpu_sim,
    "suitor_seq": suitor_seq,
    "greedy": greedy_matching,
    "local_max": local_max,
    "auction": auction_matching,
    "blossom": blossom_mwm,
    "cugraph": cugraph_mg_sim,
    "path_growing": path_growing_matching,
    "two_thirds": two_thirds_matching,
    "pettie_sanders": random_augmentation_matching,
}


def run_algorithm(name: str, graph: CSRGraph, **kwargs: Any) -> MatchResult:
    """Run algorithm ``name`` on ``graph``.

    Raises ``KeyError`` for unknown names; algorithm-specific errors
    (e.g. :class:`DeviceOOMError`) propagate so callers can render the
    paper's '-' entries.
    """
    if name not in ALGORITHMS:
        raise KeyError(
            f"unknown algorithm {name!r}; known: {sorted(ALGORITHMS)}"
        )
    return ALGORITHMS[name](graph, **kwargs)


def best_ld_gpu(
    graph: CSRGraph,
    platform: PlatformSpec = DGX_A100,
    device_counts: tuple[int, ...] = (1, 2, 4, 6, 8),
    batch_counts: tuple[int | None, ...] = (None, 2, 3, 5, 10),
    collect_stats: bool = False,
) -> tuple[MatchResult, int, int]:
    """The paper's reporting protocol for Table I: run LD-GPU over a sweep
    of device and batch counts (batches < 15) and keep the fastest.

    Returns ``(result, num_devices, num_batches)`` of the winner.
    Configurations that cannot fit memory are skipped (they are the runs
    the paper could not perform either).
    """
    best: tuple[MatchResult, int, int] | None = None
    mate_ref: np.ndarray | None = None
    for nd in device_counts:
        if nd > platform.max_devices:
            continue
        for nb in batch_counts:
            try:
                r = ld_gpu(graph, platform, num_devices=nd, num_batches=nb,
                           collect_stats=collect_stats)
            except DeviceOOMError:
                continue
            if mate_ref is None:
                mate_ref = r.mate
            else:
                assert np.array_equal(mate_ref, r.mate), (
                    "LD-GPU result depends on configuration — broken"
                )
            if best is None or r.sim_time < best[0].sim_time:
                cfg = r.stats["config"]
                best = (r, nd, cfg.num_batches)
    if best is None:
        raise DeviceOOMError(platform.device.name, 0, 0,
                             platform.device.memory_bytes)
    return best
