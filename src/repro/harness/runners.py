"""Uniform adapters for running any algorithm on any dataset.

Dispatch is backed by the :mod:`repro.engine` registry: ``ALGORITHMS``
is a live read-only view of the registered
:class:`~repro.engine.spec.AlgorithmSpec` callables, so a newly
registered algorithm shows up here (and in the CLI) with no edits.

``best_ld_gpu`` — the paper's best-over-sweep reporting protocol — is a
:func:`~repro.engine.cells.run_cells` grid underneath, which is what
gives it the ``parallel=N`` fan-out for free.
"""

from __future__ import annotations

import dataclasses
import warnings
from collections.abc import Mapping
from typing import Any, Callable, Iterator

import numpy as np

from repro.engine.cells import Cell, run_cells
from repro.engine.errors import ConfigurationDivergenceError
from repro.engine.record import RunRecord
from repro.engine.spec import algorithm_names, get_spec
from repro.graph.csr import CSRGraph
from repro.gpusim.memory import DeviceOOMError
from repro.gpusim.spec import DGX_A100, PlatformSpec
from repro.harness.sweep import (
    TABLE1_BATCH_COUNTS,
    TABLE1_DEVICE_COUNTS,
    sweep_cells,
)
from repro.matching.types import MatchResult

__all__ = ["ALGORITHMS", "run_algorithm", "best_ld_gpu"]


class _RegistryView(Mapping):
    """Name → callable view over the engine registry (always current)."""

    def __getitem__(self, name: str) -> Callable[..., MatchResult]:
        return get_spec(name).fn

    def __iter__(self) -> Iterator[str]:
        return iter(algorithm_names())

    def __len__(self) -> int:
        return len(algorithm_names())


#: Name → callable(graph, **kwargs) for every registered algorithm.
ALGORITHMS: Mapping[str, Callable[..., MatchResult]] = _RegistryView()


def run_algorithm(name: str, graph: CSRGraph, **kwargs: Any) -> MatchResult:
    """Run algorithm ``name`` on ``graph``.

    .. deprecated::
        Use :mod:`repro.api` — :func:`repro.api.run` for a synchronous
        record in this process, :func:`repro.api.submit` to queue the
        job for a worker fleet or a ``repro serve`` daemon.  This thin
        dispatcher stays for scripts that want the bare
        :class:`MatchResult`.

    Raises ``KeyError`` for unknown names; algorithm-specific errors
    (e.g. :class:`DeviceOOMError`) propagate so callers can render the
    paper's '-' entries.
    """
    warnings.warn(
        "run_algorithm() is deprecated; use repro.api.run() "
        "(synchronous record) or repro.api.submit() (queued job) "
        "instead",
        DeprecationWarning, stacklevel=2,
    )
    return get_spec(name).fn(graph, **kwargs)


def _ld_gpu_current(graph: CSRGraph, **kwargs: Any) -> MatchResult:
    """LD-GPU resolved at call time through its module attribute.

    ``best_ld_gpu`` binds this (not the registered function object) so
    monkeypatched ``repro.matching.ld_gpu.ld_gpu`` replacements take
    effect; module-level, so it pickles to worker processes.  Resolved
    through ``importlib`` because the package attribute of the same
    name is shadowed by the function it exports.
    """
    import importlib

    return importlib.import_module("repro.matching.ld_gpu") \
        .ld_gpu(graph, **kwargs)


def best_ld_gpu(
    graph: CSRGraph,
    platform: PlatformSpec = DGX_A100,
    device_counts: tuple[int, ...] = TABLE1_DEVICE_COUNTS,
    batch_counts: tuple[int | None, ...] = TABLE1_BATCH_COUNTS,
    collect_stats: bool = False,
    parallel: int = 0,
    store: Any = None,
) -> tuple[MatchResult, int, int]:
    """The paper's reporting protocol for Table I: run LD-GPU over the
    device grid :data:`~repro.harness.sweep.TABLE1_DEVICE_COUNTS` and the
    batch grid :data:`~repro.harness.sweep.TABLE1_BATCH_COUNTS` (auto
    plus every studied count below 15) and keep the fastest.

    Returns ``(result, num_devices, num_batches)`` of the winner.
    Configurations that cannot fit memory are skipped (they are the runs
    the paper could not perform either).  ``parallel=N`` fans the grid
    out to N worker processes with an identical winner.  ``store`` (a
    :class:`~repro.store.db.RunStore` or path) serves already-stored
    configurations without recompute; the winner is identical because
    the selection reads ``record.sim_time``, which serialises exactly.
    Store-served records carry no mate array, so the Lemma III.1
    divergence check covers only the freshly executed configurations,
    and a winner served from the store is re-executed once to produce
    its :class:`MatchResult`.

    Raises
    ------
    ConfigurationDivergenceError
        If any two configurations disagree on the mate array — LD
        matching is configuration-independent (Lemma III.1), so a
        divergence means broken code, not a slow run.
    DeviceOOMError
        If every configuration of the sweep runs out of device memory.
    """
    spec = dataclasses.replace(get_spec("ld_gpu"), fn=_ld_gpu_current)
    cells = sweep_cells((platform,), device_counts, batch_counts,
                        algorithm=spec, collect_stats=collect_stats)
    records = run_cells(cells, graph=graph, parallel=parallel,
                        store=store)

    best: tuple[RunRecord, int, int] | None = None
    mate_ref: np.ndarray | None = None
    ref_config = ""
    for cell, record in zip(cells, records):
        if not record.ok:
            if record.error["type"] == "DeviceOOMError":
                continue
            raise RuntimeError(
                f"LD-GPU sweep cell crashed "
                f"({record.error['type']}: {record.error['message']})\n"
                f"{record.error['traceback']}"
            )
        r = record.result
        nd = cell.config["num_devices"]
        nb = cell.config["num_batches"]
        config = f"{nd} devices x {nb or 'auto'} batches"
        if r is not None:
            if mate_ref is None:
                mate_ref = r.mate
                ref_config = config
            elif not np.array_equal(mate_ref, r.mate):
                raise ConfigurationDivergenceError("ld_gpu", ref_config,
                                                   config)
        if best is None or record.sim_time < best[0].sim_time:
            best = (record, nd, record.num_batches)
    if best is None:
        raise DeviceOOMError(platform.device.name, 0, 0,
                             platform.device.memory_bytes)
    record, nd, nb = best
    if record.result is None:
        # The winner came out of the store; one fresh execution yields
        # the in-memory MatchResult callers expect (mate array, stats).
        winner = Cell(spec, config={"platform": platform,
                                    "num_devices": nd,
                                    "num_batches": nb},
                      overrides={"collect_stats": collect_stats})
        record = run_cells([winner], graph=graph, on_error="raise")[0]
    return record.result, nd, nb
