"""Process-parallel sweep execution.

Sweep grids are embarrassingly parallel across configurations — every
cell is an independent ``(algorithm, graph, context)`` triple whose
result depends on nothing but its own inputs (Birn et al.,
arXiv:1302.4587 exploit exactly this for matching experiments).  This
module fans :func:`~repro.engine.cells.run_cells` grids out to a
:class:`~concurrent.futures.ProcessPoolExecutor`:

* **Bit-identical to serial.**  Per-cell seeds are derived before
  dispatch (:func:`~repro.engine.cells.derive_cell_seed`), workers run
  the same :func:`~repro.engine.cells.run_materialised_cell` path as the
  serial loop, and results are re-ordered to cell order on collection.
* **Failure-isolated.**  A crashing cell comes back as an ``error``
  :class:`~repro.engine.record.RunRecord`; the rest of the grid keeps
  running (``on_error="raise"`` opts back into fail-fast).
* **Generation once per grid.**  Input graphs are staged through the
  fingerprint-keyed :class:`~repro.harness.cache.GraphCache` and loaded
  from ``.npz`` by the workers, so an RMAT/k-mer analog is generated
  once in the parent — never once per cell, and (warm cache) not even
  once per run.  With the cache disabled graphs ship by pickle instead.
* **Zero-copy staging.**  On top of the cache, the parent publishes
  each distinct graph into a shared-memory segment
  (:class:`~repro.harness.shm.SharedGraphRegistry`) and workers attach
  read-only views instead of re-reading and re-hashing ``.npz`` bytes —
  one mmap per (worker, graph) instead of one decompress per worker.
  The ``.npz`` entry is still written: it is the fallback when the
  segment is gone (cross-run warm starts, ``REPRO_SHM=off``, exotic
  platforms) and the durable artifact other runs key on.

Environment: ``REPRO_PARALLEL_START_METHOD`` forces a multiprocessing
start method (``fork``/``spawn``/``forkserver``); the platform default
is used otherwise.  ``REPRO_SHM=off`` disables shared-memory staging.
Context ``sinks`` are not notified from workers — aggregate from the
returned records instead.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Sequence

from repro.engine.cells import (
    MaterialisedCell,
    error_record,
    run_materialised_cell,
    run_stored_cell,
)
from repro.engine.record import RunRecord
from repro.harness.cache import GraphCache, cache_disabled
from repro.harness.shm import (
    SharedGraphSegment,
    default_registry,
    shm_enabled,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.graph.csr import CSRGraph
    from repro.store.db import RunStore

__all__ = ["run_cells_parallel"]

_ENV_START_METHOD = "REPRO_PARALLEL_START_METHOD"


@dataclass(frozen=True)
class _GraphRef:
    """How a worker obtains a cell's input graph.

    Workers try the channels cheapest-first: attach the shared-memory
    segment (``shm``, zero-copy), fall back to the disk snapshot
    (``path`` + expected ``fingerprint``, verified on load), or — with
    the cache disabled — unpickle the graph shipped ``inline``.
    """

    path: str | None = None
    fingerprint: str | None = None
    inline: "CSRGraph | None" = None
    shm: SharedGraphSegment | None = None


#: Per-worker memo of disk-loaded graphs, so a worker deserialises each
#: distinct graph once per process, not once per cell.  (Shared-memory
#: attaches have their own memo inside the worker's registry.)
_WORKER_GRAPHS: dict[tuple[str, str], "CSRGraph"] = {}


def _load_ref(ref: _GraphRef) -> "CSRGraph":
    if ref.inline is not None:
        return ref.inline
    if ref.shm is not None:
        try:
            return default_registry().attach(ref.shm)
        except (FileNotFoundError, OSError):
            # Segment owner is gone (or /dev/shm is unusable here) —
            # the .npz snapshot below carries the same verified bytes.
            pass
    key = (ref.path, ref.fingerprint)  # type: ignore[assignment]
    graph = _WORKER_GRAPHS.get(key)
    if graph is None:
        graph = GraphCache().load(ref.path, ref.fingerprint)
        _WORKER_GRAPHS[key] = graph
    return graph


def _worker_run(
    payload: tuple[MaterialisedCell, _GraphRef, str, "RunStore | None"],
) -> tuple[int, RunRecord]:
    """Executed in a worker process: resolve the graph, run the cell."""
    mc, ref, on_error, store = payload
    try:
        graph = _load_ref(ref)
    except Exception as exc:
        if on_error == "raise":
            raise
        return mc.index, error_record(mc.cell, mc.ctx, None, exc)
    if store is not None:
        # The store unpickles connection-less in the worker and opens
        # its own WAL connection; claims are atomic across processes.
        return mc.index, run_stored_cell(mc, graph, store, on_error)
    return mc.index, run_materialised_cell(mc, graph, on_error)


def _graph_key(mc: MaterialisedCell) -> tuple:
    # Builder cells dedup on the callable's identity: same function
    # object -> same (deterministic) graph, built once per grid.
    return (mc.cell.dataset, mc.cell.quality, mc.cell.build)


def _resolve_parent_graph(mc: MaterialisedCell,
                          shared: "CSRGraph | None") -> "CSRGraph":
    """Build/fetch a cell's graph in the parent (memoised registry)."""
    cell = mc.cell
    if cell.dataset is not None:
        from repro.harness.datasets import load_dataset, quality_instance

        return quality_instance(cell.dataset) if cell.quality \
            else load_dataset(cell.dataset)
    if cell.build is not None:
        return cell.build()
    if shared is None:
        raise ValueError(
            f"cell {cell.algorithm_name!r} names no dataset or builder "
            "and run_cells received no graph"
        )
    return shared


def _mp_context():
    method = os.environ.get(_ENV_START_METHOD)
    if not method:
        return None
    import multiprocessing

    return multiprocessing.get_context(method)


def _check_parallel_safe(mc: MaterialisedCell) -> None:
    """Fail fast — with a diagnosis — on builders that cannot ship.

    A lambda or locally defined builder dies inside ``pool.map`` with a
    bare ``PicklingError`` pages away from the user's code; catching it
    here turns that into an actionable message before any worker spawns.
    """
    import pickle

    build = mc.cell.build
    if build is None:
        return
    try:
        pickle.dumps(build)
    except Exception as exc:
        raise ValueError(
            f"cell {mc.cell.algorithm_name!r} has a graph builder "
            f"({build!r}) that is not parallel-safe: worker processes "
            "import builders by reference, so it must be a module-level "
            "callable (not a lambda, closure or locally defined "
            "function).  Move it to module scope or run with "
            f"parallel=1.  Underlying error: {exc}"
        ) from exc


def run_cells_parallel(
    materialised: Sequence[MaterialisedCell],
    *,
    graph: "CSRGraph | None" = None,
    max_workers: int = 2,
    on_error: str = "record",
    cache: Any = None,
    store: "RunStore | None" = None,
    shm: Any = None,
) -> list[RunRecord]:
    """Fan materialised cells out to worker processes; records return in
    cell order.

    ``cache=None`` stages graphs through the default
    :class:`GraphCache` (honouring ``REPRO_GRAPH_CACHE``); pass a
    :class:`GraphCache` to control placement, or ``False`` to ship
    graphs by pickle.  ``shm=None`` additionally publishes each staged
    graph into shared memory (when ``REPRO_SHM`` does not opt out) so
    workers attach zero-copy; pass ``False`` to force ``.npz``-only
    staging or a :class:`~repro.harness.shm.SharedGraphRegistry` to
    control segment ownership.  Segments published here are released
    when the grid completes.  ``store`` makes every worker execute
    through a :class:`~repro.store.db.RunStore` (``done`` cells served
    without recompute, claims arbitrated by the store's leases — so
    *several independent sweep processes* sharing one store divide the
    grid between themselves).  Callers normally reach this through
    :func:`repro.engine.cells.run_cells` with ``parallel=N``.
    """
    if not materialised:
        return []
    use_cache: GraphCache | None
    if cache is False:
        use_cache = None
    elif cache is None:
        use_cache = None if cache_disabled() else GraphCache()
    else:
        use_cache = cache
    if shm is False:
        registry = None
    elif shm is None:
        registry = default_registry() if shm_enabled() else None
    else:
        registry = shm

    # One graph build per distinct (dataset, quality) of the grid —
    # generation happens here, in the parent, exactly once.  The .npz
    # snapshot is always written (durable, cross-run); the shm segment
    # rides alongside as the fast intra-run channel.
    refs: dict[tuple[str | None, bool], _GraphRef] = {}
    published: list[str] = []
    try:
        for mc in materialised:
            key = _graph_key(mc)
            if key in refs:
                continue
            _check_parallel_safe(mc)
            g = _resolve_parent_graph(mc, graph)
            if use_cache is not None:
                path, fingerprint = use_cache.store(g)
                segment = None
                if registry is not None:
                    segment = registry.publish(g, fingerprint)
                    published.append(fingerprint)
                refs[key] = _GraphRef(path=str(path),
                                      fingerprint=fingerprint,
                                      shm=segment)
            else:
                refs[key] = _GraphRef(inline=g)

        # Sinks hold process-local state (open registries, file
        # handles); they neither pickle nor report back, so workers run
        # without them.
        payloads = [
            (MaterialisedCell(mc.index, mc.cell,
                              mc.ctx.with_config(sinks=())),
             refs[_graph_key(mc)], on_error, store)
            for mc in materialised
        ]

        results: dict[int, RunRecord] = {}
        with ProcessPoolExecutor(max_workers=max_workers,
                                 mp_context=_mp_context()) as pool:
            for index, record in pool.map(_worker_run, payloads):
                results[index] = record
        return [results[mc.index] for mc in materialised]
    finally:
        if registry is not None:
            for fingerprint in published:
                registry.release(fingerprint)
