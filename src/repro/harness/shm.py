"""Zero-copy shared-memory graph plane.

Process-parallel grids used to stage every input graph through the
on-disk ``.npz`` cache: the parent serialised (deflate!) once and every
worker process read, decompressed and re-verified its own private copy.
For a resident worker fleet that is the wrong hot path — the graph is
immutable, so all workers can map *the same bytes*.  This module
publishes a :class:`~repro.graph.csr.CSRGraph`'s CSR arrays into one
:mod:`multiprocessing.shared_memory` segment keyed by the graph's
content fingerprint; fork or spawn workers attach by name and wrap the
mapping in read-only zero-copy array views
(:meth:`~repro.graph.csr.CSRGraph.from_buffers`), so warm-starting a
worker costs one ``mmap`` instead of one decompress-and-hash.  The
memory-layout discipline follows Birn et al. (arXiv:1302.4587): one
flat, aligned block per graph — ``indptr | indices | weights`` — that
every consumer addresses identically.

Lifecycle
---------
:class:`SharedGraphRegistry` owns segments *per process*:

* :meth:`~SharedGraphRegistry.publish` creates (or refcounts) the
  segment for a graph — publishing the same fingerprint twice bumps a
  reference count instead of copying again;
* :meth:`~SharedGraphRegistry.attach` maps a published segment into
  this process (memoised per process, so N cells in one worker pay one
  attach) — under ``fork`` the parent's own mapping is inherited and
  reused outright;
* :meth:`~SharedGraphRegistry.release` drops one reference and unlinks
  the segment at zero;
* :meth:`~SharedGraphRegistry.unlink_all` force-unlinks everything this
  process still owns — registered with :mod:`atexit` so an interrupted
  grid cannot leak ``/dev/shm`` entries, while a SIGKILLed *owner* is
  covered by multiprocessing's resource tracker.  Attachers explicitly
  unregister from the tracker (they do not own the segment), which is
  what keeps a crashed worker from tearing the segment out from under
  its siblings.

Orphans from past hard crashes are visible to ``repro-matching cache
ls`` and removed by ``cache clear`` (:func:`list_orphan_segments` /
:func:`unlink_segment`).

Telemetry: ``repro_shm_publish_total`` / ``repro_shm_attach_total`` /
``repro_shm_unlink_total`` count the registry's segment operations when
a metrics registry is active.

Configuration: ``REPRO_SHM=off|0|none|false`` disables the shared-
memory plane entirely (parallel staging falls back to the ``.npz``
cache); anything else — including unset — leaves it on where the
platform supports it.
"""

from __future__ import annotations

import atexit
import os
from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING

import numpy as np

from repro.telemetry.spans import count

if TYPE_CHECKING:  # pragma: no cover - typing only
    from multiprocessing.shared_memory import SharedMemory

    from repro.graph.csr import CSRGraph

__all__ = [
    "SHM_ENV",
    "SEGMENT_PREFIX",
    "SHM_PUBLISH_COUNTER",
    "SHM_ATTACH_COUNTER",
    "SHM_UNLINK_COUNTER",
    "SharedGraphSegment",
    "SharedGraphRegistry",
    "default_registry",
    "shm_enabled",
    "list_orphan_segments",
    "unlink_segment",
]

SHM_ENV = "REPRO_SHM"
_DISABLED_VALUES = {"off", "0", "none", "false"}

#: Segment names: ``repro_graph_<owner pid>_<fingerprint hex>``.  The pid
#: keeps two concurrent grid parents publishing the same graph from
#: colliding (each owns its segment; content is identical either way).
SEGMENT_PREFIX = "repro_graph_"

SHM_PUBLISH_COUNTER = "repro_shm_publish_total"
SHM_ATTACH_COUNTER = "repro_shm_attach_total"
SHM_UNLINK_COUNTER = "repro_shm_unlink_total"

_INT8 = np.dtype(np.int64).itemsize

def _quiet_close(shm) -> None:
    """Close a ``SharedMemory`` handle even while views are exported.

    ``SharedMemory.close()`` (and its ``__del__``) raises ``BufferError``
    when zero-copy numpy views over the mapping are still alive — an
    unavoidable situation for an attacher whose graphs outlive the
    registry (records may reference them).  Dropping the Python-level
    ``memoryview``/``mmap`` wrappers instead defers the actual unmap to
    their C-level deallocation, which never raises: the views keep the
    mapping alive exactly as long as they need it, the file descriptor
    is released immediately, and ``__del__`` finds nothing left to
    close."""
    try:
        shm.close()
    except BufferError:
        shm._buf = None
        shm._mmap = None
        shm.close()  # releases the fd; nothing else remains


def shm_enabled() -> bool:
    """Whether the shared-memory graph plane is on.

    Requires ``REPRO_SHM`` not to opt out *and* a usable
    ``multiprocessing.shared_memory`` implementation.
    """
    env = os.environ.get(SHM_ENV)
    if env is not None and env.lower() in _DISABLED_VALUES:
        return False
    try:  # pragma: no branch - import succeeds on every supported OS
        import multiprocessing.shared_memory  # noqa: F401
    except ImportError:  # pragma: no cover - exotic platforms only
        return False
    return True


@dataclass(frozen=True)
class SharedGraphSegment:
    """Picklable descriptor of one published graph segment.

    Everything a worker needs to attach: the segment ``name``, the
    array lengths that delimit the three-array layout
    (``indptr | indices | weights``), and the content ``fingerprint``
    the segment is keyed by.  Ships to workers inside the parallel
    executor's graph refs.
    """

    name: str
    fingerprint: str
    graph_name: str
    num_vertices: int
    num_entries: int

    @property
    def nbytes(self) -> int:
        """Total segment payload size."""
        return (self.num_vertices + 1 + 2 * self.num_entries) * _INT8


def _attach_untracked(name: str) -> "SharedMemory":
    """``SharedMemory(name=...)`` without resource-tracker registration.

    An attacher does not own the segment; letting its tracker register
    it would unlink the segment when *this* process exits, tearing it
    out from under the owner and every sibling worker (the well-known
    CPython gotcha that ``SharedMemory(track=False)`` fixes in 3.13).
    Register-then-unregister is not enough: sibling workers share one
    tracker process whose cache is a *set*, so paired register calls
    collapse and the extra unregisters both strip the owner's crash
    protection and spew ``KeyError`` tracebacks at tracker shutdown.
    Instead the register call is suppressed for the duration of the
    attach.
    """
    from multiprocessing import resource_tracker, shared_memory

    orig = resource_tracker.register
    resource_tracker.register = lambda *a, **kw: None
    try:
        return shared_memory.SharedMemory(name=name)
    finally:
        resource_tracker.register = orig


class SharedGraphRegistry:
    """Reference-counted per-process registry of shared graph segments.

    One registry per process is the intended shape
    (:func:`default_registry`); ad-hoc instances work and are useful in
    tests, each cleaning up after itself via ``atexit``.

    ``publishes`` / ``attaches`` / ``unlinks`` count operations over
    the registry's lifetime (the parallel executor and the tests read
    them); the same counts are exported as the ``repro_shm_*_total``
    telemetry counters.
    """

    def __init__(self) -> None:
        #: fingerprint -> (SharedMemory, SharedGraphSegment, refcount)
        self._published: dict[str, list] = {}
        #: segment name -> (SharedMemory | None, CSRGraph) attach memo
        self._attached: dict[str, tuple] = {}
        self.publishes = 0
        self.attaches = 0
        self.unlinks = 0
        atexit.register(self.unlink_all)

    # -------------------------------------------------------------- #
    # owner side
    # -------------------------------------------------------------- #

    def publish(self, graph: "CSRGraph",
                fingerprint: str | None = None) -> SharedGraphSegment:
        """Publish ``graph``'s CSR arrays; returns the attach descriptor.

        Keyed by content: publishing a graph whose fingerprint is
        already live bumps that segment's reference count and returns
        the existing descriptor — the bytes are copied exactly once per
        process however many overlapping grids stage the same input.
        """
        from multiprocessing.shared_memory import SharedMemory

        if fingerprint is None:
            from repro.telemetry.provenance import graph_fingerprint

            fingerprint = graph_fingerprint(graph)
        entry = self._published.get(fingerprint)
        if entry is not None:
            entry[2] += 1
            return entry[1]

        indptr, indices, weights = graph.export_buffers()
        seg = SharedGraphSegment(
            name=f"{SEGMENT_PREFIX}{os.getpid()}_"
                 f"{fingerprint.split(':', 1)[-1]}",
            fingerprint=fingerprint,
            graph_name=graph.name,
            num_vertices=graph.num_vertices,
            num_entries=graph.num_directed_edges,
        )
        shm = SharedMemory(name=seg.name, create=True,
                           size=max(seg.nbytes, 1))
        n1, m = seg.num_vertices + 1, seg.num_entries
        buf = shm.buf
        np.frombuffer(buf, np.int64, n1)[:] = indptr
        np.frombuffer(buf, np.int64, m, offset=n1 * _INT8)[:] = indices
        np.frombuffer(buf, np.float64, m,
                      offset=(n1 + m) * _INT8)[:] = weights
        self._published[fingerprint] = [shm, seg, 1]
        self.publishes += 1
        count(SHM_PUBLISH_COUNTER, 1,
              "Graph segments published into shared memory.")
        return seg

    def release(self, fingerprint: str) -> bool:
        """Drop one reference; unlink the segment when none remain.

        Returns True when this call unlinked the segment.  Releasing an
        unknown fingerprint is a no-op (the segment may already have
        been force-unlinked by :meth:`unlink_all`).
        """
        entry = self._published.get(fingerprint)
        if entry is None:
            return False
        entry[2] -= 1
        if entry[2] > 0:
            return False
        del self._published[fingerprint]
        self._unlink(entry[0])
        return True

    def _unlink(self, shm: "SharedMemory") -> None:
        try:
            shm.unlink()
        except FileNotFoundError:  # pragma: no cover - already gone
            pass
        # Zero-copy views over the mapping may still be alive (e.g. the
        # publishing process also attached).  The name is gone and the
        # kernel frees the memory when the last map drops.
        _quiet_close(shm)
        self.unlinks += 1
        count(SHM_UNLINK_COUNTER, 1,
              "Shared-memory graph segments unlinked.")

    def unlink_all(self) -> int:
        """Force-unlink every segment this process owns (atexit hook).

        Also quiet-closes attach-side handles so an attacher process
        exits without ``SharedMemory.__del__`` noise (graphs handed out
        by :meth:`attach` stay valid — their views pin the mapping).
        Safe to call repeatedly; returns the number unlinked.
        """
        n = 0
        for entry in list(self._published.values()):
            self._unlink(entry[0])
            n += 1
        self._published.clear()
        for keep, _graph in self._attached.values():
            if keep is not None:
                _quiet_close(keep)
        self._attached.clear()
        return n

    # -------------------------------------------------------------- #
    # attacher side
    # -------------------------------------------------------------- #

    def attach(self, segment: SharedGraphSegment) -> "CSRGraph":
        """Zero-copy :class:`CSRGraph` over a published segment.

        Memoised per (process, segment name): the first call maps the
        segment, later calls return the same graph object.  When this
        process *owns* the segment (or inherited the owner's registry
        state over ``fork``), the owner's mapping is reused without a
        second attach.  Raises ``FileNotFoundError`` when the segment
        no longer exists — callers fall back to the ``.npz`` path.
        """
        from repro.graph.csr import CSRGraph

        memo = self._attached.get(segment.name)
        if memo is not None:
            return memo[1]

        owned = self._published.get(segment.fingerprint)
        if owned is not None and owned[1].name == segment.name:
            shm, keep = owned[0], None
        else:
            shm = _attach_untracked(segment.name)
            keep = shm
        n1, m = segment.num_vertices + 1, segment.num_entries
        buf = shm.buf
        graph = CSRGraph.from_buffers(
            np.frombuffer(buf, np.int64, n1),
            np.frombuffer(buf, np.int64, m, offset=n1 * _INT8),
            np.frombuffer(buf, np.float64, m, offset=(n1 + m) * _INT8),
            name=segment.graph_name,
        )
        # ``keep`` anchors the mapping for the life of the memo (the
        # numpy views alone keep the mmap alive, but holding the handle
        # makes the dependency explicit and debuggable).
        self._attached[segment.name] = (keep, graph)
        self.attaches += 1
        count(SHM_ATTACH_COUNTER, 1,
              "Shared-memory graph segment attaches (cold only).")
        return graph

    # -------------------------------------------------------------- #
    # introspection
    # -------------------------------------------------------------- #

    def segments(self) -> list[SharedGraphSegment]:
        """Descriptors of every segment this registry currently owns."""
        return [entry[1] for entry in self._published.values()]

    def refcount(self, fingerprint: str) -> int:
        """Live references on ``fingerprint`` (0 = not published)."""
        entry = self._published.get(fingerprint)
        return entry[2] if entry is not None else 0

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"SharedGraphRegistry(owned={len(self._published)}, "
                f"attached={len(self._attached)}, "
                f"publishes={self.publishes}, attaches={self.attaches})")


_DEFAULT: SharedGraphRegistry | None = None


def default_registry() -> SharedGraphRegistry:
    """The process-wide registry the parallel executor stages through."""
    global _DEFAULT
    if _DEFAULT is None:
        _DEFAULT = SharedGraphRegistry()
    return _DEFAULT


# ------------------------------------------------------------------ #
# orphan maintenance (CLI `cache` integration)
# ------------------------------------------------------------------ #


def _shm_dir() -> Path | None:
    d = Path("/dev/shm")
    return d if d.is_dir() else None


def list_orphan_segments() -> list[tuple[str, int]]:
    """``(name, bytes)`` of every ``repro_graph_*`` segment on the host.

    Includes live segments of running grids as well as true orphans
    from hard crashes — the CLI labels them; only ``cache clear``
    removes them.  Empty on platforms without a visible ``/dev/shm``.
    """
    d = _shm_dir()
    if d is None:  # pragma: no cover - non-Linux
        return []
    out = []
    for p in sorted(d.glob(f"{SEGMENT_PREFIX}*")):
        try:
            out.append((p.name, p.stat().st_size))
        except OSError:  # pragma: no cover - raced with unlink
            continue
    return out


def unlink_segment(name: str) -> bool:
    """Unlink one segment by name; True when it existed.

    Orphan cleanup for segments this process never registered — the
    implicit unregister inside ``SharedMemory.unlink`` is suppressed so
    the shared tracker does not log a spurious ``KeyError``.
    """
    from multiprocessing import resource_tracker

    try:
        shm = _attach_untracked(name)
    except FileNotFoundError:
        return False
    orig = resource_tracker.unregister
    resource_tracker.unregister = lambda *a, **kw: None
    try:
        shm.unlink()
    except FileNotFoundError:  # pragma: no cover - raced with owner
        return False
    finally:
        resource_tracker.unregister = orig
        try:
            shm.close()
        except BufferError:  # pragma: no cover - defensive
            pass
    return True
