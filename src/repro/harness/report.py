"""Plain-text rendering of experiment output.

The benchmark harness prints the same rows/series the paper's tables and
figures report; these helpers keep that output aligned and diff-friendly
(EXPERIMENTS.md embeds them verbatim).
"""

from __future__ import annotations

import math
from typing import Any, Iterable, Sequence

__all__ = ["format_table", "format_value", "render_series"]


def format_value(v: Any, floatfmt: str = ".3f") -> str:
    """Render one cell; ``None`` (and NaN — an aggregate over zero
    usable replicates) becomes the paper's '-' marker."""
    if v is None:
        return "-"
    if isinstance(v, float):
        if math.isnan(v):
            return "-"
        return format(v, floatfmt)
    return str(v)


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[Any]],
    floatfmt: str = ".3f",
    title: str | None = None,
) -> str:
    """Aligned monospace table.

    Ragged input stays renderable: a row longer than the header line
    grows the width list (its extra cells get empty headers), a
    shorter row just leaves its tail columns blank.
    """
    headers = [str(h) for h in headers]
    srows = [[format_value(c, floatfmt) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in srows:
        for i, cell in enumerate(row):
            if i >= len(widths):
                widths.append(0)
            widths[i] = max(widths[i], len(cell))

    def line(cells):
        padded = list(cells) + [""] * (len(widths) - len(cells))
        return "  ".join(c.rjust(w)
                         for c, w in zip(padded, widths)).rstrip()

    out = []
    if title:
        out.append(title)
    out.append(line(headers))
    out.append(line(["-" * w for w in widths]))
    out.extend(line(r) for r in srows)
    return "\n".join(out)


def render_series(
    label: str,
    values: Sequence[Any],
    width: int = 40,
    fmt: str = ".3g",
) -> str:
    """One-line ASCII sparkline-style rendering of a numeric series.

    ``None``/NaN entries (missing measurements) render as gaps rather
    than raising; a series with no usable values reports ``(empty)``.
    """
    def usable(v: Any) -> bool:
        return v is not None and not (isinstance(v, float)
                                      and math.isnan(v))

    numeric = [float(v) for v in values if usable(v)]
    if not numeric:
        return f"{label}: (empty)"
    lo, hi = min(numeric), max(numeric)
    span = (hi - lo) or 1.0
    blocks = "▁▂▃▄▅▆▇█"
    pick = [blocks[int((float(v) - lo) / span * (len(blocks) - 1))]
            if usable(v) else " " for v in values]
    if len(pick) > width:
        stride = len(pick) / width
        pick = [pick[int(i * stride)] for i in range(width)]
    return (
        f"{label}: {''.join(pick)}  "
        f"[min {format(lo, fmt)}, max {format(hi, fmt)}, "
        f"n={len(numeric)}]"
    )
