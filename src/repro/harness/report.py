"""Plain-text rendering of experiment output.

The benchmark harness prints the same rows/series the paper's tables and
figures report; these helpers keep that output aligned and diff-friendly
(EXPERIMENTS.md embeds them verbatim).
"""

from __future__ import annotations

from typing import Any, Iterable, Sequence

__all__ = ["format_table", "format_value", "render_series"]


def format_value(v: Any, floatfmt: str = ".3f") -> str:
    """Render one cell; ``None`` becomes the paper's '-' marker."""
    if v is None:
        return "-"
    if isinstance(v, float):
        return format(v, floatfmt)
    return str(v)


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[Any]],
    floatfmt: str = ".3f",
    title: str | None = None,
) -> str:
    """Aligned monospace table."""
    srows = [[format_value(c, floatfmt) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in srows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def line(cells):
        return "  ".join(c.rjust(w) for c, w in zip(cells, widths))

    out = []
    if title:
        out.append(title)
    out.append(line(headers))
    out.append(line(["-" * w for w in widths]))
    out.extend(line(r) for r in srows)
    return "\n".join(out)


def render_series(
    label: str,
    values: Sequence[float],
    width: int = 40,
    fmt: str = ".3g",
) -> str:
    """One-line ASCII sparkline-style rendering of a numeric series."""
    if not len(values):
        return f"{label}: (empty)"
    lo, hi = min(values), max(values)
    span = (hi - lo) or 1.0
    blocks = "▁▂▃▄▅▆▇█"
    pick = [blocks[int((v - lo) / span * (len(blocks) - 1))] for v in values]
    if len(pick) > width:
        stride = len(pick) / width
        pick = [pick[int(i * stride)] for i in range(width)]
    return (
        f"{label}: {''.join(pick)}  "
        f"[min {format(lo, fmt)}, max {format(hi, fmt)}, n={len(values)}]"
    )
