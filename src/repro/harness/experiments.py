"""One entry point per table/figure of the paper's evaluation (§IV).

Every function returns an :class:`ExperimentResult` whose rows mirror the
corresponding table's columns (or the figure's series).  ``quick=True``
shrinks the dataset/configuration sweep for use in the test suite; the
benchmarks run the full versions.

Times reported here are the simulator's modeled seconds (see DESIGN.md §2);
the *shapes* — who wins, scaling curves, crossovers — are the reproduction
targets, not the absolute values.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.engine import RunContext, execute
from repro.engine.cells import Cell, run_cells
from repro.gpusim.memory import DeviceOOMError
from repro.gpusim.spec import DGX_2, DGX_A100, DGX_A100_PCIE
from repro.gpusim.timeline import COMPONENTS, fractions_from_totals
from repro.harness.datasets import (
    DATASETS,
    large_datasets,
    load_dataset,
    quality_instance,
    scale_factor,
    small_datasets,
)
from repro.harness.report import format_table
from repro.harness.runners import best_ld_gpu
from repro.harness.sweep import TABLE1_BATCH_COUNTS, TABLE1_DEVICE_COUNTS
from repro.matching.blossom import blossom_mwm
from repro.metrics.fom import mmeps
from repro.metrics.quality import geometric_mean, percent_below_optimal
from repro.metrics.workstats import iterations_below_fraction

__all__ = [
    "ExperimentResult",
    "table1_execution_times",
    "table2_quality",
    "table3_a100_vs_v100",
    "table4_single_gpu",
    "table5_cugraph",
    "table6_fom",
    "fig4_strong_scaling",
    "fig5_components",
    "fig6_batch_scaling",
    "fig7_kmer_components",
    "fig8_warp_work",
    "fig9_interconnect",
    "fig10_platforms",
    "fig11_occupancy",
]


@dataclass
class ExperimentResult:
    """A rendered experiment: headers + rows (+ free-form extras)."""

    name: str
    title: str
    headers: list[str]
    rows: list[list[Any]]
    extra: dict[str, Any] = field(default_factory=dict)

    def render(self, floatfmt: str = ".4g") -> str:
        """Aligned text table (what the bench harness prints)."""
        return format_table(self.headers, self.rows, floatfmt=floatfmt,
                            title=self.title)

    def to_json(self) -> dict:
        """Machine-readable form (numpy values coerced to Python)."""

        def coerce(v):
            if isinstance(v, np.generic):
                return v.item()
            if isinstance(v, np.ndarray):
                return v.tolist()
            return v

        return {
            "name": self.name,
            "title": self.title,
            "headers": list(self.headers),
            "rows": [[coerce(c) for c in row] for row in self.rows],
        }

    def save_json(self, path) -> None:
        """Write :meth:`to_json` to ``path``."""
        import json

        with open(path, "wt") as fh:
            json.dump(self.to_json(), fh, indent=1)


# Reduced sweeps used when quick=True (test suite); the full grids are
# the paper's Table I protocol (see repro.harness.sweep).
_QUICK_DEVICES = (1, 2, 4)
_QUICK_BATCHES = (None, 3)
_FULL_DEVICES = TABLE1_DEVICE_COUNTS
_FULL_BATCHES = TABLE1_BATCH_COUNTS


def _sweeps(quick: bool):
    return (_QUICK_DEVICES, _QUICK_BATCHES) if quick else \
        (_FULL_DEVICES, _FULL_BATCHES)


def _pick(names: list[str], quick: bool, k: int = 3) -> list[str]:
    return names[:k] if quick else names


# ------------------------------------------------------------------ #
# Table I — best execution times and speedups
# ------------------------------------------------------------------ #
def table1_execution_times(quick: bool = False, parallel: int = 0,
                           store: Any = None) -> ExperimentResult:
    """Table I (right): best times for SR-OMP / SR-GPU / LD-GPU and the
    LD-GPU speedups.  '-' marks out-of-memory, as in the paper."""
    names = _pick(large_datasets(), quick, 2) + \
        _pick(small_datasets(), quick, 2)
    devices, batches = _sweeps(quick)
    rows = []
    for name in names:
        g = load_dataset(name)
        ctx = RunContext.for_dataset(name)
        omp = execute("sr_omp", g, ctx).result
        try:
            sr_time: float | None = execute("sr_gpu", g, ctx).sim_time
        except DeviceOOMError:
            sr_time = None
        ld, nd, nb = best_ld_gpu(g, ctx.platform, device_counts=devices,
                                 batch_counts=batches, parallel=parallel,
                                 store=store)
        rows.append([
            name,
            omp.sim_time,
            sr_time,
            ld.sim_time,
            nd,
            nb,
            omp.sim_time / ld.sim_time,
            (sr_time / ld.sim_time) if sr_time is not None else None,
        ])
    return ExperimentResult(
        "table1",
        "Table I: best execution times (modeled s) and LD-GPU speedups",
        ["graph", "SR-OMP", "SR-GPU", "LD-GPU", "#GPUs", "#batches",
         "vs SR-OMP", "vs SR-GPU"],
        rows,
    )


# ------------------------------------------------------------------ #
# Table II — quality vs the exact optimum
# ------------------------------------------------------------------ #
def table2_quality(quick: bool = False) -> ExperimentResult:
    """Table II: %-difference of LD-GPU and SR-OMP weights from the exact
    blossom (LEMON) optimum on the SMALL quality instances."""
    names = _pick(small_datasets(), quick)
    rows = []
    ld_diffs, sr_diffs = [], []
    lemon_seconds = {}
    for name in names:
        g = quality_instance(name)
        t0 = time.perf_counter()
        opt = blossom_mwm(g)
        lemon_seconds[name] = time.perf_counter() - t0
        ctx = RunContext(platform=DGX_A100, num_devices=1)
        ld = execute("ld_gpu", g, ctx, collect_stats=False).result
        sr = execute("sr_omp", g, ctx).result
        dl = percent_below_optimal(ld.weight, opt.weight)
        ds = percent_below_optimal(sr.weight, opt.weight)
        ld_diffs.append(dl)
        sr_diffs.append(ds)
        rows.append([name, dl, ds])
    rows.append(["Geo. Mean", geometric_mean(ld_diffs),
                 geometric_mean(sr_diffs)])
    return ExperimentResult(
        "table2",
        "Table II: % weight below optimal (lower is better)",
        ["graph", "LD-GPU", "SR-OMP"],
        rows,
        extra={"lemon_seconds": lemon_seconds},
    )


# ------------------------------------------------------------------ #
# Table III — A100 vs V100, single device
# ------------------------------------------------------------------ #
_TABLE3_GRAPHS = ["Queen_4147", "mycielskian18", "com-Orkut", "kmer_U1a",
                  "kmer_V2a", "mouse_gene"]


def table3_a100_vs_v100(quick: bool = False) -> ExperimentResult:
    """Table III: single-GPU LD-GPU speedup of A100 over V100."""
    names = _pick(_TABLE3_GRAPHS, quick)
    rows = []
    speedups = []
    for name in names:
        g = load_dataset(name)
        actx = RunContext.for_dataset(name, platform=DGX_A100)
        vctx = RunContext.for_dataset(name, platform=DGX_2)
        a = execute("ld_gpu", g, actx, collect_stats=False).result
        v = execute("ld_gpu", g, vctx, collect_stats=False).result
        s = v.sim_time / a.sim_time
        speedups.append(s)
        rows.append([name, s])
    rows.append(["Geo. Mean", geometric_mean(speedups)])
    return ExperimentResult(
        "table3",
        "Table III: LD-GPU speedup on a single A100 vs V100",
        ["graph", "A100 speedup"],
        rows,
    )


# ------------------------------------------------------------------ #
# Table IV — single-GPU LD-GPU vs SR-GPU
# ------------------------------------------------------------------ #
_TABLE4_GRAPHS = ["com-Friendster", "Queen_4147", "mycielskian18", "HV15R",
                  "com-Orkut", "kmer_U1a", "kmer_V2a", "mouse_gene"]


def table4_single_gpu(quick: bool = False) -> ExperimentResult:
    """Table IV: single-GPU runtimes; SR-GPU's vertex-per-warp tuning wins
    on regular graphs, LD-GPU stays competitive on irregular ones."""
    names = _pick(_TABLE4_GRAPHS, quick)
    rows = []
    for name in names:
        g = load_dataset(name)
        ctx = RunContext.for_dataset(name)
        ld = execute("ld_gpu", g, ctx, collect_stats=False).result
        try:
            sr_t: float | None = execute("sr_gpu", g, ctx).sim_time
        except DeviceOOMError:
            sr_t = None
        rows.append([name, ld.sim_time, sr_t])
    return ExperimentResult(
        "table4",
        "Table IV: single-GPU runtime (modeled s)",
        ["graph", "LD-GPU", "SR-GPU"],
        rows,
    )


# ------------------------------------------------------------------ #
# Table V — LD-GPU vs cuGraph on 4 GPUs
# ------------------------------------------------------------------ #
_TABLE5_GRAPHS = ["Queen_4147", "mycielskian18", "com-Orkut", "kmer_U1a",
                  "kmer_V2a"]


def table5_cugraph(quick: bool = False) -> ExperimentResult:
    """Table V: 4-GPU LD-GPU (single batch) vs the cuGraph MG model."""
    names = _pick(_TABLE5_GRAPHS, quick)
    rows = []
    for name in names:
        g = load_dataset(name)
        ctx = RunContext.for_dataset(name, num_devices=4)
        ld = execute("ld_gpu", g, ctx.with_config(num_batches=1),
                     collect_stats=False).result
        cu = execute("cugraph", g, ctx).result
        rows.append([name, ld.sim_time, cu.sim_time,
                     cu.sim_time / ld.sim_time])
    return ExperimentResult(
        "table5",
        "Table V: LD-GPU vs cuGraph on 4 GPUs (modeled s)",
        ["graph", "LD-GPU", "cuGraph", "cuGraph/LD"],
        rows,
    )


# ------------------------------------------------------------------ #
# Table VI — MMEPS figure of merit
# ------------------------------------------------------------------ #
_TABLE6_GRAPHS = ["AGATHA-2015", "MOLIERE_2016", "GAP-urand", "GAP-kron",
                  "com-Friendster", "kmer_U1a"]


def table6_fom(quick: bool = False, parallel: int = 0,
               store: Any = None) -> ExperimentResult:
    """Table VI: Mega-Matching-Edges-per-Second (higher is better).

    Times are paper-scale (bandwidth-scaled platforms), so matched edges
    are converted to paper scale too — an analog edge represents
    ``1/scale_factor`` original edges — keeping MMEPS magnitudes
    comparable with the paper's.
    """
    names = _pick(_TABLE6_GRAPHS, quick)
    devices, batches = _sweeps(quick)
    rows = []
    for name in names:
        g = load_dataset(name)
        ctx = RunContext.for_dataset(name)
        s = scale_factor(name)
        ld, _, _ = best_ld_gpu(g, ctx.platform, device_counts=devices,
                               batch_counts=batches, parallel=parallel,
                               store=store)
        omp = execute("sr_omp", g, ctx).result
        rows.append([name, mmeps(ld) / s, mmeps(omp) / s])
    return ExperimentResult(
        "table6",
        "Table VI: MMEPS figure of merit (higher is better)",
        ["graph", "LD-GPU", "SR-OMP"],
        rows,
    )


# ------------------------------------------------------------------ #
# Fig. 4 — strong scaling on LARGE inputs
# ------------------------------------------------------------------ #
def fig4_strong_scaling(quick: bool = False, parallel: int = 0,
                        store: Any = None) -> ExperimentResult:
    """Fig. 4: LD-GPU time on 1–8 A100s (best over batch counts <15)."""
    names = _pick(large_datasets(), quick, 2)
    devices = (1, 2, 4) if quick else (1, 2, 3, 4, 5, 6, 7, 8)
    _, batches = _sweeps(quick)
    cells, keys = [], []
    for name in names:
        ctx = RunContext.for_dataset(name)
        for nd in devices:
            for nb in batches:
                cells.append(Cell(
                    "ld_gpu", dataset=name, ctx=ctx,
                    config={"num_devices": nd, "num_batches": nb},
                    overrides={"collect_stats": False},
                ))
                keys.append((name, nd))
    records = run_cells(cells, parallel=parallel, store=store)
    best: dict[tuple, float] = {}
    for key, r in zip(keys, records):
        if r.ok and (key not in best or r.sim_time < best[key]):
            best[key] = r.sim_time
    rows = []
    series: dict[str, list[float]] = {}
    for name in names:
        times = [best.get((name, nd)) for nd in devices]
        series[name] = times
        base = times[0]
        rows.append([name] + [
            (base / t) if (t is not None and base is not None) else None
            for t in times
        ])
    return ExperimentResult(
        "fig4",
        "Fig. 4: strong-scaling speedup vs 1 GPU "
        f"(devices {list(devices)})",
        ["graph"] + [f"{d}GPU" for d in devices],
        rows,
        extra={"times": series, "devices": list(devices)},
    )


# ------------------------------------------------------------------ #
# Fig. 5 — component-wise timing
# ------------------------------------------------------------------ #
def fig5_components(quick: bool = False, parallel: int = 0,
                    store: Any = None) -> ExperimentResult:
    """Fig. 5: % of total time per component across devices."""
    names = _pick(large_datasets(), quick, 1) + \
        _pick(small_datasets(), quick, 1)
    devices = (1, 4) if quick else (1, 2, 4, 8)
    cells = [
        Cell("ld_gpu", dataset=name, ctx=RunContext.for_dataset(name),
             config={"num_devices": nd},
             overrides={"collect_stats": False})
        for name in names for nd in devices
    ]
    rows = []
    for cell, rec in zip(cells,
                         run_cells(cells, parallel=parallel, store=store)):
        if not rec.ok:
            continue
        # Serialised totals, not rec.result — store-served records
        # carry no in-memory result and must render identically.
        f = fractions_from_totals(rec.timeline_totals or {})
        rows.append([cell.dataset, cell.config["num_devices"]] +
                    [100.0 * f[c] for c in COMPONENTS])
    return ExperimentResult(
        "fig5",
        "Fig. 5: component-wise % of execution time",
        ["graph", "#GPUs"] + list(COMPONENTS),
        rows,
    )


# ------------------------------------------------------------------ #
# Fig. 6 / Fig. 7 — batch-count scalability
# ------------------------------------------------------------------ #
_BATCH_STUDY_GRAPHS = ["kmer_U1a", "mycielskian18", "kmer_V2a"]


def fig6_batch_scaling(quick: bool = False, parallel: int = 0,
                       store: Any = None) -> ExperimentResult:
    """Fig. 6: forcing 1/3/5/10 batches on SMALL inputs across devices."""
    names = _pick(_BATCH_STUDY_GRAPHS, quick, 1)
    devices = (1, 2, 4) if quick else (1, 2, 4, 8)
    batch_counts = (1, 3) if quick else (1, 3, 5, 10)
    cells = [
        Cell("ld_gpu", dataset=name, ctx=RunContext.for_dataset(name),
             config={"num_devices": nd, "num_batches": nb},
             overrides={"collect_stats": False, "force_streaming": True})
        for name in names for nb in batch_counts for nd in devices
    ]
    records = iter(run_cells(cells, parallel=parallel, store=store))
    rows = []
    for name in names:
        for nb in batch_counts:
            times = [next(records).sim_time for _ in devices]
            rows.append([name, nb] + times)
    return ExperimentResult(
        "fig6",
        f"Fig. 6: LD-GPU time (modeled s) by #batches, devices "
        f"{list(devices)}",
        ["graph", "#batches"] + [f"{d}GPU" for d in devices],
        rows,
        extra={"devices": list(devices)},
    )


def fig7_kmer_components(quick: bool = False, parallel: int = 0,
                         store: Any = None) -> ExperimentResult:
    """Fig. 7: kmer_U1a component breakdown under forced batching."""
    ctx = RunContext.for_dataset("kmer_U1a")
    devices = (1, 4) if quick else (1, 2, 4, 8)
    batch_counts = (1, 3) if quick else (1, 3, 5, 10)
    cells = [
        Cell("ld_gpu", dataset="kmer_U1a", ctx=ctx,
             config={"num_devices": nd, "num_batches": nb},
             overrides={"collect_stats": False, "force_streaming": True})
        for nb in batch_counts for nd in devices
    ]
    rows = []
    for cell, rec in zip(cells,
                         run_cells(cells, parallel=parallel, store=store)):
        if not rec.ok:
            continue
        f = fractions_from_totals(rec.timeline_totals or {})
        rows.append([cell.config["num_batches"],
                     cell.config["num_devices"]] +
                    [100.0 * f[c] for c in COMPONENTS])
    return ExperimentResult(
        "fig7",
        "Fig. 7: kmer_U1a component-wise % by #batches / #GPUs",
        ["#batches", "#GPUs"] + list(COMPONENTS),
        rows,
    )


# ------------------------------------------------------------------ #
# Fig. 8 — warp-edge work per iteration
# ------------------------------------------------------------------ #
def fig8_warp_work(quick: bool = False) -> ExperimentResult:
    """Fig. 8: per-iteration % of edges accessed; the paper's headline is
    that <20% of edges are touched in ≥90% of iterations."""
    names = _pick(large_datasets(), quick, 1) + \
        _pick(small_datasets(), quick, 2)
    rows = []
    series = {}
    for name in names:
        g = load_dataset(name)
        ctx = RunContext.for_dataset(name, num_devices=4)
        r = execute("ld_gpu", g, ctx).result
        frac = r.stats["edges_scanned"] / g.num_directed_edges
        series[name] = frac
        rows.append([
            name,
            r.iterations,
            100.0 * float(frac.mean()),
            100.0 * float(frac.std()),
            100.0 * iterations_below_fraction(
                r.stats["edges_scanned"], g.num_directed_edges, 0.2
            ),
        ])
    return ExperimentResult(
        "fig8",
        "Fig. 8: warp-edge work across iterations",
        ["graph", "iters", "mean %edges", "std %edges",
         "%iters <20% edges"],
        rows,
        extra={"series": series},
    )


# ------------------------------------------------------------------ #
# Fig. 9 — NVLink vs PCIe
# ------------------------------------------------------------------ #
def fig9_interconnect(quick: bool = False, parallel: int = 0,
                      store: Any = None) -> ExperimentResult:
    """Fig. 9: execution-time speedup of NVLink over PCIe."""
    names = _pick(large_datasets(), quick, 2) + \
        _pick(small_datasets(), quick, 1)
    devices = (2, 4) if quick else (2, 4, 8)
    cells = []
    for name in names:
        nvctx = RunContext.for_dataset(name, platform=DGX_A100)
        pcctx = RunContext.for_dataset(name, platform=DGX_A100_PCIE)
        for nd in devices:
            for ctx in (nvctx, pcctx):
                cells.append(Cell(
                    "ld_gpu", dataset=name, ctx=ctx,
                    config={"num_devices": nd},
                    overrides={"collect_stats": False},
                ))
    records = iter(run_cells(cells, parallel=parallel, store=store))
    rows = []
    speedups = []
    for name in names:
        row: list[Any] = [name]
        for nd in devices:
            nv, pc = next(records), next(records)
            if not (nv.ok and pc.ok):
                row.append(None)
                continue
            s = pc.sim_time / nv.sim_time
            speedups.append(s)
            row.append(s)
        rows.append(row)
    return ExperimentResult(
        "fig9",
        "Fig. 9: NVLink-over-PCIe speedup",
        ["graph"] + [f"{d}GPU" for d in devices],
        rows,
        extra={"all_speedups": speedups},
    )


# ------------------------------------------------------------------ #
# Fig. 10 — DGX-A100 vs DGX-2
# ------------------------------------------------------------------ #
_FIG10_GRAPHS = ["GAP-kron", "com-Friendster"]


def fig10_platforms(quick: bool = False, parallel: int = 0,
                    store: Any = None) -> ExperimentResult:
    """Fig. 10: LD-GPU scalability on DGX-A100 (8×A100) vs DGX-2
    (16×V100)."""
    names = _pick(_FIG10_GRAPHS, quick, 1)
    a_devices = (1, 4) if quick else (1, 2, 4, 8)
    v_devices = (1, 4) if quick else (1, 2, 4, 8, 16)
    cells = []
    for name in names:
        for plat, devices in ((DGX_A100, a_devices), (DGX_2, v_devices)):
            ctx = RunContext.for_dataset(name, platform=plat)
            for nd in devices:
                cells.append(Cell(
                    "ld_gpu", dataset=name, ctx=ctx,
                    config={"num_devices": nd},
                    overrides={"collect_stats": False},
                    label=plat.name,
                ))
    rows = []
    for cell, rec in zip(cells,
                         run_cells(cells, parallel=parallel, store=store)):
        if not rec.ok:
            continue
        rows.append([cell.dataset, cell.label,
                     cell.config["num_devices"], rec.num_batches,
                     rec.sim_time])
    return ExperimentResult(
        "fig10",
        "Fig. 10: DGX-A100 vs DGX-2 scalability (modeled s)",
        ["graph", "platform", "#GPUs", "#batches", "time"],
        rows,
    )


# ------------------------------------------------------------------ #
# Fig. 11 — SM occupancy per iteration
# ------------------------------------------------------------------ #
def fig11_occupancy(quick: bool = False) -> ExperimentResult:
    """Fig. 11: SM occupancy through the iteration progression; the
    outliers (mycielskian18, mouse_gene) collapse in the late
    iterations."""
    names = _pick(large_datasets(), quick, 1) + \
        _pick(small_datasets(), quick, 2)
    rows = []
    series = {}
    for name in names:
        g = load_dataset(name)
        r = execute("ld_gpu", g, RunContext.for_dataset(name)).result
        occ = r.stats["occupancy"]
        series[name] = occ
        half = occ[len(occ) // 2 :]
        rows.append([
            name,
            r.iterations,
            100.0 * float(occ.mean()),
            100.0 * float(occ[: max(1, len(occ) // 2)].mean()),
            100.0 * float(half.mean()) if len(half) else None,
            100.0 * float(occ.min()),
        ])
    return ExperimentResult(
        "fig11",
        "Fig. 11: SM occupancy (%) over iterations",
        ["graph", "iters", "mean", "first-half", "second-half", "min"],
        rows,
        extra={"series": series},
    )
