"""The simulator's model card: every calibration constant in one place.

The performance model stands on a small set of measured/vendor constants;
this module collects them with their provenance so reviewers can audit —
and users can re-derive — each figure.  ``render_model_card()`` produces
the table EXPERIMENTS.md's methodology references, and the test suite
pins the constants so silent recalibration is impossible.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.comm.topology import (
    INFINIBAND_HDR,
    NVLINK_SXM3,
    NVLINK_SXM4,
    PCIE3,
    PCIE4,
)
from repro.gpusim.spec import A100, CPU_EPYC_7742_2S, V100
from repro.harness.report import format_table

__all__ = ["CalibrationEntry", "calibration_entries", "render_model_card"]


@dataclass(frozen=True)
class CalibrationEntry:
    """One constant with its value, unit and provenance."""

    name: str
    value: float
    unit: str
    source: str


def calibration_entries() -> list[CalibrationEntry]:
    """Every constant the cost models use."""
    e = CalibrationEntry
    return [
        # --- devices ---------------------------------------------------
        e("A100 SMs", A100.sm_count, "count", "vendor spec"),
        e("A100 HBM bandwidth", A100.mem_bandwidth_gbs, "GB/s",
          "vendor spec (1555)"),
        e("A100 sustained efficiency", A100.mem_efficiency, "fraction",
          "graph kernels sustain near peak on Ampere"),
        e("A100 kernel launch latency", A100.kernel_launch_us, "µs",
          "typical CUDA 11 launch+sync"),
        e("V100 SMs", V100.sm_count, "count", "vendor spec"),
        e("V100 HBM bandwidth", V100.mem_bandwidth_gbs, "GB/s",
          "vendor spec (900)"),
        e("V100 sustained efficiency", V100.mem_efficiency, "fraction",
          "calibrated: Table III geo-mean 2.35x > raw 1.73x BW ratio"),
        e("V100 kernel launch latency", V100.kernel_launch_us, "µs",
          "CUDA 10 on DGX-2 (paper's stack)"),
        e("per-warp scan throughput (A100)", A100.warp_throughput_gbs,
          "GB/s", "single-warp streaming rate; straggler bound"),
        e("gather penalty", A100.gather_penalty, "x",
          "non-coalesced indirect access derate (SetMates)"),
        # --- fabrics ---------------------------------------------------
        e("NVLink SXM4 link bandwidth", NVLINK_SXM4.bandwidth_gbs,
          "GB/s", "vendor spec (600)"),
        e("NVLink SXM4 collective efficiency",
          NVLINK_SXM4.collective_efficiency, "fraction",
          "NCCL sustains ~48 GB/s bus bandwidth on DGX-A100"),
        e("NVLink SXM3 link bandwidth", NVLINK_SXM3.bandwidth_gbs,
          "GB/s", "vendor spec (300)"),
        e("NVLink SXM3 collective efficiency",
          NVLINK_SXM3.collective_efficiency, "fraction",
          "NCCL ~30 GB/s on DGX-2"),
        e("PCIe gen4 bandwidth", PCIE4.bandwidth_gbs, "GB/s",
          "effective x16 (16)"),
        e("PCIe gen3 bandwidth", PCIE3.bandwidth_gbs, "GB/s",
          "effective x16 (12)"),
        e("PCIe collective efficiency", PCIE4.collective_efficiency,
          "fraction", "NCCL ~13 GB/s over gen4; shared-switch fabric "
          "additionally divides by N/2"),
        e("NCCL step latency (NVLink)", NVLINK_SXM4.latency_us, "µs",
          "per ring step"),
        e("NCCL step latency (PCIe)", PCIE4.latency_us, "µs",
          "per ring step"),
        e("InfiniBand HDR bandwidth", INFINIBAND_HDR.bandwidth_gbs,
          "GB/s", "200 Gb/s port"),
        e("InfiniBand hop latency", INFINIBAND_HDR.latency_us, "µs",
          "NIC + NCCL proxy per inter-node step"),
        # --- host ------------------------------------------------------
        e("host threads (SR-OMP)", CPU_EPYC_7742_2S.threads, "count",
          "paper: 256-thread runs"),
        e("host DRAM bandwidth", CPU_EPYC_7742_2S.mem_bandwidth_gbs,
          "GB/s", "2 x EPYC 7742, 16 channels DDR4-3200"),
        e("host irregular efficiency",
          CPU_EPYC_7742_2S.irregular_efficiency, "fraction",
          "calibrated: SR-OMP streams Queen_4147 (~10 GB) in 0.33 s"),
        e("OpenMP barrier", CPU_EPYC_7742_2S.barrier_us, "µs",
          "256-thread barrier"),
    ]


def render_model_card() -> str:
    """The audit table of every calibration constant."""
    rows = [[c.name, c.value, c.unit, c.source]
            for c in calibration_entries()]
    return format_table(
        ["constant", "value", "unit", "provenance"],
        rows, floatfmt=".3g",
        title="Simulator model card (see DESIGN.md §2 and EXPERIMENTS.md)",
    )
