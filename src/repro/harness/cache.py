"""On-disk graph cache keyed by the provenance dataset fingerprint.

Synthetic analogs are deterministic but not free — an RMAT or k-mer
generation costs seconds at analog scale.  A grid of N cells over one
dataset must pay that cost once, not N times, and worker *processes*
(which do not share the parent's ``lru_cache``) must not pay it at all.
The cache stores each graph as a ``.npz`` snapshot named by its
:func:`~repro.telemetry.provenance.graph_fingerprint` — the same
content hash every :class:`~repro.engine.record.RunRecord` carries in
its provenance manifest — so an entry can never silently drift from the
graph it claims to be: the fingerprint is re-derived from the loaded
arrays and verified on first read (memoised per process thereafter —
entries are content-addressed, so a verified path stays verified).

Configuration (all overridable per :class:`GraphCache` instance):

* ``REPRO_GRAPH_CACHE`` — cache directory (default
  ``~/.cache/repro-matching/graphs``); the values ``off``/``0``/
  ``none`` disable disk caching entirely (parallel executors fall back
  to shipping graphs by pickle).
* ``REPRO_GRAPH_CACHE_ENTRIES`` — eviction knob: keep at most this many
  snapshots, oldest-used dropped first (default 64).
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import TYPE_CHECKING, Callable

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.graph.csr import CSRGraph

__all__ = ["GraphCache", "default_cache_root", "cache_disabled"]

_ENV_ROOT = "REPRO_GRAPH_CACHE"
_ENV_ENTRIES = "REPRO_GRAPH_CACHE_ENTRIES"
_DISABLED_VALUES = {"off", "0", "none", "false"}
_DEFAULT_MAX_ENTRIES = 64

#: ``(realpath, fingerprint)`` pairs this process has already verified.
#: Snapshots are content-addressed and written atomically, so a path
#: that once hashed to its fingerprint stays valid for the life of the
#: process — re-deriving the hash on every warm load was pure overhead
#: (shared across :class:`GraphCache` instances by design: they are
#: cheap throwaway handles over the same directory).
_VERIFIED: set[tuple[str, str]] = set()


def default_cache_root() -> Path:
    """The configured cache directory (ignoring the disable sentinel)."""
    env = os.environ.get(_ENV_ROOT)
    if env and env.lower() not in _DISABLED_VALUES:
        return Path(env)
    base = os.environ.get("XDG_CACHE_HOME") or \
        os.path.join(os.path.expanduser("~"), ".cache")
    return Path(base) / "repro-matching" / "graphs"


def cache_disabled() -> bool:
    """True when ``REPRO_GRAPH_CACHE`` opts out of disk caching."""
    env = os.environ.get(_ENV_ROOT)
    return env is not None and env.lower() in _DISABLED_VALUES


def _slug(name: str) -> str:
    """Filesystem-safe stem for a graph name."""
    return "".join(c if (c.isalnum() or c in "-_.") else "_"
                   for c in name) or "graph"


class GraphCache:
    """Fingerprint-verified ``.npz`` store for :class:`CSRGraph`\\ s.

    ``hits``/``misses`` count reads served from disk versus builds; the
    parallel executor and the benchmark harness report them, and the
    test suite asserts on them.
    """

    def __init__(self, root: "Path | str | None" = None,
                 max_entries: int | None = None) -> None:
        self.root = Path(root) if root is not None else \
            default_cache_root()
        if max_entries is None:
            max_entries = int(os.environ.get(_ENV_ENTRIES,
                                             _DEFAULT_MAX_ENTRIES))
        self.max_entries = max_entries
        self.hits = 0
        self.misses = 0

    # -------------------------------------------------------------- #
    # paths and keys
    # -------------------------------------------------------------- #

    def path_for(self, name: str, fingerprint: str) -> Path:
        """Snapshot path of graph ``name`` with content ``fingerprint``."""
        fp = fingerprint.split(":", 1)[-1]
        return self.root / f"{_slug(name)}-{fp}.npz"

    def entries(self) -> list[Path]:
        """Every snapshot currently on disk, oldest-accessed first."""
        if not self.root.is_dir():
            return []
        return sorted(self.root.glob("*.npz"),
                      key=lambda p: p.stat().st_mtime)

    # -------------------------------------------------------------- #
    # store / load
    # -------------------------------------------------------------- #

    def store(self, graph: "CSRGraph") -> tuple[Path, str]:
        """Snapshot ``graph``; returns ``(path, fingerprint)``.

        Idempotent: an existing entry for the same content is touched
        (refreshing its eviction rank), not rewritten.
        """
        from repro.graph.io import save_npz
        from repro.telemetry.provenance import graph_fingerprint

        fingerprint = graph_fingerprint(graph)
        path = self.path_for(graph.name, fingerprint)
        if path.is_file():
            path.touch()
            return path, fingerprint
        self.root.mkdir(parents=True, exist_ok=True)
        tmp = path.with_suffix(".tmp.npz")
        save_npz(graph, tmp)
        os.replace(tmp, path)  # atomic vs concurrent producers
        self.evict()
        return path, fingerprint

    def load(self, path: "Path | str",
             fingerprint: str | None = None) -> "CSRGraph":
        """Load a snapshot, verifying content against ``fingerprint``.

        Raises ``ValueError`` on a mismatch (truncated or stale file) —
        callers should rebuild rather than trust the entry.
        Verification is memoised per ``(path, fingerprint)`` within the
        process: a worker loading the same snapshot for its second cell
        skips the re-hash (entries are content-addressed and written
        atomically, so a verified path cannot silently change meaning).
        """
        from repro.graph.io import load_npz
        from repro.telemetry.provenance import graph_fingerprint

        graph = load_npz(path)
        if fingerprint is not None:
            memo_key = (os.path.realpath(os.fspath(path)), fingerprint)
            if memo_key not in _VERIFIED:
                actual = graph_fingerprint(graph)
                if actual != fingerprint:
                    raise ValueError(
                        f"graph cache entry {path} is corrupt: expected "
                        f"{fingerprint}, loaded content hashes to {actual}"
                    )
                _VERIFIED.add(memo_key)
        self.hits += 1
        return graph

    def get_or_build(self, name: str,
                     build: Callable[[], "CSRGraph"],
                     expect: str | None = None) -> "CSRGraph":
        """The cached graph named ``name``, building (and storing) on
        miss.

        Every hit is integrity-verified: the fingerprint in the entry's
        filename is re-derived from the loaded arrays, so a truncated
        or hand-edited snapshot is rebuilt, never returned.  Pass
        ``expect`` (a known :func:`graph_fingerprint` value, as the
        parallel executor does) to additionally require *that exact
        content* — without it, a stale entry from an older generator
        version of the same dataset name is indistinguishable from a
        fresh one.
        """
        if expect is not None:
            candidates = [self.path_for(name, expect)]
        elif self.root.is_dir():
            candidates = sorted(self.root.glob(f"{_slug(name)}-*.npz"),
                                key=lambda p: p.stat().st_mtime,
                                reverse=True)
        else:
            candidates = []
        for path in candidates:
            if not path.is_file():
                continue
            fp = expect if expect is not None \
                else "sha256:" + path.stem.rsplit("-", 1)[-1]
            try:
                graph = self.load(path, fp)
            except (ValueError, OSError):
                continue
            path.touch()
            return graph
        self.misses += 1
        graph = build()
        self.store(graph)
        return graph

    # -------------------------------------------------------------- #
    # maintenance
    # -------------------------------------------------------------- #

    def evict(self) -> int:
        """Drop oldest-used entries beyond ``max_entries``; returns the
        number removed."""
        entries = self.entries()
        removed = 0
        while len(entries) - removed > self.max_entries:
            try:
                entries[removed].unlink()
            except OSError:  # pragma: no cover - concurrent eviction
                pass
            removed += 1
        return removed

    def clear(self) -> None:
        """Remove every snapshot."""
        for path in self.entries():
            try:
                path.unlink()
            except OSError:  # pragma: no cover - concurrent eviction
                pass

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"GraphCache(root={str(self.root)!r}, "
                f"entries={len(self.entries())}, hits={self.hits}, "
                f"misses={self.misses})")
