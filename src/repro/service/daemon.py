"""``repro serve`` — the matching-as-a-service HTTP daemon.

A thin JSON front over the shared :class:`~repro.store.db.RunStore`:
clients submit jobs and read status/results; ``repro worker``
processes (attached to the same database file, not to the daemon) do
the matching.  The daemon itself never executes a cell, so it stays
responsive under heavy submission traffic and survives worker crashes
untouched — the FuzzBench shape from the ROADMAP.

Endpoints (all JSON)::

    POST /api/v1/jobs                submit  → {"fingerprint", "state"}
    GET  /api/v1/jobs                query   → {"jobs": [...]}
    GET  /api/v1/jobs/<fp>           status  → JobStatus document
    GET  /api/v1/jobs/<fp>/result    result  → {"state", "record"|null}
    POST /api/v1/jobs/<fp>/cancel    cancel  → {"cancelled": bool}
    GET  /metrics                    Prometheus text exposition
    GET  /healthz                    liveness → {"ok": true, ...}

Handlers call the very same :mod:`repro.api` local-backend functions
the in-process path uses, so a job submitted over HTTP is registered
byte-for-byte as one submitted with ``store=path`` — that equivalence
is what lets `repro.api` treat a daemon URL and a database path as
interchangeable ``store=`` values.

Error contract (mirrored by :class:`repro.api._HttpBackend`):
``404`` unknown fingerprint, ``409`` cancelled job's result, ``429``
per-client pending quota exceeded, ``400`` invalid submission
(unknown algorithm/dataset/platform, inapplicable options), ``500``
anything else.  Bodies carry ``{"error": "..."}``.

Threading: :class:`ThreadingHTTPServer` handles each request on its
own thread, and SQLite connections are not shareable across threads,
so the daemon opens one :class:`RunStore` per handler thread
(thread-local).  The metrics registry *is* shared — counter children
take a lock-free ``+=`` on floats, which CPython keeps atomic enough
for scrape-grade accuracy — and every handler activates it with
:func:`~repro.telemetry.record_into` so store-level counters
(hits/claims/cancels) emitted during handling land on ``/metrics``.
"""

from __future__ import annotations

import json
import threading
import time
import urllib.parse
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import TYPE_CHECKING, Any

from repro.telemetry import MetricsRegistry, record_into, to_prometheus

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.store.db import RunStore

__all__ = ["ServiceState", "build_server", "serve",
           "DEFAULT_HOST", "DEFAULT_PORT"]

DEFAULT_HOST = "127.0.0.1"
DEFAULT_PORT = 8787

#: Counter names exported by the daemon itself (the store-level
#: ``repro_store_*`` counters ride along via the active registry).
REQUESTS_COUNTER = "repro_service_requests_total"
SUBMITS_COUNTER = "repro_service_submissions_total"
REJECTS_COUNTER = "repro_service_rejections_total"
JOBS_GAUGE = "repro_service_jobs"


class ServiceState:
    """Everything the handler threads share: the store path (each
    thread opens its own connection), the per-client pending quota,
    and the daemon-lifetime metrics registry."""

    def __init__(self, store_path: Any, *,
                 quota: int | None = None,
                 lease_seconds: float | None = None) -> None:
        from pathlib import Path

        self.store_path = Path(store_path)
        self.quota = quota
        self.lease_seconds = lease_seconds
        self.registry = MetricsRegistry()
        self.started_at = time.time()
        self._local = threading.local()

    def store(self) -> "RunStore":
        """This handler thread's own RunStore connection."""
        store = getattr(self._local, "store", None)
        if store is None:
            from repro.store.db import RunStore

            store = RunStore(self.store_path,
                             lease_seconds=self.lease_seconds)
            self._local.store = store
        return store

    # ---------------------------------------------------------- #

    def submit(self, body: dict[str, Any]) -> dict[str, Any]:
        """Validate, quota-check and register one submission.

        Same construction path as :meth:`repro.api._LocalBackend.
        submit`, split around the fingerprint so the quota check can
        let idempotent resubmissions of an already-registered job
        through even for clients at their limit.
        """
        from repro.api import QuotaExceeded, _build_cell
        from repro.store.fingerprint import fingerprint_for

        spec = dict(body)
        priority = int(spec.pop("priority", 0) or 0)
        client = spec.pop("client", None)
        algorithm = spec.pop("algorithm", None)
        if not algorithm:
            raise ValueError("submission needs an 'algorithm'")
        allowed = {"dataset", "builder", "quality", "platform",
                   "devices", "batches", "pointing_engine", "seed",
                   "overrides", "label", "replicate"}
        unknown = set(spec) - allowed
        if unknown:
            raise ValueError(
                f"unknown submission field(s): {', '.join(sorted(unknown))}")
        kwargs = {k: v for k, v in spec.items() if v is not None}
        dataset = kwargs.pop("dataset", None)
        mc, g = _build_cell(algorithm, dataset, **kwargs)
        fp, config, gfp = fingerprint_for(mc.cell, mc.ctx, g)
        store = self.store()
        if self.quota is not None and store.get(fp) is None:
            backlog = [r for r in store.select(client=client)
                       if r.status in ("pending", "leased")
                       and not r.cancel_requested]
            if len(backlog) >= self.quota:
                self.registry.counter(
                    REJECTS_COUNTER,
                    "Submissions refused by the daemon.",
                    reason="quota").inc()
                raise QuotaExceeded(
                    f"client {client!r} has {len(backlog)} unfinished "
                    f"jobs (quota {self.quota}); wait or cancel some")
        store.register(
            fp, algorithm=mc.cell.algorithm_name, config=config,
            seed=mc.ctx.seed, graph_fingerprint=gfp,
            dataset=mc.cell.dataset or mc.ctx.dataset,
            priority=priority, client=client)
        self.registry.counter(
            SUBMITS_COUNTER, "Jobs accepted over HTTP.").inc()
        row = store.get(fp)
        return {"fingerprint": fp,
                "state": row.state if row is not None else "pending"}

    def metrics_text(self) -> str:
        """Prometheus exposition: daemon counters + live queue gauges."""
        store = self.store()
        counts = store.counts()
        cancelled = sum(
            1 for r in store.select(status=("pending", "error"))
            if r.cancel_requested)
        for state, n in counts.items():
            self.registry.gauge(
                JOBS_GAUGE, "Jobs per lifecycle state.",
                state=state).set(float(n))
        self.registry.gauge(JOBS_GAUGE, "Jobs per lifecycle state.",
                            state="cancelled").set(float(cancelled))
        self.registry.gauge(
            "repro_service_uptime_seconds",
            "Seconds since the daemon started.").set(
                time.time() - self.started_at)
        return to_prometheus(self.registry.snapshot())


class _Handler(BaseHTTPRequestHandler):
    server: "_Server"  # type: ignore[assignment]
    protocol_version = "HTTP/1.1"

    # ------------------------------------------------------------ #
    # plumbing
    # ------------------------------------------------------------ #

    def log_message(self, fmt: str, *args: Any) -> None:
        if not self.server.quiet:
            BaseHTTPRequestHandler.log_message(self, fmt, *args)

    def _send(self, code: int, payload: Any,
              content_type: str = "application/json") -> None:
        body = (payload if isinstance(payload, bytes)
                else json.dumps(payload).encode())
        self.send_response(code)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _error(self, code: int, message: str) -> None:
        self._send(code, {"error": message})

    def _body(self) -> dict[str, Any]:
        length = int(self.headers.get("Content-Length") or 0)
        raw = self.rfile.read(length) if length else b""
        if not raw:
            return {}
        doc = json.loads(raw)
        if not isinstance(doc, dict):
            raise ValueError("request body must be a JSON object")
        return doc

    def _dispatch(self, method: str) -> None:
        from repro.api import (
            JobCancelled,
            JobError,
            JobNotFound,
            QuotaExceeded,
        )

        state = self.server.state
        parsed = urllib.parse.urlsplit(self.path)
        route = parsed.path.rstrip("/") or "/"
        state.registry.counter(
            REQUESTS_COUNTER, "HTTP requests handled.",
            method=method).inc()
        try:
            with record_into(state.registry):
                self._route(method, route, parsed.query)
        except JobNotFound as exc:
            self._error(404, f"unknown job {exc.args[0]!s}")
        except JobCancelled as exc:
            self._error(409, f"job {exc.args[0]!s} was cancelled")
        except QuotaExceeded as exc:
            self._error(429, str(exc))
        except (ValueError, KeyError, TypeError, JobError) as exc:
            self._error(400, str(exc) or type(exc).__name__)
        except BrokenPipeError:  # client went away mid-response
            pass
        except Exception as exc:  # pragma: no cover - defensive
            self._error(500, f"{type(exc).__name__}: {exc}")

    # ------------------------------------------------------------ #
    # routes
    # ------------------------------------------------------------ #

    def _route(self, method: str, route: str, query: str) -> None:
        from repro.api import JobNotFound, _LocalBackend

        state = self.server.state
        backend = _LocalBackend(state.store())
        if method == "GET" and route == "/healthz":
            self._send(200, {"ok": True, "store": str(state.store_path),
                             "uptime_s": time.time() - state.started_at})
            return
        if method == "GET" and route == "/metrics":
            self._send(200, state.metrics_text().encode(),
                       content_type="text/plain; version=0.0.4")
            return
        if route == "/api/v1/jobs":
            if method == "POST":
                self._send(201, state.submit(self._body()))
                return
            if method == "GET":
                params = urllib.parse.parse_qs(query)

                def many(key: str) -> list[str] | None:
                    return params.get(key) or None

                jobs = backend.query(
                    algorithm=many("algorithm"), dataset=many("dataset"),
                    state=many("state"), client=many("client"))
                self._send(200, {"jobs": [j.to_dict() for j in jobs]})
                return
        if route.startswith("/api/v1/jobs/"):
            rest = route[len("/api/v1/jobs/"):]
            parts = rest.split("/")
            fp = parts[0]
            tail = "/".join(parts[1:])
            if method == "GET" and not tail:
                self._send(200, backend.status(fp).to_dict())
                return
            if method == "GET" and tail == "result":
                status = backend.status(fp)  # 404/derived state first
                record = backend.result(fp)  # raises 409 when cancelled
                self._send(200, {
                    "fingerprint": fp,
                    "state": status.state,
                    "record": None if record is None
                    else json.loads(record.to_json()),
                })
                return
            if method == "POST" and tail == "cancel":
                self._send(200, {"cancelled": backend.cancel(fp)})
                return
        raise JobNotFound(f"no route {method} {route}")

    # ------------------------------------------------------------ #

    def do_GET(self) -> None:  # noqa: N802 (http.server convention)
        self._dispatch("GET")

    def do_POST(self) -> None:  # noqa: N802
        self._dispatch("POST")


class _Server(ThreadingHTTPServer):
    daemon_threads = True
    allow_reuse_address = True

    def __init__(self, address: tuple[str, int], state: ServiceState,
                 quiet: bool = False) -> None:
        self.state = state
        self.quiet = quiet
        super().__init__(address, _Handler)


def build_server(store_path: Any, *,
                 host: str = DEFAULT_HOST, port: int = DEFAULT_PORT,
                 quota: int | None = None,
                 lease_seconds: float | None = None,
                 quiet: bool = False) -> _Server:
    """A ready-to-run (not yet serving) daemon — the test seam.

    ``port=0`` binds an ephemeral port; read it back from
    ``server.server_address[1]``.
    """
    state = ServiceState(store_path, quota=quota,
                         lease_seconds=lease_seconds)
    return _Server((host, port), state, quiet=quiet)


def serve(store_path: Any, *,
          host: str = DEFAULT_HOST, port: int = DEFAULT_PORT,
          quota: int | None = None,
          lease_seconds: float | None = None,
          quiet: bool = False,
          ready: Any = None) -> None:
    """Run the daemon until interrupted (the ``repro serve`` verb).

    ``ready``, when given, is a callable invoked with the bound
    ``(host, port)`` once the socket is listening.
    """
    server = build_server(store_path, host=host, port=port,
                          quota=quota, lease_seconds=lease_seconds,
                          quiet=quiet)
    if ready is not None:
        ready(server.server_address[0], server.server_address[1])
    try:
        server.serve_forever(poll_interval=0.2)
    except KeyboardInterrupt:
        pass
    finally:
        server.server_close()
