"""The worker fleet: drain a shared run store, priority-first.

Any number of ``repro worker`` processes (on any number of machines
sharing the database file) attach to the same
:class:`~repro.store.db.RunStore` and run this loop:

1. :meth:`~repro.store.db.RunStore.claim_next` atomically takes the
   lease on the highest-priority claimable cell (expired leases of
   dead workers included — stale reclaim is just another claim);
2. the cell is rebuilt from its stored config
   (:func:`~repro.store.fingerprint.cell_from_config`), its graph
   staged (shared-memory plane first for co-located workers, see
   below), and executed through the **same single-cell path as serial
   grids** (:func:`~repro.engine.cells.run_materialised_cell`) — which
   is what makes fleet-produced records bit-identical to
   ``run_cells``;
3. a heartbeat thread refreshes the lease while the cell runs, so only
   genuinely dead workers lose theirs;
4. the outcome is persisted (:meth:`~repro.store.db.RunStore.complete`)
   and the loop repeats.

Cancellation is honoured *between rounds*: flagged rows are never
claimed (:meth:`claim_next` skips them) and a flag that lands after
the claim but before execution releases the lease instead of running.
A cell already executing finishes and publishes its result — matching
runs are not interruptible mid-simulation.

Graph staging: workers on one host reuse the zero-copy shared-memory
graph plane (:mod:`repro.harness.shm`).  The first worker to build a
graph publishes its CSR arrays and records the segment descriptor
under ``shm:<graph_fingerprint>`` in the store's metadata table;
siblings attach the segment read-only instead of regenerating the
dataset analog.  Dead segments (owner exited) fall back to a normal
build and the stale descriptor is dropped.  ``REPRO_SHM=off`` disables
the plane; records are identical either way (the staged bytes are, by
fingerprint, the same graph).
"""

from __future__ import annotations

import json
import threading
import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable, Iterable

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.engine.record import RunRecord
    from repro.store.db import RunStore, StoredRun

__all__ = ["WorkerSummary", "worker_loop", "run_claimed_cell"]

#: Between-round sleep while the queue is empty.
DEFAULT_POLL_S = 0.5


@dataclass
class WorkerSummary:
    """What one :func:`worker_loop` invocation did."""

    worker_id: str
    executed: int = 0
    ok: int = 0
    errors: int = 0
    cancelled: int = 0
    unbuildable: int = 0
    stale_reclaims: int = 0
    wall_s: float = 0.0
    fingerprints: list[str] = field(default_factory=list)

    def to_dict(self) -> dict[str, Any]:
        return {
            "worker": self.worker_id,
            "executed": self.executed,
            "ok": self.ok,
            "errors": self.errors,
            "cancelled": self.cancelled,
            "unbuildable": self.unbuildable,
            "stale_reclaims": self.stale_reclaims,
            "wall_s": self.wall_s,
            "fingerprints": self.fingerprints,
        }


class _Heartbeat:
    """Refresh the lease on one fingerprint from a side thread.

    Uses its own :class:`RunStore` instance (hence its own SQLite
    connection) because connections are not thread-safe; the worker
    identity is shared so the refresh lands on our lease.
    """

    def __init__(self, store: "RunStore", fingerprint: str) -> None:
        from repro.store.db import RunStore

        self._store = RunStore(store.path,
                               lease_seconds=store.lease_seconds,
                               clock=store.clock,
                               worker_id=store.worker_id)
        self._fingerprint = fingerprint
        self._stop = threading.Event()
        interval = max(store.lease_seconds / 3.0, 0.05)
        self._thread = threading.Thread(
            target=self._run, args=(interval,), daemon=True)

    def _run(self, interval: float) -> None:
        while not self._stop.wait(interval):
            self._store.heartbeat(self._fingerprint)

    def __enter__(self) -> "_Heartbeat":
        self._thread.start()
        return self

    def __exit__(self, *exc: Any) -> None:
        self._stop.set()
        self._thread.join(timeout=5.0)
        self._store.close()


def _stage_graph(store: "RunStore", cell: Any, config: dict[str, Any],
                 graph_fp: str | None, registry: Any):
    """The cell's input graph: shared-memory plane first, then the
    normal build path (dataset registry / builder / context dataset)."""
    meta_key = f"shm:{graph_fp}" if graph_fp else None
    if registry is not None and meta_key is not None:
        doc = store.meta_get(meta_key)
        if doc is not None:
            from repro.harness.shm import SharedGraphSegment

            try:
                return registry.attach(SharedGraphSegment(
                    **json.loads(doc)))
            except (FileNotFoundError, OSError, TypeError, ValueError):
                # Owner exited (or a stale/garbled descriptor): build
                # normally and drop the dead pointer.
                store.meta_delete(meta_key)
    if cell.dataset is not None or cell.build is not None:
        from repro.engine.cells import _resolve_graph

        g = _resolve_graph(cell, None)
    else:
        from repro.harness.datasets import load_dataset

        g = load_dataset(config["ctx_dataset"])
    if registry is not None and meta_key is not None:
        import dataclasses

        seg = registry.publish(g, graph_fp)
        store.meta_set(meta_key, json.dumps(dataclasses.asdict(seg)))
    return g


def run_claimed_cell(store: "RunStore", row: "StoredRun",
                     registry: Any = None) -> "RunRecord":
    """Execute one already-claimed row and persist its outcome.

    Mirrors :func:`~repro.engine.cells.run_stored_cell`'s inner
    execution exactly (same error-record shape, same lease release on
    ``KeyboardInterrupt``/``SystemExit``), except the lease is already
    ours.  A cell whose config cannot be rebuilt in this process (its
    graph lived only in the submitting process) is completed as an
    ``error`` record — visible in ``store ls`` and still directly
    claimable by the owning grid, which re-runs it with the in-process
    graph.
    """
    from repro.engine.cells import (
        error_record,
        materialise_cells,
        run_materialised_cell,
    )
    from repro.store.fingerprint import cell_from_config

    fp = row.fingerprint
    started_at = time.time()
    try:
        cell = cell_from_config(row.config)
        mc = materialise_cells([cell])[0]
        g = _stage_graph(store, cell, row.config,
                         row.graph_fingerprint, registry)
    except Exception as exc:
        from repro.engine.cells import Cell
        from repro.engine.context import RunContext

        record = error_record(
            Cell(row.algorithm, dataset=row.dataset), RunContext(),
            None, exc, fingerprint=fp, config=row.config,
            started_at=started_at)
        store.complete(fp, record)
        return record
    with _Heartbeat(store, fp):
        try:
            record = run_materialised_cell(mc, g, on_error="raise")
        except Exception as exc:
            record = error_record(mc.cell, mc.ctx, g, exc,
                                  fingerprint=fp, config=row.config,
                                  started_at=started_at)
            store.complete(fp, record)
            return record
        except BaseException:
            store.release(fp)
            raise
    store.complete(fp, record)
    return record


def worker_loop(
    store: "RunStore",
    *,
    poll_s: float = DEFAULT_POLL_S,
    max_cells: int | None = None,
    idle_exit_s: float | None = None,
    algorithm: str | Iterable[str] | None = None,
    lease_seconds: float | None = None,
    on_cell: Callable[[str, "RunRecord"], None] | None = None,
) -> WorkerSummary:
    """Claim and execute cells until the exit condition is met.

    Parameters
    ----------
    poll_s:
        Sleep between rounds while nothing is claimable.
    max_cells:
        Stop after executing this many cells (``None`` = unbounded).
    idle_exit_s:
        Stop after this long with an empty queue; ``0`` stops at the
        first empty poll (drain-and-return), ``None`` runs until
        interrupted (the ``repro worker`` service default).
    algorithm:
        Restrict claims to these algorithm name(s) — a specialised
        worker pool.
    lease_seconds:
        Per-claim lease override (default: the store's).
    on_cell:
        Callback ``(fingerprint, record)`` after each persisted cell
        (the CLI's per-cell log line).

    Returns a :class:`WorkerSummary`.  ``KeyboardInterrupt`` mid-cell
    releases the lease (the cell returns to ``pending``) and the
    summary reflects the work done so far.
    """
    registry = None
    from repro.harness.shm import default_registry, shm_enabled

    if shm_enabled():
        registry = default_registry()
    stale_before = store.stale_reclaims
    summary = WorkerSummary(worker_id=store.worker_id)
    t0 = time.monotonic()
    idle_since: float | None = None
    try:
        while True:
            if max_cells is not None and summary.executed >= max_cells:
                break
            row = store.claim_next(lease_seconds, algorithm=algorithm)
            if row is None:
                if idle_exit_s is not None:
                    now = time.monotonic()
                    if idle_since is None:
                        idle_since = now
                    if now - idle_since >= idle_exit_s:
                        break
                time.sleep(poll_s)
                continue
            idle_since = None
            # A cancel that landed after the claim: hand the row back
            # untouched (it stays flagged, so nobody re-claims it).
            fresh = store.get(row.fingerprint)
            if fresh is not None and fresh.cancel_requested:
                store.release(row.fingerprint)
                summary.cancelled += 1
                continue
            record = run_claimed_cell(store, row, registry)
            summary.executed += 1
            summary.fingerprints.append(row.fingerprint)
            if record.ok:
                summary.ok += 1
            elif (record.error or {}).get("type") == "ValueError" and \
                    "not resumable" in (record.error or {}).get(
                        "message", ""):
                summary.unbuildable += 1
                summary.errors += 1
            else:
                summary.errors += 1
            if on_cell is not None:
                on_cell(row.fingerprint, record)
    except KeyboardInterrupt:
        pass
    finally:
        summary.stale_reclaims = store.stale_reclaims - stale_before
        summary.wall_s = time.monotonic() - t0
        if registry is not None:
            for seg in registry.segments():
                try:
                    store.meta_delete(f"shm:{seg.fingerprint}")
                except Exception:
                    pass
            registry.unlink_all()
    return summary
