"""repro.service — the serving layer over the shared run store.

Two long-running processes turn the batch-oriented reproduction into
an always-on matching service:

* :func:`repro.service.daemon.serve` (``repro serve``) — the HTTP
  front door: accepts job submissions, serves status/results and
  ``/metrics``;
* :func:`repro.service.worker.worker_loop` (``repro worker``) — the
  execution fleet: any number of processes claim cells
  priority-first from the same store and run them.

Clients should not import this package directly — :mod:`repro.api` is
the supported surface (``submit``/``status``/``result``/``cancel``/
``query`` against a store path or a daemon URL, plus ``process()``
for an inline worker).
"""

from repro.service.daemon import build_server, serve
from repro.service.worker import WorkerSummary, run_claimed_cell, worker_loop

__all__ = [
    "build_server",
    "serve",
    "WorkerSummary",
    "run_claimed_cell",
    "worker_loop",
]
