"""Edge-update event model: batches of inserts/deletes/reweights.

An :class:`UpdateBatch` is an *ordered* tuple of operations — order
matters inside a batch (an edge may be inserted and deleted by the same
batch) — applied atomically by a streaming engine: all structural
changes land first, then one repair runs.

An :class:`EdgeStream` is a replayable sequence of batches over a fixed
vertex set.  Two sources, both deterministic:

* :meth:`EdgeStream.generate` draws batches from a seeded RNG against a
  *tracked* live-edge set (ops are valid by construction: inserts only
  where no edge exists, deletes/reweights only of live edges), so the
  same ``(graph, seed, shape)`` always yields the same stream in any
  process;
* :meth:`EdgeStream.save` / :meth:`EdgeStream.load` round-trip the
  stream through a JSONL event log (one header line, one line per
  batch), so a recorded production trace replays bit-identically.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Iterator

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.graph.csr import CSRGraph

__all__ = ["OPS", "UpdateBatch", "EdgeStream"]

#: Operation kinds, in their event-log spelling.
OPS = ("insert", "delete", "reweight")

_STREAM_LOG_VERSION = 1


@dataclass(frozen=True)
class UpdateBatch:
    """One ordered batch of edge events.

    Each op is ``(kind, u, v, w)`` with ``kind`` in :data:`OPS` and
    ``w is None`` exactly for deletes.
    """

    ops: tuple[tuple[str, int, int, float | None], ...]

    def __post_init__(self) -> None:
        for kind, u, v, w in self.ops:
            if kind not in OPS:
                raise ValueError(f"unknown op kind {kind!r}")
            if u == v:
                raise ValueError("self-loops are not allowed")
            if kind == "delete":
                if w is not None:
                    raise ValueError("delete carries no weight")
            elif w is None or w <= 0:
                raise ValueError(f"{kind} needs a positive weight")

    @property
    def num_ops(self) -> int:
        return len(self.ops)

    def touched_vertices(self) -> np.ndarray:
        """Sorted unique endpoints of every op in the batch."""
        if not self.ops:
            return np.empty(0, dtype=np.int64)
        flat = np.array([[u, v] for _, u, v, _ in self.ops],
                        dtype=np.int64).ravel()
        return np.unique(flat)

    def to_doc(self) -> dict:
        return {"ops": [[k, u, v] if w is None else [k, u, v, w]
                        for k, u, v, w in self.ops]}

    @classmethod
    def from_doc(cls, doc: dict) -> "UpdateBatch":
        ops = []
        for entry in doc["ops"]:
            kind, u, v = entry[0], int(entry[1]), int(entry[2])
            w = float(entry[3]) if len(entry) > 3 else None
            ops.append((kind, u, v, w))
        return cls(ops=tuple(ops))


@dataclass(frozen=True)
class EdgeStream:
    """A replayable sequence of :class:`UpdateBatch` over ``n``
    vertices."""

    num_vertices: int
    batches: tuple[UpdateBatch, ...]
    seed: int | None = field(default=None)

    def __iter__(self) -> Iterator[UpdateBatch]:
        return iter(self.batches)

    def __len__(self) -> int:
        return len(self.batches)

    @property
    def num_ops(self) -> int:
        return sum(b.num_ops for b in self.batches)

    # -------------------------------------------------------------- #
    # seeded generator
    # -------------------------------------------------------------- #
    @classmethod
    def generate(
        cls,
        graph: "CSRGraph",
        num_batches: int = 8,
        batch_size: int = 32,
        seed: int = 0,
        p_insert: float = 0.55,
        p_delete: float = 0.25,
    ) -> "EdgeStream":
        """Deterministic mixed stream against ``graph``'s edge set.

        Ops are valid by construction: the generator tracks the live
        edge set as it emits, so inserts never duplicate an edge and
        deletes/reweights always hit one.  Remaining probability mass
        (``1 - p_insert - p_delete``) goes to reweights.
        """
        if num_batches < 0 or batch_size < 1:
            raise ValueError("need num_batches >= 0 and batch_size >= 1")
        if not (0 <= p_insert and 0 <= p_delete
                and p_insert + p_delete <= 1):
            raise ValueError("op probabilities must be a sub-distribution")
        n = graph.num_vertices
        if n < 2:
            raise ValueError("need at least 2 vertices to stream updates")
        rng = np.random.default_rng(seed)
        bu, bv, _ = graph.edge_array()
        live: list[tuple[int, int]] = list(zip(bu.tolist(), bv.tolist()))
        pos = {e: i for i, e in enumerate(live)}

        def draw_weight() -> float:
            return float(np.round(rng.random() * 0.998 + 0.001, 6))

        def pop_live(i: int) -> tuple[int, int]:
            e = live[i]
            last = live.pop()
            if i < len(live):
                live[i] = last
                pos[last] = i
            del pos[e]
            return e

        batches = []
        for _ in range(num_batches):
            ops: list[tuple[str, int, int, float | None]] = []
            for _ in range(batch_size):
                r = float(rng.random())
                if r >= p_insert and live:
                    i = int(rng.integers(0, len(live)))
                    if r < p_insert + p_delete:
                        u, v = pop_live(i)
                        ops.append(("delete", u, v, None))
                    else:
                        u, v = live[i]
                        ops.append(("reweight", u, v, draw_weight()))
                    continue
                # insert: rejection-sample a non-edge (deterministic —
                # the rng draw sequence is fixed); dense graphs fall
                # back to a reweight after a bounded number of misses.
                placed = False
                for _attempt in range(32):
                    a, b = (int(x) for x in rng.integers(0, n, 2))
                    if a == b:
                        continue
                    key = (a, b) if a < b else (b, a)
                    if key in pos:
                        continue
                    pos[key] = len(live)
                    live.append(key)
                    ops.append(("insert", key[0], key[1], draw_weight()))
                    placed = True
                    break
                if not placed and live:
                    i = int(rng.integers(0, len(live)))
                    u, v = live[i]
                    ops.append(("reweight", u, v, draw_weight()))
            batches.append(UpdateBatch(ops=tuple(ops)))
        return cls(num_vertices=n, batches=tuple(batches), seed=seed)

    # -------------------------------------------------------------- #
    # recorded event log (JSONL)
    # -------------------------------------------------------------- #
    def save(self, path: "str | Path") -> Path:
        """Write the stream as a JSONL event log (header + one line per
        batch)."""
        out = Path(path)
        with open(out, "wt") as fh:
            header = {"version": _STREAM_LOG_VERSION,
                      "num_vertices": self.num_vertices}
            if self.seed is not None:
                header["seed"] = self.seed
            fh.write(json.dumps(header) + "\n")
            for batch in self.batches:
                fh.write(json.dumps(batch.to_doc()) + "\n")
        return out

    @classmethod
    def load(cls, path: "str | Path") -> "EdgeStream":
        """Replay a recorded event log."""
        with open(path, "rt") as fh:
            lines = [line for line in fh if line.strip()]
        if not lines:
            raise ValueError(f"{path}: empty event log")
        header = json.loads(lines[0])
        if header.get("version") != _STREAM_LOG_VERSION:
            raise ValueError(
                f"{path}: unsupported event log version "
                f"{header.get('version')!r}")
        batches = tuple(UpdateBatch.from_doc(json.loads(line))
                        for line in lines[1:])
        return cls(num_vertices=int(header["num_vertices"]),
                   batches=batches, seed=header.get("seed"))
