"""``dynamic_ld`` — the registered batch-dynamic streaming scenario.

Runs a replayable :class:`~repro.streaming.events.EdgeStream` (seeded
generator by default, or a caller-supplied stream/recorded log) through
one of the two streaming engines and reports the *final* matching on
the mutated graph plus per-batch update-cost telemetry.  The scenario
is what the run store, the ``stream`` CLI subcommand and the
``dynamic`` bench suite share: one algorithm name, one RunRecord
schema, engine switched by the ``stream_engine`` kwarg.

Latency accounting note: ``update_latency_s`` is wall-clock per batch
(repair work only — stream generation is excluded), so it is recorded
on RunRecords and bench entries but never gated absolutely; CI gates
the machine-relative ``speedup_vs_recompute`` ratio plus the
deterministic ``host_entries_scanned`` instead.
``stream_recompute_entries_modeled`` (Σ per-batch ``2·m``) is the
modeled host cost floor of from-scratch recomputation — every
recompute must at least read each directed adjacency entry once — and
is what ``repro-matching stats`` reconciles incremental host work
against.
"""

from __future__ import annotations

import statistics

from repro.engine.spec import AlgorithmSpec, register
from repro.graph.csr import CSRGraph
from repro.matching.types import MatchResult
from repro.matching.validate import matching_weight
from repro.streaming.engine import STREAM_ENGINES, make_engine
from repro.streaming.events import EdgeStream

__all__ = ["dynamic_ld"]

_RECORD_STATS = (
    "stream_engine",
    "stream_batches",
    "stream_ops",
    "stream_repairs",
    "affected_vertices",
    "affected_per_batch",
    "host_entries_per_batch",
    "update_latency_s",
    "median_update_latency_s",
    "stream_recompute_entries_modeled",
)


def dynamic_ld(
    graph: CSRGraph,
    num_batches: int = 8,
    batch_size: int = 32,
    seed: int = 0,
    stream_engine: str = "incremental",
    events: EdgeStream | None = None,
    collect_stats: bool = True,
) -> MatchResult:
    """Stream update batches into ``graph`` and match incrementally.

    Parameters
    ----------
    num_batches / batch_size / seed:
        Shape of the generated stream (ignored when ``events`` is
        given; ``seed`` makes the stream — not the matching, which is
        deterministic — replayable).
    stream_engine:
        ``"incremental"`` (local repair from the affected frontier) or
        ``"recompute"`` (from-scratch ``ld_seq`` per batch, the
        oracle).  Both land on the identical mate array.
    events:
        A pre-built :class:`EdgeStream` (e.g. loaded from a recorded
        event log) to replay instead of generating one.
    """
    if stream_engine not in STREAM_ENGINES:
        raise ValueError(f"unknown stream engine {stream_engine!r}; "
                         f"have {STREAM_ENGINES}")
    if events is None:
        events = EdgeStream.generate(graph, num_batches=num_batches,
                                     batch_size=batch_size, seed=seed)
    elif events.num_vertices != graph.num_vertices:
        raise ValueError(
            f"event stream is over {events.num_vertices} vertices but "
            f"the graph has {graph.num_vertices}")

    eng = make_engine(stream_engine, graph)
    results = [eng.apply(batch) for batch in events]

    snapshot = eng.snapshot()
    weight = matching_weight(snapshot, eng.mate)
    latencies = [r.latency_s for r in results]
    # Modeled cost of recomputing from scratch after every batch: any
    # full ld_seq must examine each directed adjacency entry at least
    # once, so Σ 2·m(t) lower-bounds its host traffic.
    sizes: list[int] = []
    m = graph.num_edges
    for batch in events:
        for kind, _, _, _ in batch.ops:
            if kind == "insert":
                m += 1
            elif kind == "delete":
                m -= 1
        sizes.append(m)
    stats: dict = {}
    if collect_stats:
        stats = {
            "config": {
                "num_batches": len(events),
                "batch_size": batch_size,
                "seed": events.seed,
                "stream_engine": stream_engine,
            },
            "stream_engine": stream_engine,
            "stream_batches": len(results),
            "stream_ops": events.num_ops,
            "stream_repairs": sum(r.repairs for r in results),
            "affected_vertices":
                sum(r.affected_vertices for r in results),
            "affected_per_batch":
                [r.affected_vertices for r in results],
            "host_entries_per_batch":
                [r.host_entries_scanned for r in results],
            "host_entries_scanned":
                sum(r.host_entries_scanned for r in results),
            "update_latency_s": latencies,
            "median_update_latency_s":
                statistics.median(latencies) if latencies else 0.0,
            "stream_recompute_entries_modeled":
                sum(2 * s for s in sizes),
        }
    return MatchResult(
        mate=eng.mate,
        weight=weight,
        algorithm=f"dynamic_ld({stream_engine})",
        iterations=sum(r.rounds for r in results),
        stats=stats,
    )


register(AlgorithmSpec(
    name="dynamic_ld",
    fn=dynamic_ld,
    summary="Batch-dynamic LD: streamed updates with local repair",
    accepts_seed=True,
    approx_ratio="1/2",
    record_stats=_RECORD_STATS,
    tags=("dynamic", "streaming"),
))
