"""Batch-dynamic LD matching engines: incremental repair vs recompute.

Why local repair can be exact
-----------------------------
Under the shared ``(weight, eid)`` lexicographic total order, the
locally dominant matching :func:`~repro.matching.ld_seq.ld_seq`
converges to is the *unique stable matching* of the graph: no edge has
a key greater than both of its endpoints' matched keys (a "blocking
edge").  Uniqueness is what makes an incremental engine testable to
the byte — any procedure that ends with no blocking edge *must* land
on the same mate array as a from-scratch run on the mutated graph.

:class:`IncrementalLD` exploits that.  A batch is applied to a
base+overlay graph (:class:`~repro.graph.overlay.OverlayGraph`); then:

1. every matched edge incident to a *changed* vertex (an endpoint of
   any op) is released — after this, every blocking edge of the new
   graph has at least one free endpoint, because an all-matched
   blocking pair would have had to be blocking before the batch too;
2. only the changed vertices' sorted-row cursors are invalidated: their
   adjacency rows (sorted descending by ``(w, eid)``, the
   PointerIndex layout) are rebuilt from the overlay, everyone else
   keeps their base row;
3. pointing/matching rounds run from the affected frontier to the
   fixed point.  Pointing scans a free vertex's sorted row for the
   first *dethronable* neighbour — free, or matched through a smaller
   key than the connecting edge; matching commits proposals in
   descending key order (the globally best proposal always commits, so
   every round makes progress), freeing dethroned partners into the
   next frontier.  When no free vertex can point anywhere, no blocking
   edge is left.

Host work is counted exactly as in
:mod:`~repro.matching.pointer_index`: every adjacency entry examined
increments ``host_entries_scanned``, so per-batch cost is measurably
proportional to the affected region instead of O(m).

:class:`RecomputeLD` is the oracle: it applies the same batch to the
same overlay, snapshots to CSR, and reruns ``ld_seq`` from scratch —
what a non-incremental system would pay on every batch.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from repro.graph.csr import CSRGraph
from repro.graph.overlay import OverlayGraph
from repro.matching.ld_seq import ld_seq
from repro.matching.types import UNMATCHED
from repro.streaming.events import UpdateBatch
from repro.telemetry.spans import count

__all__ = [
    "STREAM_ENGINES",
    "BatchResult",
    "StreamingEngine",
    "IncrementalLD",
    "RecomputeLD",
    "make_engine",
]

#: Engine kinds accepted by :func:`make_engine` and ``--engine``.
STREAM_ENGINES = ("incremental", "recompute")

STREAM_BATCH_COUNTER = "repro_stream_batches_total"
STREAM_REPAIR_COUNTER = "repro_stream_repairs_total"
STREAM_AFFECTED_COUNTER = "repro_stream_affected_vertices_total"
_COUNTER_HELP = {
    STREAM_BATCH_COUNTER: "Update batches applied by streaming engines.",
    STREAM_REPAIR_COUNTER:
        "Matched edges (re)committed while repairing after a batch.",
    STREAM_AFFECTED_COUNTER:
        "Vertices whose matching state was touched by batch repairs.",
}

_NEG_INF = -np.inf
_SCAN_CHUNK = 64


@dataclass(frozen=True)
class BatchResult:
    """Per-batch outcome and cost accounting.

    ``affected`` is the set of vertices whose matching state the repair
    touched (released, re-pointed, proposed-to or dethroned);
    ``cursors_rebuilt`` — always a subset — is the vertices whose
    sorted-adjacency rows were invalidated because their neighbourhood
    changed.  ``host_entries_scanned`` counts adjacency entries
    actually examined; ``repairs`` counts matched-edge commits.
    """

    index: int
    num_ops: int
    affected: tuple[int, ...]
    cursors_rebuilt: tuple[int, ...]
    host_entries_scanned: int
    repairs: int
    rounds: int
    latency_s: float
    matched_edges: int
    weight: float

    @property
    def affected_vertices(self) -> int:
        return len(self.affected)


class StreamingEngine:
    """Common surface of the two engines."""

    kind: str = "?"

    def __init__(self, base: CSRGraph):
        self._overlay = OverlayGraph(base)
        self._n = base.num_vertices
        self._batches_applied = 0
        seeded = ld_seq(base, collect_stats=False)
        self.mate = seeded.mate.copy()

    @property
    def num_vertices(self) -> int:
        return self._n

    @property
    def graph(self) -> OverlayGraph:
        """The live base+overlay graph (public read surface)."""
        return self._overlay

    def snapshot(self, name: str | None = None) -> CSRGraph:
        """Exact CSR of the current (mutated) graph."""
        return self._overlay.to_csr(name)

    @property
    def weight(self) -> float:
        """Current matching weight (sum of matched edge weights)."""
        total = 0.0
        for v in np.nonzero(self.mate != UNMATCHED)[0].tolist():
            u = int(self.mate[v])
            if v < u:
                total += self._overlay.edge_weight(v, u)
        return total

    @property
    def matched_edges(self) -> int:
        return int((self.mate != UNMATCHED).sum()) // 2

    def _apply_ops(self, batch: UpdateBatch) -> set[int]:
        """Mutate the overlay; returns the changed-vertex set."""
        changed: set[int] = set()
        for kind, u, v, w in batch.ops:
            if kind == "insert":
                self._overlay.insert(u, v, w)
            elif kind == "delete":
                self._overlay.delete(u, v)
            else:
                self._overlay.reweight(u, v, w)
            changed.add(u)
            changed.add(v)
        return changed

    def _emit(self, result: BatchResult) -> None:
        count(STREAM_BATCH_COUNTER, 1,
              _COUNTER_HELP[STREAM_BATCH_COUNTER], engine=self.kind)
        count(STREAM_REPAIR_COUNTER, result.repairs,
              _COUNTER_HELP[STREAM_REPAIR_COUNTER], engine=self.kind)
        count(STREAM_AFFECTED_COUNTER, result.affected_vertices,
              _COUNTER_HELP[STREAM_AFFECTED_COUNTER], engine=self.kind)

    def apply(self, batch: UpdateBatch) -> BatchResult:
        raise NotImplementedError


class IncrementalLD(StreamingEngine):
    """Local repair to the exact LD fixed point after each batch."""

    kind = "incremental"

    def __init__(self, base: CSRGraph):
        super().__init__(base)
        # PointerIndex layout: every base row sorted descending by
        # (weight, eid) in one global lexsort; per-vertex overlay rows
        # replace base slices only after that vertex's neighbourhood
        # changes (the "cursor rebuild").
        eids = base.canonical_edge_ids()
        rows = np.repeat(np.arange(self._n, dtype=np.int64),
                         base.degrees)
        order = np.lexsort((-eids, -base.weights, rows))
        self._indptr = base.indptr
        self._sorted_nbrs = base.indices[order]
        self._sorted_ws = base.weights[order]
        self._sorted_eids = eids[order]
        self._rows: dict[int, tuple[np.ndarray, np.ndarray,
                                    np.ndarray]] = {}
        # Matched key per vertex ((-inf, -1) = free), the O(1) side of
        # the dethronable test.
        self._mw = np.full(self._n, _NEG_INF, dtype=np.float64)
        self._meid = np.full(self._n, -1, dtype=np.int64)
        for v in np.nonzero(self.mate != UNMATCHED)[0].tolist():
            u = int(self.mate[v])
            if v < u:
                self._set_matched_key(v, u,
                                      self._overlay.edge_weight(v, u))

    # -------------------------------------------------------------- #
    def _eid(self, u: int, v: int) -> int:
        lo, hi = (u, v) if u < v else (v, u)
        return lo * self._n + hi

    def _set_matched_key(self, v: int, u: int, w: float) -> None:
        e = self._eid(v, u)
        self._mw[v] = self._mw[u] = w
        self._meid[v] = self._meid[u] = e

    def _release(self, v: int) -> int:
        """Unmatch ``v`` (and its partner); returns the ex-partner."""
        u = int(self.mate[v])
        if u != UNMATCHED:
            self.mate[v] = self.mate[u] = UNMATCHED
            self._mw[v] = self._mw[u] = _NEG_INF
            self._meid[v] = self._meid[u] = -1
        return u

    def _row(self, v: int) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        got = self._rows.get(v)
        if got is not None:
            return got
        s, e = int(self._indptr[v]), int(self._indptr[v + 1])
        return (self._sorted_nbrs[s:e], self._sorted_ws[s:e],
                self._sorted_eids[s:e])

    def _rebuild_row(self, v: int) -> None:
        """Cursor invalidation: re-sort ``v``'s current adjacency."""
        nbrs, ws = self._overlay.row_arrays(v)
        lo = np.minimum(v, nbrs)
        eids = lo * np.int64(self._n) + np.maximum(v, nbrs)
        order = np.lexsort((-eids, -ws))
        self._rows[v] = (np.ascontiguousarray(nbrs[order]),
                         np.ascontiguousarray(ws[order]),
                         np.ascontiguousarray(eids[order]))

    def _point(self, v: int) -> tuple[float, int, int] | None:
        """First dethronable neighbour of free ``v`` in sorted order
        (= the max-key one); returns ``(w, eid, target)`` or ``None``.
        Scans in chunks, charging every examined entry to
        ``_host_scanned``."""
        nbrs, ws, es = self._row(v)
        mw, meid = self._mw, self._meid
        m = len(nbrs)
        start = 0
        while start < m:
            stop = min(start + _SCAN_CHUNK, m)
            nn = nbrs[start:stop]
            cw = ws[start:stop]
            ce = es[start:stop]
            cond = (cw > mw[nn]) | ((cw == mw[nn]) & (ce > meid[nn]))
            hit = np.flatnonzero(cond)
            if hit.size:
                k = int(hit[0])
                self._host_scanned += k + 1
                return float(cw[k]), int(ce[k]), int(nn[k])
            self._host_scanned += stop - start
            start = stop
        return None

    # -------------------------------------------------------------- #
    def apply(self, batch: UpdateBatch) -> BatchResult:
        t0 = time.perf_counter()
        changed = self._apply_ops(batch)

        # Release every matched edge at a changed endpoint: afterwards
        # each blocking edge of the mutated graph has a free endpoint.
        frontier: set[int] = set()
        for x in changed:
            p = self._release(x)
            if p != UNMATCHED:
                frontier.add(p)
            frontier.add(x)
        for x in changed:
            self._rebuild_row(x)
        cursors_rebuilt = tuple(sorted(changed))
        affected = set(frontier)

        self._host_scanned = 0
        repairs = 0
        rounds = 0
        while frontier:
            rounds += 1
            # Pointing phase: each free frontier vertex proposes along
            # its best dethronable edge (sorted order over an exact
            # row, so "first valid" is "max key").
            proposals: list[tuple[float, int, int, int]] = []
            for v in sorted(frontier):
                if self.mate[v] != UNMATCHED:
                    continue
                best = self._point(v)
                if best is not None:
                    w, e, target = best
                    proposals.append((w, e, v, target))
            # Matching phase: commit in descending key order under the
            # mutual-or-dethrone rule.  Dethroning a *matched* target
            # only raises its matched key, so it can never create a
            # blocking edge at the target; a *free* target may commit
            # only mutually (its own pointer is its max dethronable
            # key) — accepting a lower offer would strand the higher
            # blocking edge it was still aspiring to.  A free target
            # that did not point this round joins the next frontier
            # instead, so it points before accepting.  The globally
            # maximal proposal whose target pointed is always mutual
            # (both sides' max dethronable key is the shared edge), so
            # rounds without a commit can only grow the pointed set —
            # termination is bounded by commits + frontier growth.
            pointed = {v: target for _, _, v, target in proposals}
            next_frontier: set[int] = set()
            for w, e, v, target in sorted(
                    proposals, key=lambda p: (-p[0], -p[1])):
                if self.mate[v] != UNMATCHED:
                    # matched as someone else's mutual partner.
                    continue
                if self.mate[target] != UNMATCHED:
                    tw, te = self._mw[target], self._meid[target]
                    if w > tw or (w == tw and e > te):
                        old = self._release(target)
                        next_frontier.add(old)
                        affected.add(old)
                    else:
                        next_frontier.add(v)
                        continue
                elif pointed.get(target) != v:
                    next_frontier.add(v)
                    next_frontier.add(target)
                    affected.add(target)
                    continue
                self.mate[v] = target
                self.mate[target] = v
                self._mw[v] = self._mw[target] = w
                self._meid[v] = self._meid[target] = e
                repairs += 1
                affected.add(target)
                affected.add(v)
            frontier = {x for x in next_frontier
                        if self.mate[x] == UNMATCHED}
            affected |= frontier

        self._batches_applied += 1
        result = BatchResult(
            index=self._batches_applied - 1,
            num_ops=batch.num_ops,
            affected=tuple(sorted(affected)),
            cursors_rebuilt=cursors_rebuilt,
            host_entries_scanned=self._host_scanned,
            repairs=repairs,
            rounds=rounds,
            latency_s=time.perf_counter() - t0,
            matched_edges=self.matched_edges,
            weight=float(self._mw[self._mw > _NEG_INF].sum() / 2.0),
        )
        self._emit(result)
        return result


class RecomputeLD(StreamingEngine):
    """From-scratch oracle: snapshot + full ``ld_seq`` per batch."""

    kind = "recompute"

    def apply(self, batch: UpdateBatch) -> BatchResult:
        t0 = time.perf_counter()
        changed = self._apply_ops(batch)
        snap = self._overlay.to_csr()
        fresh = ld_seq(snap, collect_stats=True)
        self.mate = fresh.mate
        self._batches_applied += 1
        result = BatchResult(
            index=self._batches_applied - 1,
            num_ops=batch.num_ops,
            affected=tuple(range(self._n)),  # everything is re-pointed
            cursors_rebuilt=tuple(sorted(changed)),
            host_entries_scanned=int(
                fresh.stats["host_entries_scanned"]),
            repairs=int(fresh.num_matched_edges),
            rounds=int(fresh.iterations),
            latency_s=time.perf_counter() - t0,
            matched_edges=int(fresh.num_matched_edges),
            weight=float(fresh.weight),
        )
        self._emit(result)
        return result


def make_engine(kind: str, base: CSRGraph) -> StreamingEngine:
    """Engine factory for ``--engine incremental|recompute``."""
    if kind == "incremental":
        return IncrementalLD(base)
    if kind == "recompute":
        return RecomputeLD(base)
    raise ValueError(f"unknown stream engine {kind!r}; "
                     f"have {STREAM_ENGINES}")
