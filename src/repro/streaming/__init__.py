"""Batch-dynamic streaming matching.

The paper's motivating workloads (scheduling, resource allocation) see
graphs as *streams* of edge events.  This package makes them a
first-class workload plane:

* :mod:`repro.streaming.events` — the :class:`UpdateBatch` /
  :class:`EdgeStream` event model: ordered insert/delete/reweight
  batches, deterministically replayable from a seeded generator or a
  recorded JSONL event log;
* :mod:`repro.streaming.engine` — the :class:`IncrementalLD` engine
  (apply a batch to a base+overlay graph, invalidate only the sorted-
  row cursors of vertices whose neighbourhood changed, repair the
  locally dominant matching from that affected frontier to the fixed
  point) and the :class:`RecomputeLD` from-scratch oracle.  Both reach
  the *same* fixed point — LD's matching is the unique stable matching
  under the ``(weight, eid)`` total order — so the incremental mate
  array is byte-for-byte identical to a fresh
  :func:`~repro.matching.ld_seq.ld_seq` on the mutated graph;
* :mod:`repro.streaming.scenario` — the registered ``dynamic_ld``
  algorithm: a seeded stream applied through either engine, with
  per-batch ``affected_vertices`` / ``host_entries_scanned`` / update
  latency stats on the RunRecord.  ``repro-matching stream`` is the
  CLI face; the ``dynamic`` bench suite gates the update-latency
  speedup over recompute in CI.
"""

from repro.streaming.events import (
    OPS,
    EdgeStream,
    UpdateBatch,
)
from repro.streaming.engine import (
    STREAM_ENGINES,
    BatchResult,
    IncrementalLD,
    RecomputeLD,
    make_engine,
)
from repro.streaming.scenario import dynamic_ld

__all__ = [
    "OPS",
    "UpdateBatch",
    "EdgeStream",
    "STREAM_ENGINES",
    "BatchResult",
    "IncrementalLD",
    "RecomputeLD",
    "make_engine",
    "dynamic_ld",
]
