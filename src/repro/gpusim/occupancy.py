"""Warp work assignment and SM occupancy.

§IV-C of the paper studies two device-utilisation signals: per-warp edge
work (Fig. 8) and per-iteration Streaming Multiprocessor occupancy
(Fig. 11).  Both derive from how the pointing kernel distributes contiguous
vertex groups across warps; this module computes them analytically from the
frontier's degree array.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.gpusim.spec import DeviceSpec

__all__ = ["warp_work_distribution", "sm_occupancy", "WarpWorkStats"]


@dataclass(frozen=True)
class WarpWorkStats:
    """Per-kernel warp work summary feeding Fig. 8 / the cost model."""

    num_warps: int
    total_work: int
    max_work: int
    mean_work: float
    std_work: float

    @property
    def imbalance(self) -> float:
        """Max/mean warp work (1.0 = perfectly balanced)."""
        return self.max_work / self.mean_work if self.mean_work > 0 else 1.0


def warp_work_distribution(
    work_per_vertex: np.ndarray, vertices_per_warp: int
) -> WarpWorkStats:
    """Work per warp when contiguous groups of ``vertices_per_warp``
    vertices are assigned to each warp (Algorithm 3's distribution)."""
    if vertices_per_warp < 1:
        raise ValueError("vertices_per_warp must be >= 1")
    nv = len(work_per_vertex)
    if nv == 0:
        return WarpWorkStats(0, 0, 0, 0.0, 0.0)
    starts = np.arange(0, nv, vertices_per_warp)
    warp_work = np.add.reduceat(
        np.asarray(work_per_vertex, dtype=np.int64), starts
    )
    return WarpWorkStats(
        num_warps=len(starts),
        total_work=int(warp_work.sum()),
        max_work=int(warp_work.max()),
        mean_work=float(warp_work.mean()),
        std_work=float(warp_work.std()),
    )


def sm_occupancy(spec: DeviceSpec, num_warps: int) -> float:
    """Achieved occupancy for a launch of ``num_warps`` warps.

    Launches larger than the device's resident-warp capacity saturate the
    SMs (occupancy → 1); smaller launches leave SMs idle — the collapse the
    paper's occupancy outliers (mycielskian18, mouse_gene) show once the
    matching frontier shrinks below the device's width.
    """
    if num_warps < 0:
        raise ValueError("num_warps must be >= 0")
    cap = spec.occupancy_capacity
    if cap == 0:
        return 0.0
    return min(1.0, num_warps / cap)
