"""Discrete-cost multi-GPU simulator.

The paper runs on NVIDIA DGX boxes (8×A100 SXM4 and 16×V100 SXM3); this
environment has no GPUs, so LD-GPU executes here on *simulated* devices:

* the **arithmetic** of every kernel is performed bit-exactly with NumPy on
  the arrays a real device would hold, and
* the **time** of every kernel, transfer and collective is accounted by a
  first-order cost model (bytes / bandwidth, kernel-launch latency,
  max-warp-work imbalance, ring-allreduce steps).

Quality numbers are therefore exact; performance numbers reproduce the
paper's *shapes* (scaling curves, component breakdowns, interconnect and
generation gaps) rather than its absolute seconds.  DESIGN.md §2 records
this substitution.
"""

from repro.gpusim.spec import (
    DeviceSpec,
    PlatformSpec,
    A100,
    V100,
    DGX_A100,
    DGX_A100_PCIE,
    DGX_2,
    CPU_EPYC_7742_2S,
    CpuSpec,
)
from repro.gpusim.memory import DeviceOOMError, MemoryPool
from repro.gpusim.device import SimDevice
from repro.gpusim.timeline import Timeline, COMPONENTS
from repro.gpusim.stream import dual_buffer_schedule
from repro.gpusim.kernels import (
    pointing_kernel_cost,
    matching_kernel_cost,
    KernelProfile,
)
from repro.gpusim.occupancy import warp_work_distribution, sm_occupancy
from repro.gpusim.trace import Trace, TraceEvent
from repro.gpusim.cluster import ClusterSpec, DGX_A100_SUPERPOD

__all__ = [
    "DeviceSpec",
    "PlatformSpec",
    "CpuSpec",
    "A100",
    "V100",
    "DGX_A100",
    "DGX_A100_PCIE",
    "DGX_2",
    "CPU_EPYC_7742_2S",
    "DeviceOOMError",
    "MemoryPool",
    "SimDevice",
    "Timeline",
    "COMPONENTS",
    "dual_buffer_schedule",
    "pointing_kernel_cost",
    "matching_kernel_cost",
    "KernelProfile",
    "warp_work_distribution",
    "sm_occupancy",
    "Trace",
    "TraceEvent",
    "ClusterSpec",
    "DGX_A100_SUPERPOD",
]
