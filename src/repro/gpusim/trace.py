"""Execution traces — Chrome-trace export of simulated runs.

Turns a :class:`~repro.gpusim.timeline.Timeline`'s per-iteration component
records into a timeline of events loadable by ``chrome://tracing`` /
Perfetto, the standard way to eyeball phase interleavings (the simulated
counterpart of the paper's NSight sessions in §IV-C).
"""

from __future__ import annotations

import json
from dataclasses import dataclass

from repro.gpusim.timeline import COMPONENTS, Timeline

__all__ = ["TraceEvent", "Trace"]

#: Lane assignment per component: compute vs communication rows.
_LANES = {
    "pointing": "compute",
    "matching": "compute",
    "allreduce_pointers": "communication",
    "allreduce_mate": "communication",
    "batch_transfer": "communication",
    "sync": "communication",
}


@dataclass(frozen=True)
class TraceEvent:
    """One complete ('X' phase) event.

    ``lane`` is the accounting category (compute vs communication —
    what :meth:`Trace.lane_totals` sums); ``track`` is the display row
    (Chrome/Perfetto ``tid``).  They coincide except for batch
    transfers, which render on their own track so the dual-buffer
    overlap with the pointing kernel is visible.
    """

    name: str
    lane: str
    start_s: float
    duration_s: float
    iteration: int
    track: str | None = None

    def to_chrome(self) -> dict:
        """Chrome-trace JSON object (timestamps in microseconds)."""
        return {
            "name": self.name,
            "cat": self.lane,
            "ph": "X",
            "ts": self.start_s * 1e6,
            "dur": self.duration_s * 1e6,
            "pid": 0,
            "tid": self.track if self.track is not None else self.lane,
            "args": {"iteration": self.iteration},
        }


class Trace:
    """An ordered list of :class:`TraceEvent`."""

    def __init__(self, events: list[TraceEvent]):
        self.events = events

    @classmethod
    def from_timeline(cls, timeline: Timeline) -> "Trace":
        """Lay the per-iteration component records out on a global clock.

        Components within an iteration are serialised in the order LD-GPU
        executes them (pointing → allreduce(pointers) → matching →
        allreduce(mate) → sync).  Batch transfers are *not* serialised
        onto the compute clock: they render on their own
        ``batch_transfer`` track starting with the pointing kernel —
        overlapping timestamps, exactly the §IV-C dual-buffer pipeline —
        while the exposed-transfer residual still extends the pointing
        phase (the next component starts at ``pointing +
        batch_transfer``), so the trace ends at ``timeline.total`` and
        :meth:`lane_totals` keeps its accounting semantics unchanged.
        """
        serial = ("allreduce_pointers", "matching", "allreduce_mate",
                  "sync")
        clock = 0.0
        events: list[TraceEvent] = []
        for it, rec in enumerate(timeline.iterations):
            bt = rec.get("batch_transfer", 0.0)
            if bt > 0.0:
                events.append(TraceEvent(
                    "batch_transfer", _LANES["batch_transfer"], clock,
                    bt, it, track="batch_transfer",
                ))
            pt = rec.get("pointing", 0.0)
            if pt > 0.0:
                events.append(TraceEvent("pointing", _LANES["pointing"],
                                         clock, pt, it))
            clock += pt + bt  # phase makespan = compute + exposed copy
            for comp in serial:
                dur = rec.get(comp, 0.0)
                if dur <= 0.0:
                    continue
                events.append(TraceEvent(comp, _LANES[comp], clock, dur,
                                         it))
                clock += dur
        return cls(events)

    @classmethod
    def from_result(cls, result) -> "Trace":
        """Trace of a simulator-backed run.

        Accepts a :class:`~repro.matching.types.MatchResult` or a
        :class:`~repro.engine.record.RunRecord` (the engine's
        ``TraceSink`` hook); raises ``ValueError`` when the run carries
        no timeline.
        """
        timeline = getattr(result, "timeline", None)
        if timeline is None and getattr(result, "result", None) is not None:
            timeline = result.result.timeline
        if timeline is None:
            raise ValueError(
                "run carries no timeline — only simulator-backed "
                "algorithms produce traces"
            )
        return cls.from_timeline(timeline)

    @property
    def total_duration(self) -> float:
        """Latest event end time (tracks may overlap, so not simply the
        last-appended event)."""
        if not self.events:
            return 0.0
        return max(e.start_s + e.duration_s for e in self.events)

    def lane_totals(self) -> dict[str, float]:
        """Seconds per lane (compute vs communication)."""
        out: dict[str, float] = {}
        for e in self.events:
            out[e.lane] = out.get(e.lane, 0.0) + e.duration_s
        return out

    def to_chrome_trace(self) -> dict:
        """The full chrome-trace document."""
        return {
            "traceEvents": [e.to_chrome() for e in self.events],
            "displayTimeUnit": "ms",
        }

    def save(self, path) -> None:
        """Write the chrome-trace JSON to ``path``."""
        with open(path, "wt") as fh:
            json.dump(self.to_chrome_trace(), fh)

    def __len__(self) -> int:
        return len(self.events)
