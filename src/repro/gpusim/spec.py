"""Device and platform specifications.

Numbers mirror the paper's two test systems (§IV, Platforms):

* **DGX-A100** — 8 × NVIDIA "Ampere" A100-SXM4: 108 SMs, 40 GB HBM2
  (~1555 GB/s), NVLink SXM4 fabric.
* **DGX-2** — 16 × NVIDIA "Volta" V100-SXM3: 80 SMs, 32 GB HBM2
  (~900 GB/s), NVLink SXM3 fabric.

Launch/sync latencies are calibrated so single-device A100/V100 ratios land
in the paper's Table III band (1.1–4.6×, geo-mean ≈ 2.35×): bandwidth-bound
large kernels see the 1555/900 ≈ 1.7× HBM ratio, while iteration-dominated
runs (kmer graphs: thousands of small launches under CUDA 10 on V100) are
launch-latency-bound and see up to ~4.5×.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.comm.topology import (
    Interconnect,
    NVLINK_SXM3,
    NVLINK_SXM4,
    PCIE3,
    PCIE4,
)

__all__ = [
    "DeviceSpec",
    "PlatformSpec",
    "CpuSpec",
    "A100",
    "V100",
    "DGX_A100",
    "DGX_A100_PCIE",
    "DGX_2",
    "CPU_EPYC_7742_2S",
]


@dataclass(frozen=True)
class DeviceSpec:
    """Performance-relevant description of one GPU.

    Attributes
    ----------
    sm_count / warps_per_sm / warp_size:
        Execution geometry; ``warps_per_sm`` is the *achieved* resident
        warp count, not the architectural maximum.
    mem_bandwidth_gbs:
        HBM streaming bandwidth.
    memory_bytes:
        Global memory capacity — drives batching and OOM behaviour.
    kernel_launch_us:
        Launch + completion-sync latency per kernel; dominates matchings
        with thousands of tiny iterations.
    index_bytes / weight_bytes:
        Width of the graph representation (LD-GPU is 64-bit; SR-GPU 32-bit).
    """

    name: str
    sm_count: int
    warps_per_sm: int
    mem_bandwidth_gbs: float
    memory_bytes: int
    kernel_launch_us: float
    clock_ghz: float = 1.4
    warp_size: int = 32
    index_bytes: int = 8
    weight_bytes: int = 8
    #: Streaming rate one warp sustains on its own (straggler bound for the
    #: imbalance term of the pointing-kernel cost model).
    warp_throughput_gbs: float = 4.0
    #: Throughput derate for non-coalesced (indirectly indexed) accesses,
    #: as in the matching kernel's mutual-pointer check (§III-D).
    gather_penalty: float = 4.0
    #: Fraction of peak HBM bandwidth sustained on irregular graph kernels
    #: (Ampere's larger L2 and improved coalescing keep it near peak;
    #: Volta sustains notably less — how the paper's Table III exceeds the
    #: raw 1555/900 bandwidth ratio).
    mem_efficiency: float = 1.0
    #: Resident-warp capacity used for *occupancy* evaluation; ``None``
    #: means the physical ``hw_warps``.  The harness scales this by the
    #: analog/paper vertex ratio so a scaled-down frontier under-fills the
    #: simulated device at the same point in the run as the original
    #: graph's frontier under-filled the real one (Fig. 11's signal).
    effective_hw_warps: float | None = None

    @property
    def hw_warps(self) -> int:
        """Concurrently resident warps across the device."""
        return self.sm_count * self.warps_per_sm

    @property
    def occupancy_capacity(self) -> float:
        """Warp capacity against which occupancy is evaluated."""
        return self.effective_hw_warps \
            if self.effective_hw_warps is not None else float(self.hw_warps)

    def with_occupancy_capacity(self, warps: float) -> "DeviceSpec":
        """Copy with a custom occupancy-evaluation warp capacity."""
        return replace(self, effective_hw_warps=float(warps))

    @property
    def mem_bandwidth_bps(self) -> float:
        """Sustained HBM bandwidth for graph kernels, bytes/second."""
        return self.mem_bandwidth_gbs * 1e9 * self.mem_efficiency

    @property
    def bytes_per_adjacency(self) -> int:
        """Bytes streamed per adjacency slot (index + weight)."""
        return self.index_bytes + self.weight_bytes

    def with_memory(self, memory_bytes: int) -> "DeviceSpec":
        """Copy with a different memory capacity.

        The benchmark harness scales device memory down in proportion to
        its scaled-down graphs, so the *ratio* of graph size to device
        memory — which decides batching — matches the paper's runs.
        """
        return replace(self, memory_bytes=int(memory_bytes))

    def with_representation(self, index_bytes: int,
                            weight_bytes: int) -> "DeviceSpec":
        """Copy with a different graph element width (e.g. SR-GPU's 32-bit)."""
        return replace(self, index_bytes=index_bytes,
                       weight_bytes=weight_bytes)

    def scaled(self, factor: float) -> "DeviceSpec":
        """Copy with memory capacity *and* bandwidths multiplied by
        ``factor`` (latencies unchanged).

        The harness shrinks a platform by the same factor as its analog
        graph, which keeps the analog in the paper's operating regime:
        payload terms (bytes/bandwidth) dominate exactly where they did on
        the billion-edge originals, while per-iteration latencies keep
        their true magnitudes.
        """
        # warp_throughput is intentionally NOT scaled: a warp's scan rate
        # is per-warp physics, independent of problem size, and the
        # analog's per-warp work (vertex degrees) is size-preserved.
        return replace(
            self,
            memory_bytes=max(1, int(self.memory_bytes * factor)),
            mem_bandwidth_gbs=self.mem_bandwidth_gbs * factor,
        )


#: NVIDIA A100-SXM4-40GB ("Ampere").
A100 = DeviceSpec(
    name="A100",
    sm_count=108,
    warps_per_sm=32,
    mem_bandwidth_gbs=1555.0,
    memory_bytes=40 * 1024**3,
    kernel_launch_us=4.0,
    clock_ghz=1.41,
    warp_throughput_gbs=4.0,
)

#: NVIDIA V100-SXM3-32GB ("Volta") under CUDA 10 on DGX-2.
V100 = DeviceSpec(
    name="V100",
    sm_count=80,
    warps_per_sm=32,
    mem_bandwidth_gbs=900.0,
    memory_bytes=32 * 1024**3,
    kernel_launch_us=18.0,
    clock_ghz=1.53,
    warp_throughput_gbs=2.5,
    mem_efficiency=0.7,
)


@dataclass(frozen=True)
class PlatformSpec:
    """A dense-GPU node: devices plus the fabrics connecting them."""

    name: str
    device: DeviceSpec
    max_devices: int
    gpu_link: Interconnect
    host_link: Interconnect

    def with_device_memory(self, memory_bytes: int) -> "PlatformSpec":
        """Platform copy with scaled per-device memory (see
        :meth:`DeviceSpec.with_memory`)."""
        return replace(self, device=self.device.with_memory(memory_bytes))

    def with_gpu_link(self, link: Interconnect) -> "PlatformSpec":
        """Platform copy on a different GPU fabric (PCIe vs NVLink study)."""
        return replace(self, name=f"{self.name}/{link.name}", gpu_link=link)

    def scaled(self, factor: float) -> "PlatformSpec":
        """Whole-platform bandwidth/memory scaling (see
        :meth:`DeviceSpec.scaled`) — device memory, HBM, fabric and host
        links all shrink by ``factor``; latencies are untouched."""
        return replace(
            self,
            device=self.device.scaled(factor),
            gpu_link=self.gpu_link.scaled(bandwidth_factor=factor),
            host_link=self.host_link.scaled(bandwidth_factor=factor),
        )


#: The paper's primary platform: 8 × A100 over NVLink SXM4.
DGX_A100 = PlatformSpec("DGX-A100", A100, 8, NVLINK_SXM4, PCIE4)

#: The same node restricted to PCIe peer transfers (Fig. 9's baseline).
DGX_A100_PCIE = PlatformSpec("DGX-A100-PCIe", A100, 8, PCIE4, PCIE4)

#: The previous-generation platform: 16 × V100 over NVLink SXM3.
DGX_2 = PlatformSpec("DGX-2", V100, 16, NVLINK_SXM3, PCIE3)


@dataclass(frozen=True)
class CpuSpec:
    """Multicore host model for the SR-OMP baseline.

    ``irregular_efficiency`` is the fraction of peak DRAM bandwidth a
    pointer-chasing graph workload sustains; ``barrier_us`` is the OpenMP
    barrier cost per synchronised round at the given thread count.
    """

    name: str
    threads: int
    mem_bandwidth_gbs: float
    irregular_efficiency: float
    barrier_us: float

    @property
    def effective_bandwidth_bps(self) -> float:
        """Sustained bandwidth for irregular access, bytes/second."""
        return self.mem_bandwidth_gbs * 1e9 * self.irregular_efficiency

    def scaled(self, factor: float) -> "CpuSpec":
        """Bandwidth-scaled copy (see :meth:`DeviceSpec.scaled`)."""
        return replace(self,
                       mem_bandwidth_gbs=self.mem_bandwidth_gbs * factor)


#: Two-socket AMD EPYC 7742 (128 cores / 256 threads), 16 DDR4 channels.
#: The irregular efficiency is calibrated against the paper's Table I:
#: SR-OMP streams Queen_4147's ~10 GB of adjacency in 0.332 s ≈ 30 GB/s.
CPU_EPYC_7742_2S = CpuSpec(
    name="2xEPYC-7742",
    threads=256,
    mem_bandwidth_gbs=380.0,
    irregular_efficiency=0.12,
    barrier_us=15.0,
)
