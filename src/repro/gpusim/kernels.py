"""Kernel cost models.

Two kernels exist in LD-GPU (Algorithm 3):

* ``SetPointers`` — warp-per-vertex-group neighbourhood scan with a warp
  shuffle reduction.  Streaming-bandwidth bound when the launch saturates
  the device, straggler bound when one warp's neighbourhood dwarfs the
  rest (heavy-tailed graphs), launch-latency bound when the frontier is
  tiny (the thousands-of-iterations regime).
* ``SetMates`` — per-thread mutual-pointer check over the vertex list; no
  neighbourhood scan, but the double indirection ``pointers[pointers[u]]``
  is non-coalesced, modeled with :attr:`DeviceSpec.gather_penalty`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.gpusim.occupancy import (
    WarpWorkStats,
    sm_occupancy,
    warp_work_distribution,
)
from repro.gpusim.spec import DeviceSpec
from repro.telemetry.spans import observe

__all__ = [
    "KernelProfile",
    "pointing_kernel_cost",
    "matching_kernel_cost",
    "VERTEX_HEADER_BYTES",
]

#: Per-vertex fixed traffic in the pointing kernel: indptr pair, mate
#: check, pointer write (4 × 8 B).
VERTEX_HEADER_BYTES = 32


@dataclass(frozen=True)
class KernelProfile:
    """Modeled outcome of one kernel launch."""

    seconds: float
    occupancy: float
    warp_stats: WarpWorkStats

    @property
    def edges_scanned(self) -> int:
        """Adjacency entries touched by this launch."""
        return self.warp_stats.total_work


def pointing_kernel_cost(
    spec: DeviceSpec,
    work_per_vertex: np.ndarray,
    vertices_per_warp: int = 8,
) -> KernelProfile:
    """Cost of one ``SetPointers`` launch over the given frontier slice.

    ``work_per_vertex`` holds the adjacency length of each scanned vertex
    (contiguous ids, as a batch is).  The model takes the max of

    * the bandwidth bound  ``total_bytes / HBM_bw / occupancy``  (an
      under-filled device cannot saturate its HBM), and
    * the straggler bound  ``max_warp_bytes / warp_throughput``,

    plus the launch latency.
    """
    stats = warp_work_distribution(work_per_vertex, vertices_per_warp)
    launch = spec.kernel_launch_us * 1e-6
    if stats.num_warps == 0:
        return KernelProfile(launch, 0.0, stats)

    occ = sm_occupancy(spec, stats.num_warps)
    bpa = spec.bytes_per_adjacency
    nv = len(work_per_vertex)
    total_bytes = stats.total_work * bpa + nv * VERTEX_HEADER_BYTES
    max_warp_bytes = (
        stats.max_work * bpa + vertices_per_warp * VERTEX_HEADER_BYTES
    )
    # Under-filled launches are already throttled by the straggler bound
    # (per-warp throughput); dividing the bandwidth bound by occupancy as
    # well would double-penalise small frontiers.
    bw_bound = total_bytes / spec.mem_bandwidth_bps
    straggler_bound = max_warp_bytes / (spec.warp_throughput_gbs * 1e9)
    seconds = launch + max(bw_bound, straggler_bound)
    observe("repro_kernel_seconds", seconds,
            "Modeled per-launch kernel durations.",
            device=spec.name, kernel="pointing")
    return KernelProfile(seconds, occ, stats)


def matching_kernel_cost(spec: DeviceSpec, num_vertices: int) -> KernelProfile:
    """Cost of one ``SetMates`` launch checking ``num_vertices`` vertices.

    Traffic per vertex: coalesced ``pointers[u]`` read (8 B), gathered
    ``pointers[pointers[u]]`` read (8 B × gather penalty), conditional
    ``mate`` write (8 B amortised).
    """
    launch = spec.kernel_launch_us * 1e-6
    if num_vertices == 0:
        return KernelProfile(launch, 0.0, warp_work_distribution(
            np.empty(0, dtype=np.int64), 1))
    threads_per_warp = spec.warp_size
    num_warps = -(-num_vertices // threads_per_warp)
    occ = sm_occupancy(spec, num_warps)
    bytes_per_vertex = 8 + 8 * spec.gather_penalty + 8
    total_bytes = num_vertices * bytes_per_vertex
    seconds = launch + total_bytes / spec.mem_bandwidth_bps
    observe("repro_kernel_seconds", seconds,
            "Modeled per-launch kernel durations.",
            device=spec.name, kernel="matching")
    stats = WarpWorkStats(
        num_warps=num_warps,
        total_work=num_vertices,
        max_work=threads_per_warp,
        mean_work=num_vertices / num_warps,
        std_work=0.0,
    )
    return KernelProfile(seconds, occ, stats)
