"""Device global-memory accounting.

The paper motivates batching with out-of-memory failures ("even the
subgraph representations do not fit into GPU memory", §III-B) and Table I's
'-' entries are SR-GPU OOMs.  The allocator reproduces both: named
allocations against a capacity, with peak tracking for reports.
"""

from __future__ import annotations

__all__ = ["DeviceOOMError", "MemoryPool"]


class DeviceOOMError(MemoryError):
    """Raised when an allocation exceeds the device's remaining memory."""

    def __init__(self, device: str, request: int, used: int, capacity: int):
        self.device = device
        self.request = request
        self.used = used
        self.capacity = capacity
        super().__init__(
            f"{device}: out of memory allocating {request} B "
            f"({used} B of {capacity} B already in use)"
        )

    def __reduce__(self):
        # args holds the formatted message, not the constructor
        # signature — restore from the fields so the exception survives
        # the worker→parent pickle hop of parallel sweeps.
        return (DeviceOOMError,
                (self.device, self.request, self.used, self.capacity))


class MemoryPool:
    """Capacity-checked allocator for one simulated device."""

    def __init__(self, capacity_bytes: int, device_name: str = "gpu"):
        if capacity_bytes < 0:
            raise ValueError("capacity must be non-negative")
        self.capacity = int(capacity_bytes)
        self.device_name = device_name
        self._allocations: dict[str, int] = {}
        self.peak = 0

    @property
    def used(self) -> int:
        """Bytes currently allocated."""
        return sum(self._allocations.values())

    @property
    def free(self) -> int:
        """Bytes still available."""
        return self.capacity - self.used

    def alloc(self, name: str, nbytes: int) -> None:
        """Reserve ``nbytes`` under ``name``; raises on OOM or reuse."""
        if nbytes < 0:
            raise ValueError("allocation size must be non-negative")
        if name in self._allocations:
            raise ValueError(f"allocation {name!r} already exists")
        if self.used + nbytes > self.capacity:
            raise DeviceOOMError(self.device_name, nbytes, self.used,
                                 self.capacity)
        self._allocations[name] = int(nbytes)
        self.peak = max(self.peak, self.used)

    def free_allocation(self, name: str) -> None:
        """Release the allocation registered under ``name``."""
        if name not in self._allocations:
            raise KeyError(f"no allocation named {name!r}")
        del self._allocations[name]

    def resize(self, name: str, nbytes: int) -> None:
        """Replace an allocation's size (realloc semantics)."""
        self.free_allocation(name)
        self.alloc(name, nbytes)

    def allocations(self) -> dict[str, int]:
        """Snapshot of live allocations (name → bytes)."""
        return dict(self._allocations)

    def __contains__(self, name: str) -> bool:
        return name in self._allocations

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"MemoryPool({self.device_name}: {self.used}/{self.capacity} B "
            f"in {len(self._allocations)} allocations, peak {self.peak} B)"
        )
