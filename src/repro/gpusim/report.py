"""Per-run profiling reports — the simulator's ``nvprof``.

Turns a finished LD-GPU :class:`~repro.matching.types.MatchResult` into
the per-iteration table a profiler would show: component milliseconds,
edges scanned, occupancy, matches committed.  The CLI exposes it as
``repro-matching run --profile``.
"""

from __future__ import annotations

import numpy as np

from repro.gpusim.timeline import COMPONENTS
from repro.harness.report import format_table
from repro.matching.types import MatchResult

__all__ = ["profile_report", "iteration_rows"]


def _as_match_result(result) -> MatchResult:
    """Unwrap an engine :class:`~repro.engine.record.RunRecord`."""
    if isinstance(result, MatchResult):
        return result
    inner = getattr(result, "result", None)
    return inner if inner is not None else result


def iteration_rows(result) -> list[list]:
    """One row per iteration: times (ms) per component + work stats.

    Accepts a :class:`MatchResult` or an engine ``RunRecord``; requires
    a run produced with ``collect_stats=True`` and a timeline (i.e. an
    ``ld_gpu`` / ``ld_multinode`` run).
    """
    result = _as_match_result(result)
    if result.timeline is None:
        raise ValueError("result carries no timeline — run ld_gpu with "
                         "a simulator-backed algorithm")
    records = result.timeline.iterations
    scanned = result.stats.get("edges_scanned")
    occ = result.stats.get("occupancy")
    matches = result.stats.get("new_matches")

    def stat(series, it):
        """Series value for iteration ``it``, None when the series is
        absent or shorter than the timeline (e.g. a merged timeline or
        a stats-free rerun)."""
        return series[it] if series is not None and it < len(series) \
            else None

    rows = []
    for it, rec in enumerate(records):
        row: list = [it]
        row.extend(1e3 * rec[c] for c in COMPONENTS)
        row.append(1e3 * sum(rec.values()))
        s, o, m = stat(scanned, it), stat(occ, it), stat(matches, it)
        row.append(int(s) if s is not None else None)
        row.append(100.0 * float(o) if o is not None else None)
        row.append(int(m) if m is not None else None)
        rows.append(row)
    return rows


def profile_report(result) -> str:
    """The full profiler table plus a summary footer (accepts a
    :class:`MatchResult` or an engine ``RunRecord``)."""
    result = _as_match_result(result)
    rows = iteration_rows(result)
    headers = (
        ["iter"]
        + [f"{c} (ms)" for c in COMPONENTS]
        + ["total (ms)", "edges scanned", "occ %", "matches"]
    )
    table = format_table(headers, rows, floatfmt=".3f",
                         title=f"{result.algorithm} profile "
                               f"({result.iterations} iterations)")
    t = result.timeline
    footer = (
        f"\ntotal {1e3 * t.total:.3f} ms | communication "
        f"{100.0 * t.communication_fraction():.1f}% | "
        f"weight {result.weight:.6f} | "
        f"{result.num_matched_edges} matched edges"
    )
    scanned = result.stats.get("edges_scanned")
    if scanned is not None and len(scanned):
        footer += (
            f"\nedge traffic: {int(np.sum(scanned))} total scans, "
            f"{100.0 * scanned[0] / max(np.sum(scanned), 1):.1f}% in "
            f"iteration 0"
        )
    return table + footer
