"""Multi-node cluster specifications.

The paper's concluding remarks look "towards the development of
distributed matching schemes"; this module describes the hardware side of
that extension: several dense-GPU nodes joined by an InfiniBand fabric,
with NCCL-style hierarchical collectives (intra-node NVLink ring +
inter-node IB ring).  :func:`repro.matching.ld_multinode.ld_multinode`
runs LD-GPU on such a cluster.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.comm.topology import INFINIBAND_HDR, Interconnect
from repro.gpusim.spec import DGX_A100, PlatformSpec

__all__ = ["ClusterSpec", "DGX_A100_SUPERPOD", "emit_cluster_shape"]


@dataclass(frozen=True)
class ClusterSpec:
    """A homogeneous cluster of dense-GPU nodes."""

    name: str
    node: PlatformSpec
    num_nodes: int
    inter_node: Interconnect = INFINIBAND_HDR

    @property
    def total_devices(self) -> int:
        """GPUs across the whole cluster."""
        return self.num_nodes * self.node.max_devices

    def flat_platform(self, devices_per_node: int) -> PlatformSpec:
        """A :class:`PlatformSpec` view over the whole cluster.

        Used by the LD-GPU engine for per-device specs and host links;
        the collective cost is supplied separately (hierarchically).
        """
        if not 1 <= devices_per_node <= self.node.max_devices:
            raise ValueError(
                f"devices_per_node must be in "
                f"[1, {self.node.max_devices}]"
            )
        return replace(
            self.node,
            name=f"{self.name}[{self.num_nodes}x{devices_per_node}]",
            max_devices=self.num_nodes * devices_per_node,
        )

    def scaled(self, factor: float) -> "ClusterSpec":
        """Bandwidth/memory scaling of the whole cluster (see
        :meth:`repro.gpusim.spec.DeviceSpec.scaled`)."""
        return replace(
            self,
            node=self.node.scaled(factor),
            inter_node=self.inter_node.scaled(bandwidth_factor=factor),
        )


def emit_cluster_shape(cluster: ClusterSpec, num_nodes: int,
                       devices_per_node: int) -> None:
    """Record the cluster slice a run executes on as telemetry gauges
    (no-op without an active metrics registry) — the provenance half of
    multi-node runs' metrics documents."""
    from repro.telemetry.spans import active_registry

    reg = active_registry()
    if reg is None:
        return
    labels = {"cluster": cluster.name}
    reg.gauge("repro_cluster_nodes",
              "Nodes used of the simulated cluster.", **labels
              ).set(num_nodes)
    reg.gauge("repro_cluster_devices_per_node",
              "GPUs used per node.", **labels).set(devices_per_node)
    reg.gauge("repro_cluster_total_devices",
              "Total GPUs across the cluster slice.", **labels
              ).set(num_nodes * devices_per_node)


#: A slice of an A100 SuperPOD: four DGX-A100 nodes over HDR InfiniBand.
DGX_A100_SUPERPOD = ClusterSpec("SuperPOD-4", DGX_A100, 4)
