"""CUDA-stream style asynchronous scheduling.

LD-GPU allocates two buffers per device and alternates batches between two
streams so that loading batch *b+1* overlaps computing batch *b*
(Algorithm 2, lines 4–6; Fig. 2).  :func:`dual_buffer_schedule` resolves
that pipeline's makespan from per-batch load and compute durations.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.telemetry.spans import count, observe

__all__ = ["dual_buffer_schedule", "PipelineResult"]


@dataclass(frozen=True)
class PipelineResult:
    """Outcome of a dual-buffer pipeline.

    Attributes
    ----------
    makespan:
        End-to-end seconds for all batches.
    compute_time:
        Sum of kernel durations (the fully-hidden-transfer lower bound,
        after the first load).
    exposed_transfer:
        Transfer seconds *not* hidden behind compute — what the paper's
        Fig. 5/7 attribute to the batch-transfer component.
    """

    makespan: float
    compute_time: float
    exposed_transfer: float


def dual_buffer_schedule(
    load_times: list[float], compute_times: list[float]
) -> PipelineResult:
    """Makespan of a two-buffer load/compute pipeline.

    Semantics: copies share one H2D engine (loads are serial among
    themselves); kernels share one compute queue (serial among themselves);
    the compute of batch *b* needs its load done; the load of batch *b*
    needs buffer ``b % 2`` free, i.e. the compute of batch *b−2* finished.
    With ≤2 batches no intra-iteration synchronisation occurs — matching
    the paper's "we only have to synchronize between successive batch
    invocations when the #batches are greater than two".
    """
    if len(load_times) != len(compute_times):
        raise ValueError("load/compute lists must have equal length")
    nb = len(load_times)
    if nb == 0:
        return PipelineResult(0.0, 0.0, 0.0)

    load_done = [0.0] * nb
    comp_done = [0.0] * nb
    for b in range(nb):
        load_start = load_done[b - 1] if b >= 1 else 0.0
        if b >= 2:  # buffer reuse: wait for its previous occupant's kernel
            load_start = max(load_start, comp_done[b - 2])
        load_done[b] = load_start + load_times[b]
        comp_start = max(load_done[b], comp_done[b - 1] if b >= 1 else 0.0)
        comp_done[b] = comp_start + compute_times[b]

    makespan = comp_done[-1]
    compute_time = sum(compute_times)
    exposed = max(0.0, makespan - compute_time)
    count("repro_pipeline_batches_total", nb,
          "Batches resolved through the dual-buffer pipeline.")
    observe("repro_exposed_transfer_seconds", exposed,
            "Per-pipeline transfer seconds not hidden behind compute.")
    return PipelineResult(makespan, compute_time, exposed)
