"""Per-component time ledger.

Fig. 5 and Fig. 7 of the paper break LD-GPU's execution into the pointing
and matching phases, the two allreduces, batch-range data transfers and
explicit synchronisations.  :class:`Timeline` accrues exactly those
components, per iteration and in total, for the simulated run.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "Timeline",
    "COMPONENTS",
    "COMM_COMPONENTS",
    "fractions_from_totals",
    "comm_fraction_from_totals",
]

#: The component set of the paper's Fig. 5/7 stacked bars.
COMPONENTS = (
    "pointing",
    "matching",
    "allreduce_pointers",
    "allreduce_mate",
    "batch_transfer",
    "sync",
)

#: The components the paper classifies as communication (the numerator
#: of :meth:`Timeline.communication_fraction`).
COMM_COMPONENTS = ("allreduce_pointers", "allreduce_mate",
                   "batch_transfer", "sync")


def fractions_from_totals(totals: dict) -> dict:
    """Component shares from a plain totals dict.

    The dict-shaped twin of :meth:`Timeline.fractions`, for consumers
    holding only ``RunRecord.timeline_totals`` — e.g. records served
    from the run store, where the in-memory ``MatchResult`` (and its
    :class:`Timeline`) is never serialised.  Unknown keys pass through;
    missing components read as 0.  Summation runs in sorted-key order
    so the result is bit-identical whether the totals dict came fresh
    from a :class:`Timeline` or back out of sorted-keys JSON.
    """
    t = sum(totals[k] for k in sorted(totals))
    if t == 0:
        return {c: 0.0 for c in COMPONENTS}
    return {c: totals.get(c, 0.0) / t for c in COMPONENTS}


def comm_fraction_from_totals(totals: dict) -> float:
    """:meth:`Timeline.communication_fraction` from a plain totals
    dict (see :func:`fractions_from_totals`)."""
    t = sum(totals[k] for k in sorted(totals))
    if t == 0:
        return 0.0
    return sum(totals.get(c, 0.0) for c in COMM_COMPONENTS) / t


class Timeline:
    """Accumulates modeled seconds per component and per iteration."""

    def __init__(self) -> None:
        self.totals: dict[str, float] = {c: 0.0 for c in COMPONENTS}
        self.iterations: list[dict[str, float]] = []
        self._current: dict[str, float] | None = None

    # -------------------------------------------------------------- #
    def begin_iteration(self) -> None:
        """Open a new per-iteration record."""
        if self._current is not None:
            raise RuntimeError("previous iteration not closed")
        self._current = {c: 0.0 for c in COMPONENTS}

    def end_iteration(self) -> None:
        """Close the current per-iteration record."""
        if self._current is None:
            raise RuntimeError("no open iteration")
        self.iterations.append(self._current)
        self._current = None

    def add(self, component: str, seconds: float) -> None:
        """Charge ``seconds`` to ``component`` (and the open iteration)."""
        if component not in self.totals:
            raise KeyError(
                f"unknown component {component!r}; expected one of "
                f"{COMPONENTS}"
            )
        if seconds < 0:
            raise ValueError("cannot charge negative time")
        self.totals[component] += seconds
        if self._current is not None:
            self._current[component] += seconds

    # -------------------------------------------------------------- #
    @property
    def total(self) -> float:
        """Total modeled seconds."""
        return sum(self.totals.values())

    def fractions(self) -> dict[str, float]:
        """Component shares of the total (Fig. 5/7's Y axis)."""
        t = self.total
        if t == 0:
            return {c: 0.0 for c in COMPONENTS}
        return {c: v / t for c, v in self.totals.items()}

    def communication_fraction(self) -> float:
        """Share spent in collectives + transfers + sync — the quantity the
        paper reports as "about 90% of the overall execution time" for
        multi-GPU runs."""
        comm = (
            self.totals["allreduce_pointers"]
            + self.totals["allreduce_mate"]
            + self.totals["batch_transfer"]
            + self.totals["sync"]
        )
        t = self.total
        return comm / t if t else 0.0

    def iteration_totals(self) -> np.ndarray:
        """Per-iteration total seconds."""
        return np.array(
            [sum(rec.values()) for rec in self.iterations], dtype=np.float64
        )

    def component_series(self, component: str) -> np.ndarray:
        """Per-iteration seconds of one component."""
        if component not in self.totals:
            raise KeyError(component)
        return np.array(
            [rec[component] for rec in self.iterations], dtype=np.float64
        )

    def merged_with(self, other: "Timeline") -> "Timeline":
        """Componentwise sum of two ledgers.

        Per-iteration records are concatenated (``self``'s first) — the
        natural reading for sequential phases merged into one ledger —
        so the merged ``iterations`` stay consistent with ``totals``
        instead of being silently dropped.  Merging with an iteration
        open on either side is an error.
        """
        if self._current is not None or other._current is not None:
            raise RuntimeError("cannot merge timelines with an open "
                               "iteration")
        out = Timeline()
        for c in COMPONENTS:
            out.totals[c] = self.totals[c] + other.totals[c]
        out.iterations = [dict(rec) for rec in self.iterations] + \
            [dict(rec) for rec in other.iterations]
        return out

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        parts = ", ".join(
            f"{c}={v:.3e}s" for c, v in self.totals.items() if v > 0
        )
        return f"Timeline(total={self.total:.3e}s; {parts})"
