"""One simulated GPU: memory pool + launch/transfer counters.

A :class:`SimDevice` owns the per-device state LD-GPU allocates in §III-C:
the partition's CSR rows, the two |V|-sized global arrays (``pointers`` and
``mate``) and, when batching, the two batch buffers.  NumPy arrays stand in
for device buffers; the pool enforces the capacity so over-subscribed
configurations fail with :class:`~repro.gpusim.memory.DeviceOOMError`
exactly where a real run would.
"""

from __future__ import annotations

import numpy as np

from repro.gpusim.memory import MemoryPool
from repro.gpusim.spec import DeviceSpec
from repro.telemetry.spans import count, emit_event

__all__ = ["SimDevice"]


class SimDevice:
    """A single simulated device."""

    def __init__(self, device_id: int, spec: DeviceSpec):
        self.device_id = device_id
        self.spec = spec
        self.memory = MemoryPool(spec.memory_bytes, f"{spec.name}#{device_id}")
        self.kernels_launched = 0
        self.bytes_h2d = 0
        self.bytes_d2h = 0
        self._arrays: dict[str, np.ndarray] = {}

    @property
    def label(self) -> str:
        """Stable metrics label for this device instance."""
        return f"{self.spec.name}#{self.device_id}"

    # -------------------------------------------------------------- #
    def alloc_array(self, name: str, shape, dtype) -> np.ndarray:
        """Allocate a named device array (zero-initialised)."""
        arr = np.zeros(shape, dtype=dtype)
        self.memory.alloc(name, arr.nbytes)
        self._arrays[name] = arr
        return arr

    def register_view(self, name: str, array: np.ndarray) -> np.ndarray:
        """Account an existing array (e.g. a host CSR view copied to the
        device once at distribution time) against device memory."""
        self.memory.alloc(name, array.nbytes)
        self._arrays[name] = array
        return array

    def reserve(self, name: str, nbytes: int) -> None:
        """Account raw capacity (batch buffers) without materialising it."""
        self.memory.alloc(name, nbytes)

    def free(self, name: str) -> None:
        """Release a named allocation."""
        self.memory.free_allocation(name)
        self._arrays.pop(name, None)

    def array(self, name: str) -> np.ndarray:
        """Look up a named device array."""
        return self._arrays[name]

    # -------------------------------------------------------------- #
    def record_kernel(self) -> None:
        """Bump the launch counter (and the telemetry counter when a
        registry is active)."""
        self.kernels_launched += 1
        emit_event("repro_kernel_launches_total",
                   "Simulated kernel launches per device.",
                   device=self.label)

    def record_h2d(self, nbytes: int) -> None:
        """Account host→device traffic."""
        self.bytes_h2d += int(nbytes)
        count("repro_device_bytes_total", int(nbytes),
              "Simulated device traffic in bytes.",
              device=self.label, direction="h2d")

    def record_d2h(self, nbytes: int) -> None:
        """Account device→host traffic."""
        self.bytes_d2h += int(nbytes)
        count("repro_device_bytes_total", int(nbytes),
              "Simulated device traffic in bytes.",
              device=self.label, direction="d2h")

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"SimDevice({self.spec.name}#{self.device_id}, "
            f"mem {self.memory.used}/{self.memory.capacity} B, "
            f"{self.kernels_launched} kernels)"
        )
