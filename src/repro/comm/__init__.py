"""Inter-device communication: topologies, collectives, transfers.

Models the two communication fabrics the paper evaluates (PCIe vs NVLink
SXM3/SXM4, Fig. 9–10) and the NCCL-style ring collectives LD-GPU issues
after each phase (Algorithm 2, lines 7 and 9), plus host↔device transfers
for batch loading.  Collectives really combine per-device NumPy buffers —
the reduction arithmetic is exact — while time is charged with the standard
ring model ``2·(N−1)·(bytes/N)/bw + 2·(N−1)·α``.
"""

from repro.comm.topology import (
    Interconnect,
    PCIE3,
    PCIE4,
    NVLINK_SXM3,
    NVLINK_SXM4,
    INFINIBAND_HDR,
)
from repro.comm.collectives import (
    allreduce_max,
    allreduce_sum,
    broadcast,
    hierarchical_allreduce_max,
)
from repro.comm.transfer import h2d_time, d2h_time

__all__ = [
    "Interconnect",
    "PCIE3",
    "PCIE4",
    "NVLINK_SXM3",
    "NVLINK_SXM4",
    "INFINIBAND_HDR",
    "allreduce_max",
    "hierarchical_allreduce_max",
    "allreduce_sum",
    "broadcast",
    "h2d_time",
    "d2h_time",
]
