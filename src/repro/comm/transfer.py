"""Host↔device transfer cost model.

Batch loading in LD-GPU issues ``cudaMemcpyAsyncHtoD`` per batch
(Algorithm 2, LOADBATCH); on both DGX platforms those copies ride the PCIe
host links regardless of the GPU-GPU fabric.  Pinned staging buffers reach
close to the link's effective bandwidth; pageable copies lose roughly 40%.
"""

from __future__ import annotations

from repro.comm.topology import Interconnect

__all__ = ["h2d_time", "d2h_time", "PAGEABLE_PENALTY"]

#: Throughput multiplier for pageable (non-pinned) host memory.
PAGEABLE_PENALTY = 0.6


def h2d_time(nbytes: int, link: Interconnect, pinned: bool = True) -> float:
    """Seconds for a host→device copy of ``nbytes``."""
    bw = link.bandwidth_bps * (1.0 if pinned else PAGEABLE_PENALTY)
    return link.latency_s + nbytes / bw


def d2h_time(nbytes: int, link: Interconnect, pinned: bool = True) -> float:
    """Seconds for a device→host copy of ``nbytes``."""
    return h2d_time(nbytes, link, pinned)
