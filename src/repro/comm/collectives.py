"""NCCL-style collectives over per-device NumPy buffers.

LD-GPU calls ``ncclAllReduce`` on the ``pointers`` array after the pointing
phase and on the ``mate`` array after the matching phase (Algorithm 2).
Because the vertex partition is disjoint, only the owning device holds a
live value for each slot and everyone else holds the sentinel ``-1``, so a
MAX reduction reconstructs the global array unambiguously (the argument in
the paper's Lemma III.1 proof).

Cost model — the textbook ring allreduce NCCL uses for large messages:
``2·(N−1) steps``, each moving ``bytes/N`` at the link bandwidth plus a
per-step latency:  ``t = 2·(N−1)·(bytes/N)/bw + 2·(N−1)·α``.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.comm.topology import Interconnect

__all__ = ["allreduce_max", "allreduce_sum", "broadcast",
           "hierarchical_allreduce_max", "ring_allreduce_time"]


def ring_allreduce_time(nbytes: int, num_devices: int,
                        link: Interconnect) -> float:
    """Seconds for a ring allreduce of ``nbytes`` across ``num_devices``.

    Bandwidth is the link's *collective* (NCCL-sustained) bandwidth, which
    also degrades with device count on shared fabrics — see
    :meth:`Interconnect.collective_bandwidth_bps`.
    """
    if num_devices <= 1:
        return 0.0
    steps = 2 * (num_devices - 1)
    chunk = nbytes / num_devices
    bw = link.collective_bandwidth_bps(num_devices)
    return steps * (chunk / bw + link.latency_s)


def _check(buffers: Sequence[np.ndarray]) -> None:
    if not buffers:
        raise ValueError("allreduce needs at least one buffer")
    shape, dtype = buffers[0].shape, buffers[0].dtype
    for b in buffers[1:]:
        if b.shape != shape or b.dtype != dtype:
            raise ValueError("allreduce buffers must share shape and dtype")


def allreduce_max(buffers: Sequence[np.ndarray],
                  link: Interconnect) -> float:
    """Elementwise MAX allreduce, in place on every buffer.

    Returns the modeled time in seconds.
    """
    _check(buffers)
    out = buffers[0].copy()
    for b in buffers[1:]:
        np.maximum(out, b, out=out)
    for b in buffers:
        b[...] = out
    return ring_allreduce_time(out.nbytes, len(buffers), link)


def allreduce_sum(buffers: Sequence[np.ndarray],
                  link: Interconnect) -> float:
    """Elementwise SUM allreduce, in place on every buffer."""
    _check(buffers)
    out = buffers[0].copy()
    for b in buffers[1:]:
        out += b
    for b in buffers:
        b[...] = out
    return ring_allreduce_time(out.nbytes, len(buffers), link)


def hierarchical_allreduce_max(
    buffers: Sequence[np.ndarray],
    devices_per_node: int,
    intra: Interconnect,
    inter: Interconnect,
) -> float:
    """Two-level MAX allreduce: ring within each node, ring across node
    leaders, broadcast back — NCCL's tree-of-rings strategy for
    multi-node jobs.  ``buffers`` are grouped into nodes by index.

    Returns the modeled time; the combine itself is exact, leaving every
    buffer equal to the global elementwise max.
    """
    _check(buffers)
    if devices_per_node < 1:
        raise ValueError("devices_per_node must be >= 1")
    if len(buffers) % devices_per_node:
        raise ValueError(
            f"{len(buffers)} buffers do not fill whole nodes of "
            f"{devices_per_node}"
        )
    num_nodes = len(buffers) // devices_per_node
    nbytes = buffers[0].nbytes

    # Stage 1: reduce to each node's leader (ring reduce ≈ half an
    # allreduce); Stage 2: allreduce across leaders; Stage 3: intra-node
    # broadcast of the result.
    t = 0.0
    if devices_per_node > 1:
        t += ring_allreduce_time(nbytes, devices_per_node, intra) / 2.0
    t += ring_allreduce_time(nbytes, num_nodes, inter)
    if devices_per_node > 1:
        t += nbytes / intra.collective_bandwidth_bps(devices_per_node) \
            + (devices_per_node - 1) * intra.latency_s

    out = buffers[0].copy()
    for b in buffers[1:]:
        np.maximum(out, b, out=out)
    for b in buffers:
        b[...] = out
    return t


def broadcast(buffers: Sequence[np.ndarray], root: int,
              link: Interconnect) -> float:
    """Broadcast ``buffers[root]`` into every buffer; returns seconds.

    Modeled as a pipelined ring broadcast: ``(N−1)`` steps of the full
    payload at link bandwidth (NCCL pipelines chunks, so bandwidth-term is
    a single traversal).
    """
    _check(buffers)
    src = buffers[root]
    for i, b in enumerate(buffers):
        if i != root:
            b[...] = src
    n = len(buffers)
    if n <= 1:
        return 0.0
    return src.nbytes / link.collective_bandwidth_bps(n) + \
        (n - 1) * link.latency_s
