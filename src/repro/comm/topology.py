"""Interconnect descriptions.

Bandwidths follow the vendor figures the paper cites: Foley & Danskin
report ~5× PCIe for first-generation NVLink; DGX-2's SXM3 fabric delivers
~300 GB/s per GPU and DGX-A100's SXM4 fabric ~600 GB/s, against ~16 GB/s
effective for PCIe gen4 (gen3 ~12 GB/s).  Latencies are per-hop collective
step latencies in the NCCL regime.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

__all__ = [
    "Interconnect",
    "PCIE3",
    "PCIE4",
    "NVLINK_SXM3",
    "NVLINK_SXM4",
    "INFINIBAND_HDR",
]


@dataclass(frozen=True)
class Interconnect:
    """A point-to-point link class used uniformly between peers.

    Attributes
    ----------
    name:
        Human-readable label ("NVLink-SXM4", ...).
    bandwidth_gbs:
        Effective per-GPU bandwidth in GB/s for bulk point-to-point
        transfers (H2D copies, peer copies).
    latency_us:
        Per-message / per-collective-step latency in microseconds.
    collective_efficiency:
        Fraction of ``bandwidth_gbs`` that NCCL-style collectives sustain
        as bus bandwidth.  Measured NCCL numbers are far below link peak:
        ~48 GB/s on an SXM4 fabric (peak 600), ~13 GB/s over PCIe gen4 —
        this ratio (~3.7×), not the raw 37× link ratio, is what the
        paper's Fig. 9 average reflects.
    shared_fabric:
        True for tree-topology fabrics (PCIe through shared switches)
        whose per-GPU collective bandwidth degrades as more devices
        contend; NVSwitch fabrics provide full bisection and do not.
    """

    name: str
    bandwidth_gbs: float
    latency_us: float
    collective_efficiency: float = 1.0
    shared_fabric: bool = False

    @property
    def bandwidth_bps(self) -> float:
        """Bandwidth in bytes/second."""
        return self.bandwidth_gbs * 1e9

    @property
    def latency_s(self) -> float:
        """Latency in seconds."""
        return self.latency_us * 1e-6

    def collective_bandwidth_bps(self, num_devices: int = 2) -> float:
        """Sustained collective bus bandwidth in bytes/second."""
        bw = self.bandwidth_bps * self.collective_efficiency
        if self.shared_fabric and num_devices > 2:
            bw /= num_devices / 2.0
        return bw

    def transfer_time(self, nbytes: int) -> float:
        """Seconds to move ``nbytes`` point-to-point."""
        return self.latency_s + nbytes / self.bandwidth_bps

    def scaled(self, bandwidth_factor: float = 1.0,
               latency_factor: float = 1.0) -> "Interconnect":
        """Derived link for what-if studies."""
        return replace(
            self,
            name=f"{self.name}×{bandwidth_factor:g}",
            bandwidth_gbs=self.bandwidth_gbs * bandwidth_factor,
            latency_us=self.latency_us * latency_factor,
        )


#: PCIe gen3 x16 — effective host/device and peer bandwidth on DGX-2 hosts.
PCIE3 = Interconnect("PCIe-gen3", 12.0, 25.0,
                     collective_efficiency=0.8, shared_fabric=True)

#: PCIe gen4 x16 — effective bandwidth on DGX-A100 hosts.
PCIE4 = Interconnect("PCIe-gen4", 16.0, 25.0,
                     collective_efficiency=0.8, shared_fabric=True)

#: NVLink on DGX-2 (V100, SXM3): 300 GB/s per-GPU peak; NCCL sustains
#: ~30 GB/s of collective bus bandwidth through the SXM3 NVSwitch.
NVLINK_SXM3 = Interconnect("NVLink-SXM3", 300.0, 12.0,
                           collective_efficiency=0.10)

#: NVLink on DGX-A100 (A100, SXM4): 600 GB/s per-GPU peak; NCCL sustains
#: ~48 GB/s of collective bus bandwidth.
NVLINK_SXM4 = Interconnect("NVLink-SXM4", 600.0, 10.0,
                           collective_efficiency=0.08)

#: InfiniBand HDR (200 Gb/s ≈ 25 GB/s per port) between nodes — the
#: fabric a multi-node extension of LD-GPU would ride.  NCCL sustains
#: ~18 GB/s of inter-node collective bandwidth, and each inter-node hop
#: pays NIC + proxy-thread latency on top of the wire.
INFINIBAND_HDR = Interconnect("IB-HDR", 25.0, 18.0,
                              collective_efficiency=0.7)
