"""Contiguous vertex partitioning across devices.

The paper partitions "with an attempt to assign similar #edges across the
partitions (#vertices can be dissimilar) ... ensuring contiguous vertex IDs
among partitions for coalesced global memory accesses" (§III-A).  With CSR
prefix sums available, the edge-balanced split is a ``searchsorted`` over
``indptr`` at the ideal cumulative-edge targets.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "edge_balanced_partition",
    "vertex_balanced_partition",
    "partition_edge_counts",
]


def _validate(num_vertices: int, num_parts: int) -> None:
    if num_parts < 1:
        raise ValueError("need at least one partition")
    if num_vertices < 0:
        raise ValueError("negative vertex count")


def edge_balanced_partition(indptr: np.ndarray, num_parts: int) -> np.ndarray:
    """Offsets of ``num_parts`` contiguous vertex ranges with near-equal
    incident-edge counts.

    Returns an ``int64`` array ``offsets`` of length ``num_parts + 1`` with
    ``offsets[0] == 0`` and ``offsets[-1] == n``; part ``i`` owns vertices
    ``[offsets[i], offsets[i+1])``.  Parts may be empty when the graph has
    fewer hot rows than parts (a single huge hub cannot be split —
    contiguity is preserved over balance, as in the paper).
    """
    n = len(indptr) - 1
    _validate(n, num_parts)
    total = int(indptr[-1])
    targets = (np.arange(1, num_parts, dtype=np.float64) / num_parts) * total
    cuts = np.searchsorted(indptr, targets, side="left").astype(np.int64)
    offsets = np.concatenate([[0], cuts, [n]]).astype(np.int64)
    np.maximum.accumulate(offsets, out=offsets)  # enforce monotonicity
    np.clip(offsets, 0, n, out=offsets)
    return offsets


def vertex_balanced_partition(num_vertices: int,
                              num_parts: int) -> np.ndarray:
    """Naive equal-#vertices split — the ablation baseline showing why the
    paper balances edges instead."""
    _validate(num_vertices, num_parts)
    base = num_vertices // num_parts
    rem = num_vertices % num_parts
    sizes = np.full(num_parts, base, dtype=np.int64)
    sizes[:rem] += 1
    offsets = np.zeros(num_parts + 1, dtype=np.int64)
    np.cumsum(sizes, out=offsets[1:])
    return offsets


def partition_edge_counts(indptr: np.ndarray,
                          offsets: np.ndarray) -> np.ndarray:
    """Incident (directed) edge count of each part."""
    return np.diff(indptr[offsets])
