"""Contiguous vertex partitioning across devices.

The paper partitions "with an attempt to assign similar #edges across the
partitions (#vertices can be dissimilar) ... ensuring contiguous vertex IDs
among partitions for coalesced global memory accesses" (§III-A).  With CSR
prefix sums available, the edge-balanced split is a ``searchsorted`` over
``indptr`` at the ideal cumulative-edge targets.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

import numpy as np

__all__ = [
    "edge_balanced_partition",
    "vertex_balanced_partition",
    "partition_edge_counts",
    "PartitionSummary",
    "partition_summary",
]


def _validate(num_vertices: int, num_parts: int) -> None:
    if num_parts < 1:
        raise ValueError("need at least one partition")
    if num_vertices < 0:
        raise ValueError("negative vertex count")


def edge_balanced_partition(indptr: np.ndarray, num_parts: int) -> np.ndarray:
    """Offsets of ``num_parts`` contiguous vertex ranges with near-equal
    incident-edge counts.

    Returns an ``int64`` array ``offsets`` of length ``num_parts + 1`` with
    ``offsets[0] == 0`` and ``offsets[-1] == n``; part ``i`` owns vertices
    ``[offsets[i], offsets[i+1])``.  Parts may be empty when the graph has
    fewer hot rows than parts (a single huge hub cannot be split —
    contiguity is preserved over balance, as in the paper).
    """
    n = len(indptr) - 1
    _validate(n, num_parts)
    total = int(indptr[-1])
    targets = (np.arange(1, num_parts, dtype=np.float64) / num_parts) * total
    cuts = np.searchsorted(indptr, targets, side="left").astype(np.int64)
    offsets = np.concatenate([[0], cuts, [n]]).astype(np.int64)
    np.maximum.accumulate(offsets, out=offsets)  # enforce monotonicity
    np.clip(offsets, 0, n, out=offsets)
    return offsets


def vertex_balanced_partition(num_vertices: int,
                              num_parts: int) -> np.ndarray:
    """Naive equal-#vertices split — the ablation baseline showing why the
    paper balances edges instead."""
    _validate(num_vertices, num_parts)
    base = num_vertices // num_parts
    rem = num_vertices % num_parts
    sizes = np.full(num_parts, base, dtype=np.int64)
    sizes[:rem] += 1
    offsets = np.zeros(num_parts + 1, dtype=np.int64)
    np.cumsum(sizes, out=offsets[1:])
    return offsets


def partition_edge_counts(indptr: np.ndarray,
                          offsets: np.ndarray) -> np.ndarray:
    """Incident (directed) edge count of each part.

    ``offsets`` may cover vertices past the end of ``indptr`` when the
    CSR was truncated after its last non-empty row (a trailing empty
    vertex range): entries up to the nominal vertex count index one past
    ``indptr``'s final slot and used to raise ``IndexError``.  Those
    vertices have no incident edges, so the cumulative count saturates
    at ``indptr[-1]`` — the clamp makes that defined behaviour instead
    of an off-by-one crash.  Offsets must be non-decreasing and
    non-negative; anything else is a caller bug and raises.
    """
    offsets = np.asarray(offsets, dtype=np.int64)
    if len(offsets) == 0:
        return np.empty(0, dtype=np.int64)
    if offsets[0] < 0:
        raise ValueError("partition offsets must be non-negative")
    if np.any(np.diff(offsets) < 0):
        raise ValueError("partition offsets must be non-decreasing")
    last = len(indptr) - 1
    return np.diff(indptr[np.minimum(offsets, last)])


@dataclass(frozen=True)
class PartitionSummary:
    """Balance statistics of one contiguous vertex partition.

    The quantity the paper tunes (§III-A) and the coreset sharder
    budgets against: how evenly incident edges spread across parts.
    ``imbalance`` is ``max / mean`` of the per-part counts (1.0 =
    perfect; the conventional partitioning-literature metric), 0.0 for
    an edgeless graph.
    """

    num_parts: int
    num_vertices: int
    total_edges: int
    min_edges: int
    max_edges: int
    mean_edges: float
    imbalance: float
    empty_parts: int
    counts: tuple[int, ...]

    def to_dict(self) -> dict[str, Any]:
        """JSON-safe form for stats / telemetry payloads."""
        return {
            "num_parts": self.num_parts,
            "num_vertices": self.num_vertices,
            "total_edges": self.total_edges,
            "min_edges": self.min_edges,
            "max_edges": self.max_edges,
            "mean_edges": self.mean_edges,
            "imbalance": self.imbalance,
            "empty_parts": self.empty_parts,
            "counts": list(self.counts),
        }


def partition_summary(indptr: np.ndarray,
                      offsets: np.ndarray) -> PartitionSummary:
    """Summarise a partition's edge balance (see
    :class:`PartitionSummary`)."""
    counts = partition_edge_counts(indptr, offsets)
    k = len(counts)
    total = int(counts.sum()) if k else 0
    mean = total / k if k else 0.0
    return PartitionSummary(
        num_parts=k,
        num_vertices=int(offsets[-1]) if len(offsets) else 0,
        total_edges=total,
        min_edges=int(counts.min()) if k else 0,
        max_edges=int(counts.max()) if k else 0,
        mean_edges=mean,
        imbalance=float(counts.max() / mean) if k and mean > 0 else 0.0,
        empty_parts=int(np.count_nonzero(counts == 0)),
        counts=tuple(int(c) for c in counts),
    )
