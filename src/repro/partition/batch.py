"""Batch formation within a device partition (§III-B).

A *batch* is a contiguous vertex range of a device's partition, sized by
edge count ("an edge-based scheme, implemented as a binary search on the
prefix sums within our CSR representation").  Batches bound the working
set: with ``b`` batches and dual buffering, the device only ever holds two
batch buffers of edge data instead of the whole partition.

``auto_batch_count`` implements the paper's default policy — "we attempt to
minimize the number of batches" subject to the buffers fitting in device
memory.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.gpusim.memory import DeviceOOMError
from repro.gpusim.spec import DeviceSpec
from repro.partition.vertex import edge_balanced_partition

__all__ = ["BatchPlan", "plan_batches", "auto_batch_count"]


@dataclass(frozen=True)
class BatchPlan:
    """Batches of one device partition.

    Attributes
    ----------
    offsets:
        Local vertex offsets (length ``num_batches + 1``) relative to the
        partition start.
    edge_counts:
        Directed adjacency entries per batch.
    resident:
        True when the partition's whole edge data stays on device and the
        batch buffers are unnecessary (the paper's "default scenario":
        one batch, no per-iteration transfers).
    """

    offsets: np.ndarray
    edge_counts: np.ndarray
    resident: bool

    @property
    def num_batches(self) -> int:
        """Number of batches."""
        return len(self.offsets) - 1

    @property
    def max_batch_edges(self) -> int:
        """Largest batch's adjacency entry count (buffer sizing)."""
        return int(self.edge_counts.max()) if len(self.edge_counts) else 0


def plan_batches(local_indptr: np.ndarray, num_batches: int,
                 resident: bool | None = None) -> BatchPlan:
    """Split a partition (given by its rebased ``local_indptr``) into
    ``num_batches`` edge-balanced contiguous batches."""
    if num_batches < 1:
        raise ValueError("need at least one batch")
    offsets = edge_balanced_partition(local_indptr, num_batches)
    edge_counts = np.diff(local_indptr[offsets])
    if resident is None:
        resident = num_batches == 1
    return BatchPlan(offsets, edge_counts, resident)


def auto_batch_count(
    partition_edges: int,
    num_local_vertices: int,
    num_global_vertices: int,
    spec: DeviceSpec,
    max_batches: int = 4096,
) -> int:
    """Minimum batch count whose memory plan fits ``spec.memory_bytes``.

    The per-device residents are the two |V|-sized global arrays
    (``pointers`` and ``mate`` — the §III-C trade-off), the local
    ``indptr``, and either the whole partition's edge data (one batch) or
    two batch buffers (dual buffering).  Raises
    :class:`~repro.gpusim.memory.DeviceOOMError` when even the finest
    batching cannot fit — the configurations the paper reports as '-'.
    """
    bpa = spec.bytes_per_adjacency
    fixed = (
        2 * num_global_vertices * 8          # pointers + mate
        + (num_local_vertices + 1) * 8       # local indptr
    )
    whole = partition_edges * bpa
    if fixed + whole <= spec.memory_bytes:
        return 1
    avail = spec.memory_bytes - fixed
    if avail <= 0:
        raise DeviceOOMError(spec.name, fixed, 0, spec.memory_bytes)
    # Two buffers, each holding ceil(edges / b) adjacency entries; batch
    # skew means the largest batch can exceed the mean, so search upward.
    for b in range(2, max_batches + 1):
        per_batch = -(-partition_edges // b)
        if 2 * per_batch * bpa <= avail:
            return b
    raise DeviceOOMError(
        spec.name, 2 * bpa * -(-partition_edges // max_batches),
        fixed, spec.memory_bytes,
    )
