"""Graph distribution: device partitions and per-device batches.

Implements §III-A/§III-B of the paper: an edge-balanced *contiguous* vertex
partition across devices (each device receives every edge incident to its
vertices, so cut edges are replicated) and, within each device, contiguous
vertex "batches" balanced by edge count via binary search over the CSR
prefix sums.
"""

from repro.partition.vertex import (
    edge_balanced_partition,
    vertex_balanced_partition,
    partition_edge_counts,
    partition_summary,
    PartitionSummary,
)
from repro.partition.batch import plan_batches, auto_batch_count, BatchPlan

__all__ = [
    "edge_balanced_partition",
    "vertex_balanced_partition",
    "partition_edge_counts",
    "partition_summary",
    "PartitionSummary",
    "plan_batches",
    "auto_batch_count",
    "BatchPlan",
]
