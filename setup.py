"""Legacy setup shim.

Kept so ``pip install -e .`` works on machines without the ``wheel``
package (offline build environments); all metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
