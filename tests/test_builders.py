"""Unit tests for graph builders."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from conftest import random_graphs
from repro.graph.builders import (
    compact_vertices,
    from_coo,
    from_edges,
    from_networkx,
    from_scipy_sparse,
    to_networkx,
)
from repro.graph.csr import GraphFormatError


class TestFromEdges:
    def test_basic(self):
        g = from_edges([(0, 1, 2.0), (1, 2, 3.0)])
        assert g.num_vertices == 3
        assert g.num_edges == 2
        g.validate()

    def test_empty(self):
        g = from_edges([], num_vertices=4)
        assert g.num_vertices == 4
        assert g.num_edges == 0

    def test_both_orientations_merge(self):
        g = from_edges([(0, 1, 2.0), (1, 0, 2.0)])
        assert g.num_edges == 1

    def test_duplicate_keeps_max_weight(self):
        g = from_edges([(0, 1, 2.0), (0, 1, 5.0), (1, 0, 3.0)])
        assert g.num_edges == 1
        assert g.edge_weight(0, 1) == 5.0

    def test_self_loops_dropped(self):
        g = from_edges([(0, 0, 1.0), (0, 1, 1.0)])
        assert g.num_edges == 1

    def test_isolated_trailing_vertices(self):
        g = from_edges([(0, 1, 1.0)], num_vertices=10)
        assert g.num_vertices == 10
        assert g.degrees[9] == 0


class TestFromCoo:
    def test_length_mismatch(self):
        with pytest.raises(GraphFormatError):
            from_coo(np.array([0]), np.array([1, 2]), np.array([1.0]))

    def test_negative_id(self):
        with pytest.raises(GraphFormatError):
            from_coo(np.array([-1]), np.array([1]), np.array([1.0]))

    def test_nonpositive_weight(self):
        with pytest.raises(GraphFormatError):
            from_coo(np.array([0]), np.array([1]), np.array([0.0]))

    def test_num_vertices_too_small(self):
        with pytest.raises(GraphFormatError):
            from_coo(np.array([0]), np.array([5]), np.array([1.0]),
                     num_vertices=3)

    def test_adjacency_sorted(self):
        g = from_coo(
            np.array([0, 0, 0]), np.array([3, 1, 2]),
            np.array([1.0, 2.0, 3.0]), num_vertices=4,
        )
        assert list(g.neighbors(0)) == [1, 2, 3]

    def test_all_self_loops(self):
        g = from_coo(np.array([0, 1]), np.array([0, 1]),
                     np.array([1.0, 1.0]), num_vertices=2)
        assert g.num_edges == 0
        assert g.num_vertices == 2


class TestScipyInterop:
    def test_from_scipy_symmetrises(self):
        import scipy.sparse as sp

        mat = sp.coo_matrix(
            (np.array([2.0, 3.0]), (np.array([0, 1]), np.array([1, 2]))),
            shape=(3, 3),
        )
        g = from_scipy_sparse(mat)
        g.validate()
        assert g.num_edges == 2
        assert g.edge_weight(2, 1) == 3.0

    def test_from_scipy_nonsquare(self):
        import scipy.sparse as sp

        mat = sp.coo_matrix(np.ones((2, 3)))
        with pytest.raises(GraphFormatError):
            from_scipy_sparse(mat)

    def test_from_scipy_pattern_only(self):
        import scipy.sparse as sp

        # all-negative data is treated as pattern-less; unit weights
        mat = sp.coo_matrix(
            (np.array([-1.0]), (np.array([0]), np.array([1]))),
            shape=(2, 2),
        )
        g = from_scipy_sparse(mat)
        assert g.num_edges == 1
        assert g.edge_weight(0, 1) == 1.0


class TestNetworkxInterop:
    def test_round_trip(self, medium_graph):
        nxg = to_networkx(medium_graph)
        back = from_networkx(nxg)
        assert back.num_vertices == medium_graph.num_vertices
        assert back.num_edges == medium_graph.num_edges
        assert back.total_weight == pytest.approx(
            medium_graph.total_weight
        )

    def test_default_weight(self):
        import networkx as nx

        nxg = nx.path_graph(4)
        g = from_networkx(nxg)
        assert g.num_edges == 3
        assert g.edge_weight(0, 1) == 1.0

    @given(random_graphs(max_vertices=12, max_edges=30))
    def test_round_trip_property(self, g):
        back = from_networkx(to_networkx(g))
        assert back.num_edges == g.num_edges
        assert back.total_weight == pytest.approx(g.total_weight)


class TestCompactVertices:
    def test_drops_isolated(self):
        g = from_edges([(0, 5, 1.0)], num_vertices=10)
        compacted, old_ids = compact_vertices(g)
        assert compacted.num_vertices == 2
        assert compacted.num_edges == 1
        assert list(old_ids) == [0, 5]

    def test_noop_when_no_isolated(self, triangle):
        compacted, old_ids = compact_vertices(triangle)
        assert compacted.num_vertices == 3
        assert np.array_equal(old_ids, np.arange(3))
