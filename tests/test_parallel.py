"""Tests for the cell executor, process-parallel sweeps, the graph
cache and the benchmark-regression gate."""

import json
import os

import numpy as np
import pytest

from repro.cli import main
from repro.engine import RunContext, execute
from repro.engine.cells import (
    Cell,
    derive_cell_seed,
    materialise_cells,
    run_cells,
)
from repro.engine.spec import algorithm_names, get_spec
from repro.gpusim.spec import DGX_A100
from repro.harness.bench import (
    compare_reports,
    run_bench,
    validate_bench_report,
    write_bench_report,
)
from repro.harness.cache import GraphCache
from repro.harness.sweep import sweep_ld_gpu


def _strip_wall(doc: dict) -> dict:
    doc.pop("wall_time_s", None)
    doc.pop("started_at", None)
    doc.pop("duration_s", None)
    if doc.get("provenance"):
        doc["provenance"].pop("wall_time_s", None)
    return doc


def _grid_cells(fail_index: int | None = None) -> list[Cell]:
    cells = [
        Cell("ld_gpu", config={"num_devices": nd, "num_batches": nb},
             overrides={"collect_stats": False})
        for nd in (1, 2) for nb in (None, 2)
    ]
    if fail_index is not None:
        cells[fail_index] = Cell(
            "ld_gpu", config={"num_devices": 1},
            overrides={"partition": "bogus"},
        )
    return cells


class TestDeriveCellSeed:
    def test_deterministic_and_version_stable(self):
        # sha256-based: the value is part of the reproducibility
        # contract (stored records embed derived seeds).
        assert derive_cell_seed(7, 0) == derive_cell_seed(7, 0)
        assert derive_cell_seed(7, 0) != derive_cell_seed(7, 1)
        assert derive_cell_seed(8, 0) != derive_cell_seed(7, 0)
        assert 0 <= derive_cell_seed(0, 0) < 2 ** 31

    def test_materialise_seed_policy(self):
        cells = [Cell("greedy"), Cell("greedy", seed=99)]
        mats = materialise_cells(cells, RunContext(seed=7))
        assert mats[0].ctx.seed == derive_cell_seed(7, 0)
        assert mats[1].ctx.seed == 99  # explicit cell seed wins
        # No base seed -> no derived seed.
        assert materialise_cells([Cell("greedy")])[0].ctx.seed is None


class TestRunCellsSerialVsParallel:
    def test_bit_identical_records(self, medium_graph, tmp_path):
        cells = _grid_cells()
        serial = run_cells(cells, graph=medium_graph)
        cache = GraphCache(tmp_path / "cache")
        par = run_cells(cells, graph=medium_graph, parallel=2,
                        cache=cache)
        assert len(par) == len(serial) == 4
        for s, p in zip(serial, par):
            assert s.ok and p.ok
            assert np.array_equal(s.result.mate, p.result.mate)
            assert _strip_wall(s.to_dict()) == _strip_wall(p.to_dict())

    def test_error_cell_is_isolated(self, medium_graph, tmp_path):
        cells = _grid_cells(fail_index=1)
        for parallel in (0, 2):
            records = run_cells(cells, graph=medium_graph,
                                parallel=parallel,
                                cache=GraphCache(tmp_path / "c2"))
            assert [r.status for r in records] \
                == ["ok", "error", "ok", "ok"]
            bad = records[1]
            assert bad.error["type"] == "ValueError"
            assert "bogus" in bad.error["message"]
            assert "Traceback" in bad.error["traceback"]
            assert not bad.ok and bad.sim_time is None
            # The error record round-trips like any other.
            again = json.loads(bad.to_json())
            assert again["status"] == "error"

    def test_on_error_raise(self, medium_graph):
        cells = _grid_cells(fail_index=0)
        with pytest.raises(ValueError, match="bogus"):
            run_cells(cells, graph=medium_graph, on_error="raise")
        with pytest.raises(ValueError, match="on_error"):
            run_cells(cells, graph=medium_graph, on_error="nope")

    def test_dataset_cells_resolve_registry_graphs(self, tmp_path):
        cells = [Cell("greedy", dataset="mouse_gene", quality=True),
                 Cell("suitor_seq", dataset="mouse_gene", quality=True)]
        serial = run_cells(cells)
        par = run_cells(cells, parallel=2,
                        cache=GraphCache(tmp_path / "c3"))
        for s, p in zip(serial, par):
            assert np.array_equal(s.result.mate, p.result.mate)

    def test_missing_graph_is_error_record(self):
        records = run_cells([Cell("greedy")])
        assert records[0].status == "error"
        assert records[0].error["type"] == "ValueError"

    def test_label_lands_in_extra(self, medium_graph):
        rec = run_cells([Cell("greedy", label="tagged")],
                        graph=medium_graph)[0]
        assert rec.extra["label"] == "tagged"


class TestSweepParallel:
    def test_sweep_parallel_matches_serial(self, medium_graph, tmp_path,
                                           monkeypatch):
        monkeypatch.setenv("REPRO_GRAPH_CACHE", str(tmp_path / "sc"))
        serial = sweep_ld_gpu(medium_graph, device_counts=(1, 2),
                              batch_counts=(None, 2))
        par = sweep_ld_gpu(medium_graph, device_counts=(1, 2),
                           batch_counts=(None, 2), parallel=2)
        assert [vars(p) for p in par.points] \
            == [vars(p) for p in serial.points]
        assert par.best.time_s == serial.best.time_s

    def test_oom_cells_become_dash_points(self, medium_graph, tmp_path,
                                          monkeypatch):
        monkeypatch.setenv("REPRO_GRAPH_CACHE", str(tmp_path / "oc"))
        n = medium_graph.num_vertices
        tiny = DGX_A100.with_device_memory(
            2 * n * 8 + (n + 1) * 8
            + medium_graph.num_directed_edges * 4)
        result = sweep_ld_gpu(medium_graph, platforms=(tiny,),
                              device_counts=(1,), batch_counts=(1, None),
                              parallel=2)
        oom = [r for r in result.records if not r.ok]
        assert len(oom) == 1
        assert oom[0].error["type"] == "DeviceOOMError"
        assert sum(1 for p in result.points if not p.ok) == 1

    def test_collect_metrics_forces_serial(self, medium_graph):
        with pytest.warns(RuntimeWarning, match="serially"):
            result = sweep_ld_gpu(medium_graph, device_counts=(1,),
                                  collect_metrics=True, parallel=2)
        assert result.metrics is not None


class TestGraphCache:
    def test_store_load_round_trip(self, medium_graph, tmp_path):
        cache = GraphCache(tmp_path)
        path, fp = cache.store(medium_graph)
        assert path.is_file() and fp.startswith("sha256:")
        g = cache.load(path, fp)
        assert g.name == medium_graph.name
        assert np.array_equal(g.weights, medium_graph.weights)
        assert cache.hits == 1

    def test_corrupt_entry_rejected(self, medium_graph, tmp_path):
        cache = GraphCache(tmp_path)
        path, fp = cache.store(medium_graph)
        with pytest.raises(ValueError, match="corrupt"):
            cache.load(path, "sha256:" + "0" * 16)

    def test_get_or_build_hit_and_miss(self, medium_graph, tmp_path):
        cache = GraphCache(tmp_path)
        builds = {"n": 0}

        def build():
            builds["n"] += 1
            return medium_graph

        g1 = cache.get_or_build("medium", build)
        assert (builds["n"], cache.misses, cache.hits) == (1, 1, 0)
        g2 = cache.get_or_build("medium", build)
        assert (builds["n"], cache.misses, cache.hits) == (1, 1, 1)
        assert np.array_equal(g1.weights, g2.weights)

    def test_eviction_keeps_newest(self, medium_graph, path_graph,
                                   triangle, tmp_path):
        cache = GraphCache(tmp_path, max_entries=2)
        for g in (medium_graph, path_graph, triangle):
            cache.store(g)
            os.utime(cache.entries()[-1])  # strictly increasing mtimes
        entries = cache.entries()
        assert len(entries) == 2
        assert not any("medium" in p.name for p in entries)

    def test_disabled_by_env(self, monkeypatch):
        from repro.harness.cache import cache_disabled

        monkeypatch.setenv("REPRO_GRAPH_CACHE", "off")
        assert cache_disabled()
        monkeypatch.setenv("REPRO_GRAPH_CACHE", "/tmp/somewhere")
        assert not cache_disabled()

    def test_verification_memoised_per_path(self, medium_graph,
                                            tmp_path, monkeypatch):
        """The fingerprint is re-derived on the first load of a path
        only — warm loads (a worker's second cell) skip the re-hash."""
        import repro.telemetry.provenance as prov

        cache = GraphCache(tmp_path)
        path, fp = cache.store(medium_graph)
        calls = {"n": 0}
        real = prov.graph_fingerprint

        def counting(graph):
            calls["n"] += 1
            return real(graph)

        monkeypatch.setattr(prov, "graph_fingerprint", counting)
        cache.load(path, fp)
        assert calls["n"] == 1  # cold: verified
        cache.load(path, fp)
        GraphCache(tmp_path).load(path, fp)  # memo spans instances
        assert calls["n"] == 1  # warm: memoised
        # Loading without an expected fingerprint never verifies.
        cache.load(path)
        assert calls["n"] == 1


class TestExecuteApi:
    def test_execute_accepts_spec_object(self, medium_graph):
        spec = get_spec("greedy")
        rec = execute(spec, medium_graph)
        assert rec.algorithm == "greedy" and rec.ok

    def test_config_normalised_to_dict_for_all(self, medium_graph):
        # The api contract: every registered algorithm's RunRecord JSON
        # round-trips, and stats["config"] is a plain dict (or absent).
        for name in algorithm_names():
            rec = execute(name, medium_graph, RunContext(num_devices=2))
            cfg = rec.result.stats.get("config")
            assert cfg is None or isinstance(cfg, dict), name
            again = json.loads(rec.to_json())
            assert again["algorithm"] == name
            assert again["status"] == "ok"

    def test_parallel_safety_tag_present(self):
        for name in algorithm_names():
            tags = get_spec(name).capability_tags
            assert ("parallel-safe" in tags) ^ ("serial-only" in tags)


class TestBench:
    def test_report_schema_and_comparison(self):
        report = run_bench("smoke", repeats=1)
        validate_bench_report(report)
        assert compare_reports(report, report) == []
        worse = json.loads(json.dumps(report))
        w = next(x for x in worse["workloads"]
                 if x["median_sim_time_s"] is not None)
        w["median_sim_time_s"] *= 1.5
        problems = compare_reports(worse, report, tolerance=0.05)
        assert len(problems) == 1 and w["name"] in problems[0]
        # Within tolerance passes.
        assert compare_reports(worse, report, tolerance=0.6) == []

    def test_regressions_only_fail_one_way(self):
        report = run_bench("smoke", repeats=1)
        faster = json.loads(json.dumps(report))
        for w in faster["workloads"]:
            if w["median_sim_time_s"] is not None:
                w["median_sim_time_s"] *= 0.5
        assert compare_reports(faster, report) == []

    def test_missing_workload_flagged(self):
        report = run_bench("smoke", repeats=1)
        partial = json.loads(json.dumps(report))
        dropped = partial["workloads"].pop()
        problems = compare_reports(partial, report)
        assert any(dropped["name"] in p for p in problems)

    def test_graph_plane_host_and_staging_gates(self):
        report = run_bench("graph_plane", repeats=1)
        validate_bench_report(report)
        assert all(w["status"] == "ok" for w in report["workloads"])
        # Every workload records its deterministic host-engine work,
        # and the suite measured the warm-start comparison.
        assert all(w["host_entries_scanned"] is not None
                   for w in report["workloads"])
        assert report["staging"]["median_npz_load_s"] > 0
        assert compare_reports(report, report) == []
        # More host work than the baseline recorded fails the gate.
        worse = json.loads(json.dumps(report))
        w = next(x for x in worse["workloads"]
                 if x["host_entries_scanned"])
        w["host_entries_scanned"] *= 2
        problems = compare_reports(worse, report)
        assert len(problems) == 1
        assert "host_entries_scanned" in problems[0]
        # shm attach regressing past the npz reload fails the gate.
        slower = json.loads(json.dumps(report))
        slower["staging"]["speedup"] = 0.5
        problems = compare_reports(slower, report)
        assert any("staging" in p for p in problems)
        # A baseline without the metric gates sim_time only (upgrade
        # path: old baselines keep working).
        legacy = json.loads(json.dumps(report))
        for x in legacy["workloads"]:
            x.pop("host_entries_scanned")
        legacy.pop("staging")
        assert compare_reports(worse, legacy) == []

    def test_validate_rejects_malformed(self):
        with pytest.raises(ValueError, match="schema"):
            validate_bench_report({"schema": 99})
        with pytest.raises(ValueError, match="workloads"):
            validate_bench_report({"schema": 1, "suite": "s",
                                   "repeats": 1, "workloads": [],
                                   "provenance": {}})

    def test_write_report(self, tmp_path):
        report = run_bench("smoke", repeats=1)
        out = write_bench_report(report, tmp_path / "BENCH_smoke.json")
        validate_bench_report(json.loads(out.read_text()))


class TestCliRedesign:
    def test_sweep_parallel_flag(self, capsys, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_GRAPH_CACHE", str(tmp_path))
        assert main(["sweep", "-d", "mouse_gene", "-n", "1", "2",
                     "--parallel", "2"]) == 0
        assert "best:" in capsys.readouterr().out

    def test_sweep_json(self, capsys):
        assert main(["sweep", "-d", "mouse_gene", "-n", "1",
                     "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["best"]["num_devices"] == 1
        assert doc["records"][0]["status"] == "ok"

    def test_run_rejects_device_grid(self, capsys):
        with pytest.raises(SystemExit) as e:
            main(["run", "-a", "ld_gpu", "-d", "mouse_gene",
                  "-n", "1", "2"])
        assert e.value.code == 2

    def test_stats_rejects_inapplicable_flags(self, tmp_path):
        record = tmp_path / "r.json"
        record.write_text("{}")
        with pytest.raises(SystemExit) as e:
            main(["stats", str(record), "--devices", "2"])
        assert e.value.code == 2

    def test_run_platform_flag(self, capsys):
        assert main(["run", "-a", "ld_gpu", "-d", "mouse_gene",
                     "-n", "2", "--platform", "DGX-2", "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["platform"] == "DGX-2"

    def test_bench_writes_report_and_gates(self, tmp_path, capsys):
        out = tmp_path / "BENCH_smoke.json"
        base = tmp_path / "baseline.json"
        # Sim times are deterministic, so the default gate (the
        # committed benchmarks/baseline_smoke.json when run from the
        # repo root) passes.
        assert main(["bench", "--suite", "smoke", "--repeats", "1",
                     "--out", str(out)]) == 0
        doc = json.loads(out.read_text())
        validate_bench_report(doc)
        # Gate passes against itself...
        base.write_text(out.read_text())
        assert main(["bench", "--suite", "smoke", "--repeats", "1",
                     "--out", str(out), "--baseline", str(base)]) == 0
        # ...and fails (exit 1) against an impossibly fast baseline.
        fast = doc
        for w in fast["workloads"]:
            if w["median_sim_time_s"] is not None:
                w["median_sim_time_s"] /= 10.0
        base.write_text(json.dumps(fast))
        assert main(["bench", "--suite", "smoke", "--repeats", "1",
                     "--out", str(out), "--baseline", str(base)]) == 1
        assert "REGRESSION" in capsys.readouterr().out

    def test_experiment_parallel_and_json(self, capsys, monkeypatch,
                                          tmp_path):
        monkeypatch.setenv("REPRO_GRAPH_CACHE", str(tmp_path))
        assert main(["experiment", "fig5", "--quick",
                     "--parallel", "2", "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["name"] == "fig5" and doc["rows"]

    def test_list_algorithms_shows_parallel_tag(self, capsys):
        assert main(["list", "algorithms"]) == 0
        assert "parallel-safe" in capsys.readouterr().out
