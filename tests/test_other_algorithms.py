"""Tests for LocalMax, auction matching and the cuGraph analog."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from conftest import build_graph, random_graphs
from repro.gpusim.memory import DeviceOOMError
from repro.gpusim.spec import DGX_A100
from repro.matching.auction import auction_matching
from repro.matching.cugraph_sim import cugraph_mg_sim
from repro.matching.greedy import greedy_matching
from repro.matching.ld_gpu import ld_gpu
from repro.matching.ld_seq import ld_seq
from repro.matching.local_max import local_max
from repro.matching.validate import (
    is_maximal_matching,
    is_valid_matching,
    verify_result,
)


class TestLocalMax:
    @given(random_graphs())
    def test_equals_greedy(self, g):
        assert np.array_equal(local_max(g).mate, greedy_matching(g).mate)

    @given(random_graphs(tie_prone=True))
    def test_ties(self, g):
        assert np.array_equal(local_max(g).mate, greedy_matching(g).mate)

    def test_fewer_rounds_than_pointer(self, medium_graph):
        """Edge-centric LocalMax commits every dominant edge per round,
        so it needs no more rounds than the vertex-centric algorithm."""
        lm = local_max(medium_graph)
        ld = ld_seq(medium_graph)
        assert lm.iterations <= ld.iterations

    def test_matches_per_round_sum(self, medium_graph):
        r = local_max(medium_graph)
        assert r.stats["matches_per_round"].sum() == r.num_matched_edges

    def test_empty(self):
        r = local_max(build_graph(3, []))
        assert r.num_matched_edges == 0

    def test_max_iterations(self, medium_graph):
        r = local_max(medium_graph, max_iterations=1)
        assert r.iterations == 1
        assert is_valid_matching(medium_graph, r.mate)


class TestAuction:
    @given(random_graphs(), st.integers(0, 3))
    def test_valid_and_maximal(self, g, seed):
        r = auction_matching(g, seed=seed)
        assert is_valid_matching(g, r.mate)
        assert is_maximal_matching(g, r.mate)

    def test_quality_subpar_to_ld(self):
        """§II-C: auction quality 'is shown to be subpar to subsequent
        work' — aggregate over seeds on a fixed graph."""
        from repro.graph.generators import rmat_graph

        g = rmat_graph(9, 6, seed=21)
        ld_w = ld_seq(g).weight
        auction_w = np.mean([
            auction_matching(g, seed=s).weight for s in range(5)
        ])
        assert auction_w < ld_w

    def test_deterministic_per_seed(self, medium_graph):
        a = auction_matching(medium_graph, seed=3)
        b = auction_matching(medium_graph, seed=3)
        assert np.array_equal(a.mate, b.mate)

    def test_verifies(self, medium_graph):
        verify_result(medium_graph, auction_matching(medium_graph))

    def test_empty(self):
        r = auction_matching(build_graph(4, []))
        assert r.num_matched_edges == 0


class TestCuGraphSim:
    def test_same_matching_as_ld(self, medium_graph):
        cu = cugraph_mg_sim(medium_graph, num_devices=4)
        ld = ld_seq(medium_graph)
        assert np.array_equal(cu.mate, ld.mate)
        verify_result(medium_graph, cu)

    def test_slower_than_ld_gpu(self, medium_graph):
        """Table V: host-staged MPI + full-graph rescans cost an order of
        magnitude over NCCL-over-streams."""
        cu = cugraph_mg_sim(medium_graph, num_devices=4)
        ld = ld_gpu(medium_graph, num_devices=4, num_batches=1,
                    collect_stats=False)
        assert cu.sim_time > 3 * ld.sim_time

    def test_full_graph_memory_model(self, medium_graph):
        need = medium_graph.memory_bytes()
        tiny = DGX_A100.with_device_memory(need // 2)
        with pytest.raises(DeviceOOMError, match="cuGraph"):
            cugraph_mg_sim(medium_graph, tiny, num_devices=4)

    def test_single_device(self, medium_graph):
        r = cugraph_mg_sim(medium_graph, num_devices=1)
        assert r.timeline.totals["allreduce_pointers"] == 0.0
        assert np.array_equal(r.mate, ld_seq(medium_graph).mate)

    def test_bad_devices(self, medium_graph):
        with pytest.raises(ValueError):
            cugraph_mg_sim(medium_graph, num_devices=0)

    @given(random_graphs(max_vertices=16, max_edges=40),
           st.integers(1, 4))
    def test_property_equivalence(self, g, nd):
        cu = cugraph_mg_sim(g, num_devices=nd)
        assert np.array_equal(cu.mate, ld_seq(g).mate)
