"""Shared-memory graph plane: buffer-backed CSR views, registry
lifecycle (publish / attach / refcount / unlink), parallel staging
identity against serial runs, crash hygiene and the ``.npz`` fallback.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

import numpy as np
import pytest

from conftest import build_graph
from repro.engine.cells import Cell, run_cells
from repro.graph.csr import CSRGraph
from repro.harness.cache import GraphCache
from repro.harness.shm import (
    SEGMENT_PREFIX,
    SHM_ENV,
    SharedGraphRegistry,
    SharedGraphSegment,
    default_registry,
    list_orphan_segments,
    shm_enabled,
    unlink_segment,
)

HAVE_DEV_SHM = Path("/dev/shm").is_dir()


def _segment_names() -> set[str]:
    return {name for name, _ in list_orphan_segments()}


def _strip_wall(doc: dict) -> dict:
    doc.pop("wall_time_s", None)
    doc.pop("started_at", None)
    doc.pop("duration_s", None)
    if doc.get("provenance"):
        doc["provenance"].pop("wall_time_s", None)
    return doc


@pytest.fixture
def small_graph():
    return build_graph(6, [(0, 1, 5.0), (1, 2, 1.0), (2, 3, 3.0),
                           (3, 4, 4.0), (4, 5, 2.0)], "shm-fig1")


@pytest.fixture
def registry():
    reg = SharedGraphRegistry()
    yield reg
    reg.unlink_all()


# ------------------------------------------------------------------ #
# buffer-backed CSR construction
# ------------------------------------------------------------------ #


class TestCSRBuffers:
    def test_export_buffers_read_only_views(self, small_graph):
        indptr, indices, weights = small_graph.export_buffers()
        for view, base in ((indptr, small_graph.indptr),
                           (indices, small_graph.indices),
                           (weights, small_graph.weights)):
            assert np.shares_memory(view, base)
            assert not view.flags.writeable
            assert np.array_equal(view, base)
        # The graph's own arrays stay as they were.
        assert small_graph.indptr.dtype == np.int64

    def test_from_buffers_zero_copy(self, small_graph):
        g = small_graph
        rebuilt = CSRGraph.from_buffers(g.indptr, g.indices, g.weights,
                                        name="rebuilt")
        assert np.shares_memory(rebuilt.indptr, g.indptr)
        assert np.shares_memory(rebuilt.indices, g.indices)
        assert np.shares_memory(rebuilt.weights, g.weights)
        assert not rebuilt.indptr.flags.writeable
        assert not rebuilt.weights.flags.writeable
        assert rebuilt.num_vertices == g.num_vertices
        assert rebuilt.num_directed_edges == g.num_directed_edges

    def test_from_buffers_memoised_caches_work(self, small_graph):
        g = small_graph
        rebuilt = CSRGraph.from_buffers(g.indptr, g.indices, g.weights,
                                        name="rebuilt")
        assert np.array_equal(rebuilt.degrees, g.degrees)
        assert rebuilt.degrees is rebuilt.degrees  # memoised
        assert np.array_equal(rebuilt.canonical_edge_ids(),
                              g.canonical_edge_ids())

    def test_from_buffers_coerces_foreign_dtypes(self, small_graph):
        g = small_graph
        rebuilt = CSRGraph.from_buffers(
            g.indptr.astype(np.int32), g.indices, g.weights,
            name="coerced")
        assert rebuilt.indptr.dtype == np.int64
        assert np.array_equal(rebuilt.indptr, g.indptr)

    def test_from_buffers_leaves_caller_arrays_writeable(self):
        indptr = np.array([0, 2, 4], dtype=np.int64)
        indices = np.array([1, 1, 0, 0], dtype=np.int64)
        weights = np.array([1.0, 2.0, 1.0, 2.0])
        CSRGraph.from_buffers(indptr, indices, weights, name="w")
        assert indptr.flags.writeable  # the view went read-only, not us


# ------------------------------------------------------------------ #
# registry lifecycle
# ------------------------------------------------------------------ #


class TestRegistryLifecycle:
    def test_publish_attach_round_trip(self, registry, small_graph):
        seg = registry.publish(small_graph)
        assert seg.name.startswith(SEGMENT_PREFIX)
        assert seg.graph_name == small_graph.name
        assert seg.nbytes == (small_graph.num_vertices + 1
                              + 2 * small_graph.num_directed_edges) * 8
        g = registry.attach(seg)
        assert np.array_equal(g.indptr, small_graph.indptr)
        assert np.array_equal(g.indices, small_graph.indices)
        assert np.array_equal(g.weights, small_graph.weights)
        assert not g.weights.flags.writeable

    def test_publish_refcounts_duplicates(self, registry, small_graph):
        seg1 = registry.publish(small_graph)
        seg2 = registry.publish(small_graph)
        assert seg1 == seg2
        assert registry.publishes == 1  # bytes copied exactly once
        assert registry.refcount(seg1.fingerprint) == 2
        assert registry.release(seg1.fingerprint) is False
        assert registry.refcount(seg1.fingerprint) == 1
        assert registry.release(seg1.fingerprint) is True
        assert registry.refcount(seg1.fingerprint) == 0
        assert registry.unlinks == 1

    def test_attach_memoised_per_name(self, registry, small_graph):
        seg = registry.publish(small_graph)
        assert registry.attach(seg) is registry.attach(seg)
        assert registry.attaches == 1

    def test_foreign_registry_attach(self, registry, small_graph):
        """A second registry (standing in for a worker process) maps
        the segment cold and sees the same bytes."""
        seg = registry.publish(small_graph)
        attacher = SharedGraphRegistry()
        g = attacher.attach(seg)
        assert np.array_equal(g.weights, small_graph.weights)
        assert attacher.attaches == 1
        assert attacher.refcount(seg.fingerprint) == 0  # not the owner

    def test_attach_after_unlink_raises(self, registry, small_graph):
        seg = registry.publish(small_graph)
        assert registry.release(seg.fingerprint) is True
        with pytest.raises((FileNotFoundError, OSError)):
            SharedGraphRegistry().attach(seg)

    def test_release_unknown_fingerprint_is_noop(self, registry):
        assert registry.release("sha256:" + "0" * 32) is False

    def test_unlink_all_idempotent(self, registry, small_graph):
        registry.publish(small_graph)
        registry.publish(build_graph(3, [(0, 1, 1.0)], "shm-other"))
        assert registry.unlink_all() == 2
        assert registry.unlink_all() == 0
        assert registry.segments() == []

    def test_fingerprint_round_trips_through_segment(self, registry,
                                                     small_graph):
        from repro.telemetry.provenance import graph_fingerprint

        seg = registry.publish(small_graph)
        assert seg.fingerprint == graph_fingerprint(small_graph)
        # The attached view hashes to the same content.
        assert graph_fingerprint(registry.attach(seg)) == seg.fingerprint

    def test_default_registry_is_singleton(self):
        assert default_registry() is default_registry()


# ------------------------------------------------------------------ #
# environment gate and orphan maintenance
# ------------------------------------------------------------------ #


class TestShmEnabled:
    @pytest.mark.parametrize("value", ["off", "0", "none", "false", "OFF"])
    def test_disabled_values(self, monkeypatch, value):
        monkeypatch.setenv(SHM_ENV, value)
        assert not shm_enabled()

    @pytest.mark.parametrize("value", [None, "on", "1", ""])
    def test_enabled_values(self, monkeypatch, value):
        if value is None:
            monkeypatch.delenv(SHM_ENV, raising=False)
        else:
            monkeypatch.setenv(SHM_ENV, value)
        assert shm_enabled()


@pytest.mark.skipif(not HAVE_DEV_SHM, reason="no /dev/shm")
class TestOrphanMaintenance:
    def test_published_segment_listed_and_unlinkable(self, registry,
                                                     small_graph):
        before = _segment_names()
        seg = registry.publish(small_graph)
        assert seg.name in _segment_names() - before
        size = dict(list_orphan_segments())[seg.name]
        assert size >= seg.nbytes
        # Simulate orphan cleanup by name (CLI `cache clear` path).
        assert unlink_segment(seg.name) is True
        assert seg.name not in _segment_names()
        assert unlink_segment(seg.name) is False

    def test_registry_leaves_no_segments(self, small_graph):
        before = _segment_names()
        reg = SharedGraphRegistry()
        reg.publish(small_graph)
        reg.unlink_all()
        assert _segment_names() == before


# ------------------------------------------------------------------ #
# crash hygiene
# ------------------------------------------------------------------ #


def _attach_and_die(seg: SharedGraphSegment) -> None:
    reg = SharedGraphRegistry()
    g = reg.attach(seg)
    assert g.num_vertices == seg.num_vertices
    os._exit(3)  # simulated crash: no atexit, no cleanup


@pytest.mark.skipif(not HAVE_DEV_SHM, reason="no /dev/shm")
def test_worker_crash_leaves_owner_segment_intact(small_graph):
    """A crashing attacher must neither leak segments nor tear the
    owner's segment down (the resource-tracker gotcha)."""
    import multiprocessing

    before = _segment_names()
    owner = SharedGraphRegistry()
    try:
        seg = owner.publish(small_graph)
        ctx = multiprocessing.get_context("fork")
        proc = ctx.Process(target=_attach_and_die, args=(seg,))
        proc.start()
        proc.join(timeout=30)
        assert proc.exitcode == 3
        # The crash did not take the owner's segment with it...
        assert seg.name in _segment_names()
        g = SharedGraphRegistry().attach(seg)
        assert np.array_equal(g.weights, small_graph.weights)
    finally:
        owner.unlink_all()
    # ...and nothing is left behind once the owner releases.
    assert _segment_names() == before


# ------------------------------------------------------------------ #
# parallel staging: identity, fallback, diagnostics
# ------------------------------------------------------------------ #


def _generator_grid() -> list[Cell]:
    from repro.harness.bench import tie_clique_300

    return [
        Cell("ld_seq", dataset="mouse_gene", quality=True),
        Cell("greedy", dataset="mouse_gene", quality=True),
        Cell("ld_seq", build=tie_clique_300,
             overrides={"engine": "index"}),
        Cell("ld_gpu", build=tie_clique_300,
             config={"num_devices": 2},
             overrides={"collect_stats": False}),
    ]


class TestParallelStaging:
    def test_shm_parallel_bit_identical_to_serial(self, tmp_path):
        before = _segment_names() if HAVE_DEV_SHM else set()
        cells = _generator_grid()
        serial = run_cells(cells)
        registry = SharedGraphRegistry()
        par = run_cells(cells, parallel=2,
                        cache=GraphCache(tmp_path / "cache"),
                        shm=registry)
        assert registry.publishes == 2  # one per distinct graph
        assert registry.segments() == []  # all released after the grid
        for s, p in zip(serial, par):
            assert s.ok and p.ok
            assert np.array_equal(s.result.mate, p.result.mate)
            assert _strip_wall(s.to_dict()) == _strip_wall(p.to_dict())
        if HAVE_DEV_SHM:
            assert _segment_names() == before  # zero residual segments

    def test_shm_disabled_falls_back_to_npz(self, tmp_path, monkeypatch):
        monkeypatch.setenv(SHM_ENV, "off")
        before = _segment_names() if HAVE_DEV_SHM else set()
        cells = _generator_grid()[:2]
        serial = run_cells(cells)
        par = run_cells(cells, parallel=2,
                        cache=GraphCache(tmp_path / "cache"))
        for s, p in zip(serial, par):
            assert _strip_wall(s.to_dict()) == _strip_wall(p.to_dict())
        if HAVE_DEV_SHM:
            assert _segment_names() == before  # nothing ever published

    def test_dead_segment_falls_back_to_npz(self, small_graph, tmp_path):
        """A worker whose segment vanished quietly reloads the ``.npz``
        snapshot — same bytes, verified by fingerprint."""
        from repro.harness.parallel import _GraphRef, _load_ref

        cache = GraphCache(tmp_path)
        path, fingerprint = cache.store(small_graph)
        ghost = SharedGraphSegment(
            name=f"{SEGMENT_PREFIX}0_doesnotexist",
            fingerprint=fingerprint,
            graph_name=small_graph.name,
            num_vertices=small_graph.num_vertices,
            num_entries=small_graph.num_directed_edges,
        )
        loaded = _load_ref(_GraphRef(path=str(path),
                                     fingerprint=fingerprint, shm=ghost))
        assert np.array_equal(loaded.weights, small_graph.weights)

    def test_lambda_builder_clear_error(self, tmp_path):
        cells = [Cell("greedy",
                      build=lambda: build_graph(3, [(0, 1, 1.0)], "ad"))]
        with pytest.raises(ValueError, match="not parallel-safe"):
            run_cells(cells, parallel=2,
                      cache=GraphCache(tmp_path / "cache"))

    def test_records_round_trip_json(self, tmp_path):
        """shm-staged records serialise like any other RunRecord."""
        registry = SharedGraphRegistry()
        rec = run_cells(_generator_grid()[:1], parallel=2,
                        cache=GraphCache(tmp_path / "cache"),
                        shm=registry)[0]
        doc = json.loads(rec.to_json())
        assert doc["status"] == "ok"
        assert doc["graph"] == rec.graph


# ------------------------------------------------------------------ #
# CLI surface
# ------------------------------------------------------------------ #


@pytest.mark.skipif(not HAVE_DEV_SHM, reason="no /dev/shm")
class TestCacheCliShm:
    def test_ls_lists_and_clear_unlinks_segments(self, capsys,
                                                 monkeypatch, tmp_path,
                                                 small_graph):
        from repro.cli import main

        monkeypatch.setenv("REPRO_GRAPH_CACHE", str(tmp_path))
        registry = SharedGraphRegistry()
        seg = registry.publish(small_graph)
        try:
            assert main(["cache", "ls", "--json"]) == 0
            doc = json.loads(capsys.readouterr().out)
            assert any(s["name"] == seg.name
                       for s in doc["shm_segments"])
            assert main(["cache", "clear"]) == 0
            out = capsys.readouterr().out
            assert "unlinked" in out
            assert seg.name not in _segment_names()
        finally:
            registry.unlink_all()  # no-op: already unlinked by clear
