"""Pointer-index engine: bit-identity with the segment oracle.

The index engine must be indistinguishable from the segment arg-max in
every *result* quantity — mate array, matched weight, iteration count,
modeled ``edges_scanned`` — while shrinking only the *host* work it
reports through ``host_entries_scanned``.  These tests pit the engines
against each other across random graphs (plain and tie-prone), the
dataset generators under both weight schemes, and the LD-GPU
(devices, batches, partition) grid, plus unit coverage for cursor reuse,
``row_offset``, engine resolution and the satellite fast paths.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given

from conftest import build_graph, random_graphs
from repro.graph.generators import (
    powerlaw_cluster_graph,
    queen_mesh,
    rmat_graph,
    uniform_random_graph,
)
from repro.graph.segments import gather_rows
from repro.matching import ld_gpu, ld_seq
from repro.matching.ld_seq import compute_pointers, find_mutual_pairs
from repro.matching.pointer_index import (
    DEFAULT_POINTING_ENGINE,
    HOST_SCAN_COUNTER,
    POINTING_ENGINE_ENV,
    MutualIndex,
    PointerIndex,
    resolve_pointing_engine,
)
from repro.matching.types import UNMATCHED


def tie_heavy(graph):
    """Integer weights from {1, 2, 3} keyed on the canonical edge id —
    symmetric by construction and dense with ties."""
    if graph.num_directed_edges == 0:
        return graph
    w = (graph.canonical_edge_ids() % 3 + 1).astype(np.float64)
    return graph.reweighted(w)


def assert_same_run(a, b):
    assert np.array_equal(a.mate, b.mate)
    assert a.iterations == b.iterations
    assert a.weight == b.weight
    sa = a.stats.get("edges_scanned")
    sb = b.stats.get("edges_scanned")
    if sa is not None or sb is not None:
        assert np.array_equal(sa, sb)


# ------------------------------------------------------------------ #
# engine resolution
# ------------------------------------------------------------------ #


def test_resolve_default(monkeypatch):
    monkeypatch.delenv(POINTING_ENGINE_ENV, raising=False)
    assert resolve_pointing_engine() == DEFAULT_POINTING_ENGINE
    assert resolve_pointing_engine("segment") == "segment"


def test_resolve_env(monkeypatch):
    monkeypatch.setenv(POINTING_ENGINE_ENV, "segment")
    assert resolve_pointing_engine() == "segment"
    # An explicit argument still wins over the environment.
    assert resolve_pointing_engine("index") == "index"


def test_resolve_unknown(monkeypatch):
    with pytest.raises(ValueError, match="unknown pointing engine"):
        resolve_pointing_engine("radix")
    monkeypatch.setenv(POINTING_ENGINE_ENV, "bogus")
    with pytest.raises(ValueError, match="unknown pointing engine"):
        resolve_pointing_engine()


def test_ld_seq_reports_engine(tie_graph):
    r = ld_seq(tie_graph, engine="index")
    assert r.stats["pointing_engine"] == "index"
    assert r.stats["host_entries_scanned"] >= 0
    r = ld_seq(tie_graph, engine="segment")
    assert r.stats["pointing_engine"] == "segment"


# ------------------------------------------------------------------ #
# randomized engine identity — ld_seq
# ------------------------------------------------------------------ #


@given(g=random_graphs())
def test_ld_seq_engines_identical_random(g):
    assert_same_run(ld_seq(g, engine="segment"), ld_seq(g, engine="index"))


@given(g=random_graphs(tie_prone=True))
def test_ld_seq_engines_identical_tie_prone(g):
    assert_same_run(ld_seq(g, engine="segment"), ld_seq(g, engine="index"))


@given(g=random_graphs(tie_prone=True))
def test_ld_seq_engines_identical_full_rescan(g):
    assert_same_run(ld_seq(g, engine="segment", full_rescan=True),
                    ld_seq(g, engine="index", full_rescan=True))


GENERATORS = [
    pytest.param(lambda: rmat_graph(7, 6, seed=3, name="rmat"),
                 id="rmat"),
    pytest.param(lambda: uniform_random_graph(150, 900, seed=4,
                                              name="urand"),
                 id="uniform"),
    pytest.param(lambda: powerlaw_cluster_graph(160, avg_degree=8.0,
                                                seed=5, name="plc"),
                 id="powerlaw"),
    pytest.param(lambda: queen_mesh(12, name="queen"), id="queen"),
]


@pytest.mark.parametrize("gen", GENERATORS)
@pytest.mark.parametrize("scheme", ["uniform", "ties"])
def test_ld_seq_engines_identical_generators(gen, scheme):
    g = gen()
    if scheme == "ties":
        g = tie_heavy(g)
    assert_same_run(ld_seq(g, engine="segment"), ld_seq(g, engine="index"))


# ------------------------------------------------------------------ #
# engine identity — ld_gpu across the configuration grid
# ------------------------------------------------------------------ #


@pytest.mark.parametrize("devices,batches,partition", [
    (1, None, "edge"),
    (2, 1, "edge"),
    (2, 3, "edge"),
    (4, 2, "edge"),
    (3, 2, "vertex"),
])
def test_ld_gpu_engines_identical_grid(medium_graph, devices, batches,
                                       partition):
    kw = dict(num_devices=devices, num_batches=batches,
              partition=partition, force_streaming=batches is not None)
    rs = ld_gpu(medium_graph, engine="segment", **kw)
    ri = ld_gpu(medium_graph, engine="index", **kw)
    assert_same_run(rs, ri)
    assert rs.sim_time == ri.sim_time
    assert ri.stats["pointing_engine"] == "index"


@pytest.mark.parametrize("devices,batches", [(2, 2), (3, 1)])
def test_ld_gpu_engines_identical_ties(devices, batches):
    g = tie_heavy(rmat_graph(8, 6, seed=9, name="rmat-ties"))
    rs = ld_gpu(g, num_devices=devices, num_batches=batches,
                engine="segment")
    ri = ld_gpu(g, num_devices=devices, num_batches=batches,
                engine="index")
    assert_same_run(rs, ri)
    assert rs.sim_time == ri.sim_time


def test_ld_gpu_matches_ld_seq(medium_graph):
    seq = ld_seq(medium_graph, engine="index")
    gpu = ld_gpu(medium_graph, num_devices=4, num_batches=2,
                 engine="index")
    assert np.array_equal(seq.mate, gpu.mate)


# ------------------------------------------------------------------ #
# cursor mechanics
# ------------------------------------------------------------------ #


def _fresh_pointers(graph, mate, frontier):
    """Oracle: pointers computed from scratch by the segment engine."""
    pointer = np.full(graph.num_vertices, UNMATCHED, dtype=np.int64)
    compute_pointers(graph.indptr, graph.indices, graph.weights,
                     graph.canonical_edge_ids(), mate, pointer, frontier)
    return pointer


def test_cursors_persist_across_iterations(medium_graph):
    """A single index, reused round after round as ``mate`` fills in,
    stays identical to from-scratch segment pointing every round."""
    g = medium_graph
    idx = PointerIndex(g.indptr, g.indices, g.weights,
                       g.canonical_edge_ids())
    rng = np.random.default_rng(0)
    mate = np.full(g.num_vertices, UNMATCHED, dtype=np.int64)
    pointer = np.full(g.num_vertices, UNMATCHED, dtype=np.int64)
    for _ in range(6):
        frontier = np.nonzero(mate == UNMATCHED)[0]
        idx.point(mate, pointer, frontier)
        expect = _fresh_pointers(g, mate, frontier)
        assert np.array_equal(pointer[frontier], expect[frontier])
        # Mark a random subset of pointed-at pairs matched (monotone
        # availability, as in a real run).
        live = frontier[pointer[frontier] != UNMATCHED]
        pick = live[rng.random(len(live)) < 0.3]
        mate[pick] = pointer[pick]
        mate[pointer[pick]] = pick
    assert np.all(idx.cursor >= g.indptr[:-1])
    assert np.all(idx.cursor <= g.indptr[1:])


def test_point_modeled_count_is_frontier_degrees(triangle):
    g = triangle
    idx = PointerIndex(g.indptr, g.indices, g.weights,
                       g.canonical_edge_ids())
    mate = np.full(3, UNMATCHED, dtype=np.int64)
    pointer = np.full(3, UNMATCHED, dtype=np.int64)
    frontier = np.arange(3)
    modeled = idx.point(mate, pointer, frontier)
    assert modeled == int(g.degrees.sum())
    assert idx.last_host_scanned == 3  # first live entry of each row
    assert idx.host_entries_scanned == 3


def test_empty_frontier_and_empty_graph():
    g = build_graph(4, [])
    idx = PointerIndex(g.indptr, g.indices, g.weights,
                       g.canonical_edge_ids())
    mate = np.full(4, UNMATCHED, dtype=np.int64)
    pointer = np.full(4, UNMATCHED, dtype=np.int64)
    assert idx.point(mate, pointer, np.arange(4)) == 0
    assert idx.point(mate, pointer, np.array([], dtype=np.int64)) == 0
    assert np.all(pointer == UNMATCHED)
    assert idx.host_entries_scanned == 0


def test_host_scanned_amortized(medium_graph):
    """Across a whole run the index engine examines each adjacency
    entry at most once past its first visit: pointing work is bounded
    by m + total frontier size, matching work by the total number of
    pointer-value changes (<= m + n: each vertex's pointer only walks
    down its sorted row before going UNMATCHED) — both far below the
    modeled O(m x rounds) / O(n x rounds) full sweeps."""
    r = ld_seq(medium_graph, engine="index")
    host = r.stats["host_entries_scanned"]
    pointing = r.stats["host_entries_scanned_pointing"]
    matching = r.stats["host_entries_scanned_matching"]
    modeled = int(np.sum(r.stats["edges_scanned"]))
    m = medium_graph.num_directed_edges
    n = medium_graph.num_vertices
    assert host == pointing + matching
    assert 0 < pointing <= modeled
    assert pointing <= m + n * r.iterations
    assert 0 < matching <= m + 2 * n
    assert matching < n * r.iterations  # the oracle's matching bill


def test_matching_phase_breakdown_vs_oracle(medium_graph):
    """The segment oracle charges its full sweeps honestly — n probes
    per round in the matching phase — while producing the identical
    result; the breakdown keys expose exactly that gap."""
    ri = ld_seq(medium_graph, engine="index")
    rs = ld_seq(medium_graph, engine="segment")
    assert_same_run(ri, rs)
    n = medium_graph.num_vertices
    assert rs.stats["host_entries_scanned_matching"] \
        == n * rs.iterations
    assert ri.stats["host_entries_scanned_matching"] \
        < rs.stats["host_entries_scanned_matching"]
    assert rs.stats["host_entries_scanned"] \
        == rs.stats["host_entries_scanned_pointing"] \
        + rs.stats["host_entries_scanned_matching"]


def _lockstep_rounds(g, full_rescan=False, max_rounds=400):
    """Drive Algorithm 1's loop with the full-scan matching oracle and
    a :class:`MutualIndex` side by side, yielding both pair sets every
    round — the oracle-identity harness for the delta engine."""
    n = g.num_vertices
    eids = g.canonical_edge_ids()
    mate = np.full(n, UNMATCHED, dtype=np.int64)
    pointer = np.full(n, UNMATCHED, dtype=np.int64)
    mutual = MutualIndex(n)
    frontier = np.arange(n, dtype=np.int64)
    for _ in range(max_rounds):
        compute_pointers(g.indptr, g.indices, g.weights, eids,
                         mate, pointer, frontier)
        oracle = find_mutual_pairs(pointer, None)
        delta = mutual.find_pairs(pointer, frontier)
        yield oracle, delta, mutual.last_host_scanned, len(frontier)
        lo, hi = oracle
        if len(lo) == 0:
            return
        mate[lo] = hi
        mate[hi] = lo
        pointer[lo] = UNMATCHED
        pointer[hi] = UNMATCHED
        if full_rescan:
            frontier = np.nonzero(mate == UNMATCHED)[0]
        else:
            live = np.nonzero((mate == UNMATCHED) & (pointer >= 0))[0]
            frontier = live[mate[pointer[live]] != UNMATCHED]


@pytest.mark.parametrize("full_rescan", [False, True])
def test_mutual_index_lockstep_with_oracle(full_rescan):
    """Round by round on a tie-heavy graph, the delta engine reports
    the oracle's exact pair rows while probing only changed pointers."""
    g = tie_heavy(rmat_graph(7, 6, seed=11, name="lockstep"))
    rounds = 0
    for oracle, delta, probed, fsize in _lockstep_rounds(
            g, full_rescan=full_rescan):
        assert np.array_equal(oracle[0], delta[0])
        assert np.array_equal(oracle[1], delta[1])
        assert probed <= fsize  # never more than the re-pointed set
        rounds += 1
    assert rounds > 1


@given(g=random_graphs(tie_prone=True))
def test_mutual_index_lockstep_random(g):
    for oracle, delta, _, _ in _lockstep_rounds(g):
        assert np.array_equal(oracle[0], delta[0])
        assert np.array_equal(oracle[1], delta[1])


def test_mutual_index_none_diffs_whole_array():
    """``candidates=None`` self-detects changes against ``prev``."""
    pointer = np.array([1, 0, UNMATCHED, UNMATCHED], dtype=np.int64)
    mutual = MutualIndex(4)
    lo, hi = mutual.find_pairs(pointer, None)
    assert np.array_equal(lo, [0]) and np.array_equal(hi, [1])
    assert mutual.last_host_scanned == 2  # the two changed entries
    # Nothing changed: nothing probed, nothing (re-)reported.
    lo, hi = mutual.find_pairs(pointer, None)
    assert len(lo) == 0 and mutual.last_host_scanned == 0
    assert mutual.host_entries_scanned == 2


def test_row_offset_matches_global(medium_graph):
    """Per-partition indices (local indptr + suffix adjacency views,
    exactly how LD-GPU builds them) agree with global pointing."""
    g = medium_graph
    n = g.num_vertices
    eids = g.canonical_edge_ids()
    mate = np.full(n, UNMATCHED, dtype=np.int64)
    # Pre-match some vertices so cursor skipping is exercised.
    mate[::7] = (np.arange(n)[::7] + 1) % n
    split = n // 3
    global_ptr = np.full(n, UNMATCHED, dtype=np.int64)
    part_ptr = np.full(n, UNMATCHED, dtype=np.int64)
    frontier = np.nonzero(mate == UNMATCHED)[0]
    compute_pointers(g.indptr, g.indices, g.weights, eids, mate,
                     global_ptr, frontier)
    for start, stop in ((0, split), (split, n)):
        base = int(g.indptr[start])
        local_indptr = g.indptr[start:stop + 1] - base
        idx = PointerIndex(local_indptr, g.indices[base:],
                           g.weights[base:], eids[base:],
                           row_offset=start)
        sel = frontier[(frontier >= start) & (frontier < stop)]
        idx.point(mate, part_ptr, sel)
    assert np.array_equal(part_ptr[frontier], global_ptr[frontier])


# ------------------------------------------------------------------ #
# telemetry
# ------------------------------------------------------------------ #


def test_host_scan_counter_emitted(tie_graph):
    from repro.telemetry.registry import MetricsRegistry
    from repro.telemetry.spans import record_into

    reg = MetricsRegistry()
    with record_into(reg):
        r = ld_seq(tie_graph, engine="index")
    child = reg.counter(HOST_SCAN_COUNTER, algorithm="ld_seq",
                        engine="index")
    assert child.value == r.stats["host_entries_scanned"] > 0

    reg = MetricsRegistry()
    with record_into(reg):
        ld_gpu(tie_graph, num_devices=2, engine="segment")
    fam = reg.snapshot()  # smoke: snapshot renders without error
    assert fam is not None


# ------------------------------------------------------------------ #
# satellite fast paths
# ------------------------------------------------------------------ #


def test_gather_rows_contiguous_fast_path(medium_graph):
    g = medium_graph
    contiguous = np.arange(10, 40, dtype=np.int64)
    scattered = np.array([3, 9, 4, 40], dtype=np.int64)
    single = np.array([17], dtype=np.int64)
    for rows in (contiguous, scattered, single):
        sub_indptr, positions = gather_rows(g.indptr, rows)
        # Reference construction, row by row.
        ref = np.concatenate(
            [np.arange(g.indptr[r], g.indptr[r + 1]) for r in rows]
        ) if len(rows) else np.array([], dtype=np.int64)
        assert np.array_equal(positions, ref)
        assert np.array_equal(np.diff(sub_indptr),
                              g.degrees[rows])


def test_find_mutual_pairs_dedup():
    pointer = np.array([1, 0, 3, 2, UNMATCHED], dtype=np.int64)
    lo, hi = find_mutual_pairs(pointer)
    assert np.array_equal(lo, [0, 2])
    assert np.array_equal(hi, [1, 3])
    # Both endpoints in the candidate set must not duplicate the pair.
    lo, hi = find_mutual_pairs(pointer, np.array([0, 1, 2, 3, 3, 0]))
    assert np.array_equal(lo, [0, 2])
    assert np.array_equal(hi, [1, 3])


def test_csr_caches_are_memoised_and_readonly(triangle):
    d1 = triangle.degrees
    assert d1 is triangle.degrees
    assert not d1.flags.writeable
    e1 = triangle.canonical_edge_ids()
    assert e1 is triangle.canonical_edge_ids()
    assert not e1.flags.writeable


# ------------------------------------------------------------------ #
# bench integration: builder-backed cells and the pointing suite
# ------------------------------------------------------------------ #


def test_pointing_suite_shape():
    from repro.harness.bench import SUITES, tie_clique_300, tie_path_6000

    suite = SUITES["pointing"]
    names = {w.name for w in suite}
    # Engines come in index/segment pairs over the same workload.
    for name in names:
        if name.endswith("-index"):
            assert name[:-6] + "-segment" in names
    g = tie_clique_300()
    assert g.num_vertices == 300
    assert np.all(g.weights == 1.0)
    assert tie_path_6000().num_directed_edges == 2 * 5999


def test_graph_plane_suite_shape():
    from repro.harness.bench import SUITES, tie_path_3000

    suite = SUITES["graph_plane"]
    names = {w.name for w in suite}
    for name in names:
        if name.endswith("-index"):
            assert name[:-6] + "-segment" in names
    g = tie_path_3000()
    assert g.num_vertices == 3000
    assert g.num_directed_edges == 2 * 2999
    assert np.all(g.weights == 1.0)
    # Stats stay on for every workload: host_entries_scanned is the
    # suite's gated metric.
    assert not any(w.overrides.get("collect_stats") is False
                   for w in suite)


def test_run_cells_builder_graph():
    from repro.engine.cells import Cell, run_cells
    from repro.harness.bench import tie_clique_300

    records = run_cells([
        Cell("ld_seq", build=tie_clique_300,
             overrides={"engine": "index"}),
        Cell("ld_seq", build=tie_clique_300,
             overrides={"engine": "segment"}),
    ])
    assert all(r.ok for r in records)
    assert records[0].graph == "tie-clique-300"
    assert records[0].weight == records[1].weight
    assert records[0].iterations == records[1].iterations == 151
