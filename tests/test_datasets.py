"""Tests for the dataset registry and platform scaling."""

import pytest

from repro.gpusim.spec import CPU_EPYC_7742_2S, DGX_2, DGX_A100
from repro.harness.datasets import (
    DATASETS,
    large_datasets,
    load_dataset,
    quality_instance,
    scale_factor,
    scaled_cpu,
    scaled_platform,
    small_datasets,
)

PAPER_TABLE1_NAMES = [
    "AGATHA-2015", "uk-2007-05", "webbase-2001", "MOLIERE_2016",
    "GAP-urand", "GAP-kron", "com-Friendster", "Queen_4147",
    "mycielskian18", "HV15R", "com-Orkut", "kmer_U1a", "kmer_V2a",
    "mouse_gene",
]


class TestRegistry:
    def test_all_fourteen_present(self):
        assert list(DATASETS) == PAPER_TABLE1_NAMES

    def test_groups_match_paper(self):
        assert len(large_datasets()) == 7
        assert len(small_datasets()) == 7
        # the paper's threshold: LARGE means > 1B edges
        for name in large_datasets():
            assert DATASETS[name].paper_edges > 10**9
        for name in small_datasets():
            assert DATASETS[name].paper_edges <= 10**9

    def test_unknown_name(self):
        with pytest.raises(KeyError):
            load_dataset("no-such-graph")
        with pytest.raises(KeyError):
            quality_instance("no-such-graph")

    def test_load_caches(self):
        assert load_dataset("mouse_gene") is load_dataset("mouse_gene")

    @pytest.mark.parametrize("name", ["kmer_V2a", "mouse_gene",
                                      "mycielskian18"])
    def test_analogs_valid(self, name):
        g = load_dataset(name)
        g.validate()
        assert g.name == name or g.name.startswith(name[:8])

    @pytest.mark.parametrize("name", PAPER_TABLE1_NAMES)
    def test_quality_instances_small(self, name):
        q = quality_instance(name)
        assert q.num_vertices <= 4000  # blossom-tractable
        assert q.num_edges > 0

    def test_structural_classes(self):
        """The analogs preserve the structural axes DESIGN.md claims."""
        urand = load_dataset("GAP-urand")
        kron = load_dataset("GAP-kron")
        assert kron.max_degree / kron.avg_degree > \
            10 * urand.max_degree / urand.avg_degree
        kmer = load_dataset("kmer_V2a")
        assert kmer.avg_degree < 4
        mouse = load_dataset("mouse_gene")
        from repro.graph.generators import has_natural_weights

        assert has_natural_weights(mouse)


class TestScaling:
    def test_scale_factor_below_one(self):
        for name in PAPER_TABLE1_NAMES[:4]:
            assert 0 < scale_factor(name) < 1e-2

    def test_platform_memory_scaled(self):
        plat = scaled_platform("GAP-kron")
        assert plat.device.memory_bytes < DGX_A100.device.memory_bytes

    def test_platform_bandwidth_scaled(self):
        plat = scaled_platform("GAP-kron")
        f = scale_factor("GAP-kron")
        assert plat.device.mem_bandwidth_gbs == pytest.approx(
            DGX_A100.device.mem_bandwidth_gbs * f)
        assert plat.gpu_link.bandwidth_gbs == pytest.approx(
            DGX_A100.gpu_link.bandwidth_gbs * f)

    def test_latencies_preserved(self):
        plat = scaled_platform("GAP-kron")
        assert plat.device.kernel_launch_us == \
            DGX_A100.device.kernel_launch_us
        assert plat.gpu_link.latency_us == DGX_A100.gpu_link.latency_us

    def test_occupancy_capacity_vertex_scaled(self):
        plat = scaled_platform("mouse_gene")
        g = load_dataset("mouse_gene")
        expect = DGX_A100.device.hw_warps * g.num_vertices / 45_000
        assert plat.device.occupancy_capacity == pytest.approx(expect)

    def test_dgx2_variant(self):
        plat = scaled_platform("kmer_U1a", DGX_2)
        assert plat.device.name == "V100"
        assert plat.max_devices == 16

    def test_scaled_cpu(self):
        cpu = scaled_cpu("kmer_U1a")
        f = scale_factor("kmer_U1a")
        assert cpu.mem_bandwidth_gbs == pytest.approx(
            CPU_EPYC_7742_2S.mem_bandwidth_gbs * f)
        assert cpu.threads == CPU_EPYC_7742_2S.threads

    def test_batching_regime_preserved(self):
        """The paper's largest graphs need batching at low device counts
        but fit at 8 — the scaled platform reproduces exactly that."""
        from repro.matching.ld_gpu import ld_gpu

        g = load_dataset("AGATHA-2015")
        plat = scaled_platform("AGATHA-2015")
        low = ld_gpu(g, plat, num_devices=1, collect_stats=False,
                     max_iterations=1)
        high = ld_gpu(g, plat, num_devices=8, collect_stats=False,
                      max_iterations=1)
        assert low.stats["config"].num_batches > 1
        assert high.stats["config"].num_batches == 1

    def test_small_graphs_fit_one_device(self):
        from repro.matching.ld_gpu import ld_gpu

        for name in ("Queen_4147", "mouse_gene"):
            g = load_dataset(name)
            plat = scaled_platform(name)
            r = ld_gpu(g, plat, num_devices=1, collect_stats=False,
                       max_iterations=1)
            assert r.stats["config"].num_batches == 1
