"""Tests for execution traces, configuration sweeps and the CLI."""

import json

import numpy as np
import pytest

from repro.cli import build_parser, main
from repro.gpusim.spec import DGX_A100, DGX_A100_PCIE
from repro.gpusim.timeline import Timeline
from repro.gpusim.trace import Trace, TraceEvent
from repro.harness.sweep import SweepPoint, sweep_ld_gpu
from repro.matching.ld_gpu import ld_gpu


class TestTrace:
    def test_from_timeline(self, medium_graph):
        r = ld_gpu(medium_graph, num_devices=2)
        trace = Trace.from_timeline(r.timeline)
        assert len(trace) > 0
        assert trace.total_duration == pytest.approx(r.sim_time)

    def test_events_ordered_and_disjoint_per_track(self, medium_graph):
        r = ld_gpu(medium_graph, num_devices=2)
        trace = Trace.from_timeline(r.timeline)
        ends: dict = {}
        for e in trace.events:
            track = e.track if e.track is not None else e.lane
            assert e.start_s >= ends.get(track, 0.0) - 1e-12
            ends[track] = e.start_s + e.duration_s

    def test_lane_totals_match_components(self, medium_graph):
        r = ld_gpu(medium_graph, num_devices=4)
        trace = Trace.from_timeline(r.timeline)
        lanes = trace.lane_totals()
        t = r.timeline.totals
        assert lanes["compute"] == pytest.approx(
            t["pointing"] + t["matching"])
        assert lanes["communication"] == pytest.approx(
            t["allreduce_pointers"] + t["allreduce_mate"]
            + t["batch_transfer"] + t["sync"])

    def test_chrome_trace_schema(self, medium_graph):
        r = ld_gpu(medium_graph, num_devices=2, max_iterations=2)
        doc = Trace.from_timeline(r.timeline).to_chrome_trace()
        assert "traceEvents" in doc
        ev = doc["traceEvents"][0]
        assert ev["ph"] == "X"
        assert ev["ts"] >= 0 and ev["dur"] > 0

    def test_save_round_trip(self, tmp_path, medium_graph):
        r = ld_gpu(medium_graph, num_devices=2, max_iterations=1)
        trace = Trace.from_timeline(r.timeline)
        path = tmp_path / "t.json"
        trace.save(path)
        loaded = json.loads(path.read_text())
        assert len(loaded["traceEvents"]) == len(trace)

    def test_empty_timeline(self):
        trace = Trace.from_timeline(Timeline())
        assert len(trace) == 0
        assert trace.total_duration == 0.0


class TestTraceBatchTransferOverlap:
    """Regression: batch transfers render on their own tid, overlapping
    the pointing kernel (the §IV-C dual-buffer pipeline), instead of
    being serialised onto the compute clock."""

    @staticmethod
    def _streaming_timeline():
        t = Timeline()
        for point, bt in ((2.0, 1.5), (1.0, 0.5)):
            t.begin_iteration()
            t.add("pointing", point)
            t.add("batch_transfer", bt)
            t.add("allreduce_pointers", 0.25)
            t.add("matching", 0.5)
            t.add("allreduce_mate", 0.25)
            t.add("sync", 0.1)
            t.end_iteration()
        return t

    def test_own_tid_with_overlapping_timestamps(self):
        trace = Trace.from_timeline(self._streaming_timeline())
        bt = [e for e in trace.events if e.name == "batch_transfer"]
        pt = [e for e in trace.events if e.name == "pointing"]
        assert len(bt) == 2 and len(pt) == 2
        for b, p in zip(bt, pt):
            assert b.track == "batch_transfer"
            assert b.to_chrome()["tid"] == "batch_transfer"
            # Same start as the pointing kernel: the copy engine and the
            # compute queue run concurrently.
            assert b.start_s == pytest.approx(p.start_s)
            assert b.start_s < p.start_s + p.duration_s

    def test_lane_totals_semantics_unchanged(self):
        t = self._streaming_timeline()
        lanes = Trace.from_timeline(t).lane_totals()
        assert lanes["compute"] == pytest.approx(
            t.totals["pointing"] + t.totals["matching"])
        assert lanes["communication"] == pytest.approx(
            t.totals["allreduce_pointers"] + t.totals["allreduce_mate"]
            + t.totals["batch_transfer"] + t.totals["sync"])

    def test_total_duration_still_matches_timeline(self):
        t = self._streaming_timeline()
        assert Trace.from_timeline(t).total_duration == \
            pytest.approx(t.total)

    def test_serial_components_start_after_phase_makespan(self):
        trace = Trace.from_timeline(self._streaming_timeline())
        first_ar = next(e for e in trace.events
                        if e.name == "allreduce_pointers")
        # pointing (2.0) + exposed transfer (1.5) precede the allreduce.
        assert first_ar.start_s == pytest.approx(3.5)

    def test_streaming_run_end_to_end(self, medium_graph):
        r = ld_gpu(medium_graph, num_devices=2, num_batches=3,
                   force_streaming=True, max_iterations=3)
        assert r.timeline.totals["batch_transfer"] > 0
        trace = Trace.from_timeline(r.timeline)
        tids = {e.to_chrome()["tid"] for e in trace.events}
        assert "batch_transfer" in tids
        assert trace.total_duration == pytest.approx(r.sim_time)


class TestSweep:
    def test_grid_coverage(self, medium_graph):
        result = sweep_ld_gpu(
            medium_graph,
            platforms=(DGX_A100,),
            device_counts=(1, 2),
            batch_counts=(None, 3),
        )
        assert len(result.points) == 4
        assert all(p.ok for p in result.points)

    def test_best_is_minimum(self, medium_graph):
        result = sweep_ld_gpu(medium_graph, device_counts=(1, 2, 4))
        times = [p.time_s for p in result.points if p.ok]
        assert result.best.time_s == min(times)

    def test_oom_points_recorded(self, medium_graph):
        n = medium_graph.num_vertices
        tiny = DGX_A100.with_device_memory(
            2 * n * 8 + (n + 1) * 8 + medium_graph.num_directed_edges * 4
        )
        result = sweep_ld_gpu(medium_graph, platforms=(tiny,),
                              device_counts=(1,), batch_counts=(1, None))
        oom = [p for p in result.points if not p.ok]
        assert len(oom) == 1  # the forced single batch cannot fit

    def test_multiple_platforms(self, medium_graph):
        result = sweep_ld_gpu(
            medium_graph, platforms=(DGX_A100, DGX_A100_PCIE),
            device_counts=(2,),
        )
        names = {p.platform for p in result.points}
        assert names == {"DGX-A100", "DGX-A100-PCIe"}

    def test_render(self, medium_graph):
        result = sweep_ld_gpu(medium_graph, device_counts=(1,))
        text = result.render()
        assert "LD-GPU sweep" in text
        assert "#GPUs" in text

    def test_device_limit_respected(self, medium_graph):
        result = sweep_ld_gpu(medium_graph, device_counts=(4, 99))
        assert all(p.num_devices <= 8 for p in result.points)

    def test_metrics_aggregated_across_cells(self, medium_graph):
        result = sweep_ld_gpu(medium_graph, device_counts=(1, 2),
                              collect_metrics=True)
        assert len(result.cell_snapshots) == len(result.points)
        merged = result.metrics
        # Cross-cell histogram merge: span count is the sum of cells'.
        per_cell = [
            sum(s["count"] for s in snap.samples("repro_span_seconds"))
            for snap in result.cell_snapshots
        ]
        merged_count = sum(
            s["count"] for s in merged.samples("repro_span_seconds"))
        assert merged_count == sum(per_cell) > 0
        # And the merged component seconds equal the summed sim times.
        total = sum(p.time_s for p in result.points if p.ok)
        assert merged.total("repro_component_seconds_total") == \
            pytest.approx(total)

    def test_metrics_off_by_default(self, medium_graph):
        result = sweep_ld_gpu(medium_graph, device_counts=(1,))
        assert result.metrics is None
        assert result.cell_snapshots == []


class TestCli:
    def test_parser_commands(self):
        p = build_parser()
        args = p.parse_args(["list", "datasets"])
        assert args.command == "list"
        args = p.parse_args(["run", "-a", "ld_seq", "-d", "mouse_gene"])
        assert args.algorithm == "ld_seq"
        args = p.parse_args(["sweep", "-d", "kmer_V2a", "-n", "1", "2"])
        assert args.devices == [1, 2]
        args = p.parse_args(["experiment", "table3", "--quick"])
        assert args.quick

    def test_unknown_dataset_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "-a", "ld_seq",
                                       "-d", "nope"])

    def test_list_algorithms(self, capsys):
        assert main(["list", "algorithms"]) == 0
        out = capsys.readouterr().out
        assert "ld_gpu" in out
        assert "blossom" in out

    def test_list_datasets(self, capsys):
        assert main(["list", "datasets"]) == 0
        out = capsys.readouterr().out
        assert "GAP-kron" in out
        assert "LARGE" in out

    def test_list_experiments(self, capsys):
        assert main(["list", "experiments"]) == 0
        assert "fig11" in capsys.readouterr().out

    def test_run_ld_gpu(self, capsys):
        assert main(["run", "-a", "ld_gpu", "-d", "mouse_gene",
                     "-n", "2"]) == 0
        out = capsys.readouterr().out
        assert "ld_gpu:" in out
        assert "% time" in out

    def test_run_plain_algorithm(self, capsys):
        assert main(["run", "-a", "greedy", "-d", "mouse_gene"]) == 0
        assert "greedy:" in capsys.readouterr().out

    def test_sweep_command(self, capsys):
        assert main(["sweep", "-d", "mouse_gene", "-n", "1", "2"]) == 0
        out = capsys.readouterr().out
        assert "best:" in out

    def test_experiment_quick(self, capsys):
        assert main(["experiment", "table3", "--quick"]) == 0
        assert "A100 speedup" in capsys.readouterr().out

    def test_run_metrics_out_prom(self, tmp_path, capsys):
        from repro.telemetry import validate_prometheus_text

        out = tmp_path / "run.prom"
        assert main(["run", "-a", "ld_gpu", "-d", "mouse_gene",
                     "-n", "2", "--metrics-out", str(out)]) == 0
        assert "metrics (prometheus) written" in capsys.readouterr().out
        text = out.read_text()
        assert validate_prometheus_text(text) > 0
        assert "repro_component_seconds_total" in text

    def test_run_metrics_out_json(self, tmp_path):
        out = tmp_path / "run.json"
        assert main(["run", "-a", "ld_gpu", "-d", "mouse_gene",
                     "-n", "4", "--json", "--metrics-out",
                     str(out)]) == 0
        doc = json.loads(out.read_text())
        assert doc["reconciliation"]["max_abs_diff"] <= 1e-9
        assert doc["provenance"]["numpy"]
        rec = doc["reconciliation"]
        assert rec["communication_fraction_metric"] == pytest.approx(
            rec["communication_fraction_timeline"])

    def test_stats_subcommand(self, tmp_path, capsys):
        record = tmp_path / "record.json"
        assert main(["run", "-a", "ld_gpu", "-d", "mouse_gene",
                     "-n", "2", "--json"]) == 0
        record.write_text(capsys.readouterr().out)
        assert main(["stats", str(record)]) == 0
        out = capsys.readouterr().out
        assert "communication fraction" in out
        assert "iterations touching" in out
        assert "provenance" in out

    def test_stats_non_simulator_record(self, tmp_path, capsys):
        record = tmp_path / "record.json"
        assert main(["run", "-a", "greedy", "-d", "mouse_gene",
                     "--json"]) == 0
        record.write_text(capsys.readouterr().out)
        assert main(["stats", str(record)]) == 0
        assert "no timeline" in capsys.readouterr().out
