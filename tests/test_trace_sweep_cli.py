"""Tests for execution traces, configuration sweeps and the CLI."""

import json

import numpy as np
import pytest

from repro.cli import build_parser, main
from repro.gpusim.spec import DGX_A100, DGX_A100_PCIE
from repro.gpusim.timeline import Timeline
from repro.gpusim.trace import Trace, TraceEvent
from repro.harness.sweep import SweepPoint, sweep_ld_gpu
from repro.matching.ld_gpu import ld_gpu


class TestTrace:
    def test_from_timeline(self, medium_graph):
        r = ld_gpu(medium_graph, num_devices=2)
        trace = Trace.from_timeline(r.timeline)
        assert len(trace) > 0
        assert trace.total_duration == pytest.approx(r.sim_time)

    def test_events_ordered_and_disjoint(self, medium_graph):
        r = ld_gpu(medium_graph, num_devices=2)
        trace = Trace.from_timeline(r.timeline)
        end = 0.0
        for e in trace.events:
            assert e.start_s >= end - 1e-12
            end = e.start_s + e.duration_s

    def test_lane_totals_match_components(self, medium_graph):
        r = ld_gpu(medium_graph, num_devices=4)
        trace = Trace.from_timeline(r.timeline)
        lanes = trace.lane_totals()
        t = r.timeline.totals
        assert lanes["compute"] == pytest.approx(
            t["pointing"] + t["matching"])
        assert lanes["communication"] == pytest.approx(
            t["allreduce_pointers"] + t["allreduce_mate"]
            + t["batch_transfer"] + t["sync"])

    def test_chrome_trace_schema(self, medium_graph):
        r = ld_gpu(medium_graph, num_devices=2, max_iterations=2)
        doc = Trace.from_timeline(r.timeline).to_chrome_trace()
        assert "traceEvents" in doc
        ev = doc["traceEvents"][0]
        assert ev["ph"] == "X"
        assert ev["ts"] >= 0 and ev["dur"] > 0

    def test_save_round_trip(self, tmp_path, medium_graph):
        r = ld_gpu(medium_graph, num_devices=2, max_iterations=1)
        trace = Trace.from_timeline(r.timeline)
        path = tmp_path / "t.json"
        trace.save(path)
        loaded = json.loads(path.read_text())
        assert len(loaded["traceEvents"]) == len(trace)

    def test_empty_timeline(self):
        trace = Trace.from_timeline(Timeline())
        assert len(trace) == 0
        assert trace.total_duration == 0.0


class TestSweep:
    def test_grid_coverage(self, medium_graph):
        result = sweep_ld_gpu(
            medium_graph,
            platforms=(DGX_A100,),
            device_counts=(1, 2),
            batch_counts=(None, 3),
        )
        assert len(result.points) == 4
        assert all(p.ok for p in result.points)

    def test_best_is_minimum(self, medium_graph):
        result = sweep_ld_gpu(medium_graph, device_counts=(1, 2, 4))
        times = [p.time_s for p in result.points if p.ok]
        assert result.best.time_s == min(times)

    def test_oom_points_recorded(self, medium_graph):
        n = medium_graph.num_vertices
        tiny = DGX_A100.with_device_memory(
            2 * n * 8 + (n + 1) * 8 + medium_graph.num_directed_edges * 4
        )
        result = sweep_ld_gpu(medium_graph, platforms=(tiny,),
                              device_counts=(1,), batch_counts=(1, None))
        oom = [p for p in result.points if not p.ok]
        assert len(oom) == 1  # the forced single batch cannot fit

    def test_multiple_platforms(self, medium_graph):
        result = sweep_ld_gpu(
            medium_graph, platforms=(DGX_A100, DGX_A100_PCIE),
            device_counts=(2,),
        )
        names = {p.platform for p in result.points}
        assert names == {"DGX-A100", "DGX-A100-PCIe"}

    def test_render(self, medium_graph):
        result = sweep_ld_gpu(medium_graph, device_counts=(1,))
        text = result.render()
        assert "LD-GPU sweep" in text
        assert "#GPUs" in text

    def test_device_limit_respected(self, medium_graph):
        result = sweep_ld_gpu(medium_graph, device_counts=(4, 99))
        assert all(p.num_devices <= 8 for p in result.points)


class TestCli:
    def test_parser_commands(self):
        p = build_parser()
        args = p.parse_args(["list", "datasets"])
        assert args.command == "list"
        args = p.parse_args(["run", "-a", "ld_seq", "-d", "mouse_gene"])
        assert args.algorithm == "ld_seq"
        args = p.parse_args(["sweep", "-d", "kmer_V2a", "-n", "1", "2"])
        assert args.devices == [1, 2]
        args = p.parse_args(["experiment", "table3", "--quick"])
        assert args.quick

    def test_unknown_dataset_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "-a", "ld_seq",
                                       "-d", "nope"])

    def test_list_algorithms(self, capsys):
        assert main(["list", "algorithms"]) == 0
        out = capsys.readouterr().out
        assert "ld_gpu" in out
        assert "blossom" in out

    def test_list_datasets(self, capsys):
        assert main(["list", "datasets"]) == 0
        out = capsys.readouterr().out
        assert "GAP-kron" in out
        assert "LARGE" in out

    def test_list_experiments(self, capsys):
        assert main(["list", "experiments"]) == 0
        assert "fig11" in capsys.readouterr().out

    def test_run_ld_gpu(self, capsys):
        assert main(["run", "-a", "ld_gpu", "-d", "mouse_gene",
                     "-n", "2"]) == 0
        out = capsys.readouterr().out
        assert "ld_gpu:" in out
        assert "% time" in out

    def test_run_plain_algorithm(self, capsys):
        assert main(["run", "-a", "greedy", "-d", "mouse_gene"]) == 0
        assert "greedy:" in capsys.readouterr().out

    def test_sweep_command(self, capsys):
        assert main(["sweep", "-d", "mouse_gene", "-n", "1", "2"]) == 0
        out = capsys.readouterr().out
        assert "best:" in out

    def test_experiment_quick(self, capsys):
        assert main(["experiment", "table3", "--quick"]) == 0
        assert "A100 speedup" in capsys.readouterr().out
