"""Tests for repro.telemetry: registry, spans, exporters, provenance,
the engine MetricsSink, and the satellite regressions around Timeline
merging and the profiler report's stats-array indexing."""

import json
import warnings

import numpy as np
import pytest

from repro.engine import MetricsSink, RunContext, TraceSink, execute
from repro.gpusim.report import iteration_rows, profile_report
from repro.gpusim.timeline import COMPONENTS, Timeline
from repro.gpusim.trace import Trace
from repro.matching.ld_gpu import ld_gpu
from repro.telemetry import (
    MetricsRegistry,
    SpanEmitter,
    active_registry,
    aggregate_snapshots,
    build_manifest,
    graph_fingerprint,
    record_into,
    to_json_document,
    to_prometheus,
    validate_prometheus_text,
    write_metrics,
)


class TestRegistry:
    def test_counter_accumulates(self):
        reg = MetricsRegistry()
        reg.counter("repro_x_total", "x", a="1").inc()
        reg.counter("repro_x_total", a="1").inc(2.5)
        assert reg.snapshot().total("repro_x_total") == 3.5

    def test_counter_rejects_negative(self):
        with pytest.raises(ValueError):
            MetricsRegistry().counter("repro_x_total").inc(-1)

    def test_label_sets_are_separate_children(self):
        reg = MetricsRegistry()
        reg.counter("repro_x_total", a="1").inc()
        reg.counter("repro_x_total", a="2").inc(5)
        snap = reg.snapshot()
        assert snap.total("repro_x_total", a="1") == 1
        assert snap.total("repro_x_total", a="2") == 5
        assert snap.total("repro_x_total") == 6

    def test_gauge_set(self):
        reg = MetricsRegistry()
        reg.gauge("repro_g").set(0.25)
        reg.gauge("repro_g").set(0.75)
        assert reg.snapshot().total("repro_g") == 0.75

    def test_histogram_buckets_cumulative(self):
        reg = MetricsRegistry()
        h = reg.histogram("repro_h", buckets=(1.0, 10.0))
        for v in (0.5, 5.0, 50.0):
            h.observe(v)
        (sample,) = reg.snapshot().samples("repro_h")
        assert sample["count"] == 3
        assert sample["sum"] == pytest.approx(55.5)
        assert sample["buckets"] == [(1.0, 1), (10.0, 2)]

    def test_histogram_rejects_unsorted_buckets(self):
        with pytest.raises(ValueError):
            MetricsRegistry().histogram("repro_h", buckets=(2.0, 1.0))

    def test_type_conflict_rejected(self):
        reg = MetricsRegistry()
        reg.counter("repro_x")
        with pytest.raises(ValueError, match="already registered"):
            reg.gauge("repro_x")

    def test_bucket_conflict_rejected(self):
        reg = MetricsRegistry()
        reg.histogram("repro_h", buckets=(1.0,))
        with pytest.raises(ValueError, match="different"):
            reg.histogram("repro_h", buckets=(2.0,))

    def test_invalid_names_rejected(self):
        reg = MetricsRegistry()
        with pytest.raises(ValueError):
            reg.counter("bad name")
        with pytest.raises(ValueError):
            reg.counter("repro_x", **{"le": "nope"})

    def test_snapshot_is_frozen_copy(self):
        reg = MetricsRegistry()
        c = reg.counter("repro_x_total")
        c.inc()
        snap = reg.snapshot()
        c.inc(41)
        assert snap.total("repro_x_total") == 1
        assert reg.snapshot().total("repro_x_total") == 42


class TestSnapshotMerge:
    def _snap(self, n):
        reg = MetricsRegistry()
        reg.counter("repro_c_total", a="x").inc(n)
        reg.gauge("repro_g").set(n)
        reg.histogram("repro_h", buckets=(1.0, 10.0)).observe(n)
        return reg.snapshot()

    def test_counters_add_gauges_last_win(self):
        merged = self._snap(1).merged_with(self._snap(5))
        assert merged.total("repro_c_total") == 6
        assert merged.total("repro_g") == 5

    def test_histograms_add_bucketwise(self):
        merged = self._snap(0.5).merged_with(self._snap(5))
        (s,) = merged.samples("repro_h")
        assert s["count"] == 2
        assert s["buckets"] == [(1.0, 1), (10.0, 2)]

    def test_bucket_mismatch_raises(self):
        reg = MetricsRegistry()
        reg.histogram("repro_h", buckets=(2.0,)).observe(1)
        with pytest.raises(ValueError, match="bucket"):
            self._snap(1).merged_with(reg.snapshot())

    def test_aggregate_many(self):
        merged = aggregate_snapshots([self._snap(i) for i in range(4)])
        assert merged.total("repro_c_total") == 6

    def test_disjoint_families_union(self):
        a = MetricsRegistry()
        a.counter("repro_a_total").inc()
        b = MetricsRegistry()
        b.counter("repro_b_total").inc()
        merged = a.snapshot().merged_with(b.snapshot())
        assert "repro_a_total" in merged and "repro_b_total" in merged


class TestSpans:
    def test_no_registry_is_noop(self):
        assert active_registry() is None
        tel = SpanEmitter(Timeline(), algorithm="t")
        tel.emit("sync", 1.0)  # must not raise
        assert tel.timeline.totals["sync"] == 1.0

    def test_record_into_scopes_registry(self):
        reg = MetricsRegistry()
        with record_into(reg):
            assert active_registry() is reg
        assert active_registry() is None

    def test_emitter_feeds_timeline_and_registry_identically(self):
        reg = MetricsRegistry()
        t = Timeline()
        tel = SpanEmitter(t, algorithm="x", device="d")
        with record_into(reg):
            for s in (0.125, 0.25, 0.5):
                tel.emit("pointing", s)
        snap = reg.snapshot()
        assert snap.total("repro_component_seconds_total",
                          component="pointing") == t.totals["pointing"]
        assert snap.total("repro_spans_total") == 3

    def test_wall_span(self):
        from repro.telemetry import span

        reg = MetricsRegistry()
        with record_into(reg), span("unit_test"):
            pass
        (s,) = reg.snapshot().samples("repro_wall_span_seconds")
        assert s["labels"]["span"] == "unit_test"
        assert s["count"] == 1


class TestPrometheusExport:
    def _snapshot(self):
        reg = MetricsRegistry()
        reg.counter("repro_c_total", "a counter", a="x").inc(2)
        reg.gauge("repro_g", "a gauge").set(0.5)
        reg.histogram("repro_h", "a histogram",
                      buckets=(1.0, 10.0)).observe(3.0)
        return reg.snapshot()

    def test_help_type_and_samples(self):
        text = to_prometheus(self._snapshot())
        assert "# HELP repro_c_total a counter" in text
        assert "# TYPE repro_c_total counter" in text
        assert 'repro_c_total{a="x"} 2' in text
        assert "# TYPE repro_h histogram" in text
        assert 'repro_h_bucket{le="+Inf"} 1' in text
        assert "repro_h_sum 3" in text

    def test_label_escaping(self):
        reg = MetricsRegistry()
        reg.counter("repro_c_total",
                    path='a"b\\c\nd').inc()
        text = to_prometheus(reg.snapshot())
        assert '\\"' in text and "\\\\" in text and "\\n" in text
        assert validate_prometheus_text(text) == 1

    def test_validator_accepts_own_output(self):
        assert validate_prometheus_text(
            to_prometheus(self._snapshot())) > 0

    def test_validator_rejects_garbage(self):
        with pytest.raises(ValueError):
            validate_prometheus_text("this is not prometheus\n")

    def test_validator_rejects_empty(self):
        with pytest.raises(ValueError, match="no samples"):
            validate_prometheus_text("")

    def test_validator_rejects_nonmonotone_histogram(self):
        bad = (
            "# TYPE repro_h histogram\n"
            'repro_h_bucket{le="1"} 5\n'
            'repro_h_bucket{le="10"} 3\n'
            'repro_h_bucket{le="+Inf"} 5\n'
            "repro_h_sum 1\n"
            "repro_h_count 5\n"
        )
        with pytest.raises(ValueError, match="monotone"):
            validate_prometheus_text(bad)

    def test_validator_rejects_missing_inf(self):
        bad = (
            "# TYPE repro_h histogram\n"
            'repro_h_bucket{le="1"} 5\n'
            "repro_h_sum 1\n"
            "repro_h_count 5\n"
        )
        with pytest.raises(ValueError, match=r"\+Inf"):
            validate_prometheus_text(bad)

    def test_write_metrics_suffix_dispatch(self, tmp_path):
        snap = self._snapshot()
        assert write_metrics(tmp_path / "m.prom", snap) == "prometheus"
        assert write_metrics(tmp_path / "m.json", snap) == "json"
        validate_prometheus_text((tmp_path / "m.prom").read_text())
        doc = json.loads((tmp_path / "m.json").read_text())
        assert "metrics" in doc


class TestProvenance:
    def test_manifest_fields(self, medium_graph):
        m = build_manifest(graph=medium_graph, seed=7, dataset="d",
                           sim_platform="DGX-A100", wall_time_s=0.1,
                           sim_time_s=0.2)
        assert m["schema"] == 1
        assert m["python"] and m["numpy"] and m["host_platform"]
        assert m["seed"] == 7
        assert m["dataset_fingerprint"].startswith("sha256:")

    def test_fingerprint_deterministic_and_name_independent(
            self, medium_graph):
        import copy

        g2 = copy.copy(medium_graph)
        g2.name = "renamed"
        assert graph_fingerprint(medium_graph) == graph_fingerprint(g2)

    def test_fingerprint_sensitive_to_weights(self, medium_graph):
        import copy

        g2 = copy.copy(medium_graph)
        g2.weights = medium_graph.weights.copy()
        g2.weights[len(g2.weights) // 2] += 1.0
        assert graph_fingerprint(medium_graph) != graph_fingerprint(g2)


class TestMetricsSink:
    def test_run_records_metrics_and_reconciles(self, medium_graph):
        sink = MetricsSink()
        ctx = RunContext(num_devices=4, sinks=(sink,))
        record = execute("ld_gpu", medium_graph, ctx)
        snap = sink.last_snapshot
        timeline = record.result.timeline
        for c in COMPONENTS:
            assert snap.total("repro_component_seconds_total",
                              component=c) == \
                pytest.approx(timeline.totals[c], abs=1e-12)
        assert snap.total("repro_communication_fraction") == \
            pytest.approx(timeline.communication_fraction())
        assert snap.total("repro_run_iterations") == record.iterations
        assert snap.total("repro_kernel_launches_total") > 0
        assert active_registry() is None

    def test_provenance_attached(self, medium_graph):
        record = execute("ld_gpu", medium_graph, RunContext())
        assert record.provenance is not None
        assert record.provenance["dataset_fingerprint"] == \
            graph_fingerprint(medium_graph)
        doc = json.loads(record.to_json())
        assert doc["schema"] == 4
        assert doc["provenance"]["numpy"] == np.__version__

    def test_per_run_registries_are_isolated(self, medium_graph):
        sink = MetricsSink()
        ctx = RunContext(num_devices=1, sinks=(sink,))
        execute("ld_gpu", medium_graph, ctx)
        execute("ld_gpu", medium_graph, ctx)
        assert len(sink.snapshots) == 2
        a, b = sink.snapshots
        assert a.total("repro_component_seconds_total") == \
            pytest.approx(b.total("repro_component_seconds_total"))
        merged = sink.merged()
        assert merged.total("repro_component_seconds_total") == \
            pytest.approx(2 * a.total("repro_component_seconds_total"))

    def test_registry_released_on_error(self, medium_graph):
        from repro.gpusim.memory import DeviceOOMError
        from repro.gpusim.spec import DGX_A100

        sink = MetricsSink()
        tiny = DGX_A100.with_device_memory(1024)
        ctx = RunContext(platform=tiny, num_devices=1, sinks=(sink,))
        with pytest.raises(DeviceOOMError):
            execute("ld_gpu", medium_graph, ctx)
        assert active_registry() is None
        assert sink.snapshots == []

    def test_edges_threshold_gauge(self, medium_graph):
        from repro.metrics.workstats import iterations_below_fraction

        sink = MetricsSink()
        ctx = RunContext(num_devices=2, sinks=(sink,))
        record = execute("ld_gpu", medium_graph, ctx)
        expected = iterations_below_fraction(
            record.result.stats["edges_scanned"],
            medium_graph.num_directed_edges, 0.2)
        assert sink.last_snapshot.total(
            "repro_iterations_below_edges_threshold") == \
            pytest.approx(expected)

    def test_json_document_reconciliation_block(self, medium_graph):
        sink = MetricsSink()
        ctx = RunContext(num_devices=4, sinks=(sink,))
        record = execute("ld_gpu", medium_graph, ctx)
        doc = to_json_document(sink.last_snapshot, record)
        rec = doc["reconciliation"]
        assert rec["max_abs_diff"] <= 1e-9
        assert rec["communication_fraction_metric"] == pytest.approx(
            rec["communication_fraction_timeline"])
        assert doc["provenance"] is record.provenance

    def test_multinode_cluster_gauges(self, medium_graph):
        from repro.matching.ld_multinode import ld_multinode

        reg = MetricsRegistry()
        with record_into(reg):
            ld_multinode(medium_graph, num_nodes=4, devices_per_node=4)
        snap = reg.snapshot()
        assert snap.total("repro_cluster_nodes") == 4
        assert snap.total("repro_cluster_devices_per_node") == 4
        assert sum(
            s["count"] for s in snap.samples("repro_allreduce_seconds")
        ) > 0


class TestTraceSinkOverwrite:
    def test_warns_once_and_keeps_surviving_path(self, tmp_path,
                                                 medium_graph):
        sink = TraceSink(path=str(tmp_path / "trace.json"))
        ctx = RunContext(num_devices=1, sinks=(sink,))
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            for _ in range(3):
                execute("ld_gpu", medium_graph, ctx)
        overwrites = [w for w in caught
                      if issubclass(w.category, RuntimeWarning)
                      and "placeholder" in str(w.message)]
        assert len(overwrites) == 1
        assert len(sink.traces) == 3
        assert sink.saved_paths == [str(tmp_path / "trace.json")]

    def test_placeholder_path_never_warns(self, tmp_path, medium_graph):
        sink = TraceSink(path=str(tmp_path / "trace_{n}.json"))
        ctx = RunContext(num_devices=1, sinks=(sink,))
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            execute("ld_gpu", medium_graph, ctx)
            execute("ld_gpu", medium_graph, ctx)
        assert not [w for w in caught
                    if issubclass(w.category, RuntimeWarning)]
        assert len(sink.saved_paths) == 2


class TestTimelineMerge:
    """Satellite regression: merged_with must not drop iterations."""

    @staticmethod
    def _with_iterations(values):
        t = Timeline()
        for v in values:
            t.begin_iteration()
            t.add("pointing", v)
            t.end_iteration()
        return t

    def test_iterations_concatenated(self):
        m = self._with_iterations([1.0, 2.0]).merged_with(
            self._with_iterations([3.0]))
        assert len(m.iterations) == 3
        assert list(m.iteration_totals()) == [1.0, 2.0, 3.0]
        assert m.totals["pointing"] == 6.0
        assert m.total == pytest.approx(sum(m.iteration_totals()))

    def test_merge_with_open_iteration_raises(self):
        a = Timeline()
        a.begin_iteration()
        with pytest.raises(RuntimeError, match="open iteration"):
            a.merged_with(Timeline())
        with pytest.raises(RuntimeError, match="open iteration"):
            Timeline().merged_with(a)

    def test_records_are_copies(self):
        a = self._with_iterations([1.0])
        m = a.merged_with(Timeline())
        m.iterations[0]["pointing"] = 99.0
        assert a.iterations[0]["pointing"] == 1.0


class TestReportStatsGuards:
    """Satellite regression: profile_report/iteration_rows with stats
    arrays absent or shorter than the timeline's iteration count."""

    def test_rows_without_stats(self, medium_graph):
        r = ld_gpu(medium_graph, num_devices=2, collect_stats=False)
        rows = iteration_rows(r)
        assert len(rows) == r.iterations
        assert all(row[-3] is None and row[-2] is None
                   and row[-1] is None for row in rows)
        assert "communication" in profile_report(r)

    def test_rows_with_short_stats(self, medium_graph):
        r = ld_gpu(medium_graph, num_devices=2)
        # A merged/extended timeline can outgrow the stats series.
        r.stats["edges_scanned"] = r.stats["edges_scanned"][:1]
        r.stats["occupancy"] = r.stats["occupancy"][:1]
        r.stats["new_matches"] = r.stats["new_matches"][:1]
        rows = iteration_rows(r)
        assert rows[0][-3] is not None
        assert all(row[-3] is None for row in rows[1:])
        assert profile_report(r)  # renders without IndexError

    def test_communication_fraction_vs_lane_totals(self, medium_graph):
        r = ld_gpu(medium_graph, num_devices=4)
        lanes = Trace.from_timeline(r.timeline).lane_totals()
        total = sum(lanes.values())
        assert lanes["communication"] / total == pytest.approx(
            r.timeline.communication_fraction())


class TestHostileLabelValues:
    """Satellite regression: label-value escaping must round-trip
    backslash/newline/quote, including the adversarial wire form
    ``\\n`` (literal backslash then 'n'), which a sequential
    str.replace unescape corrupts into a newline."""

    HOSTILE = [
        'plain',
        'has"quote',
        'has\nnewline',
        'has\\backslash',
        'backslash-then-n: \\n',       # the replace-order killer
        'all three: \\ " \n and \\n',
        'trailing backslash \\',
        '\\\\double\\\\',
    ]

    def test_roundtrip_through_exposition_text(self):
        from repro.telemetry.exporters import _parse_labels

        reg = MetricsRegistry()
        for i, v in enumerate(self.HOSTILE):
            reg.counter("repro_hostile_total", "hostile",
                        idx=str(i), path=v).inc()
        text = to_prometheus(reg.snapshot())
        assert validate_prometheus_text(text) == len(self.HOSTILE)
        seen = {}
        for line in text.splitlines():
            if line.startswith("repro_hostile_total{"):
                labels = _parse_labels(
                    line[len("repro_hostile_total"):-2], 1)
                seen[int(labels["idx"])] = labels["path"]
        assert [seen[i] for i in range(len(self.HOSTILE))] \
            == self.HOSTILE

    def test_unescape_is_single_pass(self):
        from repro.telemetry.exporters import (
            _escape_label_value,
            _unescape_label_value,
        )

        for v in self.HOSTILE:
            assert _unescape_label_value(_escape_label_value(v)) == v
        # the specific historical bug: escaped backslash + 'n'
        assert _unescape_label_value("\\\\n") == "\\n"
        assert _unescape_label_value("\\n") == "\n"
        # unknown escapes and a dangling backslash pass through
        assert _unescape_label_value("\\t") == "\\t"
        assert _unescape_label_value("end\\") == "end\\"


class TestSnapshotAccessors:
    def _snapshot(self):
        reg = MetricsRegistry()
        reg.counter("repro_c_total", "c", component="sync").inc(2.0)
        reg.counter("repro_c_total", component="pointing").inc(3.0)
        reg.histogram("repro_h", "h", buckets=(1.0,)).observe(0.5)
        return reg.snapshot()

    def test_value_point_read(self):
        snap = self._snapshot()
        assert snap.value("repro_c_total", component="sync") == 2.0
        assert snap.value("repro_c_total", component="absent") is None
        assert snap.value("repro_nope_total") is None

    def test_value_rejects_ambiguous(self):
        snap = self._snapshot()
        with pytest.raises(ValueError, match="matches 2 samples"):
            snap.value("repro_c_total")

    def test_value_histogram_reads_sum(self):
        assert self._snapshot().value("repro_h") == 0.5

    def test_label_values(self):
        snap = self._snapshot()
        assert snap.label_values("repro_c_total", "component") \
            == ["pointing", "sync"]
        assert snap.label_values("repro_c_total", "missing") == []
