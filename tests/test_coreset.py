"""Shard-parallel composable-coreset matching (repro.matching.coreset).

Covers the ISSUE-9 acceptance criteria: seeded shard assignment is
deterministic across processes and pinned across platforms; the
coordinator's RunRecord is byte-identical whether shards ran serially,
via ``run_cells(parallel=N)``, through a run store, or claimed by a
worker fleet; and coreset quality on blossom-tractable instances clears
the 0.5x floor (the paper guarantees ~3/8) on graphs k-times larger
than any single shard's footprint.
"""

import hashlib
import json
import os
import subprocess
import sys

import numpy as np
import pytest

from conftest import build_graph, random_graphs
from hypothesis import given
from repro.engine.context import RunContext
from repro.engine.executor import execute
from repro.graph.builders import from_coo
from repro.graph.generators import rmat_graph, similarity_graph
from repro.graph.transform import drop_light_edges, edge_subgraph
from repro.matching import (
    blossom_mwm,
    coreset_greedy,
    coreset_matching,
    coreset_shard,
    extract_shard,
    shard_assignments,
)
from repro.matching.validate import verify_result

SRC = os.path.join(os.path.dirname(__file__), "..", "src")


def _p8():
    u = np.arange(7)
    return from_coo(u, u + 1, np.arange(1.0, 8.0), num_vertices=8,
                    name="p8")


def _strip_wall(doc: dict) -> dict:
    for key in ("wall_time_s", "started_at", "duration_s"):
        doc.pop(key, None)
    if doc.get("provenance"):
        doc["provenance"].pop("wall_time_s", None)
    return doc


class TestShardAssignments:
    def test_pinned_values(self):
        # Hard-coded expected assignments: the partition is a pure
        # function of (seed, edge, k) and must never drift across
        # platforms, numpy versions or refactors — a silent change
        # would shuffle every stored coreset record's fingerprint.
        g = _p8()
        assert shard_assignments(g, 3, 0).tolist() == \
            [2, 0, 0, 0, 1, 1, 0]
        assert shard_assignments(g, 3, 1).tolist() == \
            [0, 1, 1, 0, 2, 1, 0]
        assert shard_assignments(g, 4, 42).tolist() == \
            [1, 0, 3, 0, 0, 3, 2]

    def test_deterministic_across_processes(self):
        g = rmat_graph(8, 4, seed=11)
        local = hashlib.sha256(
            shard_assignments(g, 8, 5).tobytes()).hexdigest()
        out = subprocess.run(
            [sys.executable, "-c",
             "import hashlib\n"
             "from repro.graph.generators import rmat_graph\n"
             "from repro.matching import shard_assignments\n"
             "a = shard_assignments(rmat_graph(8, 4, seed=11), 8, 5)\n"
             "print(hashlib.sha256(a.tobytes()).hexdigest())"],
            env={**os.environ, "PYTHONPATH": SRC},
            capture_output=True, text=True, check=True)
        assert out.stdout.strip() == local

    def test_range_and_seed_sensitivity(self, medium_graph):
        a = shard_assignments(medium_graph, 4, 0)
        assert len(a) == medium_graph.num_edges
        assert a.min() >= 0 and a.max() < 4
        b = shard_assignments(medium_graph, 4, 1)
        assert not np.array_equal(a, b)

    def test_roughly_balanced(self, medium_graph):
        counts = np.bincount(shard_assignments(medium_graph, 4, 0),
                             minlength=4)
        m = medium_graph.num_edges
        assert counts.sum() == m
        # keyed-hash balance: each shard within 3x of the m/k ideal
        assert counts.max() <= 3 * m / 4

    def test_single_shard(self, medium_graph):
        assert not shard_assignments(medium_graph, 1, 9).any()

    def test_bad_shard_count(self, medium_graph):
        with pytest.raises(ValueError):
            shard_assignments(medium_graph, 0)


class TestExtractShard:
    def test_shards_partition_the_edge_set(self, medium_graph):
        u, v, w = medium_graph.edge_array()
        parent = {(int(a), int(b)): float(c)
                  for a, b, c in zip(u, v, w)}
        seen: dict[tuple[int, int], float] = {}
        for i in range(4):
            sub, eids = extract_shard(medium_graph, i, 4, seed=2)
            assert sub.num_vertices == medium_graph.num_vertices
            su, sv, sw = sub.edge_array()
            for a, b, c in zip(su, sv, sw):
                key = (int(a), int(b))
                assert key not in seen  # disjoint
                seen[key] = float(c)
            assert len(eids) == sub.num_edges
        assert seen == parent  # complete

    def test_eid_mapping(self, medium_graph):
        u, v, w = medium_graph.edge_array()
        sub, eids = extract_shard(medium_graph, 1, 3, seed=4)
        su, sv, sw = sub.edge_array()
        assert np.array_equal(su, u[eids])
        assert np.array_equal(sv, v[eids])
        assert np.array_equal(sw, w[eids])

    def test_index_out_of_range(self, medium_graph):
        with pytest.raises(ValueError):
            extract_shard(medium_graph, 4, 4)


class TestEdgeSubgraph:
    def test_mask_selects_edges(self):
        g = build_graph(5, [(0, 1, 3.0), (1, 2, 1.0), (2, 3, 2.0),
                            (3, 4, 5.0)])
        u, v, w = g.edge_array()
        sub, eids = edge_subgraph(g, w >= 2.0)
        assert sub.num_edges == 3
        assert sub.num_vertices == 5  # vertex set preserved
        su, sv, sw = sub.edge_array()
        assert np.array_equal(su, u[eids])
        assert np.array_equal(sw, w[eids])
        assert sorted(sw.tolist()) == [2.0, 3.0, 5.0]

    def test_empty_mask(self, medium_graph):
        sub, eids = edge_subgraph(
            medium_graph,
            np.zeros(medium_graph.num_edges, dtype=bool))
        assert sub.num_edges == 0
        assert sub.num_vertices == medium_graph.num_vertices
        assert len(eids) == 0

    def test_full_mask_identity(self, medium_graph):
        sub, _ = edge_subgraph(
            medium_graph,
            np.ones(medium_graph.num_edges, dtype=bool))
        assert np.array_equal(sub.indptr, medium_graph.indptr)
        assert np.array_equal(sub.indices, medium_graph.indices)
        assert np.array_equal(sub.weights, medium_graph.weights)

    def test_validates(self, medium_graph):
        mask = np.ones(medium_graph.num_edges, dtype=bool)
        mask[::3] = False
        sub, _ = edge_subgraph(medium_graph, mask)
        sub.validate()

    def test_wrong_length(self, medium_graph):
        with pytest.raises(ValueError, match="entries"):
            edge_subgraph(medium_graph, np.ones(3, dtype=bool))

    def test_wrong_dtype(self, medium_graph):
        with pytest.raises(ValueError, match="boolean"):
            edge_subgraph(medium_graph,
                          np.ones(medium_graph.num_edges))

    def test_drop_light_edges_uses_it(self):
        g = build_graph(4, [(0, 1, 0.5), (1, 2, 2.0), (2, 3, 1.5)])
        pruned = drop_light_edges(g, 1.0)
        assert pruned.num_edges == 2
        assert pruned.num_vertices == 4


class TestCoresetShard:
    def test_result_and_stats(self, medium_graph):
        res = coreset_shard(medium_graph, shard_index=0, num_shards=3,
                            partition_seed=1)
        sub, _ = extract_shard(medium_graph, 0, 3, seed=1)
        verify_result(sub, res)
        assert res.stats["shard_edges"] == sub.num_edges
        cu = res.stats["coreset_u"]
        assert res.stats["coreset_edges"] == len(cu)
        assert sum(res.stats["coreset_w"]) == pytest.approx(res.weight)

    def test_record_stats_survive_executor(self, medium_graph):
        rec = execute("coreset_shard", medium_graph, shard_index=1,
                      num_shards=3, partition_seed=1)
        for key in ("coreset_u", "coreset_v", "coreset_w",
                    "shard_edges", "coreset_edges"):
            assert key in rec.extra
        # JSON round-trip (what a store serves back) keeps the payload
        doc = json.loads(rec.to_json())
        assert doc["extra"]["coreset_w"] == rec.extra["coreset_w"]


def _check_valid(graph, res):
    """Valid + weight-consistent.  Maximality on the *full* graph is
    deliberately not asserted: a composable-coreset matching is maximal
    on the coreset union, but an edge outside every coreset may join
    two free vertices — ABM'19's guarantee is weight-relative."""
    from repro.matching.validate import is_valid_matching, \
        matching_weight

    assert is_valid_matching(graph, res.mate)
    assert matching_weight(graph, res.mate) == pytest.approx(
        res.weight)


class TestCoordinator:
    def test_valid_matching_and_stats(self, medium_graph):
        res = coreset_matching(medium_graph, num_shards=4, seed=3)
        _check_valid(medium_graph, res)
        assert res.algorithm == "coreset_greedy"
        assert len(res.stats["shard_edges"]) == 4
        assert res.stats["peak_shard_edges"] == \
            max(res.stats["shard_edges"])
        assert sum(res.stats["shard_edges"]) == medium_graph.num_edges
        assert res.stats["merge_edges"] <= \
            sum(res.stats["coreset_edges"])

    def test_memory_budget(self, medium_graph):
        # The point of sharding: each worker holds a strict fraction of
        # the graph — the input is k-times larger than the per-shard
        # budget (up to hash imbalance).
        k = 4
        res = coreset_matching(medium_graph, num_shards=k, seed=3)
        peak = res.stats["peak_shard_edges"]
        assert peak < medium_graph.num_edges
        assert peak * k >= medium_graph.num_edges
        assert medium_graph.num_edges >= (k // 2) * peak

    def test_quality_floor_vs_blossom(self):
        # >= 0.5x blossom on tractable instances (paper bound ~3/8).
        for g in (rmat_graph(9, 5, seed=106, name="kron-q"),
                  similarity_graph(500, avg_degree=24.0, seed=114,
                                   name="gene-q")):
            opt = blossom_mwm(g)
            for k in (2, 4, 8):
                res = coreset_matching(g, num_shards=k, seed=1)
                assert res.weight >= 0.5 * opt.weight

    def test_ld_base_matches_greedy_edges(self, medium_graph):
        a = coreset_matching(medium_graph, num_shards=4, base="greedy",
                             seed=5)
        b = coreset_matching(medium_graph, num_shards=4, base="ld",
                             seed=5)
        # same (w, eid) total order => same selected edge set
        assert np.array_equal(a.mate, b.mate)

    def test_unknown_base(self, medium_graph):
        with pytest.raises(ValueError, match="unknown coreset base"):
            coreset_matching(medium_graph, base="suitor")

    def test_single_shard_equals_base(self, medium_graph):
        from repro.matching import greedy_matching

        res = coreset_matching(medium_graph, num_shards=1, seed=0)
        ref = greedy_matching(medium_graph)
        assert np.array_equal(res.mate, ref.mate)
        assert res.weight == pytest.approx(ref.weight)


class TestBitIdentity:
    def _record(self, g, parallel=0, store=None, dataset=None,
                seed=2) -> dict:
        rec = execute("coreset_greedy", g, RunContext(seed=seed),
                      num_shards=3, shard_parallel=parallel,
                      store=store, dataset=dataset)
        return _strip_wall(json.loads(rec.to_json()))

    def test_serial_vs_parallel_grid(self):
        # generator grid: topology x weight structure
        grid = [
            rmat_graph(7, 4, seed=1, name="g-rmat"),
            similarity_graph(120, avg_degree=10.0, seed=2,
                             name="g-sim"),
            from_coo(np.arange(99), np.arange(99) + 1, np.ones(99),
                     num_vertices=100, name="g-tie-path"),
        ]
        for g in grid:
            serial = self._record(g)
            for n in (1, 2):
                assert self._record(g, parallel=n) == serial, g.name

    def test_store_modes(self, tmp_path):
        g = similarity_graph(150, avg_degree=8.0, seed=9,
                             name="store-g")
        ref = self._record(g)
        db = str(tmp_path / "cs.db")
        # first store run executes + persists the shards
        assert self._record(g, store=db) == ref
        # second serves every shard from the store (no result object)
        assert self._record(g, store=db) == ref
        # and parallel against the same store still agrees
        assert self._record(g, store=db, parallel=2) == ref

    def test_seed_changes_record(self):
        g = rmat_graph(7, 4, seed=1, name="g-rmat")
        assert self._record(g, seed=2) != self._record(g, seed=3)


class TestWorkerFleet:
    def test_fleet_round1_bit_identical(self, tmp_path):
        # Shard cells registered in a store are claimable by the PR-8
        # worker fleet: a worker subprocess executes round 1 alone,
        # then the coordinator serves every shard from the store and
        # must produce the same record as an in-process run.
        from repro.engine.cells import Cell, materialise_cells
        from repro.harness.datasets import load_dataset
        from repro.store import RunStore
        from repro.store.fingerprint import fingerprint_for

        name = "mouse_gene"
        g = load_dataset(name)
        ref = _strip_wall(json.loads(
            execute("coreset_greedy", g, RunContext(seed=7),
                    num_shards=4, dataset=name).to_json()))

        db = str(tmp_path / "fleet.db")
        store = RunStore(db)
        base = {"num_shards": 4, "partition_seed": 7, "base": "greedy"}
        cells = [Cell("coreset_shard", dataset=name,
                      overrides={**base, "shard_index": i},
                      label=f"coreset-shard-{i}/4")
                 for i in range(4)]
        for mc in materialise_cells(cells, RunContext()):
            fp, config, gfp = fingerprint_for(mc.cell, mc.ctx, g)
            store.register(fp, algorithm="coreset_shard",
                           config=config, seed=mc.ctx.seed,
                           graph_fingerprint=gfp, dataset=name)
        out = subprocess.run(
            [sys.executable, "-c",
             "from repro.store import RunStore\n"
             "from repro.service.worker import worker_loop\n"
             f"s = RunStore({db!r})\n"
             "summ = worker_loop(s, poll_s=0.05, idle_exit_s=0)\n"
             "print(summ.executed, summ.ok)"],
            env={**os.environ, "PYTHONPATH": SRC},
            capture_output=True, text=True, check=True, timeout=120)
        executed, ok = out.stdout.split()
        assert (executed, ok) == ("4", "4"), out.stdout
        fleet = _strip_wall(json.loads(
            execute("coreset_greedy", g, RunContext(seed=7),
                    num_shards=4, dataset=name, store=db).to_json()))
        assert fleet == ref


class TestPropertyGrid:
    @given(random_graphs(max_vertices=20, max_edges=50))
    def test_serial_parallel_identity_property(self, g):
        a = coreset_matching(g, num_shards=3, seed=1)
        b = coreset_matching(g, num_shards=3, seed=1,
                             shard_parallel=2)
        assert np.array_equal(a.mate, b.mate)
        assert a.weight == b.weight
        assert a.stats == b.stats

    @given(random_graphs(max_vertices=20, max_edges=50))
    def test_always_valid_and_half_of_greedy(self, g):
        from repro.matching import greedy_matching

        res = coreset_matching(g, num_shards=3, seed=1)
        _check_valid(g, res)
        # every shard matching is maximal on its shard, so the merged
        # matching can't collapse: it weighs at least half of what
        # single-machine greedy finds on tiny instances
        ref = greedy_matching(g)
        assert res.weight >= 0.5 * ref.weight - 1e-9


class TestBenchSuite:
    def test_suite_registered(self):
        from repro.harness.bench import SUITES

        names = [w.name for w in SUITES["coreset"]]
        assert any(w.algorithm == "blossom"
                   for w in SUITES["coreset"])
        assert any("coreset_greedy" in n for n in names)
        assert any("coreset_ld" in n for n in names)
        for w in SUITES["coreset"]:
            if w.algorithm.startswith("coreset"):
                assert w.overrides["seed"] == 1
                assert w.overrides["dataset"] == w.dataset

    def test_compare_reports_gates_coreset_metrics(self):
        def doc(peak, ratio):
            return {
                "schema": 1, "suite": "coreset", "repeats": 1,
                "provenance": {},
                "workloads": [{
                    "name": "w", "algorithm": "coreset_greedy",
                    "dataset": "d", "status": "ok",
                    "median_sim_time_s": None,
                    "median_wall_time_s": 0.1, "weight": 1.0,
                    "iterations": 0, "host_entries_scanned": None,
                    "peak_shard_edges": peak,
                    "approx_ratio_vs_blossom": ratio,
                }],
            }

        from repro.harness.bench import compare_reports

        base = doc(100, 0.8)
        assert compare_reports(doc(100, 0.8), base) == []
        assert compare_reports(doc(104, 0.79), base) == []  # in tol
        probs = compare_reports(doc(120, 0.8), base)
        assert probs and "peak_shard_edges" in probs[0]
        probs = compare_reports(doc(100, 0.7), base)
        assert probs and "approx_ratio_vs_blossom" in probs[0]

    def test_baseline_committed_and_valid(self):
        from repro.harness.bench import validate_bench_report

        path = os.path.join(os.path.dirname(__file__), "..",
                            "benchmarks", "baseline_coreset.json")
        doc = json.load(open(path))
        validate_bench_report(doc)
        ratios = [w["approx_ratio_vs_blossom"]
                  for w in doc["workloads"]
                  if "approx_ratio_vs_blossom" in w]
        assert ratios and all(r >= 0.5 for r in ratios)


class TestCLI:
    def test_shards_rejected_for_non_coreset(self, capsys):
        from repro.cli import main

        with pytest.raises(SystemExit) as exc:
            main(["run", "-a", "greedy", "-d", "mouse_gene",
                  "--shards", "4"])
        assert exc.value.code == 2

    def test_coreset_run(self, capsys):
        from repro.cli import main

        assert main(["run", "-a", "coreset_greedy", "-d",
                     "mouse_gene", "--quality", "--shards", "4",
                     "--parallel", "2", "--seed", "1"]) == 0
        out = capsys.readouterr().out
        assert "peak_shard_edges" in out

    def test_coreset_run_json(self, capsys):
        from repro.cli import main

        assert main(["run", "-a", "coreset_ld", "-d", "mouse_gene",
                     "--quality", "--shards", "2", "--seed", "1",
                     "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["extra"]["peak_shard_edges"] > 0
        assert len(doc["extra"]["shard_edges"]) == 2
