"""Unit tests for interconnects, collectives and transfers."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.comm.collectives import (
    allreduce_max,
    allreduce_sum,
    broadcast,
    ring_allreduce_time,
)
from repro.comm.topology import (
    NVLINK_SXM3,
    NVLINK_SXM4,
    PCIE3,
    PCIE4,
    Interconnect,
)
from repro.comm.transfer import PAGEABLE_PENALTY, d2h_time, h2d_time


class TestTopology:
    def test_presets_ordered(self):
        assert PCIE3.bandwidth_gbs < PCIE4.bandwidth_gbs
        assert PCIE4.bandwidth_gbs < NVLINK_SXM3.bandwidth_gbs
        assert NVLINK_SXM3.bandwidth_gbs < NVLINK_SXM4.bandwidth_gbs

    def test_transfer_time(self):
        link = Interconnect("t", 1.0, 0.0)  # 1 GB/s, no latency
        assert link.transfer_time(1_000_000_000) == pytest.approx(1.0)

    def test_latency_floor(self):
        link = Interconnect("t", 1000.0, 100.0)
        assert link.transfer_time(0) == pytest.approx(100e-6)

    def test_scaled(self):
        s = NVLINK_SXM4.scaled(bandwidth_factor=0.5, latency_factor=2.0)
        assert s.bandwidth_gbs == pytest.approx(300.0)
        assert s.latency_us == pytest.approx(20.0)


class TestRingCost:
    def test_single_device_free(self):
        assert ring_allreduce_time(1_000_000, 1, PCIE4) == 0.0

    def test_formula(self):
        link = Interconnect("t", 1.0, 0.0)
        # 2*(N-1) steps of (bytes/N)
        t = ring_allreduce_time(4_000_000_000, 4, link)
        assert t == pytest.approx(6 * 1.0)

    def test_monotone_in_devices_latency(self):
        ts = [ring_allreduce_time(1000, n, PCIE4) for n in (2, 4, 8)]
        assert ts[0] < ts[1] < ts[2]  # latency-bound regime


class TestAllreduce:
    def test_max_combines(self):
        a = np.array([1, -1, 5], dtype=np.int64)
        b = np.array([0, 7, 2], dtype=np.int64)
        allreduce_max([a, b], NVLINK_SXM4)
        assert list(a) == [1, 7, 5]
        assert np.array_equal(a, b)

    def test_max_sentinel_semantics(self):
        # the LD-GPU use case: owners hold values, others hold -1
        bufs = [np.full(4, -1, dtype=np.int64) for _ in range(3)]
        bufs[0][0] = 9
        bufs[1][2] = 3
        allreduce_max(bufs, NVLINK_SXM4)
        for b in bufs:
            assert list(b) == [9, -1, 3, -1]

    def test_sum(self):
        a = np.ones(3)
        b = np.ones(3) * 2
        allreduce_sum([a, b], PCIE4)
        assert np.all(a == 3.0)
        assert np.all(b == 3.0)

    def test_single_buffer_noop_cost(self):
        a = np.arange(5)
        t = allreduce_max([a], NVLINK_SXM4)
        assert t == 0.0
        assert list(a) == [0, 1, 2, 3, 4]

    def test_returns_positive_time(self):
        bufs = [np.zeros(1000), np.zeros(1000)]
        assert allreduce_max(bufs, PCIE4) > 0

    def test_empty_list(self):
        with pytest.raises(ValueError):
            allreduce_max([], PCIE4)

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            allreduce_max([np.zeros(3), np.zeros(4)], PCIE4)

    def test_dtype_mismatch(self):
        with pytest.raises(ValueError):
            allreduce_max(
                [np.zeros(3, np.int64), np.zeros(3, np.float64)], PCIE4
            )

    @given(st.integers(2, 6), st.integers(1, 40), st.integers(0, 2**16))
    def test_max_equals_elementwise(self, ndev, size, seed):
        rng = np.random.default_rng(seed)
        bufs = [rng.integers(-1, 100, size=size) for _ in range(ndev)]
        expect = np.max(np.stack(bufs), axis=0)
        allreduce_max(bufs, NVLINK_SXM4)
        for b in bufs:
            assert np.array_equal(b, expect)


class TestBroadcast:
    def test_copies_root(self):
        bufs = [np.zeros(3), np.ones(3) * 7, np.zeros(3)]
        broadcast(bufs, root=1, link=NVLINK_SXM4)
        for b in bufs:
            assert np.all(b == 7)

    def test_single_free(self):
        assert broadcast([np.zeros(3)], 0, PCIE4) == 0.0


class TestTransfers:
    def test_h2d_math(self):
        link = Interconnect("t", 1.0, 0.0)
        assert h2d_time(500_000_000, link) == pytest.approx(0.5)

    def test_pageable_slower(self):
        t_pinned = h2d_time(10**9, PCIE4, pinned=True)
        t_pageable = h2d_time(10**9, PCIE4, pinned=False)
        assert t_pageable > t_pinned
        assert t_pageable == pytest.approx(
            PCIE4.latency_s + 10**9 / (PCIE4.bandwidth_bps
                                       * PAGEABLE_PENALTY))

    def test_d2h_symmetric(self):
        assert d2h_time(1000, PCIE4) == h2d_time(1000, PCIE4)
