"""Unit tests for the GPU simulator substrate: memory, timeline, streams,
kernels, occupancy, device, specs."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.gpusim.device import SimDevice
from repro.gpusim.kernels import matching_kernel_cost, pointing_kernel_cost
from repro.gpusim.memory import DeviceOOMError, MemoryPool
from repro.gpusim.occupancy import sm_occupancy, warp_work_distribution
from repro.gpusim.spec import A100, DGX_2, DGX_A100, DGX_A100_PCIE, V100
from repro.gpusim.stream import dual_buffer_schedule
from repro.gpusim.timeline import COMPONENTS, Timeline


class TestMemoryPool:
    def test_alloc_free(self):
        pool = MemoryPool(100)
        pool.alloc("a", 60)
        assert pool.used == 60
        assert pool.free == 40
        pool.free_allocation("a")
        assert pool.used == 0

    def test_oom(self):
        pool = MemoryPool(100, "gpu0")
        pool.alloc("a", 60)
        with pytest.raises(DeviceOOMError) as ei:
            pool.alloc("b", 50)
        assert ei.value.request == 50
        assert ei.value.used == 60
        assert "gpu0" in str(ei.value)

    def test_exact_fit(self):
        pool = MemoryPool(100)
        pool.alloc("a", 100)  # exactly full is fine
        assert pool.free == 0

    def test_duplicate_name(self):
        pool = MemoryPool(100)
        pool.alloc("a", 10)
        with pytest.raises(ValueError):
            pool.alloc("a", 10)

    def test_free_unknown(self):
        with pytest.raises(KeyError):
            MemoryPool(10).free_allocation("x")

    def test_negative_alloc(self):
        with pytest.raises(ValueError):
            MemoryPool(10).alloc("a", -1)

    def test_negative_capacity(self):
        with pytest.raises(ValueError):
            MemoryPool(-1)

    def test_peak_tracking(self):
        pool = MemoryPool(100)
        pool.alloc("a", 70)
        pool.free_allocation("a")
        pool.alloc("b", 30)
        assert pool.peak == 70

    def test_resize(self):
        pool = MemoryPool(100)
        pool.alloc("a", 10)
        pool.resize("a", 90)
        assert pool.used == 90

    def test_contains_and_snapshot(self):
        pool = MemoryPool(100)
        pool.alloc("a", 10)
        assert "a" in pool
        assert pool.allocations() == {"a": 10}


class TestTimeline:
    def test_add_and_total(self):
        t = Timeline()
        t.add("pointing", 1.0)
        t.add("sync", 0.5)
        assert t.total == pytest.approx(1.5)

    def test_unknown_component(self):
        with pytest.raises(KeyError):
            Timeline().add("nonsense", 1.0)

    def test_negative_time(self):
        with pytest.raises(ValueError):
            Timeline().add("sync", -1.0)

    def test_fractions_sum_to_one(self):
        t = Timeline()
        t.add("pointing", 3.0)
        t.add("matching", 1.0)
        f = t.fractions()
        assert sum(f.values()) == pytest.approx(1.0)
        assert f["pointing"] == pytest.approx(0.75)

    def test_fractions_empty(self):
        assert sum(Timeline().fractions().values()) == 0.0

    def test_iteration_records(self):
        t = Timeline()
        t.begin_iteration()
        t.add("pointing", 2.0)
        t.end_iteration()
        t.begin_iteration()
        t.add("pointing", 1.0)
        t.add("sync", 1.0)
        t.end_iteration()
        assert list(t.iteration_totals()) == [2.0, 2.0]
        assert list(t.component_series("pointing")) == [2.0, 1.0]

    def test_nested_iteration_errors(self):
        t = Timeline()
        t.begin_iteration()
        with pytest.raises(RuntimeError):
            t.begin_iteration()

    def test_end_without_begin(self):
        with pytest.raises(RuntimeError):
            Timeline().end_iteration()

    def test_communication_fraction(self):
        t = Timeline()
        t.add("pointing", 1.0)
        t.add("allreduce_pointers", 4.5)
        t.add("allreduce_mate", 4.5)
        assert t.communication_fraction() == pytest.approx(0.9)

    def test_merged_with(self):
        a, b = Timeline(), Timeline()
        a.add("pointing", 1.0)
        b.add("pointing", 2.0)
        b.add("sync", 1.0)
        m = a.merged_with(b)
        assert m.totals["pointing"] == 3.0
        assert m.total == 4.0

    def test_component_series_unknown(self):
        with pytest.raises(KeyError):
            Timeline().component_series("nope")


class TestDualBufferSchedule:
    def test_empty(self):
        r = dual_buffer_schedule([], [])
        assert r.makespan == 0.0

    def test_single_batch(self):
        r = dual_buffer_schedule([2.0], [3.0])
        assert r.makespan == 5.0
        assert r.exposed_transfer == 2.0

    def test_two_batches_overlap(self):
        # load1 | load2 overlaps compute1
        r = dual_buffer_schedule([1.0, 1.0], [5.0, 5.0])
        assert r.makespan == pytest.approx(11.0)
        assert r.compute_time == 10.0
        assert r.exposed_transfer == pytest.approx(1.0)

    def test_transfer_bound(self):
        r = dual_buffer_schedule([5.0, 5.0, 5.0], [1.0, 1.0, 1.0])
        # loads serialize: 5, 10, 15; computes at 6, 11, 16
        assert r.makespan == pytest.approx(16.0)

    def test_buffer_reuse_constraint(self):
        # batch 2 reuses buffer 0: its load waits for compute 0
        r = dual_buffer_schedule([1.0, 1.0, 1.0], [10.0, 1.0, 1.0])
        # load0 done 1, comp0 done 11; load1 done 2, comp1 starts 11 done 12
        # load2 starts max(load1_done=2, comp0_done=11) -> done 12,
        # comp2 starts max(12, comp1=12) -> done 13
        assert r.makespan == pytest.approx(13.0)

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            dual_buffer_schedule([1.0], [])

    @given(st.lists(st.floats(0, 10), min_size=1, max_size=8),
           st.data())
    def test_makespan_bounds(self, loads, data):
        comps = data.draw(st.lists(st.floats(0, 10), min_size=len(loads),
                                   max_size=len(loads)))
        r = dual_buffer_schedule(loads, comps)
        assert r.makespan >= max(sum(comps), sum(loads)) - 1e-9
        assert r.makespan <= sum(comps) + sum(loads) + 1e-9


class TestKernelCosts:
    def test_pointing_empty_frontier(self):
        p = pointing_kernel_cost(A100, np.empty(0, dtype=np.int64))
        assert p.seconds == pytest.approx(A100.kernel_launch_us * 1e-6)
        assert p.edges_scanned == 0

    def test_pointing_scales_with_work(self):
        small = pointing_kernel_cost(A100, np.full(1000, 10))
        large = pointing_kernel_cost(A100, np.full(1000, 1000))
        assert large.seconds > small.seconds

    def test_pointing_straggler_penalty(self):
        uniform = pointing_kernel_cost(A100, np.full(1024, 100))
        skew = np.full(1024, 100)
        skew[0] = 100 * 1024  # one hub
        skewed = pointing_kernel_cost(A100, skew)
        assert skewed.seconds > uniform.seconds

    def test_pointing_edges_scanned(self):
        work = np.array([3, 4, 5], dtype=np.int64)
        p = pointing_kernel_cost(A100, work)
        assert p.edges_scanned == 12

    def test_matching_cost_scales(self):
        a = matching_kernel_cost(A100, 1000)
        b = matching_kernel_cost(A100, 1_000_000)
        assert b.seconds > a.seconds

    def test_matching_empty(self):
        p = matching_kernel_cost(A100, 0)
        assert p.seconds == pytest.approx(A100.kernel_launch_us * 1e-6)

    def test_v100_slower(self):
        work = np.full(100_000, 50)
        assert pointing_kernel_cost(V100, work).seconds > \
            pointing_kernel_cost(A100, work).seconds


class TestOccupancy:
    def test_warp_distribution(self):
        stats = warp_work_distribution(np.array([1, 2, 3, 4, 5]), 2)
        assert stats.num_warps == 3
        assert stats.total_work == 15
        assert stats.max_work == 7
        assert stats.imbalance >= 1.0

    def test_warp_distribution_empty(self):
        stats = warp_work_distribution(np.empty(0, dtype=np.int64), 4)
        assert stats.num_warps == 0
        assert stats.imbalance == 1.0

    def test_bad_vpw(self):
        with pytest.raises(ValueError):
            warp_work_distribution(np.array([1]), 0)

    def test_occupancy_saturates(self):
        assert sm_occupancy(A100, 10 * A100.hw_warps) == 1.0

    def test_occupancy_fraction(self):
        assert sm_occupancy(A100, A100.hw_warps // 2) == pytest.approx(0.5)

    def test_occupancy_negative(self):
        with pytest.raises(ValueError):
            sm_occupancy(A100, -1)

    def test_effective_capacity(self):
        spec = A100.with_occupancy_capacity(10.0)
        assert sm_occupancy(spec, 5) == pytest.approx(0.5)
        assert sm_occupancy(spec, 100) == 1.0


class TestSpecs:
    def test_presets(self):
        assert A100.sm_count == 108
        assert V100.sm_count == 80
        assert A100.mem_bandwidth_gbs > V100.mem_bandwidth_gbs
        assert DGX_A100.max_devices == 8
        assert DGX_2.max_devices == 16

    def test_bytes_per_adjacency(self):
        assert A100.bytes_per_adjacency == 16
        assert A100.with_representation(4, 4).bytes_per_adjacency == 8

    def test_with_memory(self):
        assert A100.with_memory(123).memory_bytes == 123

    def test_scaled_device(self):
        s = A100.scaled(0.5)
        assert s.memory_bytes == A100.memory_bytes // 2
        assert s.mem_bandwidth_gbs == pytest.approx(
            A100.mem_bandwidth_gbs / 2)
        assert s.kernel_launch_us == A100.kernel_launch_us  # latency kept

    def test_scaled_platform(self):
        p = DGX_A100.scaled(0.1)
        assert p.gpu_link.bandwidth_gbs == pytest.approx(
            DGX_A100.gpu_link.bandwidth_gbs * 0.1)
        assert p.gpu_link.latency_us == DGX_A100.gpu_link.latency_us

    def test_pcie_variant(self):
        assert DGX_A100_PCIE.gpu_link.bandwidth_gbs < \
            DGX_A100.gpu_link.bandwidth_gbs

    def test_mem_efficiency_applied(self):
        assert V100.mem_bandwidth_bps == pytest.approx(
            900e9 * V100.mem_efficiency)


class TestSimDevice:
    def test_alloc_and_lookup(self):
        dev = SimDevice(0, A100.with_memory(10_000))
        arr = dev.alloc_array("x", 100, np.int64)
        assert arr.nbytes == 800
        assert dev.array("x") is arr
        assert dev.memory.used == 800

    def test_oom_propagates(self):
        dev = SimDevice(0, A100.with_memory(10))
        with pytest.raises(DeviceOOMError):
            dev.alloc_array("x", 100, np.int64)

    def test_counters(self):
        dev = SimDevice(1, A100)
        dev.record_kernel()
        dev.record_h2d(100)
        dev.record_d2h(50)
        assert dev.kernels_launched == 1
        assert dev.bytes_h2d == 100
        assert dev.bytes_d2h == 50

    def test_free_releases(self):
        dev = SimDevice(0, A100.with_memory(1000))
        dev.reserve("buf", 1000)
        dev.free("buf")
        dev.reserve("buf2", 1000)

    def test_register_view(self):
        dev = SimDevice(0, A100.with_memory(10_000))
        arr = np.zeros(10, dtype=np.float64)
        dev.register_view("v", arr)
        assert dev.memory.used == arr.nbytes
