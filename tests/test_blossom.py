"""Exact maximum weight matching tests: brute force, networkx
cross-checks, optimality certificates, approximation bounds."""

import itertools

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from conftest import build_graph, random_graphs
from repro.graph.builders import to_networkx
from repro.graph.csr import CSRGraph
from repro.matching.blossom import blossom_mwm, maximum_weight_matching
from repro.matching.greedy import greedy_matching
from repro.matching.ld_seq import ld_seq
from repro.matching.suitor import suitor_seq
from repro.matching.types import UNMATCHED
from repro.matching.validate import is_valid_matching, verify_result


def brute_force_mwm(graph: CSRGraph) -> float:
    """Exhaustive optimum for tiny graphs."""
    edges = list(graph.iter_edges())
    best = 0.0
    for r in range(1, len(edges) + 1):
        for combo in itertools.combinations(edges, r):
            seen: set[int] = set()
            ok = True
            for u, v, _ in combo:
                if u in seen or v in seen:
                    ok = False
                    break
                seen.add(u)
                seen.add(v)
            if ok:
                best = max(best, sum(w for _, _, w in combo))
    return best


class TestSmallExact:
    def test_empty(self):
        g = build_graph(3, [])
        r = blossom_mwm(g)
        assert r.weight == 0.0

    def test_single_edge(self):
        g = build_graph(2, [(0, 1, 2.5)])
        r = blossom_mwm(g, verify=True)
        assert r.weight == 2.5

    def test_path_skips_greedy_trap(self):
        """P4 with weights 2, 3, 2: greedy takes the middle edge (w=3);
        the optimum takes the two outer edges (w=4)."""
        g = build_graph(4, [(0, 1, 2.0), (1, 2, 3.0), (2, 3, 2.0)])
        opt = blossom_mwm(g, verify=True)
        grd = greedy_matching(g)
        assert opt.weight == 4.0
        assert grd.weight == 3.0

    def test_triangle(self, triangle):
        r = blossom_mwm(triangle, verify=True)
        assert r.weight == 3.0

    def test_odd_cycle_blossom(self):
        """C5 forces a blossom; optimum picks the two heaviest disjoint
        edges."""
        g = build_graph(5, [(0, 1, 1.0), (1, 2, 1.0), (2, 3, 1.0),
                            (3, 4, 1.0), (4, 0, 1.0)])
        r = blossom_mwm(g, verify=True)
        assert r.weight == 2.0

    def test_two_triangles_bridge(self):
        """The classic nested-blossom stress: two triangles joined by a
        heavy bridge."""
        g = build_graph(6, [
            (0, 1, 1.0), (1, 2, 1.0), (0, 2, 1.0),
            (3, 4, 1.0), (4, 5, 1.0), (3, 5, 1.0),
            (2, 3, 10.0),
        ])
        r = blossom_mwm(g, verify=True)
        assert r.weight == 12.0  # bridge + one edge in each triangle

    def test_petersen_like_blossom_expansion(self):
        """Blossom that must be expanded mid-stage (delta-4 path)."""
        # C9 with one chord and varied weights
        edges = [(i, (i + 1) % 9, 1.0 + 0.1 * i) for i in range(9)]
        edges.append((0, 4, 2.5))
        g = build_graph(9, edges)
        r = blossom_mwm(g, verify=True)
        assert r.weight == pytest.approx(brute_force_mwm(g))

    def test_paper_fig1_optimal(self, paper_fig1_graph):
        """On the Fig. 1 path the optimum ({0,1}+{2,3}+{4,5} = 10) beats
        the locally dominant matching ({0,1}+{3,4} = 9) — a concrete
        instance of the approximation gap Table II measures."""
        r = blossom_mwm(paper_fig1_graph, verify=True)
        assert r.weight == 10.0
        assert ld_seq(paper_fig1_graph).weight == 9.0


class TestPropertyExact:
    @given(random_graphs(max_vertices=8, max_edges=14))
    @settings(max_examples=40)
    def test_matches_brute_force(self, g):
        r = blossom_mwm(g, verify=True)
        assert is_valid_matching(g, r.mate)
        assert r.weight == pytest.approx(brute_force_mwm(g))

    @given(random_graphs(max_vertices=8, max_edges=14, tie_prone=True))
    @settings(max_examples=30)
    def test_matches_brute_force_ties(self, g):
        r = blossom_mwm(g, verify=True)
        assert r.weight == pytest.approx(brute_force_mwm(g))

    @given(random_graphs(max_vertices=20, max_edges=60))
    def test_matches_networkx(self, g):
        r = blossom_mwm(g)
        nxg = to_networkx(g)
        import networkx as nx

        nxm = nx.max_weight_matching(nxg)
        nxw = sum(nxg[a][b]["weight"] for a, b in nxm)
        assert r.weight == pytest.approx(nxw)

    @given(random_graphs(max_vertices=16, max_edges=40))
    def test_certificate_always_passes(self, g):
        maximum_weight_matching(g, verify=True)


class TestMaxCardinality:
    def test_prefers_more_edges(self):
        """P4 where the pure-weight optimum uses one edge but two edges
        are feasible."""
        g = build_graph(4, [(0, 1, 1.0), (1, 2, 10.0), (2, 3, 1.0)])
        plain = blossom_mwm(g)
        card = blossom_mwm(g, maxcardinality=True, verify=True)
        assert plain.num_matched_edges == 1
        assert card.num_matched_edges == 2
        assert card.weight == 2.0

    @given(random_graphs(max_vertices=12, max_edges=30))
    def test_cardinality_dominates(self, g):
        plain = blossom_mwm(g)
        card = blossom_mwm(g, maxcardinality=True)
        assert card.num_matched_edges >= plain.num_matched_edges
        import networkx as nx

        nxm = nx.max_weight_matching(to_networkx(g), maxcardinality=True)
        assert card.num_matched_edges == len(nxm)


class TestHalfApproximation:
    """Corollary II.1 (and the Suitor equivalent): every locally
    dominant matching carries at least half the optimal weight."""

    @given(random_graphs(max_vertices=16, max_edges=40))
    def test_ld_seq_half_approx(self, g):
        opt = blossom_mwm(g).weight
        assert ld_seq(g).weight >= 0.5 * opt - 1e-9

    @given(random_graphs(max_vertices=16, max_edges=40, tie_prone=True))
    def test_suitor_half_approx(self, g):
        opt = blossom_mwm(g).weight
        assert suitor_seq(g).weight >= 0.5 * opt - 1e-9

    def test_half_bound_is_tight_family(self):
        """P3 with weights (1, 1): LD picks one edge... build the
        classic tight example P4 w=(1, 1+eps, 1): greedy/LD gets 1+eps,
        optimum 2."""
        eps = 1e-6
        g = build_graph(4, [(0, 1, 1.0), (1, 2, 1.0 + eps), (2, 3, 1.0)])
        ld = ld_seq(g).weight
        opt = blossom_mwm(g).weight
        assert ld / opt == pytest.approx(0.5, abs=1e-3)


class TestMediumGraphs:
    def test_rmat_vs_networkx(self):
        from repro.graph.generators import rmat_graph

        g = rmat_graph(7, 4, seed=17)
        r = blossom_mwm(g, verify=True)
        verify_result(g, r, require_maximal=False)
        import networkx as nx

        nxg = to_networkx(g)
        nxm = nx.max_weight_matching(nxg)
        nxw = sum(nxg[a][b]["weight"] for a, b in nxm)
        assert r.weight == pytest.approx(nxw)

    def test_dense_similarity_graph(self):
        from repro.graph.generators import similarity_graph

        g = similarity_graph(120, avg_degree=20, seed=18)
        r = blossom_mwm(g, verify=True)
        assert r.weight >= greedy_matching(g).weight
