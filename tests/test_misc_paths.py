"""Coverage for secondary paths: vertex partitioning in LD-GPU, profiler
rows, CLI flags, collective bandwidth helpers, suitor knobs."""

import numpy as np
import pytest

from repro.cli import main
from repro.comm.topology import NVLINK_SXM4, PCIE4
from repro.gpusim.report import iteration_rows
from repro.gpusim.spec import DGX_A100
from repro.matching.ld_gpu import ld_gpu
from repro.matching.ld_seq import ld_seq
from repro.matching.suitor import suitor_gpu_sim


class TestVertexPartitionMode:
    def test_same_matching(self, medium_graph):
        ref = ld_seq(medium_graph)
        r = ld_gpu(medium_graph, num_devices=4, partition="vertex",
                   collect_stats=False)
        assert np.array_equal(r.mate, ref.mate)

    def test_unknown_partition(self, medium_graph):
        with pytest.raises(ValueError, match="partition strategy"):
            ld_gpu(medium_graph, num_devices=2, partition="hash")

    def test_edge_balanced_no_slower_on_skew(self):
        from repro.graph.generators import webcrawl_graph

        g = webcrawl_graph(4000, out_degree=12, seed=44)
        e = ld_gpu(g, num_devices=4, collect_stats=False)
        v = ld_gpu(g, num_devices=4, partition="vertex",
                   collect_stats=False)
        assert e.sim_time <= v.sim_time * 1.001


class TestVerticesPerWarp:
    def test_affects_time_not_result(self, medium_graph):
        a = ld_gpu(medium_graph, num_devices=1, vertices_per_warp=1,
                   collect_stats=False)
        b = ld_gpu(medium_graph, num_devices=1, vertices_per_warp=32,
                   collect_stats=False)
        assert np.array_equal(a.mate, b.mate)
        assert a.sim_time != b.sim_time

    def test_config_echo(self, medium_graph):
        r = ld_gpu(medium_graph, num_devices=1, vertices_per_warp=16,
                   collect_stats=False)
        assert r.stats["config"].vertices_per_warp == 16


class TestProfilerRows:
    def test_row_shape(self, medium_graph):
        r = ld_gpu(medium_graph, num_devices=2)
        rows = iteration_rows(r)
        assert len(rows) == r.iterations
        # iter index + 6 components + total + scanned + occ + matches
        assert len(rows[0]) == 11

    def test_totals_match_timeline(self, medium_graph):
        r = ld_gpu(medium_graph, num_devices=2)
        rows = iteration_rows(r)
        total_ms = sum(row[7] for row in rows)
        assert total_ms == pytest.approx(1e3 * r.sim_time, rel=1e-9)

    def test_without_stats_columns(self, medium_graph):
        r = ld_gpu(medium_graph, num_devices=2, collect_stats=False)
        rows = iteration_rows(r)
        assert rows[0][8] is None  # edges scanned absent


class TestCollectiveBandwidth:
    def test_nvlink_not_shared(self):
        assert NVLINK_SXM4.collective_bandwidth_bps(8) == \
            NVLINK_SXM4.collective_bandwidth_bps(2)

    def test_pcie_contends(self):
        assert PCIE4.collective_bandwidth_bps(8) < \
            PCIE4.collective_bandwidth_bps(2)
        assert PCIE4.collective_bandwidth_bps(8) == pytest.approx(
            PCIE4.collective_bandwidth_bps(2) / 4.0)

    def test_efficiency_applied(self):
        assert NVLINK_SXM4.collective_bandwidth_bps(2) == pytest.approx(
            600e9 * 0.08)


class TestSuitorGpuKnobs:
    def test_vpw_changes_time_only(self, medium_graph):
        a = suitor_gpu_sim(medium_graph, vertices_per_warp=1)
        b = suitor_gpu_sim(medium_graph, vertices_per_warp=8)
        assert np.array_equal(a.mate, b.mate)

    def test_representation_bytes_reported(self, medium_graph):
        r = suitor_gpu_sim(medium_graph)
        assert r.stats["representation_bytes"] < \
            medium_graph.memory_bytes() * 1.15


class TestCliFlags:
    def test_profile_flag(self, capsys):
        assert main(["run", "-a", "ld_gpu", "-d", "mouse_gene",
                     "--profile"]) == 0
        out = capsys.readouterr().out
        assert "profile" in out
        assert "edges scanned" in out

    def test_trace_flag(self, tmp_path, capsys):
        path = tmp_path / "trace.json"
        assert main(["run", "-a", "ld_gpu", "-d", "mouse_gene",
                     "--trace", str(path)]) == 0
        assert path.exists()
        assert "trace written" in capsys.readouterr().out

    def test_run_sr_gpu_branch(self, capsys):
        assert main(["run", "-a", "sr_gpu", "-d", "mouse_gene"]) == 0
        assert "suitor_gpu" in capsys.readouterr().out

    def test_run_sr_omp_branch(self, capsys):
        assert main(["run", "-a", "sr_omp", "-d", "mouse_gene"]) == 0
        assert "suitor_omp" in capsys.readouterr().out

    def test_run_cugraph_branch(self, capsys):
        assert main(["run", "-a", "cugraph", "-d", "mouse_gene",
                     "-n", "2"]) == 0
        assert "cugraph_mg" in capsys.readouterr().out
