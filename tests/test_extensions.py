"""Tests for the extension algorithms: path growing, short-augmentation
local search (2/3), Pettie–Sanders, and b-Suitor b-matching."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from conftest import build_graph, random_graphs
from repro.matching.augmenting import (
    apply_augmentation,
    best_short_augmentation,
    random_augmentation_matching,
    two_thirds_matching,
)
from repro.matching.b_matching import (
    b_suitor,
    greedy_b_matching,
    is_valid_b_matching,
)
from repro.matching.blossom import blossom_mwm
from repro.matching.greedy import greedy_matching
from repro.matching.ld_seq import ld_seq
from repro.matching.path_growing import path_growing_matching
from repro.matching.types import UNMATCHED
from repro.matching.validate import (
    is_maximal_matching,
    is_valid_matching,
    verify_result,
)


class TestPathGrowing:
    def test_single_edge(self):
        g = build_graph(2, [(0, 1, 1.0)])
        r = path_growing_matching(g)
        assert r.weight == 1.0

    def test_path_takes_heavy_edges(self, path_graph):
        r = path_growing_matching(path_graph)
        verify_result(path_graph, r)
        assert r.weight >= 0.5 * blossom_mwm(path_graph).weight

    @given(random_graphs())
    def test_valid_and_maximal(self, g):
        r = path_growing_matching(g)
        assert is_valid_matching(g, r.mate)
        assert is_maximal_matching(g, r.mate)

    @given(random_graphs(max_vertices=14, max_edges=30))
    @settings(max_examples=20)
    def test_half_approx(self, g):
        opt = blossom_mwm(g).weight
        assert path_growing_matching(g).weight >= 0.5 * opt - 1e-9

    def test_two_matchings_reported(self, medium_graph):
        r = path_growing_matching(medium_graph)
        w1, w2 = r.stats["path_matching_weights"]
        assert r.weight >= max(w1, w2) - 1e-9  # sweep only adds weight

    def test_empty(self):
        r = path_growing_matching(build_graph(3, []))
        assert r.num_matched_edges == 0


class TestShortAugmentation:
    def test_finds_middle_edge_trap(self):
        """P4 (2, 3, 2): greedy takes the middle; one short augmentation
        centred anywhere recovers the optimum (4)."""
        g = build_graph(4, [(0, 1, 2.0), (1, 2, 3.0), (2, 3, 2.0)])
        base = greedy_matching(g)
        assert base.weight == 3.0
        mate = base.mate.copy()
        gain, moves = best_short_augmentation(g, mate, 0)
        assert gain == pytest.approx(1.0)
        apply_augmentation(mate, moves)
        assert is_valid_matching(g, mate)

    def test_no_gain_at_optimum(self, triangle):
        opt = blossom_mwm(triangle)
        for v in range(3):
            gain, _ = best_short_augmentation(triangle, opt.mate, v)
            assert gain <= 1e-9

    def test_apply_augmentation_involution(self):
        mate = np.array([1, 0, 3, 2], dtype=np.int64)
        apply_augmentation(mate, [(1, 2)])
        assert mate[1] == 2 and mate[2] == 1
        assert mate[0] == UNMATCHED and mate[3] == UNMATCHED


class TestTwoThirds:
    @given(random_graphs(max_vertices=14, max_edges=30))
    @settings(max_examples=20)
    def test_two_thirds_guarantee(self, g):
        opt = blossom_mwm(g).weight
        r = two_thirds_matching(g)
        assert is_valid_matching(g, r.mate)
        assert r.weight >= (2.0 / 3.0) * opt - 1e-9

    @given(random_graphs(max_vertices=14, max_edges=30,
                         tie_prone=True))
    @settings(max_examples=15)
    def test_two_thirds_ties(self, g):
        opt = blossom_mwm(g).weight
        assert two_thirds_matching(g).weight >= (2.0 / 3.0) * opt - 1e-9

    def test_improves_on_ld(self):
        from repro.graph.generators import rmat_graph

        g = rmat_graph(8, 5, seed=12)
        base = ld_seq(g)
        r = two_thirds_matching(g)
        assert r.weight >= base.weight
        assert r.stats["initial_weight"] == pytest.approx(base.weight)

    def test_tight_half_instance_recovered(self):
        """The ½-tight P4 family: local search must escape it."""
        eps = 1e-6
        g = build_graph(4, [(0, 1, 1.0), (1, 2, 1.0 + eps), (2, 3, 1.0)])
        r = two_thirds_matching(g)
        assert r.weight == pytest.approx(2.0)

    def test_custom_init(self, medium_graph):
        base = greedy_matching(medium_graph)
        r = two_thirds_matching(medium_graph, init=base, max_sweeps=2)
        assert r.weight >= base.weight


class TestPettieSanders:
    def test_improves_in_expectation(self):
        from repro.graph.generators import rmat_graph

        g = rmat_graph(8, 5, seed=13)
        base = ld_seq(g).weight
        r = random_augmentation_matching(g, epsilon=0.05, seed=3)
        verify_result(g, r, require_maximal=False)
        assert r.weight >= base

    def test_bad_epsilon(self, medium_graph):
        with pytest.raises(ValueError):
            random_augmentation_matching(medium_graph, epsilon=0.0)
        with pytest.raises(ValueError):
            random_augmentation_matching(medium_graph, epsilon=1.5)

    def test_rounds_scale_with_epsilon(self, triangle):
        loose = random_augmentation_matching(triangle, epsilon=0.5)
        tight = random_augmentation_matching(triangle, epsilon=0.01)
        assert tight.iterations > loose.iterations

    def test_deterministic_per_seed(self, medium_graph):
        a = random_augmentation_matching(medium_graph, seed=7)
        b = random_augmentation_matching(medium_graph, seed=7)
        assert np.array_equal(a.mate, b.mate)


class TestBSuitor:
    @given(random_graphs(max_vertices=16, max_edges=40),
           st.integers(1, 3))
    def test_equals_greedy_b(self, g, b):
        bs = b_suitor(g, b)
        gr = greedy_b_matching(g, b)
        assert is_valid_b_matching(g, bs)
        assert is_valid_b_matching(g, gr)
        assert bs.edge_set() == gr.edge_set()
        assert bs.weight == pytest.approx(gr.weight)

    def test_b1_equals_plain_matching(self, medium_graph):
        bs = b_suitor(medium_graph, 1)
        plain = greedy_matching(medium_graph)
        assert bs.edge_set() == {
            tuple(p) for p in plain.matched_pairs().tolist()
        }

    def test_symmetric_at_termination(self, medium_graph):
        bs = b_suitor(medium_graph, 3)
        assert bs.stats["asymmetric"] == 0

    def test_capacity_respected(self, medium_graph):
        bs = b_suitor(medium_graph, 2)
        for ps in bs.partners:
            assert len(ps) <= 2

    def test_per_vertex_capacities(self, medium_graph):
        n = medium_graph.num_vertices
        bvec = np.ones(n, dtype=np.int64)
        bvec[::2] = 3
        bs = b_suitor(medium_graph, bvec)
        assert is_valid_b_matching(medium_graph, bs)
        for v, ps in enumerate(bs.partners):
            assert len(ps) <= bvec[v]

    def test_zero_capacity_vertex(self):
        g = build_graph(3, [(0, 1, 1.0), (1, 2, 2.0)])
        bvec = np.array([0, 2, 2])
        bs = b_suitor(g, bvec)
        assert is_valid_b_matching(g, bs)
        assert len(bs.partners[0]) == 0
        assert bs.weight == 2.0

    def test_weight_grows_with_b(self, medium_graph):
        w1 = b_suitor(medium_graph, 1).weight
        w2 = b_suitor(medium_graph, 2).weight
        w4 = b_suitor(medium_graph, 4).weight
        assert w1 < w2 < w4

    def test_bad_b(self, medium_graph):
        with pytest.raises(ValueError):
            b_suitor(medium_graph, 0)
        with pytest.raises(ValueError):
            b_suitor(medium_graph, np.array([1, 2]))

    def test_empty_graph(self):
        bs = b_suitor(build_graph(4, []), 2)
        assert bs.num_matched_edges == 0
